"""Miss Status Holding Registers.

The PVProxy keeps its outstanding PVTable fetches in "an MSHR-like
structure" (Section 2.2).  This module provides a small, general MSHR file
with request coalescing: a second miss to an in-flight block attaches to the
existing entry instead of issuing a duplicate memory request.

Two clients share it:

* every :class:`~repro.core.pvproxy.PVProxy` tracks its in-flight PVTable
  set fetches here (capacity 4, the Section 4.6 budget);
* in contention mode (:class:`~repro.memory.contention.ContentionConfig`),
  each core's L1 miss path runs through a per-core file: demand fills and
  prefetches allocate entries, duplicate in-flight fills coalesce, a full
  file rejects prefetches and stalls demand misses until the earliest
  outstanding fill retires.  The analytic (default) timing model leaves the
  L1 path unbounded and does not touch this structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class MSHREntry:
    """One outstanding miss: target block, issue/ready times, waiters."""

    block_addr: int
    issued_at: int
    ready_at: int
    waiters: List[object] = field(default_factory=list)

    def attach(self, waiter: object) -> None:
        self.waiters.append(waiter)


class MSHRFile:
    """A bounded set of in-flight misses keyed by block address."""

    def __init__(self, capacity: int, name: str = "mshr") -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._entries: Dict[int, MSHREntry] = {}
        # Conservative lower bound on the earliest outstanding ready_at:
        # lets retire_ready bail out without scanning when nothing can have
        # arrived yet.  May go stale-low after complete() (harmless: the
        # scan re-checks), never stale-high.
        self._next_ready = float("inf")
        self.allocations = 0
        self.coalesced = 0
        self.rejected = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def find(self, block_addr: int) -> Optional[MSHREntry]:
        return self._entries.get(block_addr)

    def allocate(self, block_addr: int, issued_at: int, ready_at: int) -> Optional[MSHREntry]:
        """Allocate (or coalesce into) an entry for ``block_addr``.

        Returns the entry, or ``None`` if the file is full and the block has
        no in-flight entry — the caller must treat the request as dropped
        (for PV this is safe: predictions are advisory).
        """
        entry = self._entries.get(block_addr)
        if entry is not None:
            self.coalesced += 1
            return entry
        if self.full:
            self.rejected += 1
            return None
        entry = MSHREntry(block_addr=block_addr, issued_at=issued_at, ready_at=ready_at)
        self._entries[block_addr] = entry
        if ready_at < self._next_ready:
            self._next_ready = ready_at
        self.allocations += 1
        occupancy = len(self._entries)
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        return entry

    def complete(self, block_addr: int) -> Optional[MSHREntry]:
        """Retire the entry for ``block_addr`` and return it (with waiters)."""
        return self._entries.pop(block_addr, None)

    def retire_ready(self, now: int) -> List[MSHREntry]:
        """Retire and return every entry whose fill has arrived by ``now``."""
        entries = self._entries
        if not entries or now < self._next_ready:
            return []
        ready = [e for e in entries.values() if e.ready_at <= now]
        for entry in ready:
            del entries[entry.block_addr]
        self._next_ready = min(
            (e.ready_at for e in entries.values()), default=float("inf")
        )
        return ready

    def earliest_ready(self) -> Optional[float]:
        """Completion time of the next fill to arrive, if any is in flight."""
        if not self._entries:
            return None
        return min(e.ready_at for e in self._entries.values())

    def reset_stats(self) -> None:
        """Zero the counters; in-flight entries survive (warmup boundary)."""
        self.allocations = 0
        self.coalesced = 0
        self.rejected = 0
        self.peak_occupancy = len(self._entries)

    def outstanding(self) -> List[MSHREntry]:
        return list(self._entries.values())
