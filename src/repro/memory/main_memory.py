"""Fixed-latency main memory with off-chip traffic accounting.

Off-chip bandwidth is the quantity Figures 7, 8 and 10 study, split along
two axes: request direction (reads caused by L2 misses vs. write-backs of
dirty L2 victims) and payload type (application data vs. PV metadata).
``MainMemory`` keeps all four counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MainMemory:
    """Backing store: constant latency, infinite capacity, traffic counters."""

    latency: int = 400  # cycles, Table 1
    block_size: int = 64
    reads: int = 0
    writes: int = 0
    pv_reads: int = 0
    pv_writes: int = 0

    def read(self, block_addr: int, is_pv: bool = False) -> int:
        """Service an L2 miss; returns the access latency in cycles."""
        self.reads += 1
        if is_pv:
            self.pv_reads += 1
        return self.latency

    def write(self, block_addr: int, is_pv: bool = False) -> None:
        """Accept a write-back of a dirty L2 victim (fire-and-forget)."""
        self.writes += 1
        if is_pv:
            self.pv_writes += 1

    # -- derived traffic numbers --------------------------------------------

    @property
    def app_reads(self) -> int:
        return self.reads - self.pv_reads

    @property
    def app_writes(self) -> int:
        return self.writes - self.pv_writes

    @property
    def total_transfers(self) -> int:
        return self.reads + self.writes

    def bytes_transferred(self) -> int:
        return self.total_transfers * self.block_size

    def snapshot(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "pv_reads": self.pv_reads,
            "pv_writes": self.pv_writes,
            "app_reads": self.app_reads,
            "app_writes": self.app_writes,
        }
