"""Main memory with off-chip traffic accounting and optional finite bandwidth.

Off-chip bandwidth is the quantity Figures 7, 8 and 10 study, split along
two axes: request direction (reads caused by L2 misses vs. write-backs of
dirty L2 victims) and payload type (application data vs. PV metadata).
``MainMemory`` keeps all four counters.

By default the store is the paper's analytic model — constant latency,
infinite bandwidth — so every existing result is preserved bit for bit.
Constructed with ``channels > 0`` (the contention-aware mode, see
:class:`~repro.memory.contention.ContentionConfig`) it additionally models
finite DRAM bandwidth: each block transfer commits ``service_cycles`` of
work to one channel, selected by block-address interleaving.  A channel
tracks its backlog of committed-but-unserved cycles, drained by elapsed
time between requests; a new request waits out the remaining backlog.
(Backlog accounting rather than an absolute next-free schedule: per-core
clocks in the trace-driven model are only approximately ordered, and a
backlog can never charge clock skew as queuing delay — only real committed
work.)  The schedule is a deterministic function of the request stream (no
RNG, no wall clock), so contended runs replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.memory.contention import claim_backlog


@dataclass
class MainMemory:
    """Backing store: traffic counters plus an optional channel model.

    ``channels == 0`` (default) keeps the legacy fixed-latency behavior.
    """

    latency: int = 400  # cycles, Table 1
    block_size: int = 64
    channels: int = 0          # 0: infinite bandwidth (analytic model)
    service_cycles: int = 32   # channel occupancy per block transfer
    reads: int = 0
    writes: int = 0
    pv_reads: int = 0
    pv_writes: int = 0
    # Contention accounting (stay zero in the analytic model).
    busy_cycles: int = 0
    queue_cycles: float = 0.0
    queued_requests: int = 0
    #: Queuing delay of the most recent ``read`` (for split stall charging).
    last_queue_delay: float = 0.0
    # Per-channel committed-but-unserved cycles, and the clock they were
    # last drained at (the max arrival time the channel has seen).
    _backlog: List[float] = field(default_factory=list, repr=False)
    _drained_at: List[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.channels:
            self._backlog = [0.0] * self.channels
            self._drained_at = [0.0] * self.channels

    def _channel(self, block_addr: int) -> int:
        return (block_addr // self.block_size) % self.channels

    def _claim(self, block_addr: int, now: float) -> float:
        """Commit one transfer on ``block_addr``'s channel; return the wait."""
        wait = claim_backlog(
            self._backlog, self._drained_at, self._channel(block_addr),
            now, self.service_cycles,
        )
        self.busy_cycles += self.service_cycles
        if wait > 0:
            self.queue_cycles += wait
            self.queued_requests += 1
        return wait

    def read(self, block_addr: int, is_pv: bool = False,
             now: Optional[float] = None) -> int:
        """Service an L2 miss; returns the access latency in cycles.

        With channels configured and an issue cycle supplied, the latency
        is the base latency plus the channel queuing delay.
        """
        self.reads += 1
        if is_pv:
            self.pv_reads += 1
        if self.channels and now is not None:
            wait = self._claim(block_addr, now)
            self.last_queue_delay = wait
            return self.latency + wait
        self.last_queue_delay = 0.0
        return self.latency

    def write(self, block_addr: int, is_pv: bool = False,
              now: Optional[float] = None) -> None:
        """Accept a write-back of a dirty L2 victim (fire-and-forget).

        The writer never waits on the result, but with channels configured
        the transfer still occupies bandwidth that later reads queue
        behind.
        """
        self.writes += 1
        if is_pv:
            self.pv_writes += 1
        if self.channels and now is not None:
            self._claim(block_addr, now)

    # -- derived traffic numbers --------------------------------------------

    @property
    def app_reads(self) -> int:
        return self.reads - self.pv_reads

    @property
    def app_writes(self) -> int:
        return self.writes - self.pv_writes

    @property
    def total_transfers(self) -> int:
        return self.reads + self.writes

    def bytes_transferred(self) -> int:
        return self.total_transfers * self.block_size

    def utilization(self, elapsed_cycles: float) -> float:
        """Fraction of channel-cycles busy over an ``elapsed_cycles`` window."""
        if not self.channels or elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / (self.channels * elapsed_cycles))

    def reset_counters(self) -> None:
        """Zero traffic and contention counters; keep the channel schedule."""
        self.reads = self.writes = self.pv_reads = self.pv_writes = 0
        self.busy_cycles = 0
        self.queue_cycles = 0.0
        self.queued_requests = 0
        self.last_queue_delay = 0.0

    def snapshot(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "pv_reads": self.pv_reads,
            "pv_writes": self.pv_writes,
            "app_reads": self.app_reads,
            "app_writes": self.app_writes,
        }
