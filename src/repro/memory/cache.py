"""A generic set-associative, write-back, LRU cache model.

This single model instantiates every SRAM array in the simulated chip: the
per-core L1I/L1D, the shared L2, and (indirectly, through the prefetcher
packages) dedicated predictor tables.  Lines carry the flags the evaluation
needs:

* ``dirty`` — write-back state;
* ``prefetched`` — installed by a prefetcher and not yet demand-referenced
  (used to classify covered misses and overpredictions, Figure 4);
* ``is_pv`` — the line holds predictor-virtualization metadata rather than
  application data (used for the traffic splits of Figures 7/8/10).

The cache never allocates on its own: ``lookup`` probes, ``access`` performs
a demand reference (hit path only), and ``fill`` installs a block and
returns the victim, leaving miss handling to the owning hierarchy.  LRU is
maintained with an ``OrderedDict`` per set, so every operation is O(1).
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.memory.addr import _check_power_of_two


class AccessKind(enum.Enum):
    """Why a request reached a cache; used only for bookkeeping splits."""

    DEMAND_READ = "demand_read"
    DEMAND_WRITE = "demand_write"
    IFETCH = "ifetch"
    PREFETCH = "prefetch"
    PV_READ = "pv_read"
    PV_WRITE = "pv_write"
    WRITEBACK = "writeback"

    @property
    def is_pv(self) -> bool:
        return self in (AccessKind.PV_READ, AccessKind.PV_WRITE)

    @property
    def is_demand(self) -> bool:
        return self in (
            AccessKind.DEMAND_READ,
            AccessKind.DEMAND_WRITE,
            AccessKind.IFETCH,
        )


@dataclass
class CacheGeometry:
    """Size/shape of a set-associative array, with derived index math."""

    size_bytes: int
    assoc: int
    block_size: int = 64

    def __post_init__(self) -> None:
        _check_power_of_two(self.block_size, "block_size")
        if self.assoc <= 0:
            raise ValueError("associativity must be positive")
        if self.size_bytes % (self.assoc * self.block_size):
            raise ValueError(
                "size_bytes must be a multiple of assoc * block_size "
                f"({self.size_bytes} % {self.assoc * self.block_size})"
            )
        self.n_sets = self.size_bytes // (self.assoc * self.block_size)
        if self.n_sets & (self.n_sets - 1):
            raise ValueError(f"derived set count {self.n_sets} is not a power of two")

    def set_index(self, block_addr: int) -> int:
        return (block_addr // self.block_size) % self.n_sets

    def tag(self, block_addr: int) -> int:
        return block_addr // (self.block_size * self.n_sets)

    def block_base(self, addr: int) -> int:
        return addr - (addr % self.block_size)

    @property
    def n_blocks(self) -> int:
        return self.size_bytes // self.block_size


@dataclass
class CacheLine:
    """State of one resident cache block."""

    block_addr: int
    dirty: bool = False
    prefetched: bool = False
    is_pv: bool = False
    owner: int = -1  # core that installed the line (for per-core stats)


@dataclass
class EvictedLine:
    """What ``fill``/``invalidate`` hand back so the hierarchy can react."""

    block_addr: int
    dirty: bool
    prefetched: bool
    is_pv: bool
    owner: int = -1

    @classmethod
    def from_line(cls, line: CacheLine) -> "EvictedLine":
        return cls(
            block_addr=line.block_addr,
            dirty=line.dirty,
            prefetched=line.prefetched,
            is_pv=line.is_pv,
            owner=line.owner,
        )


@dataclass
class CacheStats:
    """Hit/miss/traffic counters, split by request kind where it matters."""

    hits: int = 0
    misses: int = 0
    demand_read_hits: int = 0
    demand_read_misses: int = 0
    demand_write_hits: int = 0
    demand_write_misses: int = 0
    ifetch_hits: int = 0
    ifetch_misses: int = 0
    pv_hits: int = 0
    pv_misses: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    pv_evictions: int = 0
    pv_dirty_evictions: int = 0
    invalidations: int = 0
    covered_misses: int = 0      # demand read that found a prefetched line
    overpredictions: int = 0     # prefetched line evicted/invalidated unused

    def record(self, kind: AccessKind, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        attrs = _KIND_COUNTERS[kind]
        if attrs is not None:
            name = attrs[0] if hit else attrs[1]
            setattr(self, name, getattr(self, name) + 1)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def demand_read_accesses(self) -> int:
        return self.demand_read_hits + self.demand_read_misses

    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


#: kind -> (hit counter, miss counter); module-level so ``record`` does a
#: single dict lookup instead of rebuilding a mapping per access.
_KIND_COUNTERS = {
    AccessKind.DEMAND_READ: ("demand_read_hits", "demand_read_misses"),
    AccessKind.DEMAND_WRITE: ("demand_write_hits", "demand_write_misses"),
    AccessKind.IFETCH: ("ifetch_hits", "ifetch_misses"),
    AccessKind.PREFETCH: ("prefetch_hits", "prefetch_misses"),
    AccessKind.PV_READ: ("pv_hits", "pv_misses"),
    AccessKind.PV_WRITE: ("pv_hits", "pv_misses"),
    AccessKind.WRITEBACK: None,
}


class Cache:
    """One set-associative array with LRU replacement.

    ``eviction_listeners`` are called with an :class:`EvictedLine` whenever a
    resident block leaves the array (capacity eviction or invalidation); the
    SMS active-generation table and the inclusive-L2 back-invalidation logic
    both hang off this hook.
    """

    def __init__(self, name: str, geometry: CacheGeometry) -> None:
        self.name = name
        self.geometry = geometry
        self.stats = CacheStats()
        self._sets: list = [OrderedDict() for _ in range(geometry.n_sets)]
        self.eviction_listeners: list = []
        # Inlined geometry constants for the hot paths.
        self._bs = geometry.block_size
        self._nsets = geometry.n_sets
        self._assoc = geometry.assoc

    # -- probing -----------------------------------------------------------

    def lookup(self, addr: int) -> Optional[CacheLine]:
        """Probe for the block containing ``addr`` without touching LRU state."""
        bidx = addr // self._bs
        return self._sets[bidx % self._nsets].get(bidx // self._nsets)

    def contains(self, addr: int) -> bool:
        return self.lookup(addr) is not None

    # -- demand path ---------------------------------------------------------

    def access(self, addr: int, kind: AccessKind, write: bool = False) -> Optional[CacheLine]:
        """Perform a reference.  On a hit, update LRU/dirty and return the line.

        On a miss, record it and return ``None`` — the caller decides whether
        and how to ``fill``.  A demand read that hits a still-``prefetched``
        line counts as a *covered miss* (the reference would have missed
        without the prefetcher) and clears the flag.
        """
        bidx = addr // self._bs
        tag = bidx // self._nsets
        ways = self._sets[bidx % self._nsets]
        line = ways.get(tag)
        self.stats.record(kind, hit=line is not None)
        if line is None:
            return None
        ways.move_to_end(tag)
        if write:
            line.dirty = True
        if line.prefetched and kind.is_demand:
            # First demand touch of a prefetched block.  Only demand *reads*
            # count toward coverage — the paper's metric is L1 read misses —
            # but any demand touch consumes the block (it is no longer an
            # overprediction candidate).
            if kind is AccessKind.DEMAND_READ:
                self.stats.covered_misses += 1
            line.prefetched = False
        return line

    def touch(self, addr: int) -> None:
        """Refresh LRU position without recording an access (used by fills)."""
        bidx = addr // self._bs
        ways = self._sets[bidx % self._nsets]
        tag = bidx // self._nsets
        if tag in ways:
            ways.move_to_end(tag)

    # -- fill / evict --------------------------------------------------------

    def fill(
        self,
        addr: int,
        *,
        dirty: bool = False,
        prefetched: bool = False,
        is_pv: bool = False,
        owner: int = -1,
    ) -> Optional[EvictedLine]:
        """Install the block containing ``addr``; return the victim, if any.

        Filling a block that is already resident merely refreshes its LRU
        position and ORs in the ``dirty`` flag (a prefetch fill never clears
        demand state).
        """
        bidx = addr // self._bs
        block = bidx * self._bs
        tag = bidx // self._nsets
        ways = self._sets[bidx % self._nsets]
        existing = ways.get(tag)
        if existing is not None:
            ways.move_to_end(tag)
            existing.dirty = existing.dirty or dirty
            return None
        victim = None
        if len(ways) >= self._assoc:
            _, victim_line = ways.popitem(last=False)
            victim = self._retire(victim_line)
        ways[tag] = CacheLine(
            block_addr=block,
            dirty=dirty,
            prefetched=prefetched,
            is_pv=is_pv,
            owner=owner,
        )
        self.stats.fills += 1
        return victim

    def invalidate(self, addr: int) -> Optional[EvictedLine]:
        """Remove the block containing ``addr`` if resident; return its state."""
        bidx = addr // self._bs
        ways = self._sets[bidx % self._nsets]
        line = ways.pop(bidx // self._nsets, None)
        if line is None:
            return None
        self.stats.invalidations += 1
        return self._retire(line, invalidation=True)

    def _retire(self, line: CacheLine, invalidation: bool = False) -> EvictedLine:
        if not invalidation:
            self.stats.evictions += 1
            if line.dirty:
                self.stats.dirty_evictions += 1
            if line.is_pv:
                self.stats.pv_evictions += 1
                if line.dirty:
                    self.stats.pv_dirty_evictions += 1
        if line.prefetched:
            self.stats.overpredictions += 1
        evicted = EvictedLine.from_line(line)
        for listener in self.eviction_listeners:
            listener(evicted)
        return evicted

    # -- introspection -------------------------------------------------------

    def resident_blocks(self) -> Iterator[int]:
        for ways in self._sets:
            for line in ways.values():
                yield line.block_addr

    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def pv_occupancy(self) -> int:
        return sum(
            1 for ways in self._sets for line in ways.values() if line.is_pv
        )

    def flush(self) -> list:
        """Evict every resident line (firing listeners); return the evictions."""
        evicted = []
        for ways in self._sets:
            while ways:
                _, line = ways.popitem(last=False)
                evicted.append(self._retire(line))
        return evicted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        g = self.geometry
        return (
            f"Cache({self.name}, {g.size_bytes >> 10}KB, {g.assoc}-way, "
            f"{g.n_sets} sets, occ={self.occupancy()})"
        )
