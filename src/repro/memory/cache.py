"""A generic set-associative, write-back, LRU cache model.

This single model instantiates every SRAM array in the simulated chip: the
per-core L1I/L1D, the shared L2, and (indirectly, through the prefetcher
packages) dedicated predictor tables.  Lines carry the flags the evaluation
needs:

* ``dirty`` — write-back state;
* ``prefetched`` — installed by a prefetcher and not yet demand-referenced
  (used to classify covered misses and overpredictions, Figure 4);
* ``is_pv`` — the line holds predictor-virtualization metadata rather than
  application data (used for the traffic splits of Figures 7/8/10).

The cache never allocates on its own: ``lookup`` probes, ``access`` performs
a demand reference (hit path only), and ``fill`` installs a block and
returns the victim, leaving miss handling to the owning hierarchy.

Line state lives in flat per-set parallel lists — tags, LRU stamps, and a
packed flag word per way — rather than per-line objects: tag search is a C
scan over at most ``assoc`` small ints, a fill writes three ints, and the
LRU victim is the minimum stamp (stamps come from a strictly increasing
tick, so the minimum is unique and matches the move-to-end ordering of the
previous ``OrderedDict`` implementation exactly).  ``lookup``/``access``
expose residency through :class:`CacheLine`, a lightweight view that reads
and writes the packed state in place; hot callers use the allocation-free
``access_hit`` / ``access_pv`` / ``downgrade`` entry points instead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, NamedTuple, Optional

from repro.memory.addr import _check_power_of_two


class AccessKind(enum.Enum):
    """Why a request reached a cache; used only for bookkeeping splits."""

    DEMAND_READ = "demand_read"
    DEMAND_WRITE = "demand_write"
    IFETCH = "ifetch"
    PREFETCH = "prefetch"
    PV_READ = "pv_read"
    PV_WRITE = "pv_write"
    WRITEBACK = "writeback"


# Hoisted enum members: identity checks against locals/module globals are
# measurably cheaper than attribute lookups in the per-reference paths.
_DEMAND_READ = AccessKind.DEMAND_READ
_DEMAND_WRITE = AccessKind.DEMAND_WRITE
_IFETCH = AccessKind.IFETCH
_PREFETCH = AccessKind.PREFETCH
_PV_READ = AccessKind.PV_READ
_PV_WRITE = AccessKind.PV_WRITE

# Packed per-way flag word: low bits are state flags, the rest is owner+1.
_F_DIRTY = 1
_F_PREFETCHED = 2
_F_PV = 4
_OWNER_SHIFT = 3


@dataclass
class CacheGeometry:
    """Size/shape of a set-associative array, with derived index math."""

    size_bytes: int
    assoc: int
    block_size: int = 64

    def __post_init__(self) -> None:
        _check_power_of_two(self.block_size, "block_size")
        if self.assoc <= 0:
            raise ValueError("associativity must be positive")
        if self.size_bytes % (self.assoc * self.block_size):
            raise ValueError(
                "size_bytes must be a multiple of assoc * block_size "
                f"({self.size_bytes} % {self.assoc * self.block_size})"
            )
        self.n_sets = self.size_bytes // (self.assoc * self.block_size)
        if self.n_sets & (self.n_sets - 1):
            raise ValueError(f"derived set count {self.n_sets} is not a power of two")

    def set_index(self, block_addr: int) -> int:
        return (block_addr // self.block_size) % self.n_sets

    def tag(self, block_addr: int) -> int:
        return block_addr // (self.block_size * self.n_sets)

    def block_base(self, addr: int) -> int:
        return addr - (addr % self.block_size)

    @property
    def n_blocks(self) -> int:
        return self.size_bytes // self.block_size


class CacheLine:
    """Live view of one resident block; reads/writes the packed set arrays.

    Identified by ``(set, tag)`` — not a way index — so the view stays
    bound to *its* block even when evictions reshape the set underneath
    it, exactly like the former per-line objects.  Accessing a view whose
    block has left the cache raises ``KeyError``.
    """

    __slots__ = ("_cache", "_set", "_tag")

    def __init__(self, cache: "Cache", set_index: int, tag: int) -> None:
        self._cache = cache
        self._set = set_index
        self._tag = tag

    def _way(self) -> int:
        try:
            return self._cache._tags[self._set].index(self._tag)
        except ValueError:
            raise KeyError(
                f"block 0x{self.block_addr:x} is no longer resident in "
                f"{self._cache.name}"
            ) from None

    @property
    def block_addr(self) -> int:
        c = self._cache
        return (self._tag * c._nsets + self._set) * c._bs

    @property
    def dirty(self) -> bool:
        return bool(self._cache._meta[self._set][self._way()] & _F_DIRTY)

    @dirty.setter
    def dirty(self, value: bool) -> None:
        meta = self._cache._meta[self._set]
        way = self._way()
        if value:
            meta[way] |= _F_DIRTY
        else:
            meta[way] &= ~_F_DIRTY

    @property
    def prefetched(self) -> bool:
        return bool(self._cache._meta[self._set][self._way()] & _F_PREFETCHED)

    @prefetched.setter
    def prefetched(self, value: bool) -> None:
        meta = self._cache._meta[self._set]
        way = self._way()
        if value:
            meta[way] |= _F_PREFETCHED
        else:
            meta[way] &= ~_F_PREFETCHED

    @property
    def is_pv(self) -> bool:
        return bool(self._cache._meta[self._set][self._way()] & _F_PV)

    @is_pv.setter
    def is_pv(self, value: bool) -> None:
        meta = self._cache._meta[self._set]
        way = self._way()
        if value:
            meta[way] |= _F_PV
        else:
            meta[way] &= ~_F_PV

    @property
    def owner(self) -> int:
        return (self._cache._meta[self._set][self._way()] >> _OWNER_SHIFT) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheLine(block=0x{self.block_addr:x}, dirty={self.dirty}, "
            f"prefetched={self.prefetched}, is_pv={self.is_pv})"
        )


class EvictedLine(NamedTuple):
    """What ``fill``/``invalidate`` hand back so the hierarchy can react."""

    block_addr: int
    dirty: bool
    prefetched: bool
    is_pv: bool
    owner: int = -1


@dataclass
class CacheStats:
    """Hit/miss/traffic counters, split by request kind where it matters."""

    hits: int = 0
    misses: int = 0
    demand_read_hits: int = 0
    demand_read_misses: int = 0
    demand_write_hits: int = 0
    demand_write_misses: int = 0
    ifetch_hits: int = 0
    ifetch_misses: int = 0
    pv_hits: int = 0
    pv_misses: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    pv_evictions: int = 0
    pv_dirty_evictions: int = 0
    invalidations: int = 0
    covered_misses: int = 0      # demand read that found a prefetched line
    overpredictions: int = 0     # prefetched line evicted/invalidated unused

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def demand_read_accesses(self) -> int:
        return self.demand_read_hits + self.demand_read_misses

    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class Cache:
    """One set-associative array with LRU replacement.

    ``eviction_listeners`` are called with an :class:`EvictedLine` whenever a
    resident block leaves the array (capacity eviction or invalidation); the
    SMS active-generation table and the inclusive-L2 back-invalidation logic
    both hang off this hook.
    """

    def __init__(self, name: str, geometry: CacheGeometry) -> None:
        self.name = name
        self.geometry = geometry
        self.stats = CacheStats()
        n_sets = geometry.n_sets
        # Parallel per-set arrays: tag, LRU stamp, packed flags per way.
        self._tags: List[List[int]] = [[] for _ in range(n_sets)]
        self._stamps: List[List[int]] = [[] for _ in range(n_sets)]
        self._meta: List[List[int]] = [[] for _ in range(n_sets)]
        self._tick = 0
        self.eviction_listeners: list = []
        # Inlined geometry constants for the hot paths.  Block size and
        # set count are validated powers of two, so the index math is all
        # shifts and masks.
        self._bs = geometry.block_size
        self._nsets = geometry.n_sets
        self._assoc = geometry.assoc
        self._bs_shift = geometry.block_size.bit_length() - 1
        self._set_mask = geometry.n_sets - 1
        self._set_shift = geometry.n_sets.bit_length() - 1

    # -- probing -----------------------------------------------------------

    def lookup(self, addr: int) -> Optional[CacheLine]:
        """Probe for the block containing ``addr`` without touching LRU state."""
        bidx = addr >> self._bs_shift
        sidx = bidx & self._set_mask
        tags = self._tags[sidx]
        tag = bidx >> self._set_shift
        if tag in tags:
            return CacheLine(self, sidx, tag)
        return None

    def contains(self, addr: int) -> bool:
        bidx = addr >> self._bs_shift
        return (bidx >> self._set_shift) in self._tags[bidx & self._set_mask]

    # -- demand path ---------------------------------------------------------

    def access_hit(self, addr: int, kind: AccessKind, write: bool = False) -> bool:
        """Perform a reference; return whether it hit.

        The allocation-free core of :meth:`access`: updates LRU/dirty state
        and every counter exactly the same way, but reports only hit/miss.
        On a miss the caller decides whether and how to ``fill``.  A demand
        read that hits a still-``prefetched`` line counts as a *covered
        miss* (the reference would have missed without the prefetcher) and
        clears the flag.
        """
        bidx = addr >> self._bs_shift
        sidx = bidx & self._set_mask
        tags = self._tags[sidx]
        tag = bidx >> self._set_shift
        st = self.stats
        # `in` + `index` double-scans on a hit, but a try/except ValueError
        # single-scan costs ~8x more on a miss (exception raise), which
        # measures as a net loss below ~91% hit rate — L2 and fill paths
        # are well under that.
        if tag not in tags:
            st.misses += 1
            if kind is _DEMAND_READ:
                st.demand_read_misses += 1
            elif kind is _IFETCH:
                st.ifetch_misses += 1
            elif kind is _DEMAND_WRITE:
                st.demand_write_misses += 1
            elif kind is _PREFETCH:
                st.prefetch_misses += 1
            elif kind is _PV_READ or kind is _PV_WRITE:
                st.pv_misses += 1
            return False
        way = tags.index(tag)
        st.hits += 1
        if kind is _DEMAND_READ:
            st.demand_read_hits += 1
        elif kind is _IFETCH:
            st.ifetch_hits += 1
        elif kind is _DEMAND_WRITE:
            st.demand_write_hits += 1
        elif kind is _PREFETCH:
            st.prefetch_hits += 1
        elif kind is _PV_READ or kind is _PV_WRITE:
            st.pv_hits += 1
        self._tick = tick = self._tick + 1
        self._stamps[sidx][way] = tick
        meta = self._meta[sidx]
        m = meta[way]
        if write:
            m |= _F_DIRTY
        if m & _F_PREFETCHED and (
            kind is _DEMAND_READ or kind is _DEMAND_WRITE or kind is _IFETCH
        ):
            # First demand touch of a prefetched block.  Only demand *reads*
            # count toward coverage — the paper's metric is L1 read misses —
            # but any demand touch consumes the block (it is no longer an
            # overprediction candidate).
            if kind is _DEMAND_READ:
                st.covered_misses += 1
            m &= ~_F_PREFETCHED
        meta[way] = m
        self._hit_set = sidx
        self._hit_way = way
        self._hit_tag = tag
        return True

    def warm_fetch_hit(self, addr: int) -> bool:
        """Functional-warming instruction fetch: state only, no counters.

        The L1I's own hit/miss split is not surfaced by any result field,
        so the two-speed simulator's warming loop skips the bookkeeping
        and keeps just the architectural effects of an IFETCH hit: LRU
        refresh and consuming the prefetched flag.  Misses (``False``)
        leave all miss handling — including L2-level counters, which *are*
        surfaced — to the caller's ``warm_miss`` path.
        """
        bidx = addr >> self._bs_shift
        sidx = bidx & self._set_mask
        tags = self._tags[sidx]
        tag = bidx >> self._set_shift
        if tag not in tags:
            return False
        way = tags.index(tag)
        self._tick = tick = self._tick + 1
        self._stamps[sidx][way] = tick
        meta = self._meta[sidx]
        m = meta[way]
        if m & _F_PREFETCHED:
            meta[way] = m & ~_F_PREFETCHED
        return True

    def access(self, addr: int, kind: AccessKind, write: bool = False) -> Optional[CacheLine]:
        """Perform a reference.  On a hit, update LRU/dirty and return the line.

        On a miss, record it and return ``None`` — the caller decides whether
        and how to ``fill``.  Hot paths that only need hit/miss use
        :meth:`access_hit` and skip the view allocation.
        """
        if self.access_hit(addr, kind, write=write):
            return CacheLine(self, self._hit_set, self._hit_tag)
        return None

    def access_pv(self, addr: int, write: bool = False) -> bool:
        """A PVProxy request: PV-kind access that re-marks the line PV on a hit.

        Returns whether it hit.  (Application traffic can steal a PV block's
        frame; a PV access landing on it reclaims the PV marking, exactly as
        ``line.is_pv = True`` did on the object-based lines.)
        """
        kind = _PV_WRITE if write else _PV_READ
        if self.access_hit(addr, kind, write=write):
            self._meta[self._hit_set][self._hit_way] |= _F_PV
            return True
        return False

    def downgrade(self, addr: int) -> bool:
        """Clear the dirty bit of a resident line (coherence downgrade).

        Returns True when the line was resident *and* dirty — the case where
        the caller must merge the newer data into the next level.  Does not
        touch LRU state or counters (it models a state transition, not a
        reference).
        """
        bidx = addr >> self._bs_shift
        sidx = bidx & self._set_mask
        tags = self._tags[sidx]
        tag = bidx >> self._set_shift
        if tag not in tags:
            return False
        way = tags.index(tag)
        meta = self._meta[sidx]
        if meta[way] & _F_DIRTY:
            meta[way] &= ~_F_DIRTY
            return True
        return False

    def touch(self, addr: int) -> None:
        """Refresh LRU position without recording an access (used by fills)."""
        bidx = addr >> self._bs_shift
        sidx = bidx & self._set_mask
        tags = self._tags[sidx]
        tag = bidx >> self._set_shift
        if tag in tags:
            self._tick = tick = self._tick + 1
            self._stamps[sidx][tags.index(tag)] = tick

    # -- fill / evict --------------------------------------------------------

    def fill(
        self,
        addr: int,
        *,
        dirty: bool = False,
        prefetched: bool = False,
        is_pv: bool = False,
        owner: int = -1,
    ) -> Optional[EvictedLine]:
        """Install the block containing ``addr``; return the victim, if any.

        Filling a block that is already resident merely refreshes its LRU
        position and ORs in the ``dirty`` flag (a prefetch fill never clears
        demand state).
        """
        bidx = addr >> self._bs_shift
        sidx = bidx & self._set_mask
        tags = self._tags[sidx]
        tag = bidx >> self._set_shift
        stamps = self._stamps[sidx]
        meta = self._meta[sidx]
        self._tick = tick = self._tick + 1
        if tag in tags:
            way = tags.index(tag)
            stamps[way] = tick
            if dirty:
                meta[way] |= _F_DIRTY
            return None
        victim = None
        if len(tags) >= self._assoc:
            # LRU victim = minimum stamp (unique: stamps strictly increase).
            way = stamps.index(min(stamps))
            vtag = tags[way]
            vmeta = meta[way]
            # Remove before firing listeners: a listener may reenter this
            # cache (e.g. a PV store cascading into a back-invalidation).
            del tags[way]
            del stamps[way]
            del meta[way]
            victim = self._retire(sidx, vtag, vmeta)
        m = (owner + 1) << _OWNER_SHIFT
        if dirty:
            m |= _F_DIRTY
        if prefetched:
            m |= _F_PREFETCHED
        if is_pv:
            m |= _F_PV
        tags.append(tag)
        stamps.append(tick)
        meta.append(m)
        self.stats.fills += 1
        return victim

    def invalidate(self, addr: int) -> Optional[EvictedLine]:
        """Remove the block containing ``addr`` if resident; return its state."""
        bidx = addr >> self._bs_shift
        sidx = bidx & self._set_mask
        tags = self._tags[sidx]
        tag = bidx >> self._set_shift
        if tag not in tags:
            return None
        way = tags.index(tag)
        vmeta = self._meta[sidx][way]
        del tags[way]
        del self._stamps[sidx][way]
        del self._meta[sidx][way]
        self.stats.invalidations += 1
        return self._retire(sidx, tag, vmeta, invalidation=True)

    def _retire(self, sidx: int, tag: int, m: int, invalidation: bool = False) -> EvictedLine:
        """Count an eviction/invalidation and notify listeners.

        The way must already have been removed from the set arrays."""
        st = self.stats
        dirty = bool(m & _F_DIRTY)
        is_pv = bool(m & _F_PV)
        if not invalidation:
            st.evictions += 1
            if dirty:
                st.dirty_evictions += 1
            if is_pv:
                st.pv_evictions += 1
                if dirty:
                    st.pv_dirty_evictions += 1
        if m & _F_PREFETCHED:
            st.overpredictions += 1
        evicted = EvictedLine(
            block_addr=(tag * self._nsets + sidx) * self._bs,
            dirty=dirty,
            prefetched=bool(m & _F_PREFETCHED),
            is_pv=is_pv,
            owner=(m >> _OWNER_SHIFT) - 1,
        )
        for listener in self.eviction_listeners:
            listener(evicted)
        return evicted

    # -- introspection -------------------------------------------------------

    def warm_tables(self) -> tuple:
        """Flat, way-padded ``(tags, meta)`` lists for batch tag matching.

        The vectorized functional kernel (:mod:`repro.sim.batchkernel`)
        reshapes these into dense ``(n_sets, assoc)`` arrays: empty ways
        pad with tag ``-1`` (tags are non-negative, so the sentinel can
        never match) and meta ``0``.  A frozen copy of the array state —
        building it walks the live per-set lists exactly once.
        """
        assoc = self._assoc
        tag_pad = [-1] * assoc
        meta_pad = [0] * assoc
        flat_tags: List[int] = []
        flat_meta: List[int] = []
        for tags, meta in zip(self._tags, self._meta):
            k = len(tags)
            if k:
                flat_tags += tags
                flat_meta += meta
                if k < assoc:
                    flat_tags += tag_pad[k:]
                    flat_meta += meta_pad[k:]
            else:
                flat_tags += tag_pad
                flat_meta += meta_pad
        return flat_tags, flat_meta

    def resident_blocks(self) -> Iterator[int]:
        nsets = self._nsets
        bs = self._bs
        for sidx, tags in enumerate(self._tags):
            for tag in tags:
                yield (tag * nsets + sidx) * bs

    def occupancy(self) -> int:
        return sum(len(tags) for tags in self._tags)

    def pv_occupancy(self) -> int:
        return sum(
            1 for meta in self._meta for m in meta if m & _F_PV
        )

    def flush(self) -> list:
        """Evict every resident line (firing listeners); return the evictions.

        Lines leave each set in LRU order (oldest stamp first), matching the
        former ``popitem(last=False)`` drain order.
        """
        evicted = []
        for sidx in range(self._nsets):
            tags = self._tags[sidx]
            stamps = self._stamps[sidx]
            meta = self._meta[sidx]
            while tags:
                way = stamps.index(min(stamps))
                vtag = tags[way]
                vmeta = meta[way]
                del tags[way]
                del stamps[way]
                del meta[way]
                evicted.append(self._retire(sidx, vtag, vmeta))
        return evicted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        g = self.geometry
        return (
            f"Cache({self.name}, {g.size_bytes >> 10}KB, {g.assoc}-way, "
            f"{g.n_sets} sets, occ={self.occupancy()})"
        )
