"""Address arithmetic shared by every component of the simulator.

All addresses are plain integers denoting *physical* byte addresses.  The
helpers here convert between byte addresses, cache-block addresses, and
spatial-region coordinates (the 2KB regions SMS operates on), and carve
reserved chunks out of the physical address space for PVTables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

DEFAULT_BLOCK_SIZE = 64


def _check_power_of_two(value: int, what: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{what} must be a positive power of two, got {value}")


def block_index(addr: int, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
    """Return the block number containing byte address ``addr``."""
    return addr // block_size


def block_address(addr: int, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
    """Return the base byte address of the block containing ``addr``."""
    return addr - (addr % block_size)


def region_index(
    addr: int,
    blocks_per_region: int = 32,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> int:
    """Return the spatial-region number containing byte address ``addr``."""
    return addr // (blocks_per_region * block_size)


def region_base(
    addr: int,
    blocks_per_region: int = 32,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> int:
    """Return the base byte address of the spatial region containing ``addr``."""
    region_bytes = blocks_per_region * block_size
    return addr - (addr % region_bytes)


def block_offset_in_region(
    addr: int,
    blocks_per_region: int = 32,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> int:
    """Return the block offset (0..blocks_per_region-1) of ``addr`` in its region."""
    return (addr % (blocks_per_region * block_size)) // block_size


@dataclass
class AddressSpace:
    """Carves reserved, non-overlapping chunks out of physical memory.

    The paper reserves "a small chunk of the physical memory space" for each
    core's PVTable without declaring it to the OS (Section 2.1).  This class
    models that reservation: application data lives below ``reserved_floor``
    and reserved chunks are handed out from the top of memory downwards, so
    the two can never collide.
    """

    total_bytes: int = 3 * 1024**3  # 3 GB, Table 1
    block_size: int = DEFAULT_BLOCK_SIZE
    _next_reserved: int = field(init=False)
    _reservations: list = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        _check_power_of_two(self.block_size, "block_size")
        if self.total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self._next_reserved = self.total_bytes

    @property
    def reserved_floor(self) -> int:
        """Lowest byte address belonging to any reservation."""
        return self._next_reserved

    @property
    def reservations(self) -> list:
        """List of ``(start, size)`` tuples, most recent last."""
        return list(self._reservations)

    def reserve(self, size_bytes: int) -> int:
        """Reserve ``size_bytes`` (rounded up to a whole block) and return its start.

        Raises ``MemoryError`` if the reservation would exhaust physical memory.
        """
        if size_bytes <= 0:
            raise ValueError("reservation size must be positive")
        rounded = -(-size_bytes // self.block_size) * self.block_size
        start = self._next_reserved - rounded
        if start < 0:
            raise MemoryError(
                f"cannot reserve {rounded} bytes: only {self._next_reserved} left"
            )
        self._next_reserved = start
        self._reservations.append((start, rounded))
        return start

    def is_reserved(self, addr: int) -> bool:
        """True if ``addr`` falls inside any reservation."""
        return addr >= self._next_reserved

    def app_region(self) -> tuple:
        """Return ``(start, size)`` of the space left for application data."""
        return (0, self._next_reserved)
