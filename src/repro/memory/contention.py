"""Contention modeling knobs for the memory timing path.

The analytic timing model charges every request its isolated latency:
main memory answers in a constant 400 cycles no matter how many misses
are in flight, and the L2's banks (declared in Table 1, printed in the
config string) serve any number of requests per cycle.  That makes the
paper's central cost question — does PV's extra metadata traffic slow the
application down? — unanswerable in timing terms, because metadata traffic
can never displace demand traffic.

:class:`ContentionConfig` turns finite resources on, **opt-in**: with the
default (``enabled=False``) every latency computation is bit-identical to
the analytic model, so all existing goldens hold.  When enabled:

* **DRAM channels** — each off-chip read/write occupies one of
  ``dram_channels`` channels (selected by block-address interleaving) for
  ``dram_service_cycles``; a request arriving while its channel is busy
  queues behind it, deterministically (next-free-slot, program order);
* **L2 bank ports** — every L2 request (demand, prefetch *and* PV) claims
  its bank's port (``block // block_size mod l2_banks``) for
  ``l2_bank_busy_cycles``; conflicting requests wait;
* **MSHRs** — each core tracks in-flight L1 fills in a bounded
  :class:`~repro.memory.mshr.MSHRFile`: duplicate fills coalesce, a full
  file rejects further prefetches and stalls demand misses until a slot
  retires.

Everything is driven off the caller-supplied issue cycle (``now``), never
wall-clock or RNG state, so contended runs replay bit-identically — the
determinism discipline of stateless model checking applied to timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


def claim_backlog(
    backlog: List[float],
    drained_at: List[float],
    index: int,
    now: float,
    service_cycles: float,
) -> float:
    """Commit ``service_cycles`` of work on server ``index``; return the wait.

    The one queue discipline every contended resource (DRAM channel, L2
    bank port) shares: a server carries a backlog of committed-but-unserved
    cycles, drained by the time elapsed since it last saw a request; a new
    request waits out the remaining backlog, then commits its own service.
    Backlog accounting rather than an absolute next-free schedule, so the
    trace-driven model's approximate cross-core clock ordering can never be
    charged as queuing delay — only real committed work.
    """
    pending = backlog[index]
    elapsed = now - drained_at[index]
    if elapsed > 0:
        pending = pending - elapsed if pending > elapsed else 0.0
        drained_at[index] = now
    backlog[index] = pending + service_cycles
    return pending


@dataclass(frozen=True)
class ContentionConfig:
    """Finite-resource timing knobs (all ignored unless ``enabled``).

    ``dram_service_cycles`` is the channel occupancy of one 64-byte block
    transfer; with the Table 1 clock it corresponds to a handful of GB/s
    per channel.  ``l2_bank_busy_cycles`` is the per-request port busy
    time of one L2 bank.  ``mshr_entries`` bounds each core's in-flight
    L1 fills (demand misses and prefetches alike).
    """

    enabled: bool = False
    dram_channels: int = 2
    dram_service_cycles: int = 32
    l2_bank_busy_cycles: int = 2
    mshr_entries: int = 16

    def __post_init__(self) -> None:
        if self.dram_channels < 1:
            raise ValueError("dram_channels must be >= 1")
        if self.dram_service_cycles < 1:
            raise ValueError("dram_service_cycles must be >= 1")
        if self.l2_bank_busy_cycles < 1:
            raise ValueError("l2_bank_busy_cycles must be >= 1")
        if self.mshr_entries < 1:
            raise ValueError("mshr_entries must be >= 1")

    @classmethod
    def off(cls) -> "ContentionConfig":
        """The analytic model: infinite bandwidth, unbounded misses."""
        return cls(enabled=False)

    @classmethod
    def narrow(cls, dram_channels: int = 1, **kw) -> "ContentionConfig":
        """An enabled configuration with ``dram_channels`` channels."""
        return cls(enabled=True, dram_channels=dram_channels, **kw)
