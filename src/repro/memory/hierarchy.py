"""The simulated CMP memory hierarchy.

Models the evaluation platform of Table 1: per-core split L1 caches backed
by one shared, inclusive L2 and main memory.  Three request paths exist:

* ``access``        — demand loads/stores/ifetches from a core;
* ``prefetch_fill`` — SMS prefetches, streamed through the L2 into the L1;
* ``pv_access``     — PVProxy metadata requests, injected "on the backside
  of the L1" (Section 2.2): they look exactly like L1 miss traffic to the
  L2, which stays oblivious to their meaning.

Inclusivity is enforced the way Piranha-style designs do: an L2 eviction
back-invalidates every L1 copy.  Those invalidations are visible to the SMS
active-generation tables through the L1 eviction listeners, which is exactly
the event that ends a spatial-region generation in the paper.

Timing comes in two flavors.  The default analytic model charges each
request its isolated latency.  When the config's
:class:`~repro.memory.contention.ContentionConfig` is enabled and callers
supply their issue cycle (``now``), the hierarchy additionally arbitrates
the L2's banked ports — demand, prefetch and PV requests all claim the
target bank (block-address hash) for a busy window and queue behind each
other — and passes ``now`` to the finite-bandwidth DRAM channel model, so
latency = raw path latency + queuing delay.  The queuing component of the
most recent request is exposed as :attr:`MemorySystem.last_queue_delay`
so cores can charge it distinctly from raw latency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.memory.cache import AccessKind, Cache, CacheGeometry, EvictedLine
from repro.memory.contention import ContentionConfig, claim_backlog
from repro.memory.main_memory import MainMemory


class ServedBy(enum.Enum):
    """Which level ultimately supplied the data for a request."""

    L1 = "l1"
    L2 = "l2"
    MEM = "mem"


# Hoisted enum members for the per-reference demand path.
_K_DEMAND_READ = AccessKind.DEMAND_READ
_K_DEMAND_WRITE = AccessKind.DEMAND_WRITE
_K_IFETCH = AccessKind.IFETCH


@dataclass
class HierarchyConfig:
    """Geometry and latency knobs for the whole hierarchy (defaults: Table 1)."""

    n_cores: int = 4
    block_size: int = 64
    l1i_size: int = 64 * 1024
    l1i_assoc: int = 4
    l1d_size: int = 64 * 1024
    l1d_assoc: int = 4
    l1_latency: int = 2
    l2_size: int = 8 * 1024 * 1024
    l2_assoc: int = 16
    #: Number of independently-ported L2 banks (Table 1: 8).  A request's
    #: bank is its block address modulo ``l2_banks``.  Bank conflicts cost
    #: cycles only when ``contention`` is enabled; otherwise the figure is
    #: documentation (and part of the printed Table 1 config string).
    l2_banks: int = 8
    l2_tag_latency: int = 6
    l2_data_latency: int = 12
    memory_latency: int = 400
    # Design option from Section 2.2: when True, dirty PV lines evicted from
    # the L2 are dropped instead of written back off-chip ("virtualization
    # aware caches").  The paper's evaluated design leaves this False.
    pv_aware_caches: bool = False
    #: Finite-bandwidth/finite-port timing (off by default: analytic model).
    contention: ContentionConfig = field(default_factory=ContentionConfig)

    def l1d_geometry(self) -> CacheGeometry:
        return CacheGeometry(self.l1d_size, self.l1d_assoc, self.block_size)

    def l1i_geometry(self) -> CacheGeometry:
        return CacheGeometry(self.l1i_size, self.l1i_assoc, self.block_size)

    def l2_geometry(self) -> CacheGeometry:
        return CacheGeometry(self.l2_size, self.l2_assoc, self.block_size)


@dataclass
class HierarchyStats:
    """Counters the per-figure analyses read off the hierarchy."""

    l1_writebacks: int = 0
    l2_writebacks: int = 0
    l2_pv_writebacks: int = 0
    pv_dirty_dropped: int = 0
    back_invalidations: int = 0
    # Inter-L1 coherence activity (invalidation-based protocol, as in the
    # Piranha-style CMP the paper simulates).
    coherence_invalidations: int = 0
    coherence_downgrades: int = 0
    write_upgrades: int = 0
    # L2 bank-port arbitration (contention mode only).
    bank_conflicts: int = 0
    bank_conflict_cycles: float = 0.0

    @property
    def l2_app_writebacks(self) -> int:
        return self.l2_writebacks - self.l2_pv_writebacks


class MemorySystem:
    """Per-core L1s, shared inclusive L2, main memory, and the PV port."""

    def __init__(self, config: Optional[HierarchyConfig] = None) -> None:
        self.config = config or HierarchyConfig()
        cfg = self.config
        self.l1d: List[Cache] = [
            Cache(f"l1d{i}", cfg.l1d_geometry()) for i in range(cfg.n_cores)
        ]
        self.l1i: List[Cache] = [
            Cache(f"l1i{i}", cfg.l1i_geometry()) for i in range(cfg.n_cores)
        ]
        self.l2 = Cache("l2", cfg.l2_geometry())
        contention = cfg.contention
        self._contended = contention.enabled
        self.memory = MainMemory(
            latency=cfg.memory_latency,
            block_size=cfg.block_size,
            channels=contention.dram_channels if self._contended else 0,
            service_cycles=contention.dram_service_cycles,
        )
        self.stats = HierarchyStats()
        # Per-bank port backlog (committed-but-unserved cycles) and the
        # clock it was last drained at (contention mode).  Backlog, not an
        # absolute next-free schedule, so approximate cross-core clock
        # ordering can never be charged as conflict delay.
        self._bank_backlog: List[float] = [0.0] * cfg.l2_banks
        self._bank_drained_at: List[float] = [0.0] * cfg.l2_banks
        self._bank_busy = contention.l2_bank_busy_cycles
        #: Queuing-delay component (bank conflicts + DRAM channel waits) of
        #: the most recent timed request; 0.0 in the analytic model.
        self.last_queue_delay: float = 0.0
        #: Issue cycle of the request currently being serviced, so that
        #: internal write-backs it triggers contend for DRAM bandwidth too.
        self._now: Optional[float] = None
        # Called with (EvictedLine,) whenever a PV line leaves the L2; the
        # PVStorage uses this to commit or drop the backing data.
        self.pv_eviction_listeners: List[Callable[[EvictedLine], None]] = []
        # block address -> bitmask of L1 copies (bit i: l1d[i]; bit
        # n_cores+i: l1i[i]).  A duplicate directory that makes inclusive
        # back-invalidation O(copies) instead of probing every L1.
        self._l1_presence: dict = {}
        # Write watchers for software-visible predictors (Section 2.3):
        # (start, end, callback) triples; demand writes landing inside a
        # watched range invoke the callback so PVCaches stay coherent.
        self._pv_write_watchers: List[tuple] = []

    # ------------------------------------------------------------------ utils

    def _block(self, addr: int) -> int:
        return addr - (addr % self.config.block_size)

    def l1_for(self, core: int, ifetch: bool = False) -> Cache:
        return self.l1i[core] if ifetch else self.l1d[core]

    def _claim_bank(self, block: int, now: float) -> float:
        """Arbitrate ``block``'s L2 bank port at ``now``; return the wait."""
        bank = (block // self.config.block_size) % len(self._bank_backlog)
        wait = claim_backlog(
            self._bank_backlog, self._bank_drained_at, bank, now,
            self._bank_busy,
        )
        if wait > 0:
            self.stats.bank_conflicts += 1
            self.stats.bank_conflict_cycles += wait
        return wait

    # --------------------------------------------------------------- demand

    def access(
        self,
        core: int,
        addr: int,
        write: bool = False,
        ifetch: bool = False,
        now: Optional[float] = None,
        block: Optional[int] = None,
    ) -> Tuple[int, ServedBy]:
        """Perform a demand reference for ``core``; return (latency, server).

        Inter-L1 coherence is invalidation-based: a write invalidates every
        other L1 copy (merging a dirty remote copy into the L2 first), and
        a read that finds a remote dirty copy downgrades it to the L2.  The
        presence directory makes both O(copies).

        ``now`` is the core's issue cycle; it only matters in contention
        mode, where the L2 banks and DRAM channels queue the request.
        ``block`` lets callers that already computed the block address pass
        it down instead of recomputing it.
        """
        cfg = self.config
        if ifetch:
            l1 = self.l1i[core]
            kind = _K_IFETCH
            bit = core + cfg.n_cores
        else:
            l1 = self.l1d[core]
            kind = _K_DEMAND_WRITE if write else _K_DEMAND_READ
            bit = core
        if block is None:
            block = addr - (addr % cfg.block_size)
        self.last_queue_delay = 0.0
        if write and self._pv_write_watchers:
            for start, end, callback in self._pv_write_watchers:
                if start <= block < end:
                    callback(block)
        if l1.access_hit(addr, kind, write):
            if write and self._l1_presence.get(block, 0) & ~(1 << bit):
                # Write hit with remote sharers: upgrade, invalidate others.
                self.stats.write_upgrades += 1
                self._coherence_invalidate(block, keep_bit=bit)
            return cfg.l1_latency, ServedBy.L1
        remote = self._l1_presence.get(block, 0) & ~(1 << bit)
        if remote:
            if write:
                self._coherence_invalidate(block, keep_bit=bit)
            else:
                self._coherence_downgrade(block)
        self._now = now
        latency, served = self._fetch_into_l2(addr, kind, core, block, now)
        self._install_l1(l1, addr, core, dirty=write, prefetched=False,
                         bit=bit, block=block)
        self._now = None
        return cfg.l1_latency + latency, served

    def warm_miss(self, core: int, addr: int, write: bool = False,
                  ifetch: bool = False) -> None:
        """Complete a demand reference that already missed in its L1.

        The functional-warming half of :meth:`access` for the two-speed
        sampled simulator: the caller performed ``access_hit`` on the
        right L1 (which recorded the miss), and this finishes the state
        transition — coherence actions, the L2 lookup/fill, the memory
        read on an L2 miss, and the L1 install — with no timing whatsoever
        (no issue cycles, so neither bank ports nor DRAM channels queue
        anything).  State and counters evolve exactly as an untimed
        :meth:`access` miss would leave them.
        """
        cfg = self.config
        if ifetch:
            l1 = self.l1i[core]
            kind = _K_IFETCH
            bit = core + cfg.n_cores
        else:
            l1 = self.l1d[core]
            kind = _K_DEMAND_WRITE if write else _K_DEMAND_READ
            bit = core
        block = addr - (addr % cfg.block_size)
        remote = self._l1_presence.get(block, 0) & ~(1 << bit)
        if remote:
            if write:
                self._coherence_invalidate(block, keep_bit=bit)
            else:
                self._coherence_downgrade(block)
        if not self.l2.access_hit(addr, kind):
            self.memory.read(block, is_pv=False, now=None)
            self._install_l2(addr, core, dirty=False, is_pv=False)
        self._install_l1(l1, addr, core, dirty=write,
                         prefetched=False, bit=bit, block=block)

    # ----------------------------------------------------------- coherence

    def _cache_for_bit(self, bit: int) -> Cache:
        n_cores = self.config.n_cores
        return self.l1d[bit] if bit < n_cores else self.l1i[bit - n_cores]

    def _coherence_invalidate(self, block: int, keep_bit: int) -> None:
        """Invalidate every L1 copy of ``block`` except ``keep_bit``'s.

        A dirty remote copy is newer than the L2's, so it is merged into
        the L2 on the way out (dirty handoff).  These invalidations end SMS
        generations exactly as the paper describes ("removed from the
        cache by replacement or invalidation").
        """
        mask = self._l1_presence.get(block, 0)
        remaining = mask & (1 << keep_bit)
        victims = mask & ~(1 << keep_bit)
        bit = 0
        while victims:
            if victims & 1:
                inv = self._cache_for_bit(bit).invalidate(block)
                if inv is not None:
                    self.stats.coherence_invalidations += 1
                    if inv.dirty:
                        hit = self.l2.access_hit(block, AccessKind.WRITEBACK, write=True)
                        if not hit:  # pragma: no cover - eviction race
                            self.stats.l2_writebacks += 1
                            self.memory.write(block, is_pv=False, now=self._now)
            victims >>= 1
            bit += 1
        if remaining:
            self._l1_presence[block] = remaining
        else:
            self._l1_presence.pop(block, None)

    def _coherence_downgrade(self, block: int) -> None:
        """A remote dirty copy must reach the L2 before a new reader fills."""
        mask = self._l1_presence.get(block, 0)
        bit = 0
        while mask:
            if mask & 1:
                if self._cache_for_bit(bit).downgrade(block):
                    self.stats.coherence_downgrades += 1
                    hit = self.l2.access_hit(block, AccessKind.WRITEBACK, write=True)
                    if not hit:  # pragma: no cover - eviction race
                        self.stats.l2_writebacks += 1
                        self.memory.write(block, is_pv=False, now=self._now)
            mask >>= 1
            bit += 1

    # -------------------------------------------------------------- prefetch

    def prefetch_fill(
        self, core: int, addr: int, now: Optional[float] = None,
        block: Optional[int] = None,
    ) -> Tuple[int, Optional[ServedBy]]:
        """Stream a prefetched block via the L2 into ``core``'s L1D.

        Returns ``(latency, served_by)``; ``served_by`` is ``None`` when the
        block was already resident in the L1 and no request was issued.
        ``block`` lets callers that already hold the block address (the
        prefetchers predict whole blocks) skip the re-derivation.
        """
        cfg = self.config
        l1 = self.l1d[core]
        if l1.contains(addr):
            return 0, None
        if block is None:
            block = addr - (addr % cfg.block_size)
        self.last_queue_delay = 0.0
        self._now = now
        latency, served = self._fetch_into_l2(addr, AccessKind.PREFETCH, core,
                                              block, now)
        self._install_l1(l1, addr, core, dirty=False, prefetched=True,
                         bit=core, block=block)
        self._now = None
        return cfg.l1_latency + latency, served

    def prefetch_fill_ifetch(
        self, core: int, addr: int, now: Optional[float] = None,
        block: Optional[int] = None,
    ) -> Tuple[int, Optional[ServedBy]]:
        """Next-line instruction prefetch into ``core``'s L1I (baseline)."""
        cfg = self.config
        l1 = self.l1i[core]
        if l1.contains(addr):
            return 0, None
        if block is None:
            block = addr - (addr % cfg.block_size)
        self.last_queue_delay = 0.0
        self._now = now
        latency, served = self._fetch_into_l2(addr, AccessKind.PREFETCH, core,
                                              block, now)
        self._install_l1(l1, addr, core, dirty=False, prefetched=True,
                         bit=core + cfg.n_cores, block=block)
        self._now = None
        return cfg.l1_latency + latency, served

    # -------------------------------------------------------------- PV port

    def pv_access(
        self, core: int, addr: int, write: bool = False,
        now: Optional[float] = None, block: Optional[int] = None,
    ) -> Tuple[int, ServedBy]:
        """PVProxy request, injected directly at the L2 (no L1 involvement).

        Reads fetch a PVTable block into the L2 (from memory on a miss);
        writes deposit a dirty PV block into the L2, to be written back
        off-chip only if it is eventually evicted dirty.  In contention
        mode PV requests claim L2 bank ports and DRAM channels like any
        other traffic — this is where virtualization pays a modeled price.
        """
        cfg = self.config
        self.last_queue_delay = 0.0
        if block is None:
            block = addr - (addr % cfg.block_size)
        timed = self._contended and now is not None
        wait = 0.0
        if timed:
            wait = self._claim_bank(block, now)
            self.last_queue_delay = wait
        if self.l2.access_pv(addr, write=write):
            latency = cfg.l2_tag_latency + cfg.l2_data_latency
            return (wait + latency) if timed else latency, ServedBy.L2
        self._now = now
        mem_now = now + wait + cfg.l2_tag_latency if timed else None
        mem_latency = self.memory.read(block, is_pv=True, now=mem_now)
        if timed:
            self.last_queue_delay = wait + self.memory.last_queue_delay
        self._install_l2(addr, core, dirty=write, is_pv=True)
        self._now = None
        latency = cfg.l2_tag_latency + mem_latency
        return (wait + latency) if timed else latency, ServedBy.MEM

    # ------------------------------------------------------------ internals

    def _fetch_into_l2(
        self,
        addr: int,
        kind: AccessKind,
        core: int,
        block: Optional[int] = None,
        now: Optional[float] = None,
    ) -> Tuple[int, ServedBy]:
        """Look ``addr`` up in the L2, filling from memory on a miss."""
        cfg = self.config
        if block is None:
            block = addr - (addr % cfg.block_size)
        timed = self._contended and now is not None
        wait = 0.0
        if timed:
            wait = self._claim_bank(block, now)
            self.last_queue_delay += wait
        if self.l2.access_hit(addr, kind):
            latency = cfg.l2_tag_latency + cfg.l2_data_latency
            return (wait + latency) if timed else latency, ServedBy.L2
        mem_now = now + wait + cfg.l2_tag_latency if timed else None
        mem_latency = self.memory.read(block, is_pv=False, now=mem_now)
        if timed:
            self.last_queue_delay += self.memory.last_queue_delay
        self._install_l2(addr, core, dirty=False, is_pv=False)
        latency = cfg.l2_tag_latency + mem_latency
        return (wait + latency) if timed else latency, ServedBy.MEM

    def _install_l2(self, addr: int, core: int, dirty: bool, is_pv: bool) -> None:
        victim = self.l2.fill(addr, dirty=dirty, is_pv=is_pv, owner=core)
        if victim is not None:
            self._handle_l2_eviction(victim)

    def _handle_l2_eviction(self, victim: EvictedLine) -> None:
        """Enforce inclusivity and route the victim's data off-chip."""
        dirty = victim.dirty
        if not victim.is_pv:
            # Back-invalidate every L1 copy; a dirty L1 copy is newer than
            # the L2's, so it merges into the outbound write.  The presence
            # directory tells us exactly which L1s hold a copy.
            mask = self._l1_presence.pop(victim.block_addr, 0)
            n_cores = self.config.n_cores
            bit = 0
            while mask:
                if mask & 1:
                    l1 = self.l1d[bit] if bit < n_cores else self.l1i[bit - n_cores]
                    inv = l1.invalidate(victim.block_addr)
                    if inv is not None:
                        self.stats.back_invalidations += 1
                        dirty = dirty or inv.dirty
                mask >>= 1
                bit += 1
        if victim.is_pv:
            for listener in self.pv_eviction_listeners:
                listener(victim)
            if dirty and self.config.pv_aware_caches:
                # Design option (Section 2.2): drop the block; predictor
                # state is advisory, so losing it affects only effectiveness.
                self.stats.pv_dirty_dropped += 1
                return
        if dirty:
            self.stats.l2_writebacks += 1
            if victim.is_pv:
                self.stats.l2_pv_writebacks += 1
            self.memory.write(victim.block_addr, is_pv=victim.is_pv, now=self._now)

    def _install_l1(
        self,
        l1: Cache,
        addr: int,
        core: int,
        dirty: bool,
        prefetched: bool,
        bit: int,
        block: Optional[int] = None,
    ) -> None:
        victim = l1.fill(
            addr, dirty=dirty, prefetched=prefetched, is_pv=False, owner=core
        )
        presence = self._l1_presence
        if block is None:
            block = addr - (addr % self.config.block_size)
        presence[block] = presence.get(block, 0) | (1 << bit)
        if victim is not None:
            vmask = presence.get(victim.block_addr, 0) & ~(1 << bit)
            if vmask:
                presence[victim.block_addr] = vmask
            else:
                presence.pop(victim.block_addr, None)
            if victim.dirty:
                self.stats.l1_writebacks += 1
                # Write-back into the inclusive L2.  The copy is normally
                # still resident; if a race with back-invalidation removed
                # it, the write goes straight off-chip.
                hit = self.l2.access_hit(
                    victim.block_addr, AccessKind.WRITEBACK, write=True
                )
                if not hit:
                    self.stats.l2_writebacks += 1
                    self.memory.write(victim.block_addr, is_pv=False, now=self._now)

    def watch_pv_writes(self, start: int, size: int, callback) -> None:
        """Invoke ``callback(block_addr)`` on demand writes in [start, start+size).

        The hook that keeps a PVCache coherent with application stores to
        its in-memory table (Section 2.3: "The PVCache needs to be coherent
        for guaranteed delivery of these updates").
        """
        self._pv_write_watchers.append((start, start + size, callback))

    def drain_l2(self) -> int:
        """Evict every L2 line through the normal eviction path.

        Dirty lines (application and PV alike) are written back off-chip and
        L1 copies are back-invalidated — the hardware equivalent of the
        cache flush a hypervisor performs before a live VM migration
        (Section 2.3).  Returns the number of lines drained.
        """
        evicted = self.l2.flush()
        for victim in evicted:
            self._handle_l2_eviction(victim)
        return len(evicted)

    # ------------------------------------------------------------- metrics

    def l2_requests(self) -> int:
        """Total requests arriving at the L2 (demand fills, prefetches, PV)."""
        s = self.l2.stats
        return (
            s.demand_read_accesses
            + s.demand_write_hits + s.demand_write_misses
            + s.ifetch_hits + s.ifetch_misses
            + s.prefetch_hits + s.prefetch_misses
            + s.pv_hits + s.pv_misses
        )

    def l2_pv_requests(self) -> int:
        s = self.l2.stats
        return s.pv_hits + s.pv_misses

    def pv_l2_fill_rate(self) -> float:
        """Fraction of PVProxy requests served on-chip (paper reports >98%)."""
        s = self.l2.stats
        total = s.pv_hits + s.pv_misses
        return s.pv_hits / total if total else 1.0

    def offchip_transfers(self) -> dict:
        """Off-chip traffic split by direction and payload (Figures 7/8/10)."""
        mem = self.memory
        return {
            "reads": mem.reads,
            "writes": mem.writes,
            "app_reads": mem.app_reads,
            "app_writes": mem.app_writes,
            "pv_reads": mem.pv_reads,
            "pv_writes": mem.pv_writes,
            "total": mem.total_transfers,
        }
