"""Memory-hierarchy substrate: caches, MSHRs, main memory, and the CMP hierarchy.

This package implements the memory system the paper's evaluation platform
(Flexus, Piranha-style CMP) provides: per-core L1 instruction and data
caches, a shared inclusive L2, and main memory — fixed-latency by
default, with opt-in finite-bandwidth/finite-port contention modeling
(see :mod:`repro.memory.contention`).  The hierarchy exposes the one
extension Predictor Virtualization requires: a port on the back side of
the L1 through which the PVProxy can inject ordinary memory requests
(see ``MemorySystem.pv_access``).
"""

from repro.memory.addr import (
    AddressSpace,
    block_address,
    block_index,
    block_offset_in_region,
    region_base,
    region_index,
)
from repro.memory.cache import AccessKind, Cache, CacheGeometry, CacheLine, EvictedLine
from repro.memory.contention import ContentionConfig
from repro.memory.hierarchy import HierarchyConfig, MemorySystem, ServedBy
from repro.memory.main_memory import MainMemory
from repro.memory.mshr import MSHRFile, MSHREntry

__all__ = [
    "AccessKind",
    "AddressSpace",
    "Cache",
    "CacheGeometry",
    "CacheLine",
    "ContentionConfig",
    "EvictedLine",
    "HierarchyConfig",
    "MSHREntry",
    "MSHRFile",
    "MainMemory",
    "MemorySystem",
    "ServedBy",
    "block_address",
    "block_index",
    "block_offset_in_region",
    "region_base",
    "region_index",
]
