"""Cached experiment runner shared by the figure drivers and benches.

Every figure compares several configurations of the *same* workload; many
figures share configurations (e.g. the SMS-1K dedicated run is the
reference for Figures 6, 7, 8 and a bar in Figures 4 and 9).  The runner
memoizes :class:`SimResult` by a full specification key so each simulation
happens once per process.

Scale: the paper simulates billions of cycles; a pure-Python reproduction
cannot.  :class:`ExperimentScale` sets the trace length and warmup.  The
default is sized for the bench suite; set the ``REPRO_REFS`` /
``REPRO_WARMUP`` environment variables to run longer studies (shapes are
stable across scales; EXPERIMENTS.md records the scale used).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.sim.config import PrefetcherConfig, SystemConfig
from repro.sim.metrics import SimResult
from repro.sim.simulator import CMPSimulator
from repro.workloads.registry import get_workload


@dataclass(frozen=True)
class ExperimentScale:
    """How much work each simulation does."""

    refs_per_core: int = 16_000
    warmup_refs: int = 20_000
    window_refs: int = 1_600

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        """Default scale, overridable via REPRO_REFS / REPRO_WARMUP."""
        refs = int(os.environ.get("REPRO_REFS", "16000"))
        warmup = int(os.environ.get("REPRO_WARMUP", str(max(refs * 5 // 4, 1))))
        window = max(refs // 10, 1)
        return cls(refs_per_core=refs, warmup_refs=warmup, window_refs=window)


_CACHE: Dict[Tuple, SimResult] = {}


def clear_cache() -> None:
    _CACHE.clear()


def run_experiment(
    workload: str,
    prefetcher: PrefetcherConfig,
    scale: Optional[ExperimentScale] = None,
    l2_size: Optional[int] = None,
    l2_tag_latency: Optional[int] = None,
    l2_data_latency: Optional[int] = None,
    pv_aware: bool = False,
    seed: int = 1,
    use_cache: bool = True,
) -> SimResult:
    """Run (or fetch from cache) one simulation.

    ``l2_size``/``l2_*_latency`` support the Section 4.5 sensitivity
    studies; ``pv_aware`` enables the virtualization-aware-cache design
    option ablation.
    """
    scale = scale or ExperimentScale.from_env()
    key = (
        workload,
        prefetcher,
        scale,
        l2_size,
        l2_tag_latency,
        l2_data_latency,
        pv_aware,
        seed,
    )
    if use_cache and key in _CACHE:
        return _CACHE[key]

    system = SystemConfig.baseline()
    if l2_size is not None or l2_tag_latency is not None or l2_data_latency is not None:
        system = system.with_l2(
            size_bytes=l2_size,
            tag_latency=l2_tag_latency,
            data_latency=l2_data_latency,
        )
    if pv_aware:
        from dataclasses import replace

        system = replace(system, hierarchy=replace(system.hierarchy, pv_aware_caches=True))

    simulator = CMPSimulator(
        get_workload(workload), prefetcher, system=system, seed=seed
    )
    result = simulator.run(
        scale.refs_per_core,
        warmup_refs=scale.warmup_refs,
        window_refs=scale.window_refs,
    )
    if use_cache:
        _CACHE[key] = result
    return result
