"""Cached experiment runner shared by the figure drivers and benches.

Every figure compares several configurations of the *same* workload; many
figures share configurations (e.g. the SMS-1K dedicated run is the
reference for Figures 6, 7, 8 and a bar in Figures 4 and 9).  The runner
memoizes :class:`SimResult` by the :class:`ExperimentSpec` content hash so
each simulation happens once per process — and, when a persistent
:class:`~repro.runner.store.ResultStore` is routed in (``--store`` /
``REPRO_STORE``), once per machine.

``run_experiment`` is a thin wrapper: it builds the spec and resolves it
through the same cache the :class:`~repro.runner.sweep.SweepRunner` merges
into, so a sweep warm-up turns every subsequent ``run_experiment`` call
into a cache hit.  ``clear_cache`` empties that one cache regardless of
which path populated it.

Scale: the paper simulates billions of cycles; a pure-Python reproduction
cannot.  :class:`ExperimentScale` sets the trace length and warmup.  The
default is sized for the bench suite; set the ``REPRO_REFS`` /
``REPRO_WARMUP`` environment variables to run longer studies (shapes are
stable across scales; EXPERIMENTS.md records the scale used).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.runner.spec import ExperimentScale, ExperimentSpec
from repro.sim.config import PrefetcherConfig
from repro.sim.metrics import SimResult

__all__ = [
    "ExperimentScale",
    "ExperimentSpec",
    "cache_get",
    "cache_put",
    "cache_size",
    "clear_cache",
    "run_experiment",
    "run_spec",
]

#: In-process result cache, keyed by ExperimentSpec.key.  The sweep runner
#: and the store path merge into this same dict, so ``clear_cache`` always
#: empties everything regardless of how a result arrived.
_CACHE: Dict[str, SimResult] = {}


def clear_cache() -> None:
    _CACHE.clear()


def cache_get(key: str) -> Optional[SimResult]:
    """The cached result for a spec key, if any."""
    return _CACHE.get(key)


def cache_put(key: str, result: SimResult) -> None:
    """Merge one resolved result into the in-process cache."""
    _CACHE[key] = result


def cache_size() -> int:
    return len(_CACHE)


def run_spec(
    spec: ExperimentSpec,
    use_cache: bool = True,
    store=None,
) -> SimResult:
    """Resolve one spec: cache, then store (if given), then simulate."""
    if use_cache:
        hit = _CACHE.get(spec.key)
        if hit is not None:
            return hit
    if store is not None:
        result = store.load_or_compute(spec)
    else:
        result = spec.execute()
    if use_cache:
        _CACHE[spec.key] = result
    return result


def run_experiment(
    workload: str,
    prefetcher: PrefetcherConfig,
    scale: Optional[ExperimentScale] = None,
    l2_size: Optional[int] = None,
    l2_tag_latency: Optional[int] = None,
    l2_data_latency: Optional[int] = None,
    pv_aware: bool = False,
    seed: int = 1,
    contention=None,
    sampling=None,
    use_cache: bool = True,
    store=None,
) -> SimResult:
    """Run (or fetch from cache/store) one simulation.

    ``l2_size``/``l2_*_latency`` support the Section 4.5 sensitivity
    studies; ``pv_aware`` enables the virtualization-aware-cache design
    option ablation; ``contention`` (a
    :class:`~repro.memory.contention.ContentionConfig`) switches on the
    finite-bandwidth timing model for the bandwidth-sensitivity sweeps;
    ``sampling`` (a :class:`~repro.sim.sampling.SamplingConfig`) runs the
    two-speed sampled engine instead of full detail.
    """
    spec = ExperimentSpec.build(
        workload,
        prefetcher,
        scale=scale,
        l2_size=l2_size,
        l2_tag_latency=l2_tag_latency,
        l2_data_latency=l2_data_latency,
        pv_aware=pv_aware,
        seed=seed,
        contention=contention,
        sampling=sampling,
    )
    return run_spec(spec, use_cache=use_cache, store=store)
