"""Simulation results and the derived metrics the figures plot.

A :class:`SimResult` is a plain snapshot of every counter one simulation
produced.  Derived quantities mirror the paper's definitions:

* **coverage** (Figure 4/5): covered misses / (covered + uncovered), where a
  covered miss is a demand read that found a block only resident because a
  prefetch brought it, and uncovered misses are the demand read misses that
  still occurred;
* **overprediction rate**: prefetched blocks evicted or invalidated before
  first use, as a fraction of the same denominator (the stacked bars above
  100% in Figure 4);
* **L2 request increase** (Figure 6) and **off-chip increases** (Figures
  7/8/10): deltas relative to the matching non-virtualized run;
* **aggregate IPC / speedup** (Figure 9/11): committed user instructions
  summed over cores divided by elapsed cycles, paper Section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SimResult:
    """Everything one simulation run measured."""

    workload: str
    config_label: str
    n_cores: int
    refs: int

    # Coverage accounting (L1D, demand reads).
    covered: int = 0
    uncovered: int = 0
    overpredictions: int = 0
    l1d_read_accesses: int = 0

    # Traffic.
    l2_requests: int = 0
    l2_pv_requests: int = 0
    l2_misses: int = 0
    l2_pv_misses: int = 0
    l2_writebacks: int = 0
    l2_pv_writebacks: int = 0
    offchip_reads: int = 0
    offchip_writes: int = 0
    offchip_pv_reads: int = 0
    offchip_pv_writes: int = 0
    pv_l2_fill_rate: float = 1.0

    # Prefetcher / predictor activity.
    prefetches_issued: int = 0
    predictions: int = 0
    trigger_lookups: int = 0
    patterns_stored: int = 0
    pvcache_hit_rate: float = 0.0
    pv_dropped: int = 0
    pv_pattern_buffer_peak: int = 0
    late_prefetches: int = 0

    # Additional predictor engines (Section 6 generality study): raw
    # counters and derived rates per engine kind, summed over cores —
    # e.g. ``{"btb": {"lookups": ..., "hit_rate": ...}}``.
    engine_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    # Contention accounting (ContentionConfig; all zero when the analytic
    # model is active, so legacy results deserialize with these defaults).
    dram_utilization: float = 0.0
    dram_busy_cycles: int = 0
    dram_queue_cycles: float = 0.0
    dram_queued_requests: int = 0
    bank_conflicts: int = 0
    bank_conflict_cycles: float = 0.0
    queue_stall_cycles: float = 0.0
    mshr_allocations: int = 0
    mshr_coalesced: int = 0
    mshr_rejected: int = 0
    mshr_peak_occupancy: int = 0
    mshr_stall_cycles: float = 0.0
    mshr_demand_stalls: int = 0

    # Timing.
    instructions: int = 0
    elapsed_cycles: float = 0.0
    per_core_cycles: List[float] = field(default_factory=list)
    window_ipcs: List[float] = field(default_factory=list)

    # Two-speed sampled execution (all zero for a full-detail run).  The
    # per-core reference counts record how the run spent its trace:
    # ``refs == sampled_detail_refs + sampled_warm_refs +
    # sampled_functional_refs + sampled_skipped_refs`` when sampled.
    sampled_periods: int = 0
    sampled_detail_refs: int = 0
    sampled_warm_refs: int = 0
    sampled_functional_refs: int = 0
    sampled_skipped_refs: int = 0

    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------ coverage

    @property
    def baseline_read_misses(self) -> int:
        """Demand read misses the baseline would suffer (covered + uncovered)."""
        return self.covered + self.uncovered

    @property
    def coverage(self) -> float:
        """Fraction of L1 read misses the prefetcher eliminated."""
        denom = self.baseline_read_misses
        return self.covered / denom if denom else 0.0

    @property
    def uncovered_fraction(self) -> float:
        denom = self.baseline_read_misses
        return self.uncovered / denom if denom else 1.0

    @property
    def overprediction_rate(self) -> float:
        """Overpredicted blocks relative to baseline read misses."""
        denom = self.baseline_read_misses
        return self.overpredictions / denom if denom else 0.0

    # -------------------------------------------------------------- timing

    @property
    def aggregate_ipc(self) -> float:
        """Committed instructions / elapsed cycles over the *timed* spans.

        For a full-detail run that is every reference; for a sampled run it
        is the SMARTS estimate accumulated over the detailed warm-up and
        measurement windows (fast-forwarded references advance no clocks).
        """
        if self.elapsed_cycles <= 0:
            return 0.0
        return self.instructions / self.elapsed_cycles

    @property
    def is_sampled(self) -> bool:
        return self.sampled_periods > 0

    def ipc_ci(self, confidence: float = 0.95):
        """Batch-means confidence interval over the per-window IPC samples.

        Returns a :class:`~repro.sim.sampling.SampleStats`; raises
        ``ValueError`` when the run recorded no windows.
        """
        from repro.sim.sampling import confidence_interval

        return confidence_interval(self.window_ipcs, confidence)

    def speedup_vs(self, baseline: "SimResult") -> float:
        """Relative speedup over ``baseline`` (same workload, same refs)."""
        if baseline.aggregate_ipc <= 0:
            raise ValueError("baseline made no progress")
        return self.aggregate_ipc / baseline.aggregate_ipc - 1.0

    # ------------------------------------------------------------- traffic

    @property
    def offchip_transfers(self) -> int:
        return self.offchip_reads + self.offchip_writes

    def l2_request_increase(self, reference: "SimResult") -> float:
        """Figure 6: relative increase in L2 requests vs ``reference``."""
        if reference.l2_requests <= 0:
            raise ValueError("reference saw no L2 requests")
        return self.l2_requests / reference.l2_requests - 1.0

    def offchip_increase(self, reference: "SimResult") -> Dict[str, float]:
        """Figures 7/10: off-chip bandwidth increase split by direction.

        Each component is normalized by the reference's *total* off-chip
        transfers, so the two components add up to the total increase, the
        way the paper's stacked bars do.
        """
        base_total = reference.offchip_transfers
        if base_total <= 0:
            raise ValueError("reference had no off-chip traffic")
        return {
            "misses": (self.offchip_reads - reference.offchip_reads) / base_total,
            "writebacks": (self.offchip_writes - reference.offchip_writes) / base_total,
            "total": (self.offchip_transfers - base_total) / base_total,
        }

    def offchip_split_increase(self, reference: "SimResult") -> Dict[str, float]:
        """Figure 8: the same increase split into application vs PV data."""
        base_total = reference.offchip_transfers
        if base_total <= 0:
            raise ValueError("reference had no off-chip traffic")
        app_reads = self.offchip_reads - self.offchip_pv_reads
        app_writes = self.offchip_writes - self.offchip_pv_writes
        ref_app_reads = reference.offchip_reads - reference.offchip_pv_reads
        ref_app_writes = reference.offchip_writes - reference.offchip_pv_writes
        return {
            "miss_app": (app_reads - ref_app_reads) / base_total,
            "miss_pv": (self.offchip_pv_reads - reference.offchip_pv_reads) / base_total,
            "wb_app": (app_writes - ref_app_writes) / base_total,
            "wb_pv": (self.offchip_pv_writes - reference.offchip_pv_writes) / base_total,
        }

    # ---------------------------------------------------------------- misc

    def summary(self) -> Dict[str, float]:
        """Compact numeric digest (used by examples and reports)."""
        digest = {
            "coverage": round(self.coverage, 4),
            "uncovered": round(self.uncovered_fraction, 4),
            "overprediction": round(self.overprediction_rate, 4),
            "ipc": round(self.aggregate_ipc, 4),
            "l2_requests": self.l2_requests,
            "offchip": self.offchip_transfers,
            "pv_l2_fill_rate": round(self.pv_l2_fill_rate, 4),
        }
        if self.dram_busy_cycles:
            digest["dram_utilization"] = round(self.dram_utilization, 4)
            digest["bank_conflict_cycles"] = round(self.bank_conflict_cycles, 1)
            digest["queue_stall_cycles"] = round(self.queue_stall_cycles, 1)
        for kind, stats in self.engine_stats.items():
            for rate in ("hit_rate", "accuracy", "coverage"):
                if rate in stats:
                    digest[f"{kind}_{rate}"] = round(stats[rate], 4)
        return digest
