"""The CMP simulator: one workload, one prefetcher configuration, one run.

Assembles the full system of Section 4.1 — four trace-driven cores with
split L1s and next-line instruction prefetchers, a shared inclusive L2,
main memory — plus the configuration under study: no data prefetching, SMS
with a dedicated PHT, SMS with an infinite PHT, or SMS with a virtualized
PHT (PVProxy per core, PVTable in reserved physical memory, Section 3.2).

Beyond the SMS/stride data prefetchers, any set of additional predictor
engines (:class:`~repro.sim.config.EngineConfig` — the BTB and last-value
predictor of the Section 6 generality study) attaches per core through the
:mod:`repro.sim.engines` registry, fed from the branch/load-value events
the workload generator annotates onto every trace record.  Virtualized
engines reserve their PVTables from the same address space as the SMS
PHT, so multi-predictor configurations share the PV space and the L2.

The same run produces both functional counters (coverage, traffic) and
timing (aggregate IPC): timing is an analytic accumulation over the same
event stream, so "functional" figures simply ignore the cycle outputs.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Dict, List, Optional

from repro.cpu.core import CoreTimingModel
from repro.memory.addr import AddressSpace
from repro.memory.cache import AccessKind, CacheStats
from repro.memory.hierarchy import HierarchyStats, MemorySystem, ServedBy
from repro.memory.mshr import MSHRFile
from repro.prefetch.nextline import NextLinePrefetcher
from repro.prefetch.pht import DedicatedPHT, InfinitePHT, sms_pht_layout
from repro.prefetch.sms import SMSConfig, SMSPrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.core.pvproxy import PVProxyStats
from repro.core.pvtable import PVTable
from repro.core.virtualized import VirtualizedPredictorTable
from repro.runner import artifacts
from repro.sim import batchkernel
from repro.sim.config import PrefetcherConfig, SystemConfig
from repro.sim.engines import EngineRuntime, aggregate_engine_stats, build_engine
from repro.sim.metrics import SimResult
from repro.sim.sampling import SamplingConfig
from repro.workloads.base import WorkloadProfile
from repro.workloads.generator import TRACE_CACHE, WorkloadGenerator

# Hoisted enum members for the functional-warming loop.
_K_DEMAND_READ = AccessKind.DEMAND_READ
_K_DEMAND_WRITE = AccessKind.DEMAND_WRITE


class WarmStateCache:
    """Process-wide cache of demand-warmed architectural state.

    A sampled run with ``shared_warm`` spends its initial warm-up phase on
    *demand-only* functional warming: caches fill from the raw reference
    stream with no prefetching, no predictor training and no timing.  That
    state is a pure function of ``(workload, seed, region, warm-up length,
    hierarchy geometry)`` — notably independent of every predictor/PV
    setting — so one snapshot serves every configuration of a design-space
    sweep that shares those, the way checkpointed SMARTS warming does.

    Snapshots are sparse (only touched cache sets), LRU-bounded by entry
    count (``REPRO_WARM_CACHE_ENTRIES``, default 8; 0 disables reuse), and
    restoring one is bitwise equivalent to recomputing the warm-up, so a
    hit can never change a result.

    With ``REPRO_ARTIFACTS`` set, the persistent
    :class:`~repro.runner.artifacts.ArtifactStore` backs this cache: a
    miss here consults the on-disk checkpoint (written by any earlier
    process) before recomputing — see :meth:`CMPSimulator._warm_sampled`.
    """

    DEFAULT_MAX_ENTRIES = 8

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is None:
            max_entries = int(os.environ.get(
                "REPRO_WARM_CACHE_ENTRIES", self.DEFAULT_MAX_ENTRIES
            ))
        self.max_entries = max_entries
        self._entries: dict = {}  # key -> [payload, lru_tick]
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key) -> Optional[tuple]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._tick += 1
        entry[1] = self._tick
        return entry[0]

    def put(self, key, payload) -> None:
        if self.max_entries <= 0:
            return
        self._tick += 1
        self._entries[key] = [payload, self._tick]
        while len(self._entries) > self.max_entries:
            oldest = min(self._entries, key=lambda k: self._entries[k][1])
            del self._entries[oldest]
            self.evictions += 1

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        self._entries.clear()


#: Process-wide warm-state checkpoint cache (shared across a sweep chunk).
WARM_STATE_CACHE = WarmStateCache()


class CMPSimulator:
    """Runs one (workload, prefetcher configuration) pair on the CMP."""

    #: In-flight prefetch map size above which stale arrivals are retired.
    PENDING_SWEEP_THRESHOLD = 65536

    def __init__(
        self,
        workload: WorkloadProfile,
        prefetcher: Optional[PrefetcherConfig] = None,
        system: Optional[SystemConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.workload = workload
        self.prefetcher = prefetcher or PrefetcherConfig.none()
        self.system = system or SystemConfig.baseline()
        self.seed = self.system.seed if seed is None else seed

        cfg = self.system
        n_cores = cfg.hierarchy.n_cores
        self.hierarchy = MemorySystem(replace(cfg.hierarchy))
        self.address_space = AddressSpace(block_size=cfg.hierarchy.block_size)

        self.generators = [
            WorkloadGenerator(workload, core=i, seed=self.seed,
                              region=cfg.sms.region)
            for i in range(n_cores)
        ]
        #: Trace precompilation (the default): ``_drive`` iterates compiled
        #: flat record lists from the process-wide TRACE_CACHE instead of
        #: resuming generator frames per reference.  ``REPRO_PRECOMPILE=0``
        #: (or setting this attribute) falls back to streaming generators;
        #: both paths produce bitwise-identical results.
        self.precompile = os.environ.get("REPRO_PRECOMPILE", "1") != "0"
        #: Vectorized batch functional path (the default when numpy is
        #: importable): ``_drive_functional`` executes whole warming /
        #: fast-forward spans through :mod:`repro.sim.batchkernel` instead
        #: of the per-record scalar loop.  ``REPRO_VEC=0`` (or setting this
        #: attribute) keeps the scalar reference implementation; both paths
        #: produce bitwise-identical state, counters, and results.
        self.use_vec = batchkernel.default_enabled()
        self._trace_region = cfg.sms.region
        #: Unified per-core stream cursor: how many records each core has
        #: consumed, regardless of drive mode.  The streaming fallback
        #: fast-forwards its generators to this cursor, so flipping
        #: ``precompile`` between drives never replays or skips records.
        self._trace_pos = [0] * n_cores
        self._stream_pos = [0] * n_cores
        # Continuation generators for runs too long for the trace cache:
        # created on first overflow, then streamed from linearly (each
        # record is generated at most once per simulator).
        self._overflow_gens: Optional[List[WorkloadGenerator]] = None
        self._overflow_pos: List[int] = []
        self.cores = [
            CoreTimingModel(
                base_ipc=workload.base_ipc,
                mlp=workload.mlp,
                hidden_latency=cfg.hierarchy.l1_latency,
            )
            for _ in range(n_cores)
        ]
        self.nextline = [
            NextLinePrefetcher(cfg.hierarchy.block_size, cfg.nextline_degree)
            for _ in range(n_cores)
        ]
        self.phts: List[object] = []
        self.sms: List[Optional[SMSPrefetcher]] = []
        self.stride: List[Optional[StridePrefetcher]] = []
        # Additional predictor engines (BTB/LVP, Section 6), per core.
        self.engines: List[List[EngineRuntime]] = []
        self._build_prefetchers()
        self._build_engines()
        # In-flight prefetch arrival times, per core, block address -> cycle
        # (analytic mode; contention mode tracks fills in the MSHR files).
        self._pending: List[Dict[int, float]] = [dict() for _ in range(n_cores)]
        self._last_iblock = [-1] * n_cores
        self.late_prefetches = 0
        # Contention mode: per-core L1 MSHR files bound outstanding misses.
        contention = cfg.hierarchy.contention
        self._contended = contention.enabled
        self._mshr: List[MSHRFile] = [
            MSHRFile(contention.mshr_entries, name=f"l1mshr{i}")
            for i in range(n_cores)
        ] if self._contended else []
        self._mshr_stall_cycles = 0.0
        self._mshr_demand_stalls = 0

    # ----------------------------------------------------------- assembly

    def _build_prefetchers(self) -> None:
        cfg = self.system
        pf = self.prefetcher
        n_cores = cfg.hierarchy.n_cores
        for core in range(n_cores):
            if pf.mode == "none":
                self.phts.append(None)
                self.sms.append(None)
                self.stride.append(None)
                continue
            if pf.mode == "stride":
                self.phts.append(None)
                self.sms.append(None)
                self.stride.append(
                    StridePrefetcher(
                        table_entries=pf.stride_entries,
                        block_size=cfg.hierarchy.block_size,
                        degree=pf.stride_degree,
                    )
                )
                continue
            self.stride.append(None)
            if pf.mode == "dedicated":
                pht = DedicatedPHT(n_sets=pf.pht_sets, assoc=pf.pht_assoc)
            elif pf.mode == "infinite":
                pht = InfinitePHT()
            else:  # virtualized
                layout = sms_pht_layout(n_sets=pf.pht_sets, assoc=pf.pht_assoc)
                pv_start = self.address_space.reserve(layout.table_bytes)
                proxy_cfg = replace(
                    cfg.pvproxy,
                    pvcache_entries=pf.pvcache_entries,
                    report_miss_on_fetch=pf.report_miss_on_fetch,
                )
                pht = VirtualizedPredictorTable(
                    core, PVTable(layout, pv_start), self.hierarchy, proxy_cfg
                )
            engine = SMSPrefetcher(pht, cfg.sms)
            self.phts.append(pht)
            self.sms.append(engine)
            # Generations end on L1D evictions *and* invalidations.
            self.hierarchy.l1d[core].eviction_listeners.append(
                self._make_eviction_listener(engine)
            )

    def _build_engines(self) -> None:
        cfg = self.system
        for core in range(cfg.hierarchy.n_cores):
            self.engines.append([
                build_engine(
                    core, engine_cfg, self.hierarchy,
                    self.address_space, cfg.pvproxy,
                )
                for engine_cfg in self.prefetcher.engines
            ])

    @staticmethod
    def _make_eviction_listener(engine: SMSPrefetcher):
        def listener(evicted) -> None:
            engine.on_block_removed(evicted.block_addr)

        return listener

    # ---------------------------------------------------------------- run

    def run(
        self,
        refs_per_core: int,
        warmup_refs: int = 0,
        window_refs: int = 0,
    ) -> SimResult:
        """Simulate; optionally discard ``warmup_refs`` per core first.

        ``window_refs`` > 0 additionally records one aggregate-IPC sample
        per window of that many references per core (SMARTS-style batches
        for the confidence intervals of Figure 9).

        When the system config carries an enabled
        :class:`~repro.sim.sampling.SamplingConfig`, execution switches to
        the two-speed sampled engine (:meth:`_run_sampled`): only the
        per-period warm-up and measurement windows run with full timing,
        the rest of the trace fast-forwards, and ``window_refs`` is
        superseded by the per-period measurement windows.  With sampling
        disabled this method is bitwise identical to the pre-sampling
        simulator.
        """
        sampling = self.system.sampling
        if sampling is not None and sampling.enabled:
            return self._run_sampled(refs_per_core, warmup_refs, sampling)
        if warmup_refs > 0:
            self._drive(warmup_refs)
            self._reset_stats()
        offsets = [(c.instructions, c.cycles) for c in self.cores]
        window_ipcs: List[float] = []
        if window_refs and window_refs > 0:
            remaining = refs_per_core
            while remaining > 0:
                step = min(window_refs, remaining)
                before = [(c.instructions, c.cycles) for c in self.cores]
                self._drive(step)
                instr = sum(c.instructions - b[0] for c, b in zip(self.cores, before))
                cyc = max(c.cycles - b[1] for c, b in zip(self.cores, before))
                if cyc > 0:
                    window_ipcs.append(instr / cyc)
                remaining -= step
        else:
            self._drive(refs_per_core)
        return self._collect(refs_per_core, offsets, window_ipcs)

    # ------------------------------------------------- two-speed sampling

    def _run_sampled(
        self, refs_per_core: int, warmup_refs: int, sampling: SamplingConfig
    ) -> SimResult:
        """SMARTS-style systematic sampling over the same trace.

        Every period fast-forwards most of its references (cursor skip,
        then a functional-warming ramp), runs a detailed warm-up, then
        measures one window with full timing — producing one aggregate-IPC
        sample per period.  SMARTS estimator semantics: the detailed
        warm-up is *discarded* — ``instructions``/``elapsed_cycles`` (and
        hence ``aggregate_ipc``) accumulate over the measurement windows
        only, per core, with the elapsed estimate taken as the slowest
        core's summed window cycles.  ``window_ipcs`` feed the CI
        machinery exactly as full-detail windows do.
        """
        if warmup_refs > 0:
            self._warm_sampled(warmup_refs, sampling)
            self._reset_stats()
        offsets = [(c.instructions, c.cycles) for c in self.cores]
        n_cores = len(self.cores)
        window_ipcs: List[float] = []
        measured_instr = [0] * n_cores
        measured_cycles = [0.0] * n_cores
        periods = 0
        tot_skip = tot_functional = tot_warm = tot_detail = 0
        remaining = refs_per_core
        while remaining > 0:
            period = min(sampling.period_refs, remaining)
            skip, functional, warm, detail = sampling.layout(period)
            if skip:
                self._skip(skip)
            if functional:
                self._drive_functional(functional)
            if warm:
                self._drive(warm)
            if detail:
                before = [(c.instructions, c.cycles) for c in self.cores]
                self._drive(detail)
                instr = 0
                cyc = 0.0
                for i, (core, b) in enumerate(zip(self.cores, before)):
                    di = core.instructions - b[0]
                    dc = core.cycles - b[1]
                    measured_instr[i] += di
                    measured_cycles[i] += dc
                    instr += di
                    if dc > cyc:
                        cyc = dc
                if cyc > 0:
                    window_ipcs.append(instr / cyc)
            periods += 1
            tot_skip += skip
            tot_functional += functional
            tot_warm += warm
            tot_detail += detail
            remaining -= period
        result = self._collect(refs_per_core, offsets, window_ipcs)
        # Overwrite the whole-timed-span tallies with the measurement-only
        # estimator (detailed warm-ups are warmth, not measurement).
        result.instructions = sum(measured_instr)
        result.per_core_cycles = measured_cycles
        result.elapsed_cycles = max(measured_cycles) if measured_cycles else 0.0
        result.sampled_periods = periods
        result.sampled_detail_refs = tot_detail
        result.sampled_warm_refs = tot_warm
        result.sampled_functional_refs = tot_functional
        result.sampled_skipped_refs = tot_skip
        return result

    def _warm_sampled(self, warmup_refs: int, sampling: SamplingConfig) -> None:
        """The initial warm-up phase of a sampled run (functional).

        With ``shared_warm`` the phase is demand-only (no predictor
        training, no prefetching) and resolves through the process-wide
        :data:`WARM_STATE_CACHE`: the first configuration of a
        (workload, seed, geometry, warm-up) tuple computes and snapshots
        the state, later ones restore it.  When a persistent
        :class:`~repro.runner.artifacts.ArtifactStore` is active
        (``REPRO_ARTIFACTS``), it sits underneath as a second tier: a
        memory miss consults the on-disk checkpoint before recomputing,
        and a recomputed snapshot is written behind for future processes.
        Restoring (from either tier) is bitwise equivalent to
        recomputing, so results never depend on cache history.
        """
        if not sampling.shared_warm:
            self._drive_functional(warmup_refs)
            return
        if any(self._trace_pos):
            # Not a virgin simulator (second run()): checkpoints describe
            # warm-ups from reset state only; warm in place instead.
            self._drive_functional(warmup_refs, train=False)
            return
        key = self._warm_key(warmup_refs)
        snap = WARM_STATE_CACHE.get(key)
        if snap is None:
            store = artifacts.active_store()
            snap = store.get_warm_state(key) if store is not None else None
            if snap is None:
                self._drive_functional(warmup_refs, train=False)
                snap = self._snapshot_warm_state()
                WARM_STATE_CACHE.put(key, snap)
                if store is not None:
                    store.put_warm_state(key, snap)
                return
            WARM_STATE_CACHE.put(key, snap)
        self._restore_warm_state(snap, warmup_refs)

    def _warm_key(self, warmup_refs: int):
        cfg = self.system
        h = cfg.hierarchy
        return (
            self.workload, self.seed, self._trace_region, warmup_refs,
            h.n_cores, h.block_size, h.l1d_size, h.l1d_assoc,
            h.l1i_size, h.l1i_assoc, h.l2_size, h.l2_assoc,
            cfg.model_ifetch, cfg.nextline_degree,
        )

    def _warm_caches(self):
        h = self.hierarchy
        return [*h.l1d, *h.l1i, h.l2]

    def _snapshot_warm_state(self) -> tuple:
        """Sparse copy of every cache array plus the fetch-side state."""
        snaps = []
        for cache in self._warm_caches():
            sets = {}
            stamps = cache._stamps
            meta = cache._meta
            for sidx, tags in enumerate(cache._tags):
                if tags:
                    sets[sidx] = (tags[:], stamps[sidx][:], meta[sidx][:])
            snaps.append((cache._tick, sets))
        return (
            snaps,
            dict(self.hierarchy._l1_presence),
            list(self._last_iblock),
            [nl._last_block for nl in self.nextline],
        )

    def _restore_warm_state(self, snap: tuple, warmup_refs: int) -> None:
        snaps, presence, last_iblock, nextline_last = snap
        for cache, (tick, sets) in zip(self._warm_caches(), snaps):
            cache._tick = tick
            for sidx, (tags, stamps, meta) in sets.items():
                cache._tags[sidx] = tags[:]
                cache._stamps[sidx] = stamps[:]
                cache._meta[sidx] = meta[:]
        h = self.hierarchy
        h._l1_presence.clear()
        h._l1_presence.update(presence)
        self._last_iblock[:] = last_iblock
        for nl, last in zip(self.nextline, nextline_last):
            nl._last_block = last
        for i in range(len(self.cores)):
            self._trace_pos[i] += warmup_refs

    def _skip(self, refs_per_core: int) -> None:
        """Fast-forward: cursor advance plus generation flush.

        The skipped records still exist in the shared compiled trace (it
        is generated once per workload process-wide), so later slices and
        the streaming fallback stay aligned.  Open SMS generations cannot
        be tracked across the gap, so they are flushed: accumulated
        patterns store to the PHT (workloads whose generations outlive
        one observed span keep training), filter-only entries drop.
        """
        for i in range(len(self.cores)):
            self._trace_pos[i] += refs_per_core
        if any(engine is not None for engine in self.sms):
            # Flushed patterns store through the PV path untimed: time does
            # not pass during a skip.
            proxies = self._pv_proxies()
            for proxy in proxies:
                proxy.functional = True
            try:
                for engine in self.sms:
                    if engine is not None:
                        engine.flush_generations()
            finally:
                for proxy in proxies:
                    proxy.functional = False

    def _drive_functional(self, refs_per_core: int, train: bool = True) -> None:
        """Advance every core functionally: state updates, no timing.

        Demand references update L1/L2/coherence state through the
        array-backed fast paths; with ``train`` the prefetcher/predictor
        engines observe the stream too, and their prefetches install
        untimed (no pending-arrival tracking, no MSHR occupancy, no bank
        or DRAM queues — the timing machinery never runs).  Instruction
        fetch warms the L1I and next-line prefetcher the same way.

        Always served from compiled trace slices (the unified cursor keeps
        the streaming fallback aligned), interleaved round-robin exactly
        like the analytic drive so the shared L2 sees the same mix.
        """
        proxies = self._pv_proxies()
        for proxy in proxies:
            proxy.functional = True
        try:
            if self.use_vec and batchkernel.run_batch(self, refs_per_core, train):
                return
            n_cores = len(self.cores)
            slices = []
            for i in range(n_cores):
                start = self._trace_pos[i]
                end = start + refs_per_core
                self._trace_pos[i] = end
                slices.append(self._trace_slice(i, start, end))
            self._functional_loop(slices, train)
        finally:
            for proxy in proxies:
                proxy.functional = False

    def _functional_loop(self, slices, train: bool) -> None:
        """The hot loop of :meth:`_drive_functional`.

        Deliberately leaner than the detailed step in two stat-only ways:
        next-line instruction prefetches are not replayed (a skipped fill
        costs one extra — free — functional L1I miss on the next fetch of
        that block), and SMS training goes straight to the AGT, so
        ``SMSStats.accesses`` does not advance during functional spans
        (every prediction/store counter does).
        """
        h = self.hierarchy
        l1ds = h.l1d
        l1is = h.l1i
        warm_miss = h.warm_miss
        pfill = h.prefetch_fill
        watchers = h._pv_write_watchers
        model_ifetch = self.system.model_ifetch
        block_size = self.system.hierarchy.block_size
        last_iblock = self._last_iblock
        sms = self.sms
        stride = self.stride
        engines = self.engines
        any_engines = any(engines)
        presence_get = h._l1_presence.get
        stats = h.stats
        ifetch_hits = [l1i.warm_fetch_hit for l1i in l1is]
        nows = [int(c.cycles) for c in self.cores]
        agt_recs: List[object] = []
        for i, engine in enumerate(sms):
            if engine is not None and train:
                engine._now = nows[i]
                agt_recs.append(engine.agt.record_access)
            else:
                agt_recs.append(None)
        for recs in zip(*slices):
            i = 0
            for rec in recs:
                addr = rec.addr
                w = rec.write
                if model_ifetch:
                    pc = rec.pc
                    iblock = pc - (pc % block_size)
                    if iblock != last_iblock[i]:
                        last_iblock[i] = iblock
                        if not ifetch_hits[i](pc):
                            warm_miss(i, pc, False, True)
                if w and watchers:
                    block = addr - (addr % block_size)
                    for start_w, end_w, callback in watchers:
                        if start_w <= block < end_w:
                            callback(block)
                if l1ds[i].access_hit(
                    addr, _K_DEMAND_WRITE if w else _K_DEMAND_READ, w
                ):
                    if w:
                        block = addr - (addr % block_size)
                        if presence_get(block, 0) & ~(1 << i):
                            # Write hit with remote sharers: upgrade.
                            stats.write_upgrades += 1
                            h._coherence_invalidate(block, keep_bit=i)
                else:
                    warm_miss(i, addr, w)
                if train:
                    record = agt_recs[i]
                    if record is not None:
                        trigger = record(rec.pc, addr)
                        if trigger is not None:
                            for block_addr, _ready in sms[i]._predict(
                                trigger[0], trigger[1], addr, nows[i]
                            ):
                                pfill(i, block_addr, block=block_addr)
                    st = stride[i]
                    if st is not None:
                        for block_addr in st.on_access(rec.pc, addr):
                            pfill(i, block_addr, block=block_addr)
                    if any_engines:
                        for runtime in engines[i]:
                            runtime.observe(rec, nows[i])
                i += 1

    # ------------------------------------------------------------- driving

    def _drive(self, refs_per_core: int) -> None:
        """Advance every core by ``refs_per_core`` references.

        The analytic model drives round-robin by reference count.  In
        contention mode the shared resources (bank ports, DRAM channels)
        compare issue cycles across cores, so the drive order must keep
        the per-core clocks comparable: always advance the core with the
        smallest clock (deterministic, ties broken by core index) —
        effectively a global-time event order.

        With :attr:`precompile` on (the default) each core's reference
        stream is materialized once through the process-wide trace cache
        and the loop iterates flat record lists; the streaming-generator
        fallback drives the same records in the same order.
        """
        n_cores = len(self.cores)
        step = self._step
        hierarchy = self.hierarchy
        model_ifetch = self.system.model_ifetch
        block_size = self.system.hierarchy.block_size
        if self.precompile:
            slices = []
            for i in range(n_cores):
                start = self._trace_pos[i]
                end = start + refs_per_core
                self._trace_pos[i] = end
                slices.append(self._trace_slice(i, start, end))
            if self._contended:
                # Global-time event order: always step the core with the
                # smallest clock (ties break toward the lowest index, as
                # list.index returns the first minimum).  Exhausted cores
                # park at +inf so the C-level min skips them.
                cores = self.cores
                pos = [0] * n_cores
                clocks = [core.cycles for core in cores]
                active = n_cores
                inf = float("inf")
                while active:
                    i = clocks.index(min(clocks))
                    p = pos[i]
                    if p >= refs_per_core:
                        clocks[i] = inf
                        active -= 1
                        continue
                    pos[i] = p + 1
                    step(i, slices[i][p], hierarchy, model_ifetch, block_size)
                    clocks[i] = cores[i].cycles
                return
            # Round-robin interleave, same order as the generator path:
            # every core's k-th reference before any core's (k+1)-th.
            for recs in zip(*slices):
                i = 0
                for rec in recs:
                    step(i, rec, hierarchy, model_ifetch, block_size)
                    i += 1
            return
        # Streaming fallback: align the generators with the unified cursor
        # (earlier drives may have been served from compiled traces), then
        # advance both cursors past this drive.
        for i in range(n_cores):
            behind = self._trace_pos[i] - self._stream_pos[i]
            if behind > 0:
                for _ in self.generators[i].records(behind):
                    pass
            self._stream_pos[i] = self._trace_pos[i] = (
                self._trace_pos[i] + refs_per_core
            )
        streams = [gen.records(refs_per_core) for gen in self.generators]
        # Bind the hot lookups once per drive instead of once per reference.
        nexts = [stream.__next__ for stream in streams]
        alive = list(range(n_cores))
        if self._contended:
            cores = self.cores
            while alive:
                i = min(alive, key=lambda c: cores[c].cycles)
                try:
                    rec = nexts[i]()
                except StopIteration:
                    alive.remove(i)
                    continue
                step(i, rec, hierarchy, model_ifetch, block_size)
            return
        while alive:
            finished = []
            for pos, i in enumerate(alive):
                try:
                    rec = nexts[i]()
                except StopIteration:
                    finished.append(pos)
                    continue
                step(i, rec, hierarchy, model_ifetch, block_size)
            for pos in reversed(finished):
                del alive[pos]

    def _trace_slice(self, i: int, start: int, end: int):
        """Records ``[start, end)`` of core ``i``'s stream, compiled.

        Served from the shared trace cache while the prefix fits its bound;
        longer runs switch (permanently — ``end`` only grows) to a
        per-simulator continuation generator, so repeated drives stay
        linear instead of recompiling the whole prefix each time.
        """
        if end <= TRACE_CACHE.max_records:
            trace = TRACE_CACHE.get(
                self.workload, i, self.seed, self._trace_region, end
            )
            return trace[start:end]
        if self._overflow_gens is None:
            self._overflow_gens = [
                WorkloadGenerator(self.workload, core=c, seed=self.seed,
                                  region=self._trace_region)
                for c in range(len(self.cores))
            ]
            self._overflow_pos = [0] * len(self.cores)
        gen = self._overflow_gens[i]
        pos = self._overflow_pos[i]
        if pos < start:
            # Earlier drives were served from the cache: burn the prefix
            # once so the continuation stream lines up.
            for _ in gen.records(start - pos):
                pass
        self._overflow_pos[i] = end
        return gen.compile_trace(end - start)

    def _step(self, i: int, rec, hierarchy, model_ifetch: bool, block_size: int) -> None:
        core = self.cores[i]
        contended = self._contended
        mshr = self._mshr[i] if contended else None
        now = core.cycles
        pending = self._pending[i]
        addr = rec.addr

        # Instruction fetch (with the baseline next-line L1I prefetcher).
        if model_ifetch:
            pc = rec.pc
            iblock = pc - (pc % block_size)
            if iblock != self._last_iblock[i]:
                self._last_iblock[i] = iblock
                lat, _ = hierarchy.access(i, pc, False, True, now, iblock)
                if lat > core.hidden_latency:
                    core.memory_access(
                        lat, queued=hierarchy.last_queue_delay if contended else 0.0
                    )
                for target in self.nextline[i].on_fetch(pc, iblock):
                    hierarchy.prefetch_fill_ifetch(
                        i, target, now=core.cycles if contended else None,
                        block=target,
                    )

        # Late-prefetch stall: the demand reference arrived before the
        # in-flight block did; the core waits out the remainder.
        addr_block = addr - (addr % block_size)
        if contended:
            # The MSHR file is the single in-flight tracker: fills that
            # have arrived retire here (no ad-hoc pending-dict sweep).
            mshr.retire_ready(now)
            entry = mshr.find(addr_block)
            if entry is not None:
                if entry.ready_at > now:
                    core.extra_stall(entry.ready_at - now)
                    if entry.waiters:
                        self.late_prefetches += 1
                    now = core.cycles
                mshr.complete(addr_block)
        else:
            arrival = pending.pop(addr_block, None)
            if arrival is not None and arrival > now:
                core.extra_stall(arrival - now)
                self.late_prefetches += 1
                now = core.cycles

        # The demand access itself.  ``commit`` fuses the instruction
        # advance and the memory-stall charge into one bookkeeping call.
        latency, served = hierarchy.access(i, addr, rec.write, False, now, addr_block)
        core.commit(
            rec.gap + 1, latency,
            hierarchy.last_queue_delay if contended else 0.0,
        )
        # Cycle count once the demand access has retired; prefetches that
        # this access triggers cannot be in flight earlier than this.
        post_access = core.cycles

        # Contention mode: the demand fill occupies an MSHR until it lands;
        # a full file is a structural hazard the core waits out.
        if contended and served is not ServedBy.L1:
            mshr.retire_ready(post_access)
            if mshr.full:
                earliest = mshr.earliest_ready()
                stall = earliest - post_access
                if stall > 0:
                    core.extra_stall(stall, queued=True)
                    self._mshr_stall_cycles += stall
                    self._mshr_demand_stalls += 1
                mshr.retire_ready(earliest)
                post_access = core.cycles
            mshr.allocate(addr_block, issued_at=now, ready_at=now + latency)

        # Train SMS and issue any predicted prefetches.
        engine = self.sms[i]
        if engine is not None:
            prefetches = engine.on_access(rec.pc, addr, int(now))
            for block_addr, ready_at in prefetches:
                if contended:
                    self._contended_prefetch(i, mshr, block_addr, ready_at)
                else:
                    fill_latency, served_pf = hierarchy.prefetch_fill(
                        i, block_addr, block=block_addr
                    )
                    if served_pf is not None:
                        pending[block_addr] = ready_at + fill_latency
        stride = self.stride[i]
        if stride is not None:
            for block_addr in stride.on_access(rec.pc, addr):
                if contended:
                    self._contended_prefetch(i, mshr, block_addr, post_access + 1)
                else:
                    fill_latency, served_pf = hierarchy.prefetch_fill(
                        i, block_addr, block=block_addr
                    )
                    if served_pf is not None:
                        pending[block_addr] = post_access + 1 + fill_latency

        # Additional predictor engines (BTB/LVP) observe the same stream.
        engines = self.engines[i]
        if engines:
            for runtime in engines:
                runtime.observe(rec, int(post_access))

        # Bound the in-flight map for every prefetching configuration
        # (stride included): retire arrivals that have long since landed.
        if not contended and len(pending) > self.PENDING_SWEEP_THRESHOLD:
            self._sweep_pending(pending, core.cycles)

    def _contended_prefetch(
        self, i: int, mshr: MSHRFile, block_addr: int, issue_at: float
    ) -> None:
        """Issue one prefetch through the bounded miss path.

        A duplicate of an in-flight fill coalesces; a full MSHR file drops
        the prefetch outright (predictions are advisory), so the prefetcher
        can never hold more fills in flight than the hardware tracks.
        """
        if mshr.find(block_addr) is not None:
            mshr.coalesced += 1
            return
        if mshr.full:
            mshr.rejected += 1
            return
        fill_latency, served = self.hierarchy.prefetch_fill(
            i, block_addr, now=issue_at, block=block_addr
        )
        if served is not None:
            entry = mshr.allocate(
                block_addr, issued_at=issue_at, ready_at=issue_at + fill_latency
            )
            entry.attach("prefetch")

    @staticmethod
    def _sweep_pending(pending: Dict[int, float], now: float) -> None:
        stale = [block for block, arrival in pending.items() if arrival <= now]
        for block in stale:
            del pending[block]

    # ------------------------------------------------------------ bookkeeping

    def _reset_stats(self) -> None:
        """Zero all counters but keep every piece of learned/cached state."""
        for cache in (*self.hierarchy.l1d, *self.hierarchy.l1i, self.hierarchy.l2):
            cache.stats = CacheStats()
        self.hierarchy.stats = HierarchyStats()
        # Traffic and contention counters restart; the DRAM channel / bank
        # backlogs (in-flight committed work) survive the boundary.
        self.hierarchy.memory.reset_counters()
        self.late_prefetches = 0
        self._mshr_stall_cycles = 0.0
        self._mshr_demand_stalls = 0
        for mshr in self._mshr:
            mshr.reset_stats()
        for core in self.cores:
            core.queue_stall_cycles = 0.0
        for engine in self.sms:
            if engine is not None:
                engine.stats.__init__()
        for stride in self.stride:
            if stride is not None:
                stride.stats.__init__()
        for pht in self.phts:
            if pht is None:
                continue
            if isinstance(pht, VirtualizedPredictorTable):
                self._reset_proxy_stats(pht.proxy)
            else:
                pht.stats.__init__()
        for runtime in self._engine_runtimes():
            runtime.reset_stats()
            if runtime.proxy is not None:
                self._reset_proxy_stats(runtime.proxy)

    @staticmethod
    def _reset_proxy_stats(proxy) -> None:
        proxy.stats = PVProxyStats()
        # Operands still parked at the warmup boundary are the measurement
        # window's starting occupancy, not zero.
        proxy.pattern_buffer_peak = proxy.pattern_buffer_occupancy

    def _engine_runtimes(self) -> List[EngineRuntime]:
        return [runtime for per_core in self.engines for runtime in per_core]

    def _pv_proxies(self) -> List[object]:
        proxies = [
            p.proxy for p in self.phts if isinstance(p, VirtualizedPredictorTable)
        ]
        proxies += [r.proxy for r in self._engine_runtimes()
                    if r.proxy is not None]
        return proxies

    def _collect(self, refs: int, offsets, window_ipcs: List[float]) -> SimResult:
        h = self.hierarchy
        covered = sum(c.stats.covered_misses for c in h.l1d)
        uncovered = sum(c.stats.demand_read_misses for c in h.l1d)
        overpred = sum(c.stats.overpredictions for c in h.l1d)
        read_accesses = sum(c.stats.demand_read_accesses for c in h.l1d)
        instructions = sum(
            c.instructions - off[0] for c, off in zip(self.cores, offsets)
        )
        elapsed = max(
            (c.cycles - off[1] for c, off in zip(self.cores, offsets)), default=0.0
        )
        result = SimResult(
            workload=self.workload.name,
            config_label=self.prefetcher.label,
            n_cores=len(self.cores),
            refs=refs,
            covered=covered,
            uncovered=uncovered,
            overpredictions=overpred,
            l1d_read_accesses=read_accesses,
            l2_requests=h.l2_requests(),
            l2_pv_requests=h.l2_pv_requests(),
            l2_misses=h.memory.reads,
            l2_pv_misses=h.memory.pv_reads,
            l2_writebacks=h.stats.l2_writebacks,
            l2_pv_writebacks=h.stats.l2_pv_writebacks,
            offchip_reads=h.memory.reads,
            offchip_writes=h.memory.writes,
            offchip_pv_reads=h.memory.pv_reads,
            offchip_pv_writes=h.memory.pv_writes,
            pv_l2_fill_rate=h.pv_l2_fill_rate(),
            instructions=instructions,
            elapsed_cycles=elapsed,
            per_core_cycles=[c.cycles - off[1] for c, off in zip(self.cores, offsets)],
            window_ipcs=window_ipcs,
            late_prefetches=self.late_prefetches,
        )
        # Contention counters (all zero under the analytic model).
        mem = h.memory
        result.dram_busy_cycles = mem.busy_cycles
        result.dram_queue_cycles = mem.queue_cycles
        result.dram_queued_requests = mem.queued_requests
        result.dram_utilization = mem.utilization(elapsed)
        result.bank_conflicts = h.stats.bank_conflicts
        result.bank_conflict_cycles = h.stats.bank_conflict_cycles
        result.queue_stall_cycles = sum(c.queue_stall_cycles for c in self.cores)
        if self._mshr:
            result.mshr_allocations = sum(f.allocations for f in self._mshr)
            result.mshr_coalesced = sum(f.coalesced for f in self._mshr)
            result.mshr_rejected = sum(f.rejected for f in self._mshr)
            result.mshr_peak_occupancy = max(f.peak_occupancy for f in self._mshr)
            result.mshr_stall_cycles = self._mshr_stall_cycles
            result.mshr_demand_stalls = self._mshr_demand_stalls
        for engine in self.sms:
            if engine is None:
                continue
            result.prefetches_issued += engine.stats.prefetches_issued
            result.predictions += engine.stats.predictions
            result.trigger_lookups += engine.stats.trigger_lookups
            result.patterns_stored += engine.stats.patterns_stored
        for stride in self.stride:
            if stride is not None:
                result.prefetches_issued += stride.stats.issued
        runtimes = self._engine_runtimes()
        result.engine_stats = aggregate_engine_stats(runtimes)
        # Combined PV activity: every PVProxy in the system — the SMS PHT's
        # and any virtualized engine's — contributes to the shared PV space.
        proxies = [
            p.proxy for p in self.phts if isinstance(p, VirtualizedPredictorTable)
        ]
        proxies += [r.proxy for r in runtimes if r.proxy is not None]
        if proxies:
            hits = sum(p.stats.pvcache_hits for p in proxies)
            total = hits + sum(p.stats.pvcache_misses for p in proxies)
            result.pvcache_hit_rate = hits / total if total else 0.0
            result.pv_dropped = sum(
                p.stats.dropped_lookups + p.stats.dropped_stores for p in proxies
            )
            result.pv_pattern_buffer_peak = max(
                p.pattern_buffer_peak for p in proxies
            )
        return result
