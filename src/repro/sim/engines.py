"""The predictor-engine registry (Section 6 generality study).

The paper argues PV generalizes beyond the SMS PHT to any predictor whose
engine speaks the two-operation :class:`~repro.core.interface.PredictorTable`
interface.  This module is the simulator-side half of that claim: a
registry mapping an engine *kind* ("btb", "lvp", ...) to

* the table geometry the engine wants (index bits, default sets/assoc,
  payload width) and the PVTable layout used when it is virtualized;
* a runtime adapter that feeds the engine from annotated trace records
  (:class:`~repro.cpu.trace.TraceRecord` branch/load-value events) and
  exposes its counters uniformly.

:func:`build_engine` assembles one engine instance per core from an
:class:`~repro.sim.config.EngineConfig` — dedicated, infinite or
virtualized — reusing the same table implementations the SMS PHT uses,
so a virtualized BTB/LVP automatically shares the reserved PV address
space and the L2 with every other virtualized predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List

from repro.core.interface import PredictorTable
from repro.core.pvproxy import PVProxyConfig
from repro.core.pvtable import PVTableLayout
from repro.core.virtualized import VirtualizedPredictorTable
from repro.memory.addr import AddressSpace
from repro.memory.hierarchy import MemorySystem
from repro.prefetch.btb import (
    BTB_INDEX_BITS,
    BTB_TARGET_BITS,
    BranchTargetBuffer,
    BTBStats,
    btb_layout,
)
from repro.prefetch.pht import DedicatedPHT, InfinitePHT
from repro.prefetch.value import (
    LVP_CONF_BITS,
    LVP_INDEX_BITS,
    LVP_VALUE_BITS,
    LastValuePredictor,
    LVPStats,
    lvp_layout,
)
from repro.sim.config import EngineConfig


class EngineRuntime:
    """Uniform simulator adapter around one optimization engine."""

    kind: str = ""

    def __init__(self, table: PredictorTable, config: EngineConfig) -> None:
        self.table = table
        self.config = config

    def observe(self, record, now: int) -> None:
        """Feed one annotated trace record to the engine."""
        raise NotImplementedError

    def counters(self) -> Dict[str, float]:
        """Summable raw counters (aggregated across cores)."""
        raise NotImplementedError

    def reset_stats(self) -> None:
        """Zero counters, keep learned table state (warmup boundary)."""
        raise NotImplementedError

    @staticmethod
    def derive(agg: Dict[str, float]) -> None:
        """Add derived rates to an aggregated counter dict, in place."""
        raise NotImplementedError

    @property
    def proxy(self):
        """The PVProxy behind this engine's table, if virtualized."""
        if isinstance(self.table, VirtualizedPredictorTable):
            return self.table.proxy
        return None


class BTBRuntime(EngineRuntime):
    """Branch-target prediction: one predict/update per resolved branch."""

    kind = "btb"

    def __init__(self, table: PredictorTable, config: EngineConfig) -> None:
        super().__init__(table, config)
        self.btb = BranchTargetBuffer(table)

    def observe(self, record, now: int) -> None:
        branch_pc = record.branch_pc
        if branch_pc is None:
            return
        predicted = self.btb.predict(branch_pc, now)
        self.btb.update(branch_pc, record.branch_target, predicted, now)

    def counters(self) -> Dict[str, float]:
        s = self.btb.stats
        return {
            "lookups": s.lookups,
            "hits": s.hits,
            "correct": s.correct,
            "updates": s.updates,
        }

    def reset_stats(self) -> None:
        self.btb.stats = BTBStats()

    @staticmethod
    def derive(agg: Dict[str, float]) -> None:
        lookups = agg.get("lookups", 0)
        agg["hit_rate"] = agg["hits"] / lookups if lookups else 0.0
        agg["accuracy"] = agg["correct"] / lookups if lookups else 0.0


class LVPRuntime(EngineRuntime):
    """Last-value load prediction: one predict/update per load."""

    kind = "lvp"

    def __init__(self, table: PredictorTable, config: EngineConfig) -> None:
        super().__init__(table, config)
        self.lvp = LastValuePredictor(table, threshold=config.threshold)

    def observe(self, record, now: int) -> None:
        if record.write or record.load_value is None:
            return
        predicted = self.lvp.predict(record.pc, now)
        self.lvp.update(record.pc, record.load_value, predicted, now)

    def counters(self) -> Dict[str, float]:
        s = self.lvp.stats
        return {
            "lookups": s.lookups,
            "predictions": s.predictions,
            "correct": s.correct,
            "updates": s.updates,
        }

    def reset_stats(self) -> None:
        self.lvp.stats = LVPStats()

    @staticmethod
    def derive(agg: Dict[str, float]) -> None:
        lookups = agg.get("lookups", 0)
        predictions = agg.get("predictions", 0)
        agg["coverage"] = predictions / lookups if lookups else 0.0
        agg["accuracy"] = agg["correct"] / predictions if predictions else 0.0


@dataclass(frozen=True)
class EngineKind:
    """One registry entry: geometry defaults plus the two factories."""

    kind: str
    default_sets: int
    default_assoc: int
    index_bits: int
    value_bits: int
    layout: Callable[..., PVTableLayout]   # (n_sets=..., assoc=...) -> layout
    runtime: Callable[[PredictorTable, EngineConfig], EngineRuntime]


ENGINE_KINDS: Dict[str, EngineKind] = {}


def register_engine_kind(spec: EngineKind) -> None:
    """Add (or replace) an engine kind in the registry."""
    ENGINE_KINDS[spec.kind] = spec


register_engine_kind(EngineKind(
    kind="btb",
    default_sets=512,
    default_assoc=8,
    index_bits=BTB_INDEX_BITS,
    value_bits=BTB_TARGET_BITS,
    layout=btb_layout,
    runtime=BTBRuntime,
))

register_engine_kind(EngineKind(
    kind="lvp",
    default_sets=256,
    default_assoc=8,
    index_bits=LVP_INDEX_BITS,
    value_bits=LVP_VALUE_BITS + LVP_CONF_BITS,
    layout=lvp_layout,
    runtime=LVPRuntime,
))


def build_engine(
    core: int,
    config: EngineConfig,
    hierarchy: MemorySystem,
    address_space: AddressSpace,
    pvproxy_defaults: PVProxyConfig,
) -> EngineRuntime:
    """Assemble one core's engine instance from its configuration."""
    try:
        spec = ENGINE_KINDS[config.kind]
    except KeyError:
        raise ValueError(
            f"unknown engine kind {config.kind!r}; "
            f"registered: {sorted(ENGINE_KINDS)}"
        ) from None
    n_sets = config.n_sets or spec.default_sets
    assoc = config.assoc or spec.default_assoc
    if config.table == "dedicated":
        table: PredictorTable = DedicatedPHT(
            n_sets=n_sets,
            assoc=assoc,
            index_bits=spec.index_bits,
            pattern_bits=spec.value_bits,
        )
    elif config.table == "infinite":
        table = InfinitePHT()
    else:  # virtualized: PVTable carved from the shared reserved space
        layout = spec.layout(n_sets=n_sets, assoc=assoc)
        proxy_cfg = replace(
            pvproxy_defaults,
            pvcache_entries=config.pvcache_entries,
            report_miss_on_fetch=config.report_miss_on_fetch,
        )
        table = VirtualizedPredictorTable.create(
            core, layout, hierarchy, address_space, proxy_cfg
        )
    return spec.runtime(table, config)


def aggregate_engine_stats(
    runtimes: List[EngineRuntime],
) -> Dict[str, Dict[str, float]]:
    """Sum per-core engine counters by kind and attach derived rates.

    Virtualized engines additionally report their PVProxy activity
    (fetches, writebacks, drops, PVCache hit rate) so the generality
    table can show each predictor class's share of the PV traffic.
    """
    by_kind: Dict[str, Dict[str, float]] = {}
    derive_fns: Dict[str, Callable] = {}
    proxy_hits: Dict[str, int] = {}
    proxy_total: Dict[str, int] = {}
    for runtime in runtimes:
        agg = by_kind.setdefault(runtime.kind, {})
        for name, value in runtime.counters().items():
            agg[name] = agg.get(name, 0) + value
        derive_fns[runtime.kind] = runtime.derive
        proxy = runtime.proxy
        if proxy is not None:
            s = proxy.stats
            for name, value in (
                ("pv_fetches", s.fetches),
                ("pv_writebacks", s.writebacks),
                ("pv_dropped", s.dropped_lookups + s.dropped_stores),
            ):
                agg[name] = agg.get(name, 0) + value
            proxy_hits[runtime.kind] = (
                proxy_hits.get(runtime.kind, 0) + s.pvcache_hits
            )
            proxy_total[runtime.kind] = (
                proxy_total.get(runtime.kind, 0)
                + s.pvcache_hits + s.pvcache_misses
            )
    for kind, agg in by_kind.items():
        derive_fns[kind](agg)
        if kind in proxy_total:
            total = proxy_total[kind]
            agg["pvcache_hit_rate"] = proxy_hits[kind] / total if total else 0.0
    return by_kind
