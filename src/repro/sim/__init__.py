"""Simulation harness: configuration, the CMP simulator, metrics, sampling.

``SystemConfig.baseline()`` reproduces Table 1.  :class:`CMPSimulator` runs
one workload on the 4-core CMP under a chosen prefetcher configuration
(:class:`PrefetcherConfig`), producing a :class:`SimResult` with every
counter the paper's figures consume.  :mod:`repro.sim.experiment` adds a
cached runner so the figure drivers share simulations.
"""

from repro.sim.config import EngineConfig, PrefetcherConfig, SystemConfig
from repro.sim.experiment import (
    ExperimentScale,
    ExperimentSpec,
    run_experiment,
    run_spec,
)
from repro.sim.metrics import SimResult
from repro.sim.sampling import MatchedPair, SampleStats, confidence_interval, matched_pair
from repro.sim.simulator import CMPSimulator

__all__ = [
    "EngineConfig",
    "CMPSimulator",
    "ExperimentScale",
    "ExperimentSpec",
    "MatchedPair",
    "PrefetcherConfig",
    "SampleStats",
    "SimResult",
    "SystemConfig",
    "confidence_interval",
    "matched_pair",
    "run_experiment",
    "run_spec",
]
