"""System and prefetcher configuration (Table 1 of the paper).

:class:`SystemConfig` aggregates the hierarchy geometry/latencies, the SMS
parameters tuned by the original SMS study, and the PV sizing of
Section 4.6.  :class:`PrefetcherConfig` names the predictor configurations
the figures compare: no prefetching, SMS with a dedicated PHT of a given
geometry, SMS with an infinite PHT, and SMS with a virtualized PHT.

Beyond the SMS PHT, a configuration can attach additional predictor
**engines** per core (:class:`EngineConfig`) — the branch-target buffer
and last-value predictor of the Section 6 generality study — each running
over a dedicated, infinite or virtualized table.  When several engines
(and/or the SMS PHT) are virtualized at once, their PVTables coexist in
the reserved physical-memory region behind per-engine PVProxies: the
shared-PV-space configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.core.pvproxy import PVProxyConfig
from repro.memory.contention import ContentionConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.prefetch.sms import SMSConfig
from repro.sim.sampling import SamplingConfig


@dataclass(frozen=True)
class EngineConfig:
    """One additional predictor engine attached to every core.

    ``kind`` names an engine class in the :mod:`repro.sim.engines`
    registry (built in: ``"btb"``, ``"lvp"``); ``table`` selects how its
    predictor table is realised:

    * ``"dedicated"``   — conventional on-chip set-associative table;
    * ``"infinite"``    — unbounded table (potential ceiling);
    * ``"virtualized"`` — PVTable in reserved memory behind a PVProxy
      with ``pvcache_entries`` sets on chip.

    ``n_sets``/``assoc`` of 0 mean "the engine kind's default geometry".
    ``threshold`` is the confidence gate for the last-value predictor
    (ignored by engines without one).
    """

    kind: str
    table: str = "dedicated"
    n_sets: int = 0
    assoc: int = 0
    pvcache_entries: int = 8
    report_miss_on_fetch: bool = False
    threshold: int = 2

    _TABLES = ("dedicated", "infinite", "virtualized")

    def __post_init__(self) -> None:
        if not self.kind or not isinstance(self.kind, str):
            raise ValueError("engine kind must be a non-empty string")
        if self.table not in self._TABLES:
            raise ValueError(
                f"engine table must be one of {self._TABLES}, got {self.table!r}"
            )
        if self.n_sets < 0 or (self.n_sets and self.n_sets & (self.n_sets - 1)):
            raise ValueError("n_sets must be 0 (default) or a power of two")
        if self.assoc < 0:
            raise ValueError("assoc must be 0 (default) or positive")

    @property
    def label(self) -> str:
        """Short suffix used inside a :attr:`PrefetcherConfig.label`."""
        name = self.kind.upper()
        if self.n_sets:
            name += f"{self.n_sets}x{self.assoc}" if self.assoc else f"{self.n_sets}"
        if self.table == "virtualized":
            return f"{name}pv{self.pvcache_entries}"
        if self.table == "infinite":
            return f"{name}inf"
        return name

    @classmethod
    def btb(cls, table: str = "dedicated", **kw) -> "EngineConfig":
        """A branch-target buffer engine."""
        return cls(kind="btb", table=table, **kw)

    @classmethod
    def lvp(cls, table: str = "dedicated", **kw) -> "EngineConfig":
        """A last-value load-predictor engine."""
        return cls(kind="lvp", table=table, **kw)


@dataclass(frozen=True)
class PrefetcherConfig:
    """One predictor configuration under study.

    ``mode`` is one of:

    * ``"none"``        — baseline, no data prefetching;
    * ``"dedicated"``   — SMS with an on-chip PHT of ``pht_sets`` x
      ``pht_assoc`` (the paper's SMS-1K / SMS-16 / SMS-8 bars);
    * ``"infinite"``    — SMS with an unbounded PHT (the Infinite bars);
    * ``"virtualized"`` — SMS with the PHT virtualized behind a PVProxy
      holding ``pvcache_entries`` sets on chip (SMS-PV8 / PV-16);
    * ``"stride"``      — a classic PC-stride prefetcher (extra baseline,
      not in the paper's evaluation).
    """

    mode: str = "none"
    pht_sets: int = 1024
    pht_assoc: int = 11
    pvcache_entries: int = 8
    report_miss_on_fetch: bool = False
    stride_entries: int = 256
    stride_degree: int = 2
    engines: Tuple[EngineConfig, ...] = ()

    _MODES = ("none", "dedicated", "infinite", "virtualized", "stride")

    def __post_init__(self) -> None:
        if self.mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {self.mode!r}")
        if self.pht_sets <= 0 or self.pht_sets & (self.pht_sets - 1):
            raise ValueError("pht_sets must be a power of two")
        # Accept dicts/lists (spec round-trip) and normalize to a tuple.
        engines = tuple(
            e if isinstance(e, EngineConfig) else EngineConfig(**e)
            for e in self.engines
        )
        kinds = [e.kind for e in engines]
        if len(set(kinds)) != len(kinds):
            raise ValueError(f"duplicate engine kinds: {kinds}")
        object.__setattr__(self, "engines", engines)

    @property
    def base_label(self) -> str:
        """Paper-style bar label of the SMS/stride part alone."""
        if self.mode == "none":
            return "NoPF"
        if self.mode == "infinite":
            return "Infinite"
        if self.mode == "stride":
            return "Stride"
        sets = (
            f"{self.pht_sets // 1024}K" if self.pht_sets >= 1024 else str(self.pht_sets)
        )
        if self.mode == "dedicated":
            return f"{sets}-{self.pht_assoc}a"
        return f"PV{self.pvcache_entries}"

    @property
    def label(self) -> str:
        """Paper-style bar label, with any attached engines appended."""
        label = self.base_label
        for engine in self.engines:
            label += f"+{engine.label}"
        return label

    # -- canned configurations used throughout the evaluation ---------------

    @classmethod
    def none(cls) -> "PrefetcherConfig":
        return cls(mode="none")

    @classmethod
    def infinite(cls) -> "PrefetcherConfig":
        return cls(mode="infinite")

    @classmethod
    def dedicated(cls, n_sets: int, assoc: int = 11) -> "PrefetcherConfig":
        return cls(mode="dedicated", pht_sets=n_sets, pht_assoc=assoc)

    @classmethod
    def virtualized(cls, pvcache_entries: int = 8, n_sets: int = 1024,
                    assoc: int = 11) -> "PrefetcherConfig":
        return cls(
            mode="virtualized",
            pht_sets=n_sets,
            pht_assoc=assoc,
            pvcache_entries=pvcache_entries,
        )

    @classmethod
    def stride(cls, entries: int = 256, degree: int = 2) -> "PrefetcherConfig":
        return cls(mode="stride", stride_entries=entries, stride_degree=degree)

    def with_engines(self, *engines: EngineConfig) -> "PrefetcherConfig":
        """This configuration with additional predictor engines attached."""
        return replace(self, engines=self.engines + tuple(engines))


@dataclass
class SystemConfig:
    """The simulated platform (defaults reproduce Table 1)."""

    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    sms: SMSConfig = field(default_factory=SMSConfig)
    pvproxy: PVProxyConfig = field(default_factory=PVProxyConfig)
    clock_ghz: float = 4.0
    issue_width: int = 8
    pipeline_stages: int = 8
    model_ifetch: bool = True
    nextline_degree: int = 1
    seed: int = 1
    #: Two-speed sampled execution (disabled = every reference detailed).
    sampling: SamplingConfig = field(default_factory=SamplingConfig)

    @classmethod
    def baseline(cls) -> "SystemConfig":
        """Exactly Table 1."""
        return cls()

    def with_l2(self, size_bytes: Optional[int] = None,
                tag_latency: Optional[int] = None,
                data_latency: Optional[int] = None) -> "SystemConfig":
        """Derived config for the Section 4.5 sensitivity studies."""
        hierarchy = replace(
            self.hierarchy,
            l2_size=size_bytes if size_bytes is not None else self.hierarchy.l2_size,
            l2_tag_latency=(
                tag_latency if tag_latency is not None else self.hierarchy.l2_tag_latency
            ),
            l2_data_latency=(
                data_latency if data_latency is not None
                else self.hierarchy.l2_data_latency
            ),
        )
        return replace(self, hierarchy=hierarchy)

    def with_contention(self, contention: Optional[ContentionConfig] = None,
                        **kw) -> "SystemConfig":
        """Derived config with contention-aware timing enabled.

        Either pass a ready :class:`ContentionConfig`, or keyword knobs
        (``dram_channels=1`` etc.) that build an enabled one.
        """
        if contention is None:
            contention = ContentionConfig(enabled=True, **kw)
        return replace(
            self, hierarchy=replace(self.hierarchy, contention=contention)
        )

    def with_sampling(self, sampling: Optional[SamplingConfig] = None,
                      **kw) -> "SystemConfig":
        """Derived config with two-speed sampled execution enabled.

        Either pass a ready :class:`~repro.sim.sampling.SamplingConfig`, or
        keyword knobs (``period_refs=2000`` etc.) that build an enabled one.
        """
        if sampling is None:
            sampling = SamplingConfig.smarts(**kw)
        return replace(self, sampling=sampling)

    def table1(self) -> dict:
        """Render the configuration the way Table 1 presents it."""
        h = self.hierarchy
        return {
            "ISA & Pipeline": (
                f"UltraSPARC III ISA (modelled), {self.clock_ghz:g}GHz, "
                f"{self.pipeline_stages}-stage pipeline, out-of-order execution"
            ),
            "Issue/Decode/Commit": f"any {self.issue_width} instr/cycle",
            "Branch Predictor": "8k GShare + 16K bi-modal + 16K selector",
            "Fetch Unit": "up to 8 instr per cycle, 64-entry fetch buffer",
            "Scheduler": "256-entry/64-entry LSQ",
            "L1D/L1I": (
                f"{h.l1d_size // 1024}kB {h.l1d_assoc}-way set-associative, "
                f"{h.block_size}B blocks, LRU replacement, "
                f"{h.l1_latency} cycle latency"
            ),
            "UL2": (
                f"{h.l2_size // (1024 * 1024)}MB, {h.l2_assoc}-way set-associative, "
                f"{h.l2_banks} banks, {h.block_size}B blocks, LRU replacement, "
                f"{h.l2_tag_latency}/{h.l2_data_latency} cycle tag/data latency"
            ),
            "Main Memory": f"3 GB, {h.memory_latency} cycles",
            "Cores": str(h.n_cores),
        }
