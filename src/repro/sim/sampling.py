"""SMARTS-style statistical sampling support (Section 4.1).

The paper measures speedups with the SMARTS systematic-sampling methodology
(detailed warming + short measurement windows), reports 95% confidence
intervals, and uses matched-pair comparison (Ekman & Stenstrom) to measure
performance *differences* with far fewer samples than independent
measurement would need.

This module provides the statistics half of that machinery over the
per-window aggregate-IPC samples the simulator records (``window_refs``):

* :func:`confidence_interval` — batch-means mean and t-based CI;
* :func:`matched_pair` — per-window deltas between two runs over the same
  trace (our generators are deterministic, so windows align exactly),
  yielding the paired CI the paper's error bars correspond to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class SampleStats:
    """Mean and confidence half-width of a batch of samples."""

    mean: float
    half_width: float
    n: int
    confidence: float

    @property
    def lower(self) -> float:
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_error(self) -> float:
        return self.half_width / abs(self.mean) if self.mean else math.inf


def confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> SampleStats:
    """Mean and t-distribution CI of ``samples`` (batch means)."""
    n = len(samples)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(samples) / n
    if n == 1:
        return SampleStats(mean=mean, half_width=math.inf, n=1, confidence=confidence)
    var = sum((s - mean) ** 2 for s in samples) / (n - 1)
    t = _scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1)
    half = t * math.sqrt(var / n)
    return SampleStats(mean=mean, half_width=half, n=n, confidence=confidence)


@dataclass(frozen=True)
class MatchedPair:
    """Matched-pair comparison of two runs over the same trace windows."""

    delta: SampleStats
    base_mean: float

    @property
    def relative_delta(self) -> float:
        """Mean relative improvement (the speedup the figure bars plot)."""
        return self.delta.mean / self.base_mean if self.base_mean else 0.0

    @property
    def relative_half_width(self) -> float:
        return self.delta.half_width / self.base_mean if self.base_mean else math.inf


def matched_pair(
    base_samples: Sequence[float],
    new_samples: Sequence[float],
    confidence: float = 0.95,
) -> MatchedPair:
    """Paired per-window comparison (Ekman & Stenstrom matched-pair).

    Windows must align one-to-one; trailing extras are dropped so two runs
    of slightly different lengths still compare.
    """
    n = min(len(base_samples), len(new_samples))
    if n == 0:
        raise ValueError("no overlapping windows")
    deltas = [new_samples[i] - base_samples[i] for i in range(n)]
    base_mean = sum(base_samples[:n]) / n
    return MatchedPair(
        delta=confidence_interval(deltas, confidence), base_mean=base_mean
    )
