"""SMARTS-style statistical sampling support (Section 4.1).

The paper measures speedups with the SMARTS systematic-sampling methodology
(detailed warming + short measurement windows), reports 95% confidence
intervals, and uses matched-pair comparison (Ekman & Stenstrom) to measure
performance *differences* with far fewer samples than independent
measurement would need.

This module provides both halves of that machinery:

* :class:`SamplingConfig` — the execution-side knobs of the two-speed
  simulator (:meth:`repro.sim.simulator.CMPSimulator.run`): how long each
  systematic-sampling period is, and how much of it runs at which fidelity
  (fast skip / functional warming / detailed warm-up / measured window);
* :func:`confidence_interval` — batch-means mean and t-based CI over the
  per-window aggregate-IPC samples the simulator records;
* :func:`matched_pair` — per-window deltas between two runs over the same
  trace (our generators are deterministic, so windows align exactly),
  yielding the paired CI the paper's error bars correspond to.

The t quantile prefers :mod:`scipy` when it is installed; a built-in
table/expansion fallback keeps the core package dependency-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

try:  # pragma: no cover - exercised via the fallback tests' monkeypatch
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - scipy is optional
    _scipy_stats = None


# --------------------------------------------------------------------------
# Execution-side configuration: the two-speed engine's knobs.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SamplingConfig:
    """How a sampled simulation spends each systematic-sampling period.

    Every period of ``period_refs`` references per core is laid out as::

        [ fast skip | functional warming | detailed warm-up | measurement ]

    back to front: the measured window (``detail_refs``, full timing, one
    aggregate-IPC sample) is preceded by a detailed warm-up
    (``warm_refs``, full timing, discarded — re-warms the small structures:
    L1s, MSHRs, queues), preceded by a functional-warming ramp
    (``functional_refs`` — cache/predictor/PV state updates through the
    array-backed fast paths, no timing model, no contention queues),
    and whatever remains of the period is skipped outright (the trace
    cursor advances over the precompiled trace; microarchitectural state
    stays as the previous window left it — SMARTS' "stale state" option,
    which the warming ramp then refreshes with the most recent history).

    ``functional_refs`` large enough to fill the period degenerates to
    full SMARTS functional warming; ``detail_refs + warm_refs ==
    period_refs`` degenerates to today's full-detail windowed run.

    ``shared_warm`` controls the *initial* warm-up phase (the
    ``warmup_refs`` argument of ``run``): when True it runs as demand-only
    functional warming — a pure function of (workload, seed, region,
    hierarchy geometry), so the resulting state is checkpointed
    process-wide and reused by every configuration that shares those,
    regardless of predictor settings.  When False the initial warm-up
    trains this configuration's own predictors too (not shareable).
    """

    enabled: bool = False
    period_refs: int = 2_000
    detail_refs: int = 200
    warm_refs: int = 100
    functional_refs: int = 400
    shared_warm: bool = True

    def __post_init__(self) -> None:
        if not self.enabled:
            return
        if self.period_refs <= 0:
            raise ValueError("period_refs must be positive")
        if self.detail_refs <= 0:
            raise ValueError("detail_refs must be positive (nothing measured)")
        for name in ("warm_refs", "functional_refs"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.detail_refs + self.warm_refs > self.period_refs:
            raise ValueError(
                "detail_refs + warm_refs must fit inside period_refs "
                f"({self.detail_refs} + {self.warm_refs} > {self.period_refs})"
            )

    @classmethod
    def disabled(cls) -> "SamplingConfig":
        """Explicit full-detail mode (bitwise identical to no config)."""
        return cls(enabled=False)

    @classmethod
    def smarts(
        cls,
        period_refs: int = 2_000,
        detail_refs: int = 200,
        warm_refs: int = 100,
        functional_refs: int = 400,
        shared_warm: bool = True,
    ) -> "SamplingConfig":
        """An enabled configuration with explicit knobs."""
        return cls(
            enabled=True,
            period_refs=period_refs,
            detail_refs=detail_refs,
            warm_refs=warm_refs,
            functional_refs=functional_refs,
            shared_warm=shared_warm,
        )

    @classmethod
    def for_scale(cls, refs_per_core: int) -> "SamplingConfig":
        """A reasonable default layout for a run of ``refs_per_core``.

        Four measurement windows with a ~12% timed fraction and a ~17%
        functional-warming ramp — the shape validated by the perf-smoke
        ``pv8-sampled`` label (≥5x refs/sec with the sampled estimate
        inside the full-detail run's 95% CI) and the ``--sampled`` CLI
        default.
        """
        period = max(refs_per_core // 4, 400)
        return cls(
            enabled=True,
            period_refs=period,
            detail_refs=max(period // 12, 40),
            warm_refs=max(period // 25, 20),
            functional_refs=max(period // 6, 80),
        )

    # ------------------------------------------------------------- layout

    def layout(self, period: int) -> "tuple[int, int, int, int]":
        """(skip, functional, warm, detail) refs for one period of ``period``.

        Short trailing periods shrink front to back: the measured window is
        preserved first, then the detailed warm-up, then the ramp.
        """
        detail = min(self.detail_refs, period)
        warm = min(self.warm_refs, period - detail)
        functional = min(self.functional_refs, period - detail - warm)
        return period - detail - warm - functional, functional, warm, detail

    @property
    def detail_fraction(self) -> float:
        """Fraction of references simulated with full timing."""
        return (self.detail_refs + self.warm_refs) / self.period_refs


# --------------------------------------------------------------------------
# Ambient default: the CLI's --sampled switch.
# --------------------------------------------------------------------------

#: Process-wide default applied by :meth:`ExperimentSpec.build` when no
#: explicit sampling argument is given (like ``ExperimentScale.from_env``
#: reading REPRO_REFS).  ``None`` = full detail.  The CLI's ``--sampled``
#: flag installs a :meth:`SamplingConfig.for_scale` here so every figure /
#: analysis driver in the process opts in consistently.
_DEFAULT_SAMPLING: "SamplingConfig | None" = None


def set_default_sampling(config: "SamplingConfig | None") -> None:
    """Install (or clear, with ``None``) the process-wide sampling default."""
    global _DEFAULT_SAMPLING
    _DEFAULT_SAMPLING = config


def default_sampling() -> "SamplingConfig | None":
    """The active process-wide sampling default (``None`` = full detail)."""
    return _DEFAULT_SAMPLING


# --------------------------------------------------------------------------
# Student-t quantile: scipy when available, table/expansion fallback.
# --------------------------------------------------------------------------

#: Exact critical values for the two ubiquitous two-sided confidence
#: columns (95%: q = 0.975; 99%: q = 0.995) at df 1..30; beyond that — and
#: for other quantiles — the Cornish-Fisher expansion is well within a
#: fraction of a percent.
_T_TABLES = {
    0.975: [
        12.7062, 4.3027, 3.1824, 2.7764, 2.5706, 2.4469, 2.3646, 2.3060,
        2.2622, 2.2281, 2.2010, 2.1788, 2.1604, 2.1448, 2.1314, 2.1199,
        2.1098, 2.1009, 2.0930, 2.0860, 2.0796, 2.0739, 2.0687, 2.0639,
        2.0595, 2.0555, 2.0518, 2.0484, 2.0452, 2.0423,
    ],
    0.995: [
        63.6567, 9.9248, 5.8409, 4.6041, 4.0321, 3.7074, 3.4995, 3.3554,
        3.2498, 3.1693, 3.1058, 3.0545, 3.0123, 2.9768, 2.9467, 2.9208,
        2.8982, 2.8784, 2.8609, 2.8453, 2.8314, 2.8188, 2.8073, 2.7969,
        2.7874, 2.7787, 2.7707, 2.7633, 2.7564, 2.7500,
    ],
}

# Acklam's rational approximation to the standard normal quantile
# (|relative error| < 1.15e-9 over (0, 1)).
_A = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
      1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
_B = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
      6.680131188771972e+01, -1.328068155288572e+01)
_C = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
      -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
_D = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
      3.754408661907416e+00)


def _normal_ppf(q: float) -> float:
    """Standard normal quantile (inverse CDF)."""
    if not 0.0 < q < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    if q < 0.02425:
        u = math.sqrt(-2.0 * math.log(q))
        return (((((_C[0] * u + _C[1]) * u + _C[2]) * u + _C[3]) * u + _C[4])
                * u + _C[5]) / ((((_D[0] * u + _D[1]) * u + _D[2]) * u
                                 + _D[3]) * u + 1.0)
    if q > 1.0 - 0.02425:
        u = math.sqrt(-2.0 * math.log(1.0 - q))
        return -(((((_C[0] * u + _C[1]) * u + _C[2]) * u + _C[3]) * u + _C[4])
                 * u + _C[5]) / ((((_D[0] * u + _D[1]) * u + _D[2]) * u
                                  + _D[3]) * u + 1.0)
    u = q - 0.5
    r = u * u
    return (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4])
            * r + _A[5]) * u / (((((_B[0] * r + _B[1]) * r + _B[2]) * r
                                  + _B[3]) * r + _B[4]) * r + 1.0)


def _t_ppf_fallback(q: float, df: int) -> float:
    """Student-t quantile without scipy.

    Exact tables for the two-sided 95%/99% columns at small df; everything
    else uses the Cornish-Fisher asymptotic expansion around the normal
    quantile (accurate to ~1e-3 relative for df >= 3, and the tables cover
    the region where the expansion degrades).
    """
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    for column, table in _T_TABLES.items():
        if abs(q - column) < 1e-12 and df <= len(table):
            return table[df - 1]
    z = _normal_ppf(q)
    g1 = (z**3 + z) / 4.0
    g2 = (5.0 * z**5 + 16.0 * z**3 + 3.0 * z) / 96.0
    g3 = (3.0 * z**7 + 19.0 * z**5 + 17.0 * z**3 - 15.0 * z) / 384.0
    g4 = (79.0 * z**9 + 776.0 * z**7 + 1482.0 * z**5 - 1920.0 * z**3
          - 945.0 * z) / 92160.0
    return z + g1 / df + g2 / df**2 + g3 / df**3 + g4 / df**4


def t_quantile(q: float, df: int) -> float:
    """Student-t inverse CDF; scipy's when installed, fallback otherwise."""
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(q, df=df))
    return _t_ppf_fallback(q, df)


# --------------------------------------------------------------------------
# Batch-means statistics.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SampleStats:
    """Mean and confidence half-width of a batch of samples."""

    mean: float
    half_width: float
    n: int
    confidence: float

    @property
    def lower(self) -> float:
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_error(self) -> float:
        return self.half_width / abs(self.mean) if self.mean else math.inf

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside this confidence interval."""
        return self.lower <= value <= self.upper


def confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> SampleStats:
    """Mean and t-distribution CI of ``samples`` (batch means)."""
    n = len(samples)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(samples) / n
    if n == 1:
        return SampleStats(mean=mean, half_width=math.inf, n=1, confidence=confidence)
    var = sum((s - mean) ** 2 for s in samples) / (n - 1)
    t = t_quantile(0.5 + confidence / 2.0, df=n - 1)
    half = t * math.sqrt(var / n)
    return SampleStats(mean=mean, half_width=half, n=n, confidence=confidence)


@dataclass(frozen=True)
class MatchedPair:
    """Matched-pair comparison of two runs over the same trace windows."""

    delta: SampleStats
    base_mean: float

    @property
    def relative_delta(self) -> float:
        """Mean relative improvement (the speedup the figure bars plot)."""
        return self.delta.mean / self.base_mean if self.base_mean else 0.0

    @property
    def relative_half_width(self) -> float:
        return self.delta.half_width / self.base_mean if self.base_mean else math.inf


def matched_pair(
    base_samples: Sequence[float],
    new_samples: Sequence[float],
    confidence: float = 0.95,
) -> MatchedPair:
    """Paired per-window comparison (Ekman & Stenstrom matched-pair).

    Windows must align one-to-one; trailing extras are dropped so two runs
    of slightly different lengths still compare.
    """
    n = min(len(base_samples), len(new_samples))
    if n == 0:
        raise ValueError("no overlapping windows")
    deltas = [new_samples[i] - base_samples[i] for i in range(n)]
    base_mean = sum(base_samples[:n]) / n
    return MatchedPair(
        delta=confidence_interval(deltas, confidence), base_mean=base_mean
    )
