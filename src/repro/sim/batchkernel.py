"""Vectorized batch execution for the functional warming/fast-forward path.

The two-speed sampled simulator spends most of its wall-clock in
:meth:`CMPSimulator._drive_functional` — functionally warming caches one
reference at a time through Python-level loops.  This module executes a
whole functional span as one *batch* in two cooperating layers:

1. **Vectorized hit verdicts.**  Per-record L1D hit/miss verdicts are
   precomputed with numpy against a frozen dense snapshot of the L1D
   arrays (PR 4's flat per-set tag/LRU-stamp layout with a batch axis).
   The batch is processed in chunks with a fresh snapshot per chunk, so
   snapshot staleness never accumulates.  Verified hits commit with a
   single stamp write; their counters are tallied per chunk in numpy.
2. **Inlined miss transitions.**  Records the snapshot cannot decide
   (true misses, apparent hits on sets a miss has disturbed) drop to a
   compact in-order commit path.  The common miss shape — no remote
   sharers, no PV victim, no back-invalidation — is replayed inline (L2
   lookup/fill, memory counters, L1 install, presence and write-back
   bookkeeping) with the exact counter and LRU transitions of
   ``Cache.access_hit`` / ``MemorySystem.warm_miss``; anything rarer
   falls back to those very methods.

Why this is bitwise identical to the scalar walk
------------------------------------------------

* **Tick invariant.**  Every demand reference consumes exactly one LRU tick
  on its core's L1D (``access_hit`` on a hit, ``fill`` via ``warm_miss`` on
  a miss) — and nothing else ticks an L1D during functional execution
  except prefetch installs, which are tracked as explicit per-core offsets.
  Per-record stamp values are therefore precomputable from the trace alone.
* **Monotonic staleness.**  The frozen snapshot only goes stale for a set
  when a way is *removed* (eviction / invalidation) — appends and flag
  updates never move existing ways.  Every removal fires the cache's
  eviction listeners, where temporary listeners mark the set dirty; every
  later record touching a dirty set (until the next chunk re-snapshots) is
  replayed against live state in program order.  Bulk commits are thus
  always a prefix of each set's chunk history, where the frozen verdicts
  are exact.  Frozen *miss* verdicts can also go stale when an earlier
  miss in the chunk installs the block — the replay path probes the live
  tag list first, so such records simply become live hits.
* **Shared state stays live.**  L1 hits never touch the L2, the presence
  directory, or memory, so those evolve only in-order on the replay path,
  either through the unmodified hierarchy code or through the inlined
  transition that mirrors it field for field.  Write hits consult the live
  presence directory per record and take the reference path when remote
  sharers require an upgrade.  The instruction-fetch side executes live
  per record: whether a fetch happens at all is decided by the trace alone
  (instruction-block transitions), which *is* vectorized, while the L1I
  transition is a single allocation-free call plus the same inlined miss.

``REPRO_VEC=0`` (or a missing numpy) disables the kernel entirely; the
scalar loop remains the reference implementation.  ``REPRO_COMPILED=1``
additionally routes the verdict gather through a numba-jitted kernel when
numba is importable, with graceful fallback to pure numpy when it is not.
"""

from __future__ import annotations

import os
from itertools import cycle

try:  # numpy is optional here: without it the scalar reference path runs.
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via HAVE_NUMPY monkeypatch
    np = None
    HAVE_NUMPY = False

from repro.memory.cache import AccessKind, EvictedLine

_K_DEMAND_READ = AccessKind.DEMAND_READ
_K_DEMAND_WRITE = AccessKind.DEMAND_WRITE
# Keep in sync with repro.memory.cache's packed meta flags.
_F_DIRTY = 1
_F_PREFETCHED = 2
_F_PV = 4
_OWNER_SHIFT = 3

#: Batches smaller than this stay on the scalar loop: the fixed cost of the
#: numpy verdict pipeline (a few dozen array ops plus the frozen snapshot)
#: only amortizes past roughly a thousand records.
MIN_BATCH = 1024

#: Interleaved records per verdict chunk.  Each chunk re-snapshots the L1D
#: arrays, resetting staleness, so misses early in a span do not degrade
#: the rest of the span to the replay path.
CHUNK_RECORDS = 4096


def default_enabled() -> bool:
    """The ``REPRO_VEC`` policy evaluated at simulator construction."""
    return HAVE_NUMPY and os.environ.get("REPRO_VEC", "1") != "0"


# --------------------------------------------------------------- compiled
# Optional numba backend (REPRO_COMPILED=1): same verdict gather, jitted.
# The import/compile attempt runs once and degrades silently to numpy.

_COMPILED = None
_COMPILED_TRIED = False


def compiled_requested() -> bool:
    return os.environ.get("REPRO_COMPILED", "0") != "0"


def _load_compiled():
    global _COMPILED, _COMPILED_TRIED
    if not _COMPILED_TRIED:
        _COMPILED_TRIED = True
        try:
            from numba import njit

            @njit(cache=False)
            def verdicts(ftags, fmeta, cidx, sidx, tag, hit, way, pref):
                assoc = ftags.shape[2]
                for r in range(cidx.shape[0]):
                    c = cidx[r]
                    s = sidx[r]
                    t = tag[r]
                    h = False
                    w = 0
                    for a in range(assoc):
                        if ftags[c, s, a] == t:
                            h = True
                            w = a
                            break
                    hit[r] = h
                    way[r] = w
                    pref[r] = h and (fmeta[c, s, w] & 2) != 0

            _COMPILED = verdicts
        except Exception:  # pragma: no cover - numba absent or jit failure
            _COMPILED = None
    return _COMPILED


def _verdicts(ftags, fmeta, cidx, sidx, tag):
    """Per-record (hit, way, frozen-prefetched) against a frozen snapshot.

    ``way`` is the first matching way — identical to ``list.index`` on the
    live per-set tag lists, because the snapshot preserves way order.
    """
    if compiled_requested():
        fn = _load_compiled()
        if fn is not None:
            count = cidx.shape[0]
            hit = np.empty(count, dtype=np.bool_)
            way = np.empty(count, dtype=np.int64)
            pref = np.empty(count, dtype=np.bool_)
            fn(ftags, fmeta, cidx, sidx, tag, hit, way, pref)
            return hit, way, pref
    st = ftags[cidx, sidx]
    eq = st == tag[:, None]
    hit = eq.any(axis=1)
    way = eq.argmax(axis=1)
    pref = hit & ((fmeta[cidx, sidx, way] & _F_PREFETCHED) != 0)
    return hit, way, pref


def _frozen(caches, nsets, assoc):
    """Dense ``(n_cores, nsets, assoc)`` tag/meta snapshot of the L1Ds."""
    tags = []
    meta = []
    for cache in caches:
        t, m = cache.warm_tables()
        tags.append(t)
        meta.append(m)
    ftags = np.array(tags, dtype=np.int64).reshape(len(caches), nsets, assoc)
    fmeta = np.array(meta, dtype=np.int64).reshape(len(caches), nsets, assoc)
    return ftags, fmeta


def _make_mark(dirty, bs_shift, set_mask):
    def mark(evicted):
        dirty[(evicted.block_addr >> bs_shift) & set_mask] = 1

    return mark


def run_batch(sim, refs_per_core: int, train: bool) -> bool:
    """Execute one functional span vectorized; ``False`` defers to scalar.

    On ``True`` the span is fully committed (state, counters, ticks and
    the trace cursors) bitwise identically to
    :meth:`CMPSimulator._functional_loop` over the same records.  On
    ``False`` nothing was touched and the caller must run the scalar loop.
    """
    if not HAVE_NUMPY:
        return False
    n = len(sim.cores)
    rows = refs_per_core
    if rows * n < MIN_BATCH:
        return False
    if any(sim.engines):
        # BTB/LVP engine runtimes observe records through their own paths;
        # keep those spans on the reference loop.
        return False
    from repro.workloads.generator import TRACE_CACHE

    cols = []
    for i in range(n):
        end = sim._trace_pos[i] + rows
        got = TRACE_CACHE.get_columns(
            sim.workload, i, sim.seed, sim._trace_region, end
        )
        if got is None:  # stream exceeds the trace-cache bound
            return False
        cols.append((got, sim._trace_pos[i], end))

    h = sim.hierarchy
    l1ds = h.l1d
    l1is = h.l1i
    d0 = l1ds[0]
    i0 = l1is[0]
    bs_shift = d0._bs_shift
    nsets_d = d0._nsets
    assoc_d = d0._assoc
    set_mask_d = d0._set_mask
    set_shift_d = d0._set_shift
    l1_bs = d0._bs
    i_bs_shift = i0._bs_shift
    i_set_mask = i0._set_mask
    i_set_shift = i0._set_shift
    i_nsets = i0._nsets
    i_assoc = i0._assoc
    i_bs = i0._bs
    model_ifetch = sim.system.model_ifetch

    # ---- interleave the per-core columns exactly like ``zip(*slices)``
    pc2 = np.empty((rows, n), dtype=np.int64)
    ad2 = np.empty((rows, n), dtype=np.int64)
    w2 = np.empty((rows, n), dtype=np.bool_)
    for i, ((pcc, adc, wc), start, end) in enumerate(cols):
        pc2[:, i] = pcc[start:end]
        ad2[:, i] = adc[start:end]
        w2[:, i] = wc[start:end]
        sim._trace_pos[i] = end

    # ---- instruction-block transitions: trace-only, whole span at once
    if model_ifetch:
        ib2 = (pc2 >> bs_shift) << bs_shift
        prev = np.empty_like(ib2)
        prev[0, :] = np.asarray(sim._last_iblock, dtype=np.int64)
        prev[1:, :] = ib2[:-1, :]
        need2 = ib2 != prev
    else:
        need2 = None

    # ---- demand writes into watched PV ranges take the reference path
    watchers = h._pv_write_watchers
    if watchers:
        blk2 = (ad2 >> bs_shift) << bs_shift
        watch2 = np.zeros((rows, n), dtype=np.bool_)
        for ws, we, _cb in watchers:
            watch2 |= (blk2 >= ws) & (blk2 < we)
        watch2 &= w2
    else:
        watch2 = None

    # ---- staleness tracking: sets with a removed way replay in order
    dirty_d = [bytearray(nsets_d) for _ in range(n)]
    zero_d = bytes(nsets_d)
    marks = []
    for i in range(n):
        mk = _make_mark(dirty_d[i], bs_shift, set_mask_d)
        l1ds[i].eviction_listeners.append(mk)
        marks.append((l1ds[i], mk))

    warm_miss = h.warm_miss
    pfill = h.prefetch_fill
    presence = h._l1_presence
    presence_get = presence.get
    hstats = h.stats
    l2 = h.l2
    # The L2 never carries cache-level eviction listeners (PV eviction
    # callbacks hang off the hierarchy and are screened below via the
    # victim's is_pv flag); if one ever appears, stay on the reference
    # methods for every miss.
    fast_on = not l2.eviction_listeners
    l2tags_all = l2._tags
    l2stamps_all = l2._stamps
    l2meta_all = l2._meta
    l2st = l2.stats
    l2_bs_shift = l2._bs_shift
    l2_set_mask = l2._set_mask
    l2_set_shift = l2._set_shift
    l2_assoc = l2._assoc
    l2_nsets = l2._nsets
    l2_bs = l2._bs
    mem = h.memory

    def fast_miss(l1_c, ltags, lstamps, lmeta, sd, tg, tick_val, core, bit,
                  block, write, kind_read, l1_assoc, l1_nsets, l1_bsz,
                  ldirty=None):
        """Inline ``access_hit``-miss + ``warm_miss`` for the common shape.

        ``kind_read`` is ``True``/``False`` for demand reads/writes and
        ``None`` for instruction fetches (whose L1 side keeps no counters,
        mirroring ``warm_fetch_hit``).  Returns ``False`` — with **no**
        state touched — when any rare transition (remote sharers, PV
        victim, L2 back-invalidation) requires the reference methods.
        """
        # --- eligibility screens: nothing below mutates ---
        if presence_get(block, 0) & ~(1 << bit):
            return False
        full1 = len(ltags) >= l1_assoc
        if full1:
            w1 = lstamps.index(min(lstamps))
            vm1 = lmeta[w1]
            if vm1 & _F_PV:
                return False
        b2 = block >> l2_bs_shift
        s2 = b2 & l2_set_mask
        t2 = b2 >> l2_set_shift
        tags2 = l2tags_all[s2]
        hit2 = t2 in tags2
        if not hit2:
            stamps2 = l2stamps_all[s2]
            meta2 = l2meta_all[s2]
            full2 = len(tags2) >= l2_assoc
            if full2:
                vw2 = stamps2.index(min(stamps2))
                vm2 = meta2[vw2]
                if vm2 & _F_PV:
                    return False
                if presence_get((tags2[vw2] * l2_nsets + s2) * l2_bs, 0):
                    return False  # would back-invalidate an L1 copy
        # --- commit: replicates the reference transitions exactly ---
        st1 = l1_c.stats
        if kind_read is None:
            pass  # warm_fetch_hit keeps no counters on the L1I
        elif kind_read:
            st1.misses += 1
            st1.demand_read_misses += 1
        else:
            st1.misses += 1
            st1.demand_write_misses += 1
        if hit2:
            hw2 = tags2.index(t2)
            l2st.hits += 1
            if kind_read is None:
                l2st.ifetch_hits += 1
            elif kind_read:
                l2st.demand_read_hits += 1
            else:
                l2st.demand_write_hits += 1
            l2._tick = tk2 = l2._tick + 1
            l2stamps_all[s2][hw2] = tk2
            meta2 = l2meta_all[s2]
            m2 = meta2[hw2]
            if m2 & _F_PREFETCHED:
                if kind_read:
                    l2st.covered_misses += 1
                meta2[hw2] = m2 & ~_F_PREFETCHED
        else:
            l2st.misses += 1
            if kind_read is None:
                l2st.ifetch_misses += 1
            elif kind_read:
                l2st.demand_read_misses += 1
            else:
                l2st.demand_write_misses += 1
            mem.reads += 1
            mem.last_queue_delay = 0.0
            l2._tick = tk2 = l2._tick + 1
            if full2:
                vdirty2 = vm2 & _F_DIRTY
                del tags2[vw2]
                del stamps2[vw2]
                del meta2[vw2]
                l2st.evictions += 1
                if vdirty2:
                    l2st.dirty_evictions += 1
                if vm2 & _F_PREFETCHED:
                    l2st.overpredictions += 1
                if vdirty2:
                    hstats.l2_writebacks += 1
                    mem.writes += 1
            tags2.append(t2)
            stamps2.append(tk2)
            meta2.append((core + 1) << _OWNER_SHIFT)
            l2st.fills += 1
        # --- L1 install (fill + presence + victim write-back) ---
        l1_c._tick = tick_val
        if full1:
            vtag1 = ltags[w1]
            vdirty1 = vm1 & _F_DIRTY
            del ltags[w1]
            del lstamps[w1]
            del lmeta[w1]
            st1.evictions += 1
            if vdirty1:
                st1.dirty_evictions += 1
            if vm1 & _F_PREFETCHED:
                st1.overpredictions += 1
            ev_ls = l1_c.eviction_listeners
            if ldirty is not None and len(ev_ls) == 1:
                # The only listener is this batch's own staleness mark
                # (appended last): set the bit directly instead of
                # constructing an EvictedLine for it.
                ldirty[sd] = 1
            elif ev_ls:
                evicted = EvictedLine(
                    block_addr=(vtag1 * l1_nsets + sd) * l1_bsz,
                    dirty=bool(vdirty1),
                    prefetched=bool(vm1 & _F_PREFETCHED),
                    is_pv=False,
                    owner=(vm1 >> _OWNER_SHIFT) - 1,
                )
                for cb in ev_ls:
                    cb(evicted)
        m1 = (core + 1) << _OWNER_SHIFT
        if write:
            m1 |= _F_DIRTY
        ltags.append(tg)
        lstamps.append(tick_val)
        lmeta.append(m1)
        st1.fills += 1
        presence[block] = presence_get(block, 0) | (1 << bit)
        if full1:
            vblock1 = (vtag1 * l1_nsets + sd) * l1_bsz
            vmask = presence_get(vblock1, 0) & ~(1 << bit)
            if vmask:
                presence[vblock1] = vmask
            else:
                presence.pop(vblock1, None)
            if vdirty1:
                hstats.l1_writebacks += 1
                vb = vblock1 >> l2_bs_shift
                vs = vb & l2_set_mask
                vt = vb >> l2_set_shift
                wtags = l2tags_all[vs]
                if vt in wtags:
                    vw = wtags.index(vt)
                    l2st.hits += 1
                    l2._tick = wtk = l2._tick + 1
                    l2stamps_all[vs][vw] = wtk
                    l2meta_all[vs][vw] |= _F_DIRTY
                else:  # write-back raced the eviction: straight off-chip
                    l2st.misses += 1
                    hstats.l2_writebacks += 1
                    mem.writes += 1
        return True

    nows = [int(c.cycles) for c in sim.cores]
    ctxs = []
    for i in range(n):
        agt_rec = None
        engine = sim.sms[i]
        if train and engine is not None:
            engine._now = nows[i]
            agt_rec = engine.agt.record_access
        ctxs.append((
            l1ds[i]._stamps,   # 0
            dirty_d[i],        # 1
            l1ds[i]._meta,     # 2
            l1is[i],           # 3
            l1ds[i],           # 4
            i,                 # 5
            agt_rec,           # 6
            engine,            # 7
            sim.stride[i] if train else None,  # 8
            nows[i],           # 9
            l1ds[i]._tags,     # 10
            l1is[i]._tags,     # 11
            l1is[i]._stamps,   # 12
            l1is[i]._meta,     # 13
            l1ds[i].stats,     # 14
        ))

    chunk_rows = max(1, CHUNK_RECORDS // n)
    off = [0] * n
    try:
        for r0 in range(0, rows, chunk_rows):
            r1 = min(rows, r0 + chunk_rows)
            crows = r1 - r0
            adf = ad2[r0:r1].ravel()
            wff = w2[r0:r1].ravel()
            cidx = np.tile(np.arange(n, dtype=np.int64), crows)

            # Fresh snapshot: staleness from earlier chunks is gone.
            ftags, fmeta = _frozen(l1ds, nsets_d, assoc_d)
            bidx = adf >> bs_shift
            sidx = bidx & set_mask_d
            tag = bidx >> set_shift_d
            hit, way, pref = _verdicts(ftags, fmeta, cidx, sidx, tag)

            bad = ~hit
            if watch2 is not None:
                bad |= watch2[r0:r1].ravel()

            # First frozen touch of each still-prefetched line: the touch
            # that clears the flag (and, for reads, counts the coverage).
            apply_d = np.zeros(crows * n, dtype=np.bool_)
            idxp = np.nonzero(pref)[0]
            if idxp.size:
                lw = (cidx[idxp] * nsets_d + sidx[idxp]) * assoc_d + way[idxp]
                _u, first = np.unique(lw, return_index=True)
                apply_d[idxp[first]] = True

            flags = bad.astype(np.uint8)
            if need2 is not None:
                flags |= need2[r0:r1].ravel().astype(np.uint8) << 1
            flags |= wff.astype(np.uint8) << 2
            flags |= apply_d.astype(np.uint8) << 3

            # Precomputed per-record L1D stamps (the tick invariant).
            tick0 = [c._tick for c in l1ds]
            tick = (np.arange(1, crows + 1, dtype=np.int64)[:, None]
                    + np.asarray(tick0, dtype=np.int64)[None, :]).ravel()

            flags_l = flags.tolist()
            sd_l = sidx.tolist()
            wy_l = way.tolist()
            tk_l = tick.tolist()
            ad_l = adf.tolist()
            pc_l = pc2[r0:r1].ravel().tolist()
            done = bytearray(crows * n)
            for b in dirty_d:
                b[:] = zero_d
            for i in range(n):
                off[i] = 0
            ctx_next = cycle(ctxs).__next__

            r = 0
            for fl, sd, wy, tk, addr, pc in zip(
                flags_l, sd_l, wy_l, tk_l, ad_l, pc_l
            ):
                ctx = ctx_next()
                core = ctx[5]
                if fl & 2:
                    l1i_c = ctx[3]
                    if not l1i_c.warm_fetch_hit(pc):
                        bi = pc >> i_bs_shift
                        si = bi & i_set_mask
                        if not (fast_on and fast_miss(
                            l1i_c, ctx[11][si], ctx[12][si], ctx[13][si],
                            si, bi >> i_set_shift, l1i_c._tick + 1, core,
                            core + n, bi << i_bs_shift, False, None,
                            i_assoc, i_nsets, i_bs,
                        )):
                            warm_miss(core, pc, False, True)
                w = fl & 4
                tick_val = tk + off[core]
                if fl & 1 or ctx[1][sd]:
                    live = True
                elif w:
                    block = (addr >> bs_shift) << bs_shift
                    live = bool(presence_get(block, 0) & ~(1 << core))
                else:
                    live = False
                if live:
                    l1d_c = ctx[4]
                    bi = addr >> bs_shift
                    block = bi << bs_shift
                    watched = False
                    if w and watchers:
                        for ws, we, cb in watchers:
                            if ws <= block < we:
                                cb(block)
                                watched = True
                    if watched:
                        # The callback may cascade into PV state: keep the
                        # whole transition on the reference methods.
                        l1d_c._tick = tick_val - 1
                        if l1d_c.access_hit(addr, _K_DEMAND_WRITE, True):
                            if presence_get(block, 0) & ~(1 << core):
                                hstats.write_upgrades += 1
                                h._coherence_invalidate(block, keep_bit=core)
                        else:
                            warm_miss(core, addr, True)
                    else:
                        tg = bi >> set_shift_d
                        ltags = ctx[10][sd]
                        if tg in ltags:
                            # Inline ``access_hit``-hit: stamp, flags and
                            # counters, with the way found live.
                            lw = ltags.index(tg)
                            st1 = ctx[14]
                            st1.hits += 1
                            lm = ctx[2][sd]
                            m = lm[lw]
                            if w:
                                st1.demand_write_hits += 1
                                m |= _F_DIRTY
                            else:
                                st1.demand_read_hits += 1
                            if m & _F_PREFETCHED:
                                if not w:
                                    st1.covered_misses += 1
                                m &= ~_F_PREFETCHED
                            lm[lw] = m
                            l1d_c._tick = tick_val
                            ctx[0][sd][lw] = tick_val
                            if w and presence_get(block, 0) & ~(1 << core):
                                hstats.write_upgrades += 1
                                h._coherence_invalidate(block, keep_bit=core)
                        elif not (fast_on and fast_miss(
                            l1d_c, ltags, ctx[0][sd], ctx[2][sd], sd, tg,
                            tick_val, core, core, block, bool(w), not w,
                            assoc_d, nsets_d, l1_bs, ctx[1],
                        )):
                            l1d_c._tick = tick_val - 1
                            l1d_c.access_hit(
                                addr,
                                _K_DEMAND_WRITE if w else _K_DEMAND_READ,
                                bool(w),
                            )
                            warm_miss(core, addr, bool(w))
                else:
                    ctx[0][sd][wy] = tick_val
                    if w or fl & 8:
                        md = ctx[2][sd]
                        m = md[wy]
                        if w:
                            m |= _F_DIRTY
                        if fl & 8:
                            m &= ~_F_PREFETCHED
                        md[wy] = m
                    done[r] = 1
                rec_fn = ctx[6]
                if rec_fn is not None:
                    trigger = rec_fn(pc, addr)
                    if trigger is not None:
                        l1d_c = ctx[4]
                        l1d_c._tick = tk + off[core]
                        for block_addr, _ready in ctx[7]._predict(
                            trigger[0], trigger[1], addr, ctx[9]
                        ):
                            pfill(core, block_addr, block=block_addr)
                        off[core] = l1d_c._tick - tk
                st_c = ctx[8]
                if st_c is not None:
                    l1d_c = ctx[4]
                    l1d_c._tick = tk + off[core]
                    for block_addr in st_c.on_access(pc, addr):
                        pfill(core, block_addr, block=block_addr)
                    off[core] = l1d_c._tick - tk
                r += 1

            # ---- chunk-end tallies: counters the bulk commits deferred
            done_np = np.frombuffer(done, dtype=np.uint8).astype(np.bool_)
            nb = done_np.reshape(crows, n).sum(axis=0)
            nw = (done_np & wff).reshape(crows, n).sum(axis=0)
            nc = (done_np & apply_d & ~wff).reshape(crows, n).sum(axis=0)
            for i in range(n):
                st = l1ds[i].stats
                b = int(nb[i])
                bw = int(nw[i])
                st.hits += b
                st.demand_read_hits += b - bw
                st.demand_write_hits += bw
                st.covered_misses += int(nc[i])
                # Absolute final tick: one demand tick per record plus the
                # prefetch-install offsets accumulated this chunk.
                l1ds[i]._tick = tick0[i] + crows + off[i]
    finally:
        for cache, mk in marks:
            cache.eviction_listeners.remove(mk)

    if model_ifetch:
        for i in range(n):
            sim._last_iblock[i] = int(ib2[-1, i])
    return True
