"""Study execution: expanded matrix points through the SweepRunner.

``run_study`` is deliberately thin: every expanded point is already a
content-hashed :class:`~repro.runner.spec.ExperimentSpec`, so execution
is exactly one :meth:`SweepRunner.run` call — inheriting the in-process
cache, persistent store, broker lease/retry/quarantine semantics and any
configured backend unchanged.  The output is one JSONL record per run
(expansion order), carrying the run's matrix coordinates, its full spec
and every result counter, so a report can be rebuilt later without
re-simulating anything.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.runner.serialize import result_to_dict
from repro.runner.spec import ExperimentScale
from repro.study.checks import RunRecord
from repro.study.matrix import StudyMatrix, StudyPoint


def point_record(
    matrix: StudyMatrix, point: StudyPoint, result
) -> Dict[str, Any]:
    """The plain-JSON record one run contributes to the study JSONL."""
    return {
        "study": matrix.name,
        "index": point.index,
        "key": point.spec.key,
        "coords": dict(point.coords),
        "labels": dict(point.labels),
        "spec": point.spec.to_dict(),
        "result": result_to_dict(result),
    }


def records_to_runs(records: Sequence[Dict[str, Any]]) -> List[RunRecord]:
    """JSONL records rebuilt into check-ready :class:`RunRecord` objects."""
    from repro.runner.serialize import result_from_dict

    return [
        RunRecord(
            index=record["index"],
            key=record["key"],
            coords=dict(record["coords"]),
            labels=dict(record.get("labels", {})),
            result=result_from_dict(record["result"]),
        )
        for record in records
    ]


def write_jsonl(
    records: Sequence[Dict[str, Any]], path: Union[str, os.PathLike]
) -> pathlib.Path:
    """Atomically write one record per line (stable key order)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = "".join(
        json.dumps(record, sort_keys=True, allow_nan=False) + "\n"
        for record in records
    )
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".study.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def run_study(
    matrix: StudyMatrix,
    scale: Optional[ExperimentScale] = None,
    axis_overrides: Optional[Dict[str, Sequence[Any]]] = None,
    runner=None,
    observer=None,
    out: Optional[Union[str, os.PathLike]] = None,
) -> List[Dict[str, Any]]:
    """Expand ``matrix``, resolve every run, return the JSONL records.

    ``runner`` defaults to the active process-wide
    :func:`repro.runner.context.get_runner`; ``out`` additionally writes
    the records as JSONL.  Raises
    :class:`~repro.runner.broker.PoisonSpecError` if a spec exhausts its
    retries (the sweep still completes first).
    """
    from repro.runner.context import get_runner

    points = matrix.expand(scale=scale, axis_overrides=axis_overrides)
    runner = runner if runner is not None else get_runner()
    results = runner.run([p.spec for p in points], observer=observer)
    records = [
        point_record(matrix, point, result)
        for point, result in zip(points, results)
    ]
    if out is not None:
        write_jsonl(records, out)
    return records


def default_out_path(matrix: StudyMatrix) -> pathlib.Path:
    """Where ``repro study run`` writes (and ``report`` reads) by default.

    ``REPRO_STUDY_OUT`` names the directory (default ``./study-runs``).
    """
    root = pathlib.Path(os.environ.get("REPRO_STUDY_OUT", "study-runs"))
    return root / f"{matrix.name}.jsonl"
