"""Declarative experiment matrices: TOML files expanded into specs.

A matrix file declares a study entirely as data::

    [study]
    name = "bandwidth"
    title = "PV speedup under finite DRAM bandwidth"

    [scale]                    # optional pinned scale (else env/caller)
    refs_per_core = 1200
    warmup_refs = 600
    window_refs = 120

    [runner]                   # optional execution defaults (CLI overrides)
    jobs = 2
    backend = "auto"
    quiet = true

    [axes]                     # cross-product, in declaration order
    workload = ["Apache", "Oracle", "Qry17"]
    channels = [4, 2, 1]
    config = ["none", "sms-1k", "pv8"]

    [defaults]                 # per-study overrides applied to every run
    seed = 1

    [[runs]]                   # explicit additions beyond the product
    workload = "Apache"
    channels = 8
    config = "pv8"

    [[expect]]                 # declared expectation checks (see checks.py)
    kind = "threshold"
    metric = "pv_l2_fill_rate"
    op = ">="
    value = 0.98
    where = {config = "pv8", channels = 1}

Axis names are **spec dimensions** — every name must be one of
:data:`SPEC_DIMENSIONS`; axis values may be scalars or labelled tables
(``{value = "sms-16", label = "SMS budget"}``).  Expansion is
deterministic: the cross-product nests in axis declaration order,
explicit ``[[runs]]`` entries append in file order, and every point
resolves to a content-hashed :class:`~repro.runner.spec.ExperimentSpec`
— so expanding the same file twice yields identical keys, which is what
the CI matrix-validation step asserts.

All validation happens here, at load/expand time, with the offending
file and table path in the error (:class:`MatrixError`) — an unknown
workload, configuration or axis name can never reach a sweep worker.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

try:  # pragma: no cover - import guard for pre-3.11 interpreters
    import tomllib
except ImportError:  # pragma: no cover
    tomllib = None

from repro.memory.contention import ContentionConfig
from repro.runner.spec import ExperimentScale, ExperimentSpec
from repro.sim.config import PrefetcherConfig
from repro.sim.sampling import SamplingConfig
from repro.study.presets import resolve_config
from repro.workloads.registry import workload_names

#: Every axis / default / run-entry key a matrix may use, and what it maps
#: to on the :class:`ExperimentSpec`:
#:
#: * ``workload``       — workload name (validated against the registry);
#: * ``config``         — preset name or spec string (see presets.py);
#: * ``channels``       — finite DRAM channels (0 = analytic model);
#: * ``contention``     — full :class:`ContentionConfig` knob table;
#: * ``sampled``        — bool: two-speed sampled execution for this run,
#:   using the matrix ``[sampling]`` knobs (or a scale-derived default);
#: * ``sampling``       — full :class:`SamplingConfig` knob table;
#: * ``l2_size`` / ``l2_tag_latency`` / ``l2_data_latency`` — Section 4.5
#:   hierarchy sensitivity overrides;
#: * ``seed`` / ``pv_aware`` — remaining spec fields.
SPEC_DIMENSIONS = (
    "workload",
    "config",
    "channels",
    "contention",
    "sampled",
    "sampling",
    "l2_size",
    "l2_tag_latency",
    "l2_data_latency",
    "seed",
    "pv_aware",
)

#: Expectation-check kinds the report engine implements (checks.py).
CHECK_KINDS = ("monotonic", "threshold", "ci_inclusion")

#: Comparison operators a threshold check may declare.
THRESHOLD_OPS = (">=", ">", "<=", "<")

#: Monotonic-check directions (along the axis' declared value order).
DIRECTIONS = ("nondecreasing", "nonincreasing")


class MatrixError(ValueError):
    """A matrix file failed validation; the message carries file context."""


def _err(source: str, context: str, message: str) -> MatrixError:
    return MatrixError(f"{source}: {context}: {message}")


@dataclass(frozen=True)
class AxisValue:
    """One declared axis value with its display label."""

    value: Any
    label: str


@dataclass(frozen=True)
class StudyPoint:
    """One expanded run: its matrix coordinates and the spec they name."""

    index: int
    coords: Dict[str, Any]
    labels: Dict[str, str]
    spec: ExperimentSpec


@dataclass(frozen=True)
class StudyMatrix:
    """A parsed, validated matrix file."""

    name: str
    title: str
    description: str
    source: str
    scale: Optional[ExperimentScale]
    runner: Dict[str, Any]
    sampling: Optional[Dict[str, Any]]
    axes: Dict[str, Tuple[AxisValue, ...]]
    defaults: Dict[str, Any]
    runs: Tuple[Dict[str, Any], ...]
    expectations: Tuple[Dict[str, Any], ...]
    report: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------- helpers

    def has_axis(self, name: str) -> bool:
        return name in self.axes

    def axis_values(self, name: str) -> List[Any]:
        """Raw values of one axis, in declared order."""
        if name not in self.axes:
            raise KeyError(f"{self.name}: no axis {name!r}")
        return [av.value for av in self.axes[name]]

    def axis_labels(self, name: str) -> List[str]:
        """Display labels of one axis, in declared order."""
        if name not in self.axes:
            raise KeyError(f"{self.name}: no axis {name!r}")
        return [av.label for av in self.axes[name]]

    def workloads(self) -> List[str]:
        return self.axis_values("workload")

    def configs(self) -> List[PrefetcherConfig]:
        """The config axis resolved to :class:`PrefetcherConfig` objects."""
        return [resolve_config(v) for v in self.axis_values("config")]

    # ------------------------------------------------------------ expansion

    def effective_scale(
        self, scale: Optional[ExperimentScale] = None
    ) -> Optional[ExperimentScale]:
        """Caller scale, else the matrix ``[scale]``, else None (env)."""
        return scale if scale is not None else self.scale

    def expand(
        self,
        scale: Optional[ExperimentScale] = None,
        axis_overrides: Optional[Dict[str, Sequence[Any]]] = None,
    ) -> List[StudyPoint]:
        """Deterministically expand into content-hashed spec points.

        ``axis_overrides`` replaces the declared values of named axes
        (how figure drivers honor ``--workloads``); overriding an axis
        the matrix does not declare is an error.
        """
        axes = dict(self.axes)
        for name, values in (axis_overrides or {}).items():
            if name not in axes:
                raise _err(
                    self.source, "[axes]",
                    f"cannot override undeclared axis {name!r} "
                    f"(declared: {', '.join(axes) or 'none'})",
                )
            axes[name] = _parse_axis(self.source, name, list(values))
        run_scale = self.effective_scale(scale)
        points: List[StudyPoint] = []
        for coords, labels in _product(axes):
            points.append(self._point(len(points), coords, labels, run_scale))
        for i, entry in enumerate(self.runs):
            coords = dict(entry)
            labels = {
                dim: _default_label(self.source, dim, value)
                for dim, value in coords.items()
            }
            points.append(self._point(len(points), coords, labels, run_scale))
        if not points:
            raise _err(
                self.source, "[axes]",
                "matrix expands to zero runs (no axes and no [[runs]])",
            )
        return points

    def _point(
        self,
        index: int,
        coords: Dict[str, Any],
        labels: Dict[str, str],
        scale: Optional[ExperimentScale],
    ) -> StudyPoint:
        merged = dict(self.defaults)
        merged.update(coords)
        spec = _build_spec(self.source, merged, scale, self.sampling)
        return StudyPoint(index=index, coords=coords, labels=labels, spec=spec)


# ---------------------------------------------------------------- expansion


def _product(
    axes: Dict[str, Tuple[AxisValue, ...]],
) -> List[Tuple[Dict[str, Any], Dict[str, str]]]:
    """Cross-product points, nested in axis declaration order."""
    points: List[Tuple[Dict[str, Any], Dict[str, str]]] = (
        [({}, {})] if axes else []
    )
    for name, values in axes.items():
        points = [
            ({**coords, name: av.value}, {**labels, name: av.label})
            for coords, labels in points
            for av in values
        ]
    return points


def _build_spec(
    source: str,
    kwargs: Dict[str, Any],
    scale: Optional[ExperimentScale],
    matrix_sampling: Optional[Dict[str, Any]] = None,
) -> ExperimentSpec:
    """Resolve merged dimension values into one ExperimentSpec."""
    kw = dict(kwargs)
    workload = kw.pop("workload", None)
    if workload is None:
        raise _err(source, "[[runs]]",
                   "run is missing a 'workload' (axis, default or entry)")
    config_value = kw.pop("config", None)
    if config_value is None:
        raise _err(source, "[[runs]]",
                   "run is missing a 'config' (axis, default or entry)")
    config = resolve_config(config_value)

    channels = kw.pop("channels", None)
    contention_knobs = kw.pop("contention", None)
    if channels is not None and contention_knobs is not None:
        raise _err(source, "channels/contention",
                   "declare either 'channels' or a 'contention' table, not both")
    contention = None
    if channels is not None:
        if channels > 0:
            contention = ContentionConfig(enabled=True, dram_channels=channels)
    elif contention_knobs is not None:
        contention = ContentionConfig(enabled=True, **contention_knobs)

    sampled = kw.pop("sampled", False)
    sampling_knobs = kw.pop("sampling", None)
    sampling = None
    if sampling_knobs is not None:
        sampling = SamplingConfig.smarts(**sampling_knobs)
    elif sampled:
        if matrix_sampling is not None:
            sampling = SamplingConfig.smarts(**matrix_sampling)
        else:
            refs = (scale or ExperimentScale.from_env()).refs_per_core
            sampling = SamplingConfig.for_scale(refs)

    return ExperimentSpec.build(
        workload,
        config,
        scale=scale,
        contention=contention,
        sampling=sampling,
        **kw,
    )


# --------------------------------------------------------------- validation


def _default_label(source: str, dim: str, value: Any) -> str:
    if dim == "config":
        return resolve_config(value).label
    return str(value)


def _validate_dimension(source: str, context: str, dim: str, value: Any) -> Any:
    """Check one (dimension, value) pair; returns the value unchanged."""
    if dim not in SPEC_DIMENSIONS:
        raise _err(
            source, context,
            f"unknown axis/dimension {dim!r} "
            f"(choices: {', '.join(SPEC_DIMENSIONS)})",
        )
    try:
        if dim == "workload":
            if value not in workload_names():
                raise ValueError(
                    f"unknown workload {value!r} "
                    f"(choices: {', '.join(workload_names())})"
                )
        elif dim == "config":
            resolve_config(value)
        elif dim == "channels":
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ValueError(
                    f"channels must be a non-negative integer, got {value!r}"
                )
        elif dim == "contention":
            if not isinstance(value, dict):
                raise ValueError("contention must be a table of knobs")
            ContentionConfig(enabled=True, **value)
        elif dim in ("sampled", "pv_aware"):
            if not isinstance(value, bool):
                raise ValueError(f"{dim} must be a boolean, got {value!r}")
        elif dim == "sampling":
            if not isinstance(value, dict):
                raise ValueError("sampling must be a table of knobs")
            SamplingConfig.smarts(**value)
        elif dim == "seed":
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"seed must be an integer, got {value!r}")
        else:  # l2_size / l2_tag_latency / l2_data_latency
            if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
                raise ValueError(
                    f"{dim} must be a positive integer, got {value!r}"
                )
    except MatrixError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        detail = exc.args[0] if exc.args else exc
        raise _err(source, context, str(detail)) from None
    return value


def _parse_axis(
    source: str, name: str, raw_values: List[Any]
) -> Tuple[AxisValue, ...]:
    context = f"[axes].{name}"
    if not isinstance(raw_values, list):
        raise _err(source, context, "axis values must be an array")
    if not raw_values:
        raise _err(source, context,
                   "axis has no values (the cross-product would be empty)")
    values: List[AxisValue] = []
    for i, raw in enumerate(raw_values):
        item_context = f"{context}[{i}]"
        label = None
        if isinstance(raw, dict):
            unknown = set(raw) - {"value", "label"}
            if unknown or "value" not in raw:
                raise _err(
                    source, item_context,
                    "labelled axis values are tables "
                    "{value = ..., label = \"...\"}",
                )
            label = raw.get("label")
            raw = raw["value"]
        _validate_dimension(source, item_context, name, raw)
        values.append(AxisValue(
            value=raw,
            label=str(label) if label is not None
            else _default_label(source, name, raw),
        ))
    seen = set()
    for av in values:
        marker = repr(av.value)
        if marker in seen:
            raise _err(source, context, f"duplicate axis value {av.value!r}")
        seen.add(marker)
    return tuple(values)


def _parse_where(source: str, context: str, where: Any) -> Dict[str, Any]:
    if not isinstance(where, dict):
        raise _err(source, context, "'where' must be a table of axis = value")
    for dim in where:
        if dim not in SPEC_DIMENSIONS:
            raise _err(
                source, f"{context}.where",
                f"unknown dimension {dim!r} "
                f"(choices: {', '.join(SPEC_DIMENSIONS)})",
            )
    return dict(where)


def _parse_expect(
    source: str, axes: Dict[str, Tuple[AxisValue, ...]], entries: Any
) -> Tuple[Dict[str, Any], ...]:
    if not isinstance(entries, list):
        raise _err(source, "[[expect]]", "expect entries must be tables")
    parsed: List[Dict[str, Any]] = []
    for i, entry in enumerate(entries):
        context = f"[[expect]][{i}]"
        if not isinstance(entry, dict):
            raise _err(source, context, "expect entry must be a table")
        kind = entry.get("kind")
        if kind not in CHECK_KINDS:
            raise _err(
                source, context,
                f"unknown check kind {kind!r} "
                f"(choices: {', '.join(CHECK_KINDS)})",
            )
        check: Dict[str, Any] = {
            "kind": kind,
            "name": str(entry.get("name", "")),
            "where": _parse_where(source, context, entry.get("where", {})),
        }
        if kind == "threshold":
            metric = entry.get("metric")
            if not metric:
                raise _err(source, context, "threshold check needs a 'metric'")
            op = entry.get("op", ">=")
            if op not in THRESHOLD_OPS:
                raise _err(
                    source, context,
                    f"unknown op {op!r} (choices: {', '.join(THRESHOLD_OPS)})",
                )
            if not isinstance(entry.get("value"), (int, float)):
                raise _err(source, context,
                           "threshold check needs a numeric 'value'")
            check.update(metric=str(metric), op=op,
                         value=float(entry["value"]))
        elif kind == "monotonic":
            metric = entry.get("metric")
            axis = entry.get("axis")
            if not metric or not axis:
                raise _err(source, context,
                           "monotonic check needs 'metric' and 'axis'")
            if axis not in axes:
                raise _err(
                    source, context,
                    f"monotonic axis {axis!r} is not a declared axis "
                    f"(declared: {', '.join(axes) or 'none'})",
                )
            direction = entry.get("direction", "nondecreasing")
            if direction not in DIRECTIONS:
                raise _err(
                    source, context,
                    f"unknown direction {direction!r} "
                    f"(choices: {', '.join(DIRECTIONS)})",
                )
            tolerance = entry.get("tolerance", 0.0)
            if not isinstance(tolerance, (int, float)) or tolerance < 0:
                raise _err(source, context,
                           "tolerance must be a non-negative number")
            order = entry.get("order")
            if order is not None:
                declared = {repr(av.value) for av in axes[axis]}
                if not isinstance(order, list) or len(order) < 2:
                    raise _err(source, context,
                               "'order' must list at least two axis values")
                for v in order:
                    if repr(v) not in declared:
                        raise _err(
                            source, context,
                            f"order value {v!r} is not a declared "
                            f"value of axis {axis!r}",
                        )
            check.update(metric=str(metric), axis=str(axis),
                         direction=direction, tolerance=float(tolerance),
                         order=list(order) if order is not None else None)
        else:  # ci_inclusion
            axis = entry.get("axis", "sampled")
            if axis not in axes:
                raise _err(
                    source, context,
                    f"ci_inclusion axis {axis!r} is not a declared axis "
                    f"(declared: {', '.join(axes) or 'none'})",
                )
            confidence = entry.get("confidence", 0.95)
            if not isinstance(confidence, (int, float)) or not 0 < confidence < 1:
                raise _err(source, context,
                           "confidence must be a number in (0, 1)")
            check.update(axis=str(axis), confidence=float(confidence),
                         metric="aggregate_ipc")
        if not check["name"]:
            check["name"] = f"{kind}:{check.get('metric', check.get('axis'))}"
        parsed.append(check)
    return tuple(parsed)


def _parse_report(source: str, raw: Any) -> Dict[str, Any]:
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise _err(source, "[report]", "report must be a table")
    report: Dict[str, Any] = {}
    columns = raw.get("columns", [])
    if not isinstance(columns, list) or not all(
        isinstance(c, str) for c in columns
    ):
        raise _err(source, "[report].columns",
                   "columns must be an array of metric names")
    report["columns"] = list(columns)
    paper_entries = raw.get("paper", [])
    if not isinstance(paper_entries, list):
        raise _err(source, "[[report.paper]]", "paper entries must be tables")
    paper: List[Dict[str, Any]] = []
    for i, entry in enumerate(paper_entries):
        context = f"[[report.paper]][{i}]"
        if not isinstance(entry, dict) or not entry.get("metric"):
            raise _err(source, context, "paper entry needs a 'metric'")
        if not isinstance(entry.get("value"), (int, float)):
            raise _err(source, context, "paper entry needs a numeric 'value'")
        paper.append({
            "label": str(entry.get("label", entry["metric"])),
            "metric": str(entry["metric"]),
            "value": float(entry["value"]),
            "where": _parse_where(source, context, entry.get("where", {})),
        })
    report["paper"] = paper
    unknown = set(raw) - {"columns", "paper"}
    if unknown:
        raise _err(source, "[report]",
                   f"unknown report keys: {sorted(unknown)}")
    return report


# ------------------------------------------------------------------ loading

_TOP_LEVEL_TABLES = {
    "study", "scale", "runner", "sampling", "axes", "defaults", "runs",
    "expect", "report",
}

_RUNNER_KEYS = {"jobs", "backend", "store", "quiet"}


def parse_matrix(text: str, source: str = "<string>") -> StudyMatrix:
    """Parse and fully validate one matrix document."""
    if tomllib is None:  # pragma: no cover - pre-3.11 guard
        raise MatrixError(
            f"{source}: matrix files need the stdlib 'tomllib' "
            "(Python >= 3.11)"
        )
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise MatrixError(f"{source}: not valid TOML: {exc}") from None

    unknown = set(data) - _TOP_LEVEL_TABLES
    if unknown:
        raise _err(
            source, "top level",
            f"unknown tables: {sorted(unknown)} "
            f"(choices: {', '.join(sorted(_TOP_LEVEL_TABLES))})",
        )

    study = data.get("study", {})
    if not isinstance(study, dict) or not study.get("name"):
        raise _err(source, "[study]", "matrix needs [study] with a 'name'")
    name = str(study["name"])

    scale = None
    if "scale" in data:
        try:
            scale = ExperimentScale(**data["scale"])
        except TypeError as exc:
            raise _err(source, "[scale]", str(exc)) from None

    runner = data.get("runner", {})
    if not isinstance(runner, dict) or set(runner) - _RUNNER_KEYS:
        raise _err(
            source, "[runner]",
            f"runner keys must be among {sorted(_RUNNER_KEYS)}",
        )

    sampling = data.get("sampling")
    if sampling is not None:
        _validate_dimension(source, "[sampling]", "sampling", sampling)

    raw_axes = data.get("axes", {})
    if not isinstance(raw_axes, dict):
        raise _err(source, "[axes]", "axes must be a table of arrays")
    axes = {
        axis_name: _parse_axis(source, axis_name, values)
        for axis_name, values in raw_axes.items()
    }

    defaults = data.get("defaults", {})
    if not isinstance(defaults, dict):
        raise _err(source, "[defaults]", "defaults must be a table")
    for dim, value in defaults.items():
        _validate_dimension(source, f"[defaults].{dim}", dim, value)

    raw_runs = data.get("runs", [])
    if not isinstance(raw_runs, list):
        raise _err(source, "[[runs]]", "runs must be an array of tables")
    runs: List[Dict[str, Any]] = []
    for i, entry in enumerate(raw_runs):
        context = f"[[runs]][{i}]"
        if not isinstance(entry, dict):
            raise _err(source, context, "run entry must be a table")
        for dim, value in entry.items():
            _validate_dimension(source, f"{context}.{dim}", dim, value)
        merged = dict(defaults)
        merged.update(entry)
        for required in ("workload", "config"):
            if required not in merged:
                raise _err(source, context,
                           f"run entry is missing {required!r}")
        runs.append(dict(entry))

    expectations = _parse_expect(source, axes, data.get("expect", []))
    report = _parse_report(source, data.get("report"))

    matrix = StudyMatrix(
        name=name,
        title=str(study.get("title", name)),
        description=str(study.get("description", "")),
        source=source,
        scale=scale,
        runner=dict(runner),
        sampling=dict(sampling) if sampling is not None else None,
        axes=axes,
        defaults=dict(defaults),
        runs=tuple(runs),
        expectations=expectations,
        report=report,
    )
    # Fail on empty/contradictory lattices now, not inside a worker.
    matrix.expand()
    return matrix


def load_matrix(path: Union[str, os.PathLike]) -> StudyMatrix:
    """Load and validate a matrix file."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise MatrixError(f"{path}: cannot read matrix file: {exc}") from None
    return parse_matrix(text, source=str(path))


# -------------------------------------------------------- shipped matrices


def studies_root() -> pathlib.Path:
    """The directory of the shipped ``studies/*.toml`` matrices.

    ``REPRO_STUDIES`` overrides; the default resolves relative to the
    repository layout (``<root>/src/repro/study/`` -> ``<root>/studies``).
    """
    env = os.environ.get("REPRO_STUDIES")
    if env:
        return pathlib.Path(env)
    return pathlib.Path(__file__).resolve().parents[3] / "studies"


_SHIPPED_CACHE: Dict[str, StudyMatrix] = {}


def shipped_matrix(name: str) -> StudyMatrix:
    """A shipped matrix by file stem (cached per process)."""
    path = studies_root() / f"{name}.toml"
    key = str(path)
    cached = _SHIPPED_CACHE.get(key)
    if cached is None:
        cached = _SHIPPED_CACHE[key] = load_matrix(path)
    return cached


def shipped_matrices() -> List[pathlib.Path]:
    """Every shipped matrix file, sorted by name."""
    root = studies_root()
    if not root.is_dir():
        return []
    return sorted(root.glob("*.toml"))
