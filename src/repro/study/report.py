"""Markdown study reports: run tables, paper deltas, expectation checks.

``render_report`` replays a study's JSONL records (no re-simulation)
into a deterministic markdown document:

* a **runs table** — one row per run, coordinate columns in axis order
  plus the metrics the matrix' ``[report] columns`` asks for;
* a **paper comparison** — ``[[report.paper]]`` entries rendered as
  measured-vs-paper deltas (measured = mean over the matching runs);
* an **expectation checks** section — every ``[[expect]]`` entry
  evaluated by :mod:`repro.study.checks`, PASS/FAIL with per-run
  evidence lines.

Float formatting is fixed at four decimals so a pinned golden report is
byte-stable across runs of the deterministic simulator.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.study.checks import (
    CheckOutcome,
    RunRecord,
    evaluate_checks,
    metric_value,
)
from repro.study.executor import records_to_runs
from repro.study.matrix import StudyMatrix

#: Metrics shown when a matrix declares no ``[report] columns``.
DEFAULT_COLUMNS = ["aggregate_ipc", "coverage", "offchip_transfers"]


def load_records(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """Parse one JSONL study output back into records."""
    path = pathlib.Path(path)
    records = []
    for i, line in enumerate(path.read_text().splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError as exc:
            raise ValueError(f"{path}:{i + 1}: not valid JSON: {exc}") from None
    return records


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _md_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join(" --- " for _ in header) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def _coord_columns(matrix: StudyMatrix, runs: Sequence[RunRecord]) -> List[str]:
    """Coordinate columns: declared axes first, then any run-entry extras."""
    columns = list(matrix.axes)
    for run in runs:
        for dim in run.coords:
            if dim not in columns:
                columns.append(dim)
    return columns


def _metric_cell(run: RunRecord, metric: str) -> str:
    try:
        return _fmt(metric_value(run.result, metric))
    except KeyError:
        return ""


def _paper_rows(
    matrix: StudyMatrix, runs: Sequence[RunRecord]
) -> List[Tuple[str, str, str, str]]:
    rows = []
    for entry in matrix.report.get("paper", []):
        matched = [
            r for r in runs
            if all(r.coords.get(k) == v for k, v in entry["where"].items())
        ]
        values = []
        for run in matched:
            try:
                values.append(metric_value(run.result, entry["metric"]))
            except KeyError:
                pass
        if values:
            measured = sum(values) / len(values)
            rows.append((
                entry["label"], _fmt(entry["value"]), _fmt(measured),
                _fmt(measured - entry["value"]),
            ))
        else:
            rows.append((entry["label"], _fmt(entry["value"]), "n/a", "n/a"))
    return rows


def render_report(
    matrix: StudyMatrix,
    records: Sequence[Dict[str, Any]],
    checks: Sequence[CheckOutcome] = None,
) -> str:
    """The full markdown report for one study's records.

    ``checks`` may carry pre-evaluated outcomes; by default every
    declared expectation is evaluated here.
    """
    runs = records_to_runs(records)
    if checks is None:
        checks = evaluate_checks(matrix, runs)

    lines: List[str] = [f"# Study: {matrix.title}", ""]
    if matrix.description:
        lines += [matrix.description, ""]
    lines.append(f"- matrix: `{matrix.name}`")
    lines.append(f"- runs: {len(runs)} ({len({r.key for r in runs})} unique specs)")
    if matrix.scale is not None:
        s = matrix.scale
        lines.append(
            f"- scale: {s.refs_per_core} refs/core, "
            f"{s.warmup_refs} warmup, {s.window_refs}-ref windows"
        )
    lines.append("")

    # Runs table -----------------------------------------------------------
    coord_cols = _coord_columns(matrix, runs)
    metric_cols = matrix.report.get("columns") or DEFAULT_COLUMNS
    lines.append(f"## Runs ({len(runs)})")
    lines.append("")
    table_rows = []
    for run in runs:
        row = [
            str(run.labels.get(dim, run.coords.get(dim, "")))
            if dim in run.coords else ""
            for dim in coord_cols
        ]
        row += [_metric_cell(run, metric) for metric in metric_cols]
        table_rows.append(row)
    lines += _md_table(list(coord_cols) + list(metric_cols), table_rows)
    lines.append("")

    # Paper comparison -----------------------------------------------------
    paper_rows = _paper_rows(matrix, runs)
    if paper_rows:
        lines.append("## Paper comparison")
        lines.append("")
        lines += _md_table(
            ["claim", "paper", "measured", "delta"],
            [list(row) for row in paper_rows],
        )
        lines.append("")

    # Expectation checks ---------------------------------------------------
    lines.append(f"## Expectation checks ({len(checks)})")
    lines.append("")
    if checks:
        passed = sum(1 for c in checks if c.passed)
        lines += _md_table(
            ["check", "kind", "status"],
            [[c.name, c.kind, c.status] for c in checks],
        )
        lines.append("")
        lines.append(f"**{passed}/{len(checks)} checks passed.**")
        lines.append("")
        for check in checks:
            lines.append(f"### {check.status}: {check.name}")
            lines.append("")
            for evidence in check.evidence:
                lines.append(f"- {evidence}")
            lines.append("")
    else:
        lines.append("(no expectation checks declared)")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
