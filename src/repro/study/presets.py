"""Named prefetcher-configuration catalogue shared by the CLI and matrices.

Matrix files (and ``repro run``/``repro sweep``) name configurations
either by a **preset** from :data:`CONFIG_PRESETS` — the paper's bar
lineup plus the generality-study engines — or by a compact **spec
string** for one-off geometries::

    none | infinite | stride          the parameterless modes
    dedicated:512                     SMS, 512-set PHT, default 11-way
    dedicated:1024x16                 SMS, 1024-set 16-way PHT
    virtualized:8   (alias pv:8)      SMS-PV with an 8-set PVCache

:func:`resolve_config` turns either form into a
:class:`~repro.sim.config.PrefetcherConfig`; unknown names raise
``KeyError`` with the full choice list so matrix validation can fail
loudly at expand time instead of inside a worker.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

from repro.sim.config import EngineConfig, PrefetcherConfig

#: Budget-matched dedicated engine geometries (~128 entries, under 1KB on
#: chip — comparable to the Section 4.6 PVProxy budget).
_ENGINE_BUDGET = dict(n_sets=32, assoc=4)

#: Every named configuration a matrix file or CLI command may reference.
CONFIG_PRESETS: Dict[str, Callable[[], PrefetcherConfig]] = {
    "none": PrefetcherConfig.none,
    "infinite": PrefetcherConfig.infinite,
    "sms-1k": lambda: PrefetcherConfig.dedicated(1024, 11),
    "sms-16": lambda: PrefetcherConfig.dedicated(16, 11),
    "sms-8": lambda: PrefetcherConfig.dedicated(8, 11),
    "pv8": lambda: PrefetcherConfig.virtualized(8),
    "pv16": lambda: PrefetcherConfig.virtualized(16),
    "stride": PrefetcherConfig.stride,
    "btb": lambda: PrefetcherConfig.none().with_engines(EngineConfig.btb()),
    "btb-budget": lambda: PrefetcherConfig.none().with_engines(
        EngineConfig.btb(**_ENGINE_BUDGET)),
    "btb-pv": lambda: PrefetcherConfig.none().with_engines(
        EngineConfig.btb("virtualized")),
    "lvp": lambda: PrefetcherConfig.none().with_engines(EngineConfig.lvp()),
    "lvp-budget": lambda: PrefetcherConfig.none().with_engines(
        EngineConfig.lvp(**_ENGINE_BUDGET)),
    "lvp-pv": lambda: PrefetcherConfig.none().with_engines(
        EngineConfig.lvp("virtualized")),
    "shared-pv": lambda: PrefetcherConfig.virtualized(8).with_engines(
        EngineConfig.btb("virtualized"), EngineConfig.lvp("virtualized")),
}


def _parse_spec_string(text: str) -> PrefetcherConfig:
    """``mode:geometry`` one-off configurations (see module docstring)."""
    mode, _, geometry = text.partition(":")
    mode = mode.strip().lower()
    geometry = geometry.strip()
    if mode == "dedicated":
        sets, _, assoc = geometry.partition("x")
        return PrefetcherConfig.dedicated(
            int(sets), int(assoc) if assoc else 11
        )
    if mode in ("virtualized", "pv"):
        return PrefetcherConfig.virtualized(int(geometry) if geometry else 8)
    raise ValueError(f"unknown configuration spec {text!r}")


def resolve_config(
    value: Union[str, PrefetcherConfig],
) -> PrefetcherConfig:
    """A :class:`PrefetcherConfig` for a preset name or spec string.

    Raises ``KeyError`` naming the choices for anything unresolvable.
    """
    if isinstance(value, PrefetcherConfig):
        return value
    name = str(value).strip()
    preset = CONFIG_PRESETS.get(name)
    if preset is not None:
        return preset()
    if ":" in name:
        try:
            return _parse_spec_string(name)
        except ValueError:
            pass
    raise KeyError(
        f"unknown configuration {name!r}; choices: "
        f"{', '.join(sorted(CONFIG_PRESETS))}, or a spec string like "
        "'dedicated:512x11' / 'virtualized:8'"
    )
