"""Expectation checks: the paper's qualitative claims as data.

A matrix declares its expected shapes as ``[[expect]]`` entries; this
module evaluates them over the per-run records a study produced.  Three
kinds cover the claims the existing studies assert in code today:

* ``threshold`` — a metric compared against a constant over every
  matching run (e.g. *PV8 keeps the L2 fill rate above 98% at one DRAM
  channel*, Section 4.3);
* ``monotonic`` — a metric must be non-decreasing/non-increasing along
  one axis' declared value order, within every group of runs that agree
  on all other coordinates (e.g. *narrowing DRAM channels must never
  improve IPC*);
* ``ci_inclusion`` — for each pair of runs differing only in the
  boolean axis (default ``sampled``), the sampled run's IPC estimate
  must fall inside the full-detail run's confidence interval (the
  SMARTS statistical-quality contract).

Every outcome carries human-readable evidence, so a failed report states
which runs violated the claim and by how much.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.sim.metrics import SimResult
from repro.study.matrix import StudyMatrix

_OPS = {">=": operator.ge, ">": operator.gt, "<=": operator.le, "<": operator.lt}


@dataclass(frozen=True)
class RunRecord:
    """One study run: its matrix coordinates and the measured result."""

    index: int
    key: str
    coords: Dict[str, Any]
    labels: Dict[str, str]
    result: SimResult


@dataclass
class CheckOutcome:
    """One evaluated expectation check."""

    name: str
    kind: str
    passed: bool
    evidence: List[str] = field(default_factory=list)

    @property
    def status(self) -> str:
        return "PASS" if self.passed else "FAIL"


def metric_value(result: SimResult, metric: str) -> float:
    """Resolve a (possibly dotted) metric name on one result.

    Plain names read :class:`SimResult` fields/properties
    (``aggregate_ipc``, ``coverage``, ``pv_l2_fill_rate``, ...); dotted
    names descend into mappings, e.g. ``engine_stats.btb.hit_rate``.
    """
    obj: Any = result
    for part in metric.split("."):
        if isinstance(obj, dict):
            if part not in obj:
                raise KeyError(
                    f"metric {metric!r}: no key {part!r} "
                    f"(available: {', '.join(sorted(obj))})"
                )
            obj = obj[part]
        elif hasattr(obj, part):
            obj = getattr(obj, part)
        else:
            raise KeyError(f"unknown metric {metric!r} (failed at {part!r})")
    return obj


def _matches(record: RunRecord, where: Dict[str, Any]) -> bool:
    return all(record.coords.get(dim) == value for dim, value in where.items())


def _select(records: Sequence[RunRecord], where: Dict[str, Any]) -> List[RunRecord]:
    return [r for r in records if _matches(r, where)]


def _coord_text(record: RunRecord, skip: Sequence[str] = ()) -> str:
    parts = [
        f"{dim}={record.labels.get(dim, record.coords[dim])}"
        for dim in record.coords
        if dim not in skip
    ]
    return ", ".join(parts) or "(all runs)"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


# ------------------------------------------------------------------- kinds


def _check_threshold(
    check: Dict[str, Any], records: Sequence[RunRecord]
) -> CheckOutcome:
    matched = _select(records, check["where"])
    outcome = CheckOutcome(name=check["name"], kind="threshold", passed=True)
    if not matched:
        outcome.passed = False
        outcome.evidence.append(
            f"no runs matched where {check['where']!r}"
        )
        return outcome
    op = _OPS[check["op"]]
    for record in matched:
        value = metric_value(record.result, check["metric"])
        ok = op(value, check["value"])
        outcome.passed = outcome.passed and ok
        outcome.evidence.append(
            f"{_coord_text(record)}: {check['metric']}={_fmt(value)} "
            f"{check['op']} {_fmt(check['value'])} "
            f"{'ok' if ok else 'VIOLATED'}"
        )
    return outcome


def _groups(
    records: Sequence[RunRecord], axis: str
) -> "Dict[tuple, List[RunRecord]]":
    """Records grouped by every coordinate except ``axis``."""
    grouped: Dict[tuple, List[RunRecord]] = {}
    for record in records:
        key = tuple(
            (dim, repr(value))
            for dim, value in record.coords.items()
            if dim != axis
        )
        grouped.setdefault(key, []).append(record)
    return grouped


def _check_monotonic(
    check: Dict[str, Any],
    records: Sequence[RunRecord],
    matrix: StudyMatrix,
) -> CheckOutcome:
    axis = check["axis"]
    # A check may claim monotonicity along an explicit subset/reordering
    # of the axis values (e.g. budget -> dedicated only); by default the
    # declared axis order is the claim.
    values = check.get("order") or matrix.axis_values(axis)
    order = {repr(v): i for i, v in enumerate(values)}
    matched = [
        r for r in _select(records, check["where"])
        if axis in r.coords and repr(r.coords[axis]) in order
    ]
    outcome = CheckOutcome(name=check["name"], kind="monotonic", passed=True)
    if not matched:
        outcome.passed = False
        outcome.evidence.append(
            f"no runs matched where {check['where']!r} along axis {axis!r}"
        )
        return outcome
    tolerance = check.get("tolerance", 0.0)
    nondecreasing = check["direction"] == "nondecreasing"
    for group in _groups(matched, axis).values():
        ordered = sorted(group, key=lambda r: order[repr(r.coords[axis])])
        if len(ordered) < 2:
            continue
        values = [metric_value(r.result, check["metric"]) for r in ordered]
        ok = all(
            (b - a >= -tolerance) if nondecreasing else (a - b >= -tolerance)
            for a, b in zip(values, values[1:])
        )
        outcome.passed = outcome.passed and ok
        series = " -> ".join(_fmt(v) for v in values)
        along = " -> ".join(
            str(r.labels.get(axis, r.coords[axis])) for r in ordered
        )
        outcome.evidence.append(
            f"{_coord_text(ordered[0], skip=(axis,))}: "
            f"{check['metric']} {series} along {axis}={along} "
            f"{'ok' if ok else 'NOT ' + check['direction'].upper()}"
        )
    if not outcome.evidence:
        outcome.passed = False
        outcome.evidence.append(
            f"no group held two runs along axis {axis!r}"
        )
    return outcome


def _check_ci_inclusion(
    check: Dict[str, Any], records: Sequence[RunRecord]
) -> CheckOutcome:
    axis = check["axis"]
    matched = _select(records, check["where"])
    outcome = CheckOutcome(name=check["name"], kind="ci_inclusion", passed=True)
    compared = 0
    for group in _groups(matched, axis).values():
        sampled = [r for r in group if r.coords.get(axis) is True]
        full = [r for r in group if r.coords.get(axis) is False]
        if not sampled or not full:
            continue
        for full_run in full:
            try:
                stats = full_run.result.ipc_ci(check["confidence"])
            except ValueError:
                outcome.passed = False
                outcome.evidence.append(
                    f"{_coord_text(full_run, skip=(axis,))}: full-detail run "
                    "recorded no measurement windows (no CI)"
                )
                continue
            for sampled_run in sampled:
                compared += 1
                estimate = sampled_run.result.aggregate_ipc
                ok = stats.contains(estimate)
                outcome.passed = outcome.passed and ok
                outcome.evidence.append(
                    f"{_coord_text(sampled_run, skip=(axis,))}: sampled IPC "
                    f"{_fmt(estimate)} vs full {int(check['confidence'] * 100)}% "
                    f"CI [{_fmt(stats.lower)}, {_fmt(stats.upper)}] "
                    f"{'ok' if ok else 'OUTSIDE'}"
                )
    if compared == 0 and outcome.passed:
        outcome.passed = False
        outcome.evidence.append(
            f"no (sampled, full) run pair found along axis {axis!r} "
            f"where {check['where']!r}"
        )
    return outcome


def evaluate_checks(
    matrix: StudyMatrix, records: Sequence[RunRecord]
) -> List[CheckOutcome]:
    """Evaluate every declared expectation check against the run set."""
    outcomes: List[CheckOutcome] = []
    for check in matrix.expectations:
        if check["kind"] == "threshold":
            outcomes.append(_check_threshold(check, records))
        elif check["kind"] == "monotonic":
            outcomes.append(_check_monotonic(check, records, matrix))
        else:
            outcomes.append(_check_ci_inclusion(check, records))
    return outcomes
