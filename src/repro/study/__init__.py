"""Declarative study pipeline: matrix files -> SweepRunner -> JSONL + reports.

A **study** is declared entirely as data: a TOML matrix file
(:mod:`repro.study.matrix`) names the axes of a design-space lattice
(workloads x configurations x channels x sampling x ...), per-study
overrides and the qualitative expectations the resulting run set must
satisfy.  The executor (:mod:`repro.study.executor`) expands the matrix
into content-hashed :class:`~repro.runner.spec.ExperimentSpec`\\ s, routes
them through the active :class:`~repro.runner.sweep.SweepRunner`
(broker/worker fabric, persistent store, fault semantics — all unchanged)
and emits one JSONL record per run.  The report engine
(:mod:`repro.study.report`) replays those records into a markdown report
and evaluates every declared expectation check
(:mod:`repro.study.checks`) — monotonicity along an axis, metric
thresholds, sampled-IPC-inside-full-CI — each reported pass/fail with
evidence.

New scenarios therefore cost a config file under ``studies/``, not a new
``analysis/*.py`` driver: the existing figure/bandwidth/generality
drivers are thin wrappers over shipped matrices resolved through this
same path.
"""

from repro.study.checks import CheckOutcome, evaluate_checks
from repro.study.executor import run_study, write_jsonl
from repro.study.matrix import (
    MatrixError,
    StudyMatrix,
    StudyPoint,
    load_matrix,
    shipped_matrix,
    studies_root,
)
from repro.study.presets import CONFIG_PRESETS, resolve_config
from repro.study.report import load_records, render_report

__all__ = [
    "CONFIG_PRESETS",
    "CheckOutcome",
    "MatrixError",
    "StudyMatrix",
    "StudyPoint",
    "evaluate_checks",
    "load_matrix",
    "load_records",
    "render_report",
    "resolve_config",
    "run_study",
    "shipped_matrix",
    "studies_root",
    "write_jsonl",
]
