"""Predictor Virtualization (Burcea et al., ASPLOS 2008) — reproduction.

A trace-driven CMP simulation library built around the paper's
contribution: storing large hardware-predictor tables in the regular memory
hierarchy behind a tiny on-chip proxy, demonstrated by virtualizing the
Pattern History Table of the Spatial Memory Streaming data prefetcher.

Quick start::

    from repro import CMPSimulator, PrefetcherConfig, get_workload

    result = CMPSimulator(
        get_workload("Oracle"), PrefetcherConfig.virtualized(8)
    ).run(20_000, warmup_refs=8_000)
    print(result.summary())

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core`      — the PV framework (PVTable, PVProxy, PVCache);
* :mod:`repro.memory`    — caches, MSHRs, main memory, the CMP hierarchy;
* :mod:`repro.cpu`       — trace format and the analytic timing model;
* :mod:`repro.prefetch`  — SMS (AGT + PHT) and baseline prefetchers;
* :mod:`repro.workloads` — the eight synthetic Table 2 workloads;
* :mod:`repro.sim`       — simulator, experiment runner, SMARTS sampling;
* :mod:`repro.runner`    — sweep orchestration: content-hashed experiment
  specs, the persistent result store, the parallel sweep runner;
* :mod:`repro.analysis`  — per-figure/table reproduction drivers.
"""

from repro.core import (
    PVProxy,
    PVProxyConfig,
    PVTable,
    PredictorTable,
    VirtualizedPredictorTable,
)
from repro.memory import ContentionConfig, MemorySystem
from repro.prefetch import DedicatedPHT, InfinitePHT, SMSPrefetcher
from repro.runner import ExperimentSpec, ResultStore, SweepRunner
from repro.sim import (
    CMPSimulator,
    EngineConfig,
    ExperimentScale,
    PrefetcherConfig,
    SimResult,
    SystemConfig,
    run_experiment,
)
from repro.workloads import WORKLOADS, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "CMPSimulator",
    "ContentionConfig",
    "DedicatedPHT",
    "EngineConfig",
    "ExperimentScale",
    "ExperimentSpec",
    "InfinitePHT",
    "MemorySystem",
    "PVProxy",
    "PVProxyConfig",
    "PVTable",
    "PredictorTable",
    "PrefetcherConfig",
    "ResultStore",
    "SMSPrefetcher",
    "SimResult",
    "SweepRunner",
    "SystemConfig",
    "VirtualizedPredictorTable",
    "WORKLOADS",
    "__version__",
    "get_workload",
    "run_experiment",
    "workload_names",
]
