"""Per-core timing accumulation.

An analytic stand-in for the paper's 8-wide out-of-order cores: committed
instructions advance time at a base IPC, and memory stalls are charged for
the portion of a reference's latency the core cannot hide.  A memory-level
parallelism (MLP) divisor models the overlap an OoO window extracts from
clustered misses — commercial workloads famously extract little, which is
why their baseline IPCs are low and prefetching pays.

Performance is reported the way the paper does (Section 4.1): aggregate
user instructions committed per cycle, summed over cores, divided by total
elapsed cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class CoreTimingModel:
    """Cycle/instruction accounting for one core."""

    base_ipc: float = 2.0
    mlp: float = 1.6
    hidden_latency: int = 2  # fully pipelined L1 hit latency

    cycles: float = 0.0
    instructions: int = 0
    stall_cycles: float = 0.0
    # The portion of stall_cycles caused by queuing (bank conflicts, DRAM
    # channel waits, MSHR structural stalls) rather than raw path latency.
    # Stays zero in the analytic model.
    queue_stall_cycles: float = 0.0
    memory_refs: int = 0

    def __post_init__(self) -> None:
        if self.base_ipc <= 0:
            raise ValueError("base_ipc must be positive")
        if self.mlp < 1:
            raise ValueError("mlp must be at least 1")

    def advance(self, instructions: int) -> None:
        """Commit ``instructions`` at the base IPC."""
        if instructions < 0:
            raise ValueError("cannot commit a negative instruction count")
        self.instructions += instructions
        self.cycles += instructions / self.base_ipc

    def commit(self, instructions: int, latency: float, queued: float = 0.0) -> None:
        """One reference's full bookkeeping: advance then charge, fused.

        Exactly :meth:`advance` followed by :meth:`memory_access` (same
        floating-point operation order, so cycle counts are bit-identical),
        in a single call for the simulator's per-reference hot path.
        """
        self.instructions += instructions
        self.cycles += instructions / self.base_ipc
        self.memory_refs += 1
        exposed = max(0.0, latency - self.hidden_latency) / self.mlp
        self.stall_cycles += exposed
        self.cycles += exposed
        if queued > 0.0:
            self.queue_stall_cycles += min(exposed, queued / self.mlp)

    def memory_access(self, latency: float, queued: float = 0.0) -> None:
        """Charge one memory reference whose total latency was ``latency``.

        Anything up to the pipelined L1 hit latency is free; the remainder
        is divided by the MLP factor.  ``queued`` names the portion of
        ``latency`` that was queuing delay (contention mode); it is charged
        like the rest but accounted separately in ``queue_stall_cycles``.
        """
        self.memory_refs += 1
        exposed = max(0.0, latency - self.hidden_latency) / self.mlp
        self.stall_cycles += exposed
        self.cycles += exposed
        if queued > 0.0:
            self.queue_stall_cycles += min(exposed, queued / self.mlp)

    def extra_stall(self, cycles: float, queued: bool = False) -> None:
        """Charge a raw stall (e.g. waiting on a late prefetch).

        ``queued`` marks the stall as contention-induced (e.g. an MSHR
        structural stall) for the split accounting.
        """
        if cycles < 0:
            raise ValueError("negative stall")
        exposed = cycles / self.mlp
        self.stall_cycles += exposed
        self.cycles += exposed
        if queued:
            self.queue_stall_cycles += exposed

    @property
    def now(self) -> int:
        """Current core time, integral cycles."""
        return int(self.cycles)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def aggregate_ipc(cores: List[CoreTimingModel]) -> float:
    """Paper metric: total committed user instructions / total elapsed cycles.

    Elapsed cycles = the slowest core's cycle count (all cores run
    concurrently on the CMP).
    """
    if not cores:
        return 0.0
    elapsed = max(core.cycles for core in cores)
    if elapsed <= 0:
        return 0.0
    return sum(core.instructions for core in cores) / elapsed


def speedup(baseline: List[CoreTimingModel], improved: List[CoreTimingModel]) -> float:
    """Relative speedup of ``improved`` over ``baseline`` (same work)."""
    base = aggregate_ipc(baseline)
    new = aggregate_ipc(improved)
    if base <= 0:
        raise ValueError("baseline has no progress to compare against")
    return new / base - 1.0
