"""CMP-level trace interleaving.

The simulated chip runs one workload instance per core (the paper's
commercial workloads are throughput workloads; Section 4.1).  The
functional simulator advances cores in round-robin order, which is the
standard approximation for trace-driven multi-core studies: it preserves
the *interleaving pressure* every core puts on the shared L2 without
requiring a global event queue.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple


def round_robin(streams: Sequence[Iterable]) -> Iterator[Tuple[int, object]]:
    """Interleave ``streams`` one item at a time, yielding ``(index, item)``.

    Exhausted streams drop out; iteration ends when all are exhausted.
    """
    iterators: List = [iter(s) for s in streams]
    alive = list(range(len(iterators)))
    while alive:
        finished = []
        for position, stream_index in enumerate(alive):
            try:
                item = next(iterators[stream_index])
            except StopIteration:
                finished.append(position)
            else:
                yield stream_index, item
        for position in reversed(finished):
            del alive[position]
