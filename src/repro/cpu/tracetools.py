"""Trace capture, replay, and inspection utilities.

Workload generation is deterministic but not free; long studies can
capture a generated stream once and replay it.  ``trace_stats`` summarizes
a stream the way trace-driven studies sanity-check their inputs (reference
mix, footprint, spatial-region structure).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.cpu.trace import TraceReader, TraceRecord, TraceWriter
from repro.prefetch.regions import SpatialRegionGeometry
from repro.workloads.base import WorkloadProfile
from repro.workloads.generator import WorkloadGenerator


def capture(
    profile: WorkloadProfile,
    path,
    refs: int,
    core: int = 0,
    seed: int = 1,
) -> int:
    """Generate ``refs`` records for one core and store them at ``path``."""
    generator = WorkloadGenerator(profile, core=core, seed=seed)
    with open(path, "wb") as stream:
        writer = TraceWriter(stream)
        return writer.write_all(generator.records(refs))


def replay(path) -> Iterator[TraceRecord]:
    """Stream records back from a captured trace file."""
    with open(path, "rb") as stream:
        yield from TraceReader(stream)


@dataclass
class TraceStats:
    """Summary statistics of one reference stream."""

    refs: int
    writes: int
    instructions: int
    unique_blocks: int
    unique_regions: int
    unique_pcs: int
    footprint_bytes: int

    @property
    def write_fraction(self) -> float:
        return self.writes / self.refs if self.refs else 0.0

    @property
    def refs_per_kilo_instruction(self) -> float:
        return 1000.0 * self.refs / self.instructions if self.instructions else 0.0

    @property
    def blocks_per_region(self) -> float:
        return self.unique_blocks / self.unique_regions if self.unique_regions else 0.0

    def as_dict(self) -> dict:
        return {
            "refs": self.refs,
            "writes": self.writes,
            "instructions": self.instructions,
            "unique_blocks": self.unique_blocks,
            "unique_regions": self.unique_regions,
            "unique_pcs": self.unique_pcs,
            "footprint_kb": self.footprint_bytes // 1024,
            "write_fraction": round(self.write_fraction, 4),
            "refs_per_ki": round(self.refs_per_kilo_instruction, 2),
            "blocks_per_region": round(self.blocks_per_region, 2),
        }


def trace_stats(
    records: Iterable[TraceRecord],
    region: Optional[SpatialRegionGeometry] = None,
) -> TraceStats:
    """Summarize a reference stream."""
    region = region or SpatialRegionGeometry()
    refs = writes = instructions = 0
    blocks = set()
    regions = set()
    pcs = set()
    for rec in records:
        refs += 1
        instructions += rec.instructions
        if rec.write:
            writes += 1
        blocks.add(rec.addr // region.block_size)
        regions.add(region.region_of(rec.addr))
        pcs.add(rec.pc)
    return TraceStats(
        refs=refs,
        writes=writes,
        instructions=instructions,
        unique_blocks=len(blocks),
        unique_regions=len(regions),
        unique_pcs=len(pcs),
        footprint_bytes=len(blocks) * region.block_size,
    )
