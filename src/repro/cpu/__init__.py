"""Trace-driven processor model.

The paper evaluates on Flexus, a full-system simulator of 4-wide OoO
UltraSPARC cores.  This reproduction substitutes a trace-driven model:
workload generators emit per-core streams of :class:`TraceRecord` memory
references (with instruction-count gaps), and :class:`CoreTimingModel`
converts hierarchy latencies into core cycles with a configurable base IPC
and memory-level-parallelism factor.  DESIGN.md records why this
substitution preserves the paper's conclusions.
"""

from repro.cpu.core import CoreTimingModel
from repro.cpu.cmp import round_robin
from repro.cpu.trace import TraceRecord, TraceReader, TraceWriter

__all__ = [
    "CoreTimingModel",
    "TraceReader",
    "TraceRecord",
    "TraceWriter",
    "round_robin",
]
