"""Trace record format and binary trace I/O.

A trace is a stream of memory references.  Each record carries the PC of
the referencing instruction, the effective byte address, a write flag, and
``gap`` — the number of non-memory instructions committed since the
previous record (so total committed instructions = sum(gap + 1)).

Records may additionally carry **predictor-engine events**: the resolved
branch that led control to this record (``branch_pc``/``branch_target``)
and, for loads, the value the load returns (``load_value``).  These feed
the BTB and last-value-predictor engines of the generality study
(Section 6); they default to ``None`` so plain memory traces are
unaffected.

Traces normally come straight from the synthetic workload generators, but
:class:`TraceWriter`/:class:`TraceReader` serialize them to a compact
binary format so expensive generations can be captured and replayed.  The
binary format (v1) carries only the memory-reference fields; engine-event
annotations are recomputed by the generator, not serialized.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Iterable, Iterator, NamedTuple, Optional

_RECORD = struct.Struct("<QQHB")  # pc, addr, gap, flags
_MAGIC = b"PVTR"
_VERSION = 1


class TraceRecord(NamedTuple):
    """One memory reference, optionally annotated with engine events."""

    pc: int
    addr: int
    write: bool
    gap: int  # non-memory instructions since the previous record
    branch_pc: Optional[int] = None      # resolved branch site, if any
    branch_target: Optional[int] = None  # its resolved target
    load_value: Optional[int] = None     # value returned (loads only)

    @property
    def instructions(self) -> int:
        """Instructions this record accounts for (gap plus itself)."""
        return self.gap + 1


class TraceWriter:
    """Serialize records to a binary stream."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        self._stream.write(_MAGIC + bytes([_VERSION]))
        self.count = 0

    def write(self, record: TraceRecord) -> None:
        gap = min(record.gap, 0xFFFF)
        self._stream.write(
            _RECORD.pack(record.pc, record.addr, gap, 1 if record.write else 0)
        )
        self.count += 1

    def write_all(self, records: Iterable[TraceRecord]) -> int:
        for record in records:
            self.write(record)
        return self.count


class TraceReader:
    """Deserialize records from a binary stream."""

    def __init__(self, stream: BinaryIO) -> None:
        header = stream.read(len(_MAGIC) + 1)
        if header[: len(_MAGIC)] != _MAGIC:
            raise ValueError("not a PV trace stream")
        if header[len(_MAGIC)] != _VERSION:
            raise ValueError(f"unsupported trace version {header[len(_MAGIC)]}")
        self._stream = stream

    def __iter__(self) -> Iterator[TraceRecord]:
        read = self._stream.read
        size = _RECORD.size
        unpack = _RECORD.unpack
        while True:
            chunk = read(size)
            if len(chunk) < size:
                return
            pc, addr, gap, flags = unpack(chunk)
            yield TraceRecord(pc=pc, addr=addr, write=bool(flags & 1), gap=gap)


def roundtrip(records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
    """Serialize then deserialize (test helper exercising both directions)."""
    buffer = io.BytesIO()
    TraceWriter(buffer).write_all(records)
    buffer.seek(0)
    return iter(TraceReader(buffer))
