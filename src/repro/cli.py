"""Command-line interface: ``python -m repro <command>``.

Commands mirror the deliverables:

* ``table1`` / ``table2`` / ``table3`` / ``budget`` — the paper's tables;
* ``figure4`` ... ``figure11`` / ``fill-rate``     — the evaluation figures
  (optionally as ASCII bar charts with ``--chart``);
* ``generality``                                    — the Section 6 study:
  BTB and last-value predictors, dedicated vs virtualized (including the
  shared-PV-space configuration);
* ``bandwidth``                                     — the contention-model
  sweep: PV vs dedicated SMS under 1/2/4 finite DRAM channels, banked L2
  ports and bounded MSHRs (``--scale smoke`` for a fast CI pass);
* ``run``                                           — one simulation with a
  chosen workload and prefetcher configuration;
* ``sweep``                                         — resolve a workload x
  configuration lattice through the parallel sweep runner;
* ``trace-stats``                                   — summarize a workload's
  synthetic reference stream;
* ``profile``                                       — cProfile the simulator
  hot path over a canonical run (default: PV8 under DRAM contention) and
  print a top-N report, so throughput work is measurable and repeatable.

All figure commands accept ``--workloads`` (comma-separated), ``--refs``
and ``--warmup`` to control scale, plus ``--jobs N`` (worker count),
``--store DIR`` (persistent result store, shardable with pathsep-joined
directories) and ``--backend NAME`` (inline / process / any registered
backend) to control execution through the broker/worker fabric.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import figures as _figures
from repro.analysis.bandwidth import bandwidth as _bandwidth
from repro.analysis.charts import render_default_chart
from repro.analysis.generality import generality as _generality
from repro.analysis.report import render_figure, render_table
from repro.analysis.tables import pvproxy_budget_table, table1, table2, table3_rows
from repro.runner import ExperimentSpec, context as _runner_context
from repro.sim.config import EngineConfig, PrefetcherConfig
from repro.sim.experiment import ExperimentScale
from repro.sim.simulator import CMPSimulator
from repro.workloads.registry import get_workload, workload_names

FIGURE_COMMANDS = {
    "figure4": _figures.figure4,
    "figure5": _figures.figure5,
    "figure6": _figures.figure6,
    "figure7": _figures.figure7,
    "figure8": _figures.figure8,
    "figure9": _figures.figure9,
    "figure10": _figures.figure10,
    "figure11": _figures.figure11,
    "fill-rate": _figures.pv_l2_fill_rates,
    "generality": _generality,
}

PREFETCHERS = {
    "none": PrefetcherConfig.none,
    "infinite": PrefetcherConfig.infinite,
    "sms-1k": lambda: PrefetcherConfig.dedicated(1024, 11),
    "sms-16": lambda: PrefetcherConfig.dedicated(16, 11),
    "sms-8": lambda: PrefetcherConfig.dedicated(8, 11),
    "pv8": lambda: PrefetcherConfig.virtualized(8),
    "pv16": lambda: PrefetcherConfig.virtualized(16),
    "stride": PrefetcherConfig.stride,
    "btb": lambda: PrefetcherConfig.none().with_engines(EngineConfig.btb()),
    "btb-pv": lambda: PrefetcherConfig.none().with_engines(
        EngineConfig.btb("virtualized")),
    "lvp": lambda: PrefetcherConfig.none().with_engines(EngineConfig.lvp()),
    "lvp-pv": lambda: PrefetcherConfig.none().with_engines(
        EngineConfig.lvp("virtualized")),
    "shared-pv": lambda: PrefetcherConfig.virtualized(8).with_engines(
        EngineConfig.btb("virtualized"), EngineConfig.lvp("virtualized")),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Predictor Virtualization (ASPLOS 2008) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("table1", "table2", "table3", "budget"):
        sub.add_parser(name, help=f"print {name}")

    for name in FIGURE_COMMANDS:
        p = sub.add_parser(name, help=f"reproduce {name}")
        p.add_argument("--workloads", default=None,
                       help="comma-separated subset (default: all eight)")
        p.add_argument("--refs", type=int, default=None,
                       help="references per core")
        p.add_argument("--warmup", type=int, default=None,
                       help="warmup references per core")
        p.add_argument("--chart", action="store_true",
                       help="render as an ASCII bar chart")
        _add_runner_flags(p)

    bw = sub.add_parser(
        "bandwidth",
        help="contention-model sweep: PV vs dedicated SMS under narrow DRAM",
    )
    bw.add_argument("--workloads", default=None,
                    help="comma-separated subset (default: Apache,Oracle,Qry17)")
    bw.add_argument("--channels", default=None,
                    help="comma-separated DRAM channel counts (default: 4,2,1)")
    bw.add_argument("--refs", type=int, default=None,
                    help="references per core")
    bw.add_argument("--warmup", type=int, default=None,
                    help="warmup references per core")
    bw.add_argument("--scale", choices=("default", "smoke"), default="default",
                    help="'smoke': tiny fixed scale for CI (overridden by --refs)")
    bw.add_argument("--chart", action="store_true",
                    help="render as an ASCII bar chart")
    _add_runner_flags(bw)

    sweep = sub.add_parser(
        "sweep",
        help="resolve a workload x configuration lattice via the sweep runner",
    )
    sweep.add_argument("--workloads", default=None,
                       help="comma-separated subset (default: all eight)")
    sweep.add_argument("--configs", default="none,sms-1k,sms-16,sms-8,pv8",
                       help="comma-separated prefetcher names "
                            f"(choices: {','.join(sorted(PREFETCHERS))})")
    sweep.add_argument("--refs", type=int, default=None,
                       help="references per core")
    sweep.add_argument("--warmup", type=int, default=None,
                       help="warmup references per core")
    sweep.add_argument("--seed", type=int, default=1)
    _add_runner_flags(sweep)

    run = sub.add_parser("run", help="run one simulation and print a summary")
    run.add_argument("workload", choices=workload_names())
    run.add_argument("prefetcher", choices=sorted(PREFETCHERS))
    run.add_argument("--refs", type=int, default=12_000)
    run.add_argument("--warmup", type=int, default=None)

    ts = sub.add_parser("trace-stats", help="summarize a workload's stream")
    ts.add_argument("workload", choices=workload_names())
    ts.add_argument("--refs", type=int, default=20_000)
    ts.add_argument("--core", type=int, default=0)

    prof = sub.add_parser(
        "profile",
        help="cProfile the simulator hot path and print a top-N report",
    )
    prof.add_argument("--workload", choices=workload_names(), default="Apache")
    prof.add_argument("--config", choices=sorted(PREFETCHERS), default="pv8",
                      help="prefetcher configuration to profile (default pv8)")
    prof.add_argument("--refs", type=int, default=6_000,
                      help="references per core (default: the perf-smoke scale)")
    prof.add_argument("--warmup", type=int, default=2_000)
    prof.add_argument("--channels", type=int, default=1,
                      help="finite DRAM channels for the contended run; "
                           "0 disables contention (analytic model)")
    prof.add_argument("--sampled", action="store_true",
                      help="profile the two-speed sampled engine "
                           "(fast-forward + measurement windows) instead "
                           "of the full-detail path")
    prof.add_argument("--top", type=int, default=25,
                      help="functions to show in the report")
    prof.add_argument("--sort", choices=("cumulative", "tottime", "ncalls"),
                      default="cumulative")
    prof.add_argument("--out", default=None,
                      help="also write the report to this file")

    return parser


def positive_int(text: str) -> int:
    """argparse type for flags that must be >= 1 (e.g. ``--jobs``)."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_runner_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=positive_int, default=None,
                        help="worker processes (default: REPRO_JOBS or 1; "
                             "a sweep never uses more workers than it has "
                             "distinct workloads)")
    parser.add_argument("--store", default=None,
                        help="persistent result-store directory; several "
                             "os.pathsep-joined directories stripe the "
                             "store across shards "
                             "(default: REPRO_STORE or none)")
    parser.add_argument("--backend", default=None,
                        help="execution backend: auto (inline when --jobs 1, "
                             "process pool otherwise), inline, process, or "
                             "any registered name "
                             "(default: REPRO_BACKEND or auto)")
    parser.add_argument("--sampled", action="store_true",
                        help="two-speed sampled simulation: functional "
                             "fast-forward with short detailed measurement "
                             "windows (results are mean-over-windows "
                             "estimates with CIs, not bitwise comparable "
                             "to full-detail runs)")


def _configure_runner(args) -> None:
    """Install the sweep runner the figure drivers will resolve through."""
    if (
        getattr(args, "jobs", None) is not None
        or getattr(args, "store", None)
        or getattr(args, "backend", None)
    ):
        _runner_context.configure(
            jobs=args.jobs, store=args.store,
            backend=getattr(args, "backend", None),
        )


def _configure_sampling(args, scale: Optional[ExperimentScale]) -> None:
    """Install the ambient sampled-mode default for this invocation.

    Sized from the *effective* scale — the resolved ``--refs``/smoke
    scale, or the environment default — so the period layout always fits
    the runs it will sample.
    """
    if getattr(args, "sampled", False):
        from repro.sim.sampling import SamplingConfig, set_default_sampling

        refs = (scale or ExperimentScale.from_env()).refs_per_core
        set_default_sampling(SamplingConfig.for_scale(refs))


def _scale(args) -> Optional[ExperimentScale]:
    if args.refs is None and args.warmup is None:
        return None
    refs = args.refs or 16_000
    warmup = args.warmup if args.warmup is not None else refs * 5 // 4
    return ExperimentScale(
        refs_per_core=refs, warmup_refs=warmup, window_refs=max(refs // 10, 1)
    )


def _run_figure(args) -> str:
    _configure_runner(args)
    scale = _scale(args)
    _configure_sampling(args, scale)
    driver = FIGURE_COMMANDS[args.command]
    workloads = args.workloads.split(",") if args.workloads else None
    figure = driver(workloads=workloads, scale=scale)
    if args.chart:
        try:
            return render_default_chart(figure)
        except KeyError:
            pass
    return render_figure(figure)


def _run_bandwidth(args) -> str:
    _configure_runner(args)
    scale = _scale(args)
    if scale is None and args.scale == "smoke":
        scale = ExperimentScale(refs_per_core=1200, warmup_refs=600,
                                window_refs=120)
    _configure_sampling(args, scale)
    workloads = args.workloads.split(",") if args.workloads else None
    channels = (
        [int(c) for c in args.channels.split(",")] if args.channels else None
    )
    figure = _bandwidth(workloads=workloads, scale=scale, channels=channels)
    if args.chart:
        try:
            return render_default_chart(figure)
        except KeyError:
            pass
    return render_figure(figure)


def _run_simulation(args) -> str:
    workload = get_workload(args.workload)
    config = PREFETCHERS[args.prefetcher]()
    warmup = args.warmup if args.warmup is not None else args.refs
    simulator = CMPSimulator(workload, config)
    result = simulator.run(args.refs, warmup_refs=warmup)
    rows = [{"metric": k, "value": v} for k, v in result.summary().items()]
    title = f"{workload.name} / {config.label} ({args.refs} refs/core)"
    return render_table(["metric", "value"], rows, title=title)


def _run_sweep(args) -> str:
    _configure_runner(args)
    workloads = args.workloads.split(",") if args.workloads else workload_names()
    try:
        configs = [PREFETCHERS[name]() for name in args.configs.split(",")]
    except KeyError as exc:
        raise SystemExit(f"unknown prefetcher {exc.args[0]!r}; "
                         f"choices: {', '.join(sorted(PREFETCHERS))}")
    scale = _scale(args)
    _configure_sampling(args, scale)
    specs = [
        ExperimentSpec.build(w, c, scale=scale, seed=args.seed)
        for w in workloads
        for c in configs
    ]
    sources = {}

    def observe(progress):
        sources[progress.spec.key] = progress.source
        print(
            f"[{progress.done}/{progress.total}] "
            f"{progress.spec.workload:<8} {progress.spec.prefetcher.label:<10} "
            f"({progress.source})",
            file=sys.stderr,
        )

    runner = _runner_context.get_runner()
    results = runner.run(specs, observer=observe)
    from repro.workloads.generator import TRACE_CACHE

    ts = TRACE_CACHE.stats()
    print(
        f"trace cache: {ts['hits']} hits, {ts['misses']} misses, "
        f"{ts['evictions']} evictions, {ts['records']} records in "
        f"{ts['entries']} streams (per-process; workers fork their own)",
        file=sys.stderr,
    )
    bs = runner.last_stats
    if bs is not None:
        print(
            f"broker: {bs['published']} published, {bs['store_hits']} store "
            f"hits, {bs['leases']} leases, {bs['retries']} retries, "
            f"{bs['expirations']} expired, {bs['quarantined']} quarantined",
            file=sys.stderr,
        )
    rows = [
        {
            "workload": spec.workload,
            "config": spec.prefetcher.label,
            "source": sources.get(spec.key, "cache"),
            "ipc": round(result.aggregate_ipc, 4),
            "coverage": round(result.coverage, 4),
            "offchip": result.offchip_transfers,
        }
        for spec, result in zip(specs, results)
    ]
    title = (
        f"Sweep: {len(specs)} specs, jobs={runner.jobs}, "
        f"store={'on' if runner.store is not None else 'off'}"
    )
    return render_table(
        ["workload", "config", "source", "ipc", "coverage", "offchip"],
        rows, title=title,
    )


def _run_profile(args) -> str:
    """cProfile one canonical simulation; return the formatted report.

    The default run — PV8 on Apache with a single DRAM channel — exercises
    every hot layer at once: trace compilation, the array-backed caches,
    the PVProxy path, bank/channel arbitration and the MSHR files.
    """
    import cProfile
    import io
    import pstats
    import time

    from repro.sim.config import SystemConfig

    workload = get_workload(args.workload)
    config = PREFETCHERS[args.config]()
    system = (
        SystemConfig.baseline().with_contention(dram_channels=args.channels)
        if args.channels > 0
        else None
    )
    if args.sampled:
        from repro.sim.sampling import SamplingConfig

        system = (system or SystemConfig.baseline()).with_sampling(
            SamplingConfig.for_scale(args.refs)
        )
    simulator = CMPSimulator(workload, config, system=system)
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = simulator.run(args.refs, warmup_refs=args.warmup)
    profiler.disable()
    elapsed = time.perf_counter() - start
    total_refs = (args.refs + args.warmup) * result.n_cores
    stream = io.StringIO()
    contended = f"{args.channels}ch" if args.channels > 0 else "analytic"
    if args.sampled:
        contended += ", sampled"
    stream.write(
        f"repro profile: {workload.name} / {config.label} ({contended}), "
        f"{args.refs} refs/core + {args.warmup} warmup\n"
        f"{total_refs} refs in {elapsed:.3f}s under cProfile "
        f"= {total_refs / elapsed:,.0f} refs/sec (profiler overhead included); "
        f"aggregate IPC {result.aggregate_ipc:.4f}\n\n"
    )
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    report = stream.getvalue()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
    return report


def _run_trace_stats(args) -> str:
    from repro.cpu.tracetools import trace_stats
    from repro.workloads.generator import WorkloadGenerator

    profile = get_workload(args.workload)
    generator = WorkloadGenerator(profile, core=args.core)
    stats = trace_stats(generator.records(args.refs))
    rows = [{"metric": k, "value": v} for k, v in stats.as_dict().items()]
    return render_table(["metric", "value"], rows,
                        title=f"trace stats: {profile.name}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        rows = [{"parameter": k, "value": v} for k, v in table1().items()]
        print(render_table(["parameter", "value"], rows, title="Table 1"))
    elif args.command == "table2":
        print(render_table(
            ["workload", "category", "footprint_mb", "description"],
            table2(), title="Table 2",
        ))
    elif args.command == "table3":
        print(render_table(
            ["configuration", "tags", "patterns", "total"],
            table3_rows(), title="Table 3",
        ))
    elif args.command == "budget":
        print(render_table(
            ["component", "bytes"], pvproxy_budget_table(),
            title="Section 4.6: PVProxy budget",
        ))
    elif args.command in FIGURE_COMMANDS:
        print(_run_figure(args))
    elif args.command == "bandwidth":
        print(_run_bandwidth(args))
    elif args.command == "run":
        print(_run_simulation(args))
    elif args.command == "sweep":
        print(_run_sweep(args))
    elif args.command == "trace-stats":
        print(_run_trace_stats(args))
    elif args.command == "profile":
        print(_run_profile(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
