"""Command-line interface: ``python -m repro <command>``.

Commands mirror the deliverables:

* ``table1`` / ``table2`` / ``table3`` / ``budget`` — the paper's tables;
* ``figure4`` ... ``figure11`` / ``fill-rate``     — the evaluation figures
  (optionally as ASCII bar charts with ``--chart``);
* ``generality``                                    — the Section 6 study:
  BTB and last-value predictors, dedicated vs virtualized (including the
  shared-PV-space configuration);
* ``bandwidth``                                     — the contention-model
  sweep: PV vs dedicated SMS under 1/2/4 finite DRAM channels, banked L2
  ports and bounded MSHRs (``--scale smoke`` for a fast CI pass);
* ``run``                                           — one simulation with a
  chosen workload and prefetcher configuration;
* ``sweep``                                         — resolve a workload x
  configuration lattice through the parallel sweep runner;
* ``study``                                         — the declarative study
  pipeline: ``study list`` / ``study validate`` over the shipped
  ``studies/*.toml`` matrices, ``study run`` to expand one matrix through
  the sweep runner into JSONL records, and ``study report`` to render the
  markdown report (runs table, paper deltas, expectation checks;
  ``--strict`` exits nonzero when a check fails);
* ``serve``                                         — a remote-host agent:
  accept jobs from a coordinator running ``--backend remote`` over the
  digest-verified TCP transport (:mod:`repro.runner.remote`);
* ``trace-stats``                                   — summarize a workload's
  synthetic reference stream;
* ``profile``                                       — cProfile the simulator
  hot path over a canonical run (default: PV8 under DRAM contention) and
  print a top-N report, so throughput work is measurable and repeatable.

All figure commands accept ``--workloads`` (comma-separated), ``--refs``
and ``--warmup`` to control scale, plus ``--jobs N`` (worker count),
``--store DIR`` (persistent result store, shardable with pathsep-joined
directories) and ``--backend NAME`` (inline / process / any registered
backend) to control execution through the broker/worker fabric.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import List, Optional

from repro.analysis import figures as _figures
from repro.analysis.bandwidth import bandwidth as _bandwidth
from repro.analysis.charts import render_default_chart
from repro.analysis.generality import generality as _generality
from repro.analysis.report import render_figure, render_table
from repro.analysis.tables import pvproxy_budget_table, table1, table2, table3_rows
from repro.runner import ExperimentSpec, context as _runner_context
from repro.sim.experiment import ExperimentScale
from repro.sim.simulator import CMPSimulator
from repro.study.presets import CONFIG_PRESETS
from repro.workloads.registry import get_workload, workload_names

FIGURE_COMMANDS = {
    "figure4": _figures.figure4,
    "figure5": _figures.figure5,
    "figure6": _figures.figure6,
    "figure7": _figures.figure7,
    "figure8": _figures.figure8,
    "figure9": _figures.figure9,
    "figure10": _figures.figure10,
    "figure11": _figures.figure11,
    "fill-rate": _figures.pv_l2_fill_rates,
    "generality": _generality,
}

#: The named prefetcher configurations every subcommand accepts — the
#: same catalogue the study matrices resolve against.
PREFETCHERS = CONFIG_PRESETS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Predictor Virtualization (ASPLOS 2008) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("table1", "table2", "table3", "budget"):
        sub.add_parser(name, help=f"print {name}")

    for name in FIGURE_COMMANDS:
        p = sub.add_parser(name, help=f"reproduce {name}")
        _add_study_flags(p)
        p.add_argument("--chart", action="store_true",
                       help="render as an ASCII bar chart")

    bw = sub.add_parser(
        "bandwidth",
        help="contention-model sweep: PV vs dedicated SMS under narrow DRAM",
    )
    _add_study_flags(
        bw, workloads_help="comma-separated subset (default: Apache,Oracle,Qry17)"
    )
    bw.add_argument("--channels", default=None,
                    help="comma-separated DRAM channel counts (default: 4,2,1)")
    bw.add_argument("--scale", choices=("default", "smoke"), default="default",
                    help="'smoke': tiny fixed scale for CI (overridden by --refs)")
    bw.add_argument("--chart", action="store_true",
                    help="render as an ASCII bar chart")

    sweep = sub.add_parser(
        "sweep",
        help="resolve a workload x configuration lattice via the sweep runner",
    )
    _add_study_flags(sweep)
    sweep.add_argument("--configs", default="none,sms-1k,sms-16,sms-8,pv8",
                       help="comma-separated prefetcher names "
                            f"(choices: {','.join(sorted(PREFETCHERS))})")
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-spec progress and the trace-cache/"
                            "broker tallies on stderr")

    study = sub.add_parser(
        "study",
        help="declarative studies: list/validate/run/report matrix files",
    )
    ssub = study.add_subparsers(dest="study_command", required=True)
    ssub.add_parser("list", help="list the shipped study matrices")
    s_val = ssub.add_parser(
        "validate",
        help="expand matrices and check the expansion is hash-stable",
    )
    s_val.add_argument("matrices", nargs="*",
                       help="matrix files (default: every shipped matrix)")
    s_run = ssub.add_parser(
        "run", help="expand one matrix through the sweep runner into JSONL"
    )
    s_run.add_argument("matrix",
                       help="matrix file path, or the name of a shipped study")
    _add_study_flags(
        s_run, sampled=False,
        workloads_help="comma-separated subset of the matrix's workload axis",
    )
    s_run.add_argument("--out", default=None,
                       help="JSONL output path (default: "
                            "$REPRO_STUDY_OUT or ./study-runs/<name>.jsonl)")
    s_run.add_argument("--quiet", action="store_true",
                       help="suppress per-spec progress on stderr "
                            "(also settable via the matrix [runner] table)")
    s_rep = ssub.add_parser(
        "report", help="render the markdown report for a study's JSONL records"
    )
    s_rep.add_argument("matrix",
                       help="matrix file path, or the name of a shipped study")
    s_rep.add_argument("--records", default=None,
                       help="JSONL records to report on (default: where "
                            "'study run' writes)")
    s_rep.add_argument("--strict", action="store_true",
                       help="exit nonzero if any expectation check fails")

    art = sub.add_parser(
        "artifacts",
        help="manage the persistent warm-state/trace artifact store",
    )
    asub = art.add_subparsers(dest="artifacts_command", required=True)
    art_root_help = ("store root directory (or os.pathsep-joined shard "
                     "roots); default: REPRO_ARTIFACTS")
    a_list = asub.add_parser("list", help="list stored artifacts")
    a_list.add_argument("--root", default=None, help=art_root_help)
    a_stats = asub.add_parser("stats", help="occupancy per artifact kind")
    a_stats.add_argument("--root", default=None, help=art_root_help)
    a_gc = asub.add_parser(
        "gc", help="bound the store by size/age; sweep quarantined files"
    )
    a_gc.add_argument("--root", default=None, help=art_root_help)
    a_gc.add_argument("--max-bytes", default=None,
                      help="evict oldest artifacts until the total fits "
                           "(accepts K/M/G suffixes, e.g. 500M)")
    a_gc.add_argument("--max-age-days", type=float, default=None,
                      help="delete artifacts older than this many days")

    run = sub.add_parser("run", help="run one simulation and print a summary")
    run.add_argument("workload", choices=workload_names())
    run.add_argument("prefetcher", choices=sorted(PREFETCHERS))
    run.add_argument("--refs", type=int, default=12_000)
    run.add_argument("--warmup", type=int, default=None)

    srv = sub.add_parser(
        "serve",
        help="host agent: compute jobs for a remote-backend coordinator",
    )
    srv.add_argument("--host", default="127.0.0.1",
                     help="interface to listen on (default 127.0.0.1)")
    srv.add_argument("--port", type=int, default=0,
                     help="TCP port (default 0: pick a free port and print it)")
    srv.add_argument("--artifact-cache", default=None,
                     help="local cache directory for artifacts fetched over "
                          "the coordinator's gateway (default: a temp dir)")

    ts = sub.add_parser("trace-stats", help="summarize a workload's stream")
    ts.add_argument("workload", choices=workload_names())
    ts.add_argument("--refs", type=int, default=20_000)
    ts.add_argument("--core", type=int, default=0)

    prof = sub.add_parser(
        "profile",
        help="cProfile the simulator hot path and print a top-N report",
    )
    prof.add_argument("--workload", choices=workload_names(), default="Apache")
    prof.add_argument("--config", choices=sorted(PREFETCHERS), default="pv8",
                      help="prefetcher configuration to profile (default pv8)")
    prof.add_argument("--refs", type=int, default=6_000,
                      help="references per core (default: the perf-smoke scale)")
    prof.add_argument("--warmup", type=int, default=2_000)
    prof.add_argument("--channels", type=int, default=1,
                      help="finite DRAM channels for the contended run; "
                           "0 disables contention (analytic model)")
    prof.add_argument("--sampled", action="store_true",
                      help="profile the two-speed sampled engine "
                           "(fast-forward + measurement windows) instead "
                           "of the full-detail path")
    prof.add_argument("--top", type=int, default=25,
                      help="functions to show in the report")
    prof.add_argument("--sort", choices=("cumulative", "tottime", "ncalls"),
                      default="cumulative")
    prof.add_argument("--out", default=None,
                      help="also write the report to this file")

    return parser


def positive_int(text: str) -> int:
    """argparse type for flags that must be >= 1 (e.g. ``--jobs``)."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_runner_flags(
    parser: argparse.ArgumentParser, sampled: bool = True
) -> None:
    parser.add_argument("--jobs", type=positive_int, default=None,
                        help="worker processes (default: REPRO_JOBS or 1; "
                             "a sweep never uses more workers than it has "
                             "distinct workloads)")
    parser.add_argument("--store", default=None,
                        help="persistent result-store directory; several "
                             "os.pathsep-joined directories stripe the "
                             "store across shards "
                             "(default: REPRO_STORE or none)")
    parser.add_argument("--backend", default=None,
                        help="execution backend: auto (inline when --jobs 1, "
                             "process pool otherwise), inline, process, "
                             "remote (repro serve hosts from REPRO_HOSTS="
                             "host:port,...), or any registered name "
                             "(default: REPRO_BACKEND or auto)")
    parser.add_argument("--artifacts", default=None,
                        help="persistent artifact-store directory for "
                             "warm-state checkpoints and compiled traces; "
                             "several os.pathsep-joined directories stripe "
                             "it across shards "
                             "(default: REPRO_ARTIFACTS or none)")
    if sampled:
        parser.add_argument("--sampled", action="store_true",
                            help="two-speed sampled simulation: functional "
                                 "fast-forward with short detailed measurement "
                                 "windows (results are mean-over-windows "
                                 "estimates with CIs, not bitwise comparable "
                                 "to full-detail runs)")


def _add_study_flags(
    parser: argparse.ArgumentParser,
    workloads: bool = True,
    workloads_help: str = "comma-separated subset (default: all eight)",
    sampled: bool = True,
) -> None:
    """The flag block every experiment-running subcommand shares:
    ``--workloads`` (where meaningful), scale control, and the sweep-runner
    execution flags."""
    if workloads:
        parser.add_argument("--workloads", default=None, help=workloads_help)
    parser.add_argument("--refs", type=int, default=None,
                        help="references per core")
    parser.add_argument("--warmup", type=int, default=None,
                        help="warmup references per core")
    _add_runner_flags(parser, sampled=sampled)


def _configure_runner(args) -> None:
    """Install the sweep runner the figure drivers will resolve through."""
    if getattr(args, "artifacts", None):
        from repro.runner import artifacts as _artifacts

        _artifacts.configure(args.artifacts)
    if (
        getattr(args, "jobs", None) is not None
        or getattr(args, "store", None)
        or getattr(args, "backend", None)
    ):
        _runner_context.configure(
            jobs=args.jobs, store=args.store,
            backend=getattr(args, "backend", None),
        )


def _configure_sampling(args, scale: Optional[ExperimentScale]) -> None:
    """Install the ambient sampled-mode default for this invocation.

    Sized from the *effective* scale — the resolved ``--refs``/smoke
    scale, or the environment default — so the period layout always fits
    the runs it will sample.
    """
    if getattr(args, "sampled", False):
        from repro.sim.sampling import SamplingConfig, set_default_sampling

        refs = (scale or ExperimentScale.from_env()).refs_per_core
        set_default_sampling(SamplingConfig.for_scale(refs))


def _scale(args) -> Optional[ExperimentScale]:
    if args.refs is None and args.warmup is None:
        return None
    refs = args.refs or 16_000
    warmup = args.warmup if args.warmup is not None else refs * 5 // 4
    return ExperimentScale(
        refs_per_core=refs, warmup_refs=warmup, window_refs=max(refs // 10, 1)
    )


def _run_figure(args) -> str:
    _configure_runner(args)
    scale = _scale(args)
    _configure_sampling(args, scale)
    driver = FIGURE_COMMANDS[args.command]
    workloads = args.workloads.split(",") if args.workloads else None
    figure = driver(workloads=workloads, scale=scale)
    if args.chart:
        try:
            return render_default_chart(figure)
        except KeyError:
            pass
    return render_figure(figure)


def _run_bandwidth(args) -> str:
    _configure_runner(args)
    scale = _scale(args)
    if scale is None and args.scale == "smoke":
        scale = ExperimentScale(refs_per_core=1200, warmup_refs=600,
                                window_refs=120)
    _configure_sampling(args, scale)
    workloads = args.workloads.split(",") if args.workloads else None
    channels = (
        [int(c) for c in args.channels.split(",")] if args.channels else None
    )
    figure = _bandwidth(workloads=workloads, scale=scale, channels=channels)
    if args.chart:
        try:
            return render_default_chart(figure)
        except KeyError:
            pass
    return render_figure(figure)


def _run_simulation(args) -> str:
    workload = get_workload(args.workload)
    config = PREFETCHERS[args.prefetcher]()
    warmup = args.warmup if args.warmup is not None else args.refs
    simulator = CMPSimulator(workload, config)
    result = simulator.run(args.refs, warmup_refs=warmup)
    rows = [{"metric": k, "value": v} for k, v in result.summary().items()]
    title = f"{workload.name} / {config.label} ({args.refs} refs/core)"
    return render_table(["metric", "value"], rows, title=title)


def _run_sweep(args) -> str:
    _configure_runner(args)
    workloads = args.workloads.split(",") if args.workloads else workload_names()
    try:
        configs = [PREFETCHERS[name]() for name in args.configs.split(",")]
    except KeyError as exc:
        raise SystemExit(f"unknown prefetcher {exc.args[0]!r}; "
                         f"choices: {', '.join(sorted(PREFETCHERS))}")
    scale = _scale(args)
    _configure_sampling(args, scale)
    specs = [
        ExperimentSpec.build(w, c, scale=scale, seed=args.seed)
        for w in workloads
        for c in configs
    ]
    sources = {}

    def observe(progress):
        sources[progress.spec.key] = progress.source
        if not args.quiet:
            print(
                f"[{progress.done}/{progress.total}] "
                f"{progress.spec.workload:<8} "
                f"{progress.spec.prefetcher.label:<10} "
                f"({progress.source})",
                file=sys.stderr,
            )

    runner = _runner_context.get_runner()
    results = runner.run(specs, observer=observe)
    if not args.quiet:
        from repro.workloads.generator import TRACE_CACHE

        ts = TRACE_CACHE.stats()
        print(
            f"trace cache: {ts['hits']} hits, {ts['misses']} misses, "
            f"{ts['evictions']} evictions, {ts['records']} records in "
            f"{ts['entries']} streams (per-process; workers fork their own)",
            file=sys.stderr,
        )
        bs = runner.last_stats
        if bs is not None:
            print(
                f"broker: {bs['published']} published, {bs['store_hits']} "
                f"store hits, {bs['leases']} leases, {bs['retries']} retries, "
                f"{bs['expirations']} expired, {bs['quarantined']} quarantined",
                file=sys.stderr,
            )
        tallies = runner.last_host_tallies
        if tallies:
            for host, tally in sorted(tallies.items()):
                print(
                    f"host {host}: {tally.get('done', 0)} done, "
                    f"{tally.get('retried', 0)} retried, "
                    f"{tally.get('requeued', 0)} requeued, "
                    f"{tally.get('reconnects', 0)} reconnects",
                    file=sys.stderr,
                )
        from repro.runner import artifacts as _artifacts

        artifact_store = _artifacts.active_store()
        if artifact_store is not None:
            st = artifact_store.stats()
            print(
                f"artifacts: {st['warm_hits']} warm hits, "
                f"{st['warm_misses']} warm misses, "
                f"{st['trace_hits']} trace hits, "
                f"{st['trace_misses']} trace misses, "
                f"{st['writes']} writes, {st['quarantined']} quarantined "
                f"(per-process; workers count their own)",
                file=sys.stderr,
            )
    rows = [
        {
            "workload": spec.workload,
            "config": spec.prefetcher.label,
            "source": sources.get(spec.key, "cache"),
            "ipc": round(result.aggregate_ipc, 4),
            "coverage": round(result.coverage, 4),
            "offchip": result.offchip_transfers,
        }
        for spec, result in zip(specs, results)
    ]
    title = (
        f"Sweep: {len(specs)} specs, jobs={runner.jobs}, "
        f"store={'on' if runner.store is not None else 'off'}"
    )
    return render_table(
        ["workload", "config", "source", "ipc", "coverage", "offchip"],
        rows, title=title,
    )


def _resolve_matrix(text: str):
    """A matrix by file path, or by shipped-study name."""
    from repro.study.matrix import load_matrix, shipped_matrix, studies_root

    path = pathlib.Path(text)
    if path.suffix == ".toml" or path.exists():
        return load_matrix(path)
    if (studies_root() / f"{text}.toml").exists():
        return shipped_matrix(text)
    shipped = [p.stem for p in _shipped_matrix_paths()]
    raise SystemExit(
        f"no matrix file {text!r} and no shipped study of that name "
        f"(shipped: {', '.join(shipped) or 'none'})"
    )


def _shipped_matrix_paths():
    from repro.study.matrix import shipped_matrices

    return shipped_matrices()


def _run_study(args) -> str:
    """``repro study run``: expand, execute, write JSONL, summarize checks."""
    from repro.study.checks import evaluate_checks
    from repro.study.executor import (
        default_out_path,
        records_to_runs,
        run_study,
        write_jsonl,
    )
    from repro.study.matrix import MatrixError

    try:
        matrix = _resolve_matrix(args.matrix)
    except MatrixError as exc:
        raise SystemExit(str(exc))
    # CLI flags win; the matrix [runner] table provides the defaults.
    jobs = args.jobs if args.jobs is not None else matrix.runner.get("jobs")
    store = args.store or matrix.runner.get("store")
    backend = args.backend or matrix.runner.get("backend")
    artifacts_root = args.artifacts or matrix.runner.get("artifacts")
    if artifacts_root:
        from repro.runner import artifacts as _artifacts

        _artifacts.configure(artifacts_root)
    if jobs is not None or store or backend:
        _runner_context.configure(jobs=jobs, store=store, backend=backend)
    quiet = args.quiet or bool(matrix.runner.get("quiet"))

    def observe(progress):
        if not quiet:
            print(
                f"[{progress.done}/{progress.total}] "
                f"{progress.spec.workload:<8} "
                f"{progress.spec.prefetcher.label:<10} "
                f"({progress.source})",
                file=sys.stderr,
            )

    overrides = None
    if args.workloads:
        overrides = {
            "workload": [w.strip() for w in args.workloads.split(",") if w.strip()]
        }
    try:
        records = run_study(
            matrix, scale=_scale(args), axis_overrides=overrides,
            observer=observe,
        )
    except MatrixError as exc:
        raise SystemExit(str(exc))
    out = pathlib.Path(args.out) if args.out else default_out_path(matrix)
    write_jsonl(records, out)
    checks = evaluate_checks(matrix, records_to_runs(records))
    lines = [f"study {matrix.name}: {len(records)} runs -> {out}"]
    for check in checks:
        lines.append(f"  [{check.status}] {check.name}")
    if checks:
        passed = sum(1 for c in checks if c.passed)
        lines.append(f"  {passed}/{len(checks)} checks passed "
                     "(see 'repro study report' for evidence)")
    return "\n".join(lines)


def _run_study_report(args) -> str:
    """``repro study report``: render markdown from recorded JSONL."""
    from repro.study.checks import evaluate_checks
    from repro.study.executor import default_out_path, records_to_runs
    from repro.study.matrix import MatrixError
    from repro.study.report import load_records, render_report

    try:
        matrix = _resolve_matrix(args.matrix)
    except MatrixError as exc:
        raise SystemExit(str(exc))
    records_path = (
        pathlib.Path(args.records) if args.records
        else default_out_path(matrix)
    )
    if not records_path.exists():
        raise SystemExit(
            f"no records at {records_path}; run "
            f"'repro study run {args.matrix}' first (or pass --records)"
        )
    records = load_records(records_path)
    checks = evaluate_checks(matrix, records_to_runs(records))
    report = render_report(matrix, records, checks=checks)
    if args.strict and any(not c.passed for c in checks):
        print(report)
        failed = ", ".join(c.name for c in checks if not c.passed)
        raise SystemExit(f"study {matrix.name}: failed checks: {failed}")
    return report


def _run_study_list(args) -> str:
    """``repro study list``: the shipped matrix catalogue."""
    from repro.study.matrix import MatrixError, load_matrix

    rows = []
    for path in _shipped_matrix_paths():
        try:
            matrix = load_matrix(path)
            rows.append({
                "study": matrix.name,
                "runs": len(matrix.expand()),
                "checks": len(matrix.expectations),
                "title": matrix.title,
            })
        except MatrixError as exc:
            rows.append({"study": path.stem, "runs": "-", "checks": "-",
                         "title": f"INVALID: {exc}"})
    return render_table(
        ["study", "runs", "checks", "title"], rows,
        title=f"Shipped studies ({len(rows)})",
    )


def _run_study_validate(args) -> str:
    """``repro study validate``: expand every matrix twice, compare keys."""
    from repro.study.matrix import MatrixError, load_matrix

    paths = (
        [pathlib.Path(p) for p in args.matrices]
        if args.matrices else _shipped_matrix_paths()
    )
    if not paths:
        raise SystemExit("no matrix files to validate")
    lines = []
    failures = 0
    for path in paths:
        try:
            matrix = load_matrix(path)
            first = [p.spec.key for p in matrix.expand()]
            second = [p.spec.key for p in matrix.expand()]
            if first != second:
                raise MatrixError(
                    f"{path}: expansion is not hash-stable across runs"
                )
            lines.append(
                f"ok {matrix.name}: {len(first)} runs, "
                f"{len(set(first))} unique specs, "
                f"{len(matrix.expectations)} checks"
            )
        except MatrixError as exc:
            failures += 1
            lines.append(f"FAIL {path}: {exc}")
    if failures:
        raise SystemExit("\n".join(lines))
    return "\n".join(lines)


def _run_study_command(args) -> str:
    handlers = {
        "run": _run_study,
        "report": _run_study_report,
        "list": _run_study_list,
        "validate": _run_study_validate,
    }
    return handlers[args.study_command](args)


def _run_profile(args) -> str:
    """cProfile one canonical simulation; return the formatted report.

    The default run — PV8 on Apache with a single DRAM channel — exercises
    every hot layer at once: trace compilation, the array-backed caches,
    the PVProxy path, bank/channel arbitration and the MSHR files.
    """
    import cProfile
    import io
    import pstats
    import time

    from repro.sim.config import SystemConfig

    workload = get_workload(args.workload)
    config = PREFETCHERS[args.config]()
    system = (
        SystemConfig.baseline().with_contention(dram_channels=args.channels)
        if args.channels > 0
        else None
    )
    if args.sampled:
        from repro.sim.sampling import SamplingConfig

        system = (system or SystemConfig.baseline()).with_sampling(
            SamplingConfig.for_scale(args.refs)
        )
    simulator = CMPSimulator(workload, config, system=system)
    stage_times: dict = {}
    if args.sampled:
        # Shadow the two-speed stage methods with timing wrappers on the
        # *instance* so the report can attribute wall-clock to the
        # fast-forward / functional / detailed stages.  The stages never
        # nest (``_warm_sampled`` delegates to ``_drive_functional``,
        # which is itself a wrapped stage), so the sums are disjoint.
        import functools

        def _staged(label, fn):
            @functools.wraps(fn)
            def wrapper(*a, **kw):
                t0 = time.perf_counter()
                try:
                    return fn(*a, **kw)
                finally:
                    stage_times[label] = (
                        stage_times.get(label, 0.0)
                        + time.perf_counter() - t0
                    )
            return wrapper

        for name, label in (("_drive_functional", "functional"),
                            ("_skip", "fast-forward"),
                            ("_drive", "detailed+warm")):
            setattr(simulator, name, _staged(label, getattr(simulator, name)))
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = simulator.run(args.refs, warmup_refs=args.warmup)
    profiler.disable()
    elapsed = time.perf_counter() - start
    total_refs = (args.refs + args.warmup) * result.n_cores
    stream = io.StringIO()
    contended = f"{args.channels}ch" if args.channels > 0 else "analytic"
    if args.sampled:
        contended += ", sampled"
    stream.write(
        f"repro profile: {workload.name} / {config.label} ({contended}), "
        f"{args.refs} refs/core + {args.warmup} warmup\n"
        f"{total_refs} refs in {elapsed:.3f}s under cProfile "
        f"= {total_refs / elapsed:,.0f} refs/sec (profiler overhead included); "
        f"aggregate IPC {result.aggregate_ipc:.4f}\n\n"
    )
    if args.sampled and stage_times:
        from repro.sim import batchkernel

        vec = "on" if getattr(simulator, "use_vec", False) else "off"
        compiled = "on" if batchkernel.compiled_requested() else "off"
        stream.write(
            "sampled stage breakdown (vectorized batch kernel "
            f"{vec}, compiled backend {compiled}):\n"
        )
        for label in ("functional", "detailed+warm", "fast-forward"):
            spent = stage_times.get(label, 0.0)
            stream.write(
                f"  {label:<14} {spent * 1e3:8.1f} ms "
                f"({spent / elapsed:6.1%} of run)\n"
            )
        func_share = stage_times.get("functional", 0.0) / elapsed
        stream.write(
            f"functional-stage share: {func_share:.1%} of wall-clock\n\n"
        )
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    report = stream.getvalue()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
    return report


def _parse_size(text: str) -> int:
    """``500M``-style size literal -> bytes (plain integers pass through)."""
    text = text.strip()
    scale = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}.get(text[-1:].upper())
    if scale is None:
        return int(text)
    return int(float(text[:-1]) * scale)


def _artifact_store_from(args):
    import os as _os

    from repro.runner.artifacts import ArtifactStore

    root = args.root or _os.environ.get("REPRO_ARTIFACTS")
    if not root:
        raise SystemExit(
            "no artifact store: pass --root or set REPRO_ARTIFACTS"
        )
    return ArtifactStore(root)


def _run_artifacts(args) -> str:
    """``repro artifacts list|stats|gc``: persistent-store maintenance."""
    store = _artifact_store_from(args)
    if args.artifacts_command == "list":
        rows = [
            {
                "kind": info.kind,
                "key": info.key[:16],
                "bytes": info.size,
                "age_s": round(max(0.0, time.time() - info.mtime), 1),
                "meta": json.dumps(info.meta, sort_keys=True),
            }
            for info in store.entries()
        ]
        title = f"{len(rows)} artifacts in {', '.join(map(str, store.roots))}"
        return render_table(["kind", "key", "bytes", "age_s", "meta"],
                            rows, title=title)
    if args.artifacts_command == "stats":
        stats = store.stats()
        rows = [
            {
                "kind": kind,
                "entries": occ["entries"],
                "bytes": occ["bytes"],
                "corrupt": occ["corrupt"],
                "corrupt_bytes": occ["corrupt_bytes"],
            }
            for kind, occ in sorted(stats["on_disk"].items())
        ]
        return render_table(
            ["kind", "entries", "bytes", "corrupt", "corrupt_bytes"], rows,
            title=f"artifact store: {', '.join(stats['roots'])}",
        )
    max_bytes = _parse_size(args.max_bytes) if args.max_bytes else None
    max_age_s = (
        args.max_age_days * 86_400.0 if args.max_age_days is not None else None
    )
    summary = store.gc(max_bytes=max_bytes, max_age_s=max_age_s)
    return (
        f"gc: {summary['removed']} evicted by size, "
        f"{summary['expired']} expired by age, "
        f"{summary['corrupt_swept']} corrupt swept, "
        f"{summary['freed_bytes']} bytes freed"
    )


def _run_serve(args) -> int:
    """``repro serve``: block serving jobs until interrupted."""
    from repro.runner.remote import HostAgent

    agent = HostAgent(
        host=args.host, port=args.port, artifact_cache=args.artifact_cache
    )
    agent.start()
    host, port = agent.address
    print(f"repro serve: listening on {host}:{port}", flush=True)
    try:
        agent.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        agent.stop()
    return 0


def _run_trace_stats(args) -> str:
    from repro.cpu.tracetools import trace_stats
    from repro.workloads.generator import WorkloadGenerator

    profile = get_workload(args.workload)
    generator = WorkloadGenerator(profile, core=args.core)
    stats = trace_stats(generator.records(args.refs))
    rows = [{"metric": k, "value": v} for k, v in stats.as_dict().items()]
    return render_table(["metric", "value"], rows,
                        title=f"trace stats: {profile.name}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        rows = [{"parameter": k, "value": v} for k, v in table1().items()]
        print(render_table(["parameter", "value"], rows, title="Table 1"))
    elif args.command == "table2":
        print(render_table(
            ["workload", "category", "footprint_mb", "description"],
            table2(), title="Table 2",
        ))
    elif args.command == "table3":
        print(render_table(
            ["configuration", "tags", "patterns", "total"],
            table3_rows(), title="Table 3",
        ))
    elif args.command == "budget":
        print(render_table(
            ["component", "bytes"], pvproxy_budget_table(),
            title="Section 4.6: PVProxy budget",
        ))
    elif args.command in FIGURE_COMMANDS:
        print(_run_figure(args))
    elif args.command == "bandwidth":
        print(_run_bandwidth(args))
    elif args.command == "run":
        print(_run_simulation(args))
    elif args.command == "sweep":
        print(_run_sweep(args))
    elif args.command == "study":
        print(_run_study_command(args))
    elif args.command == "artifacts":
        print(_run_artifacts(args))
    elif args.command == "serve":
        return _run_serve(args)
    elif args.command == "trace-stats":
        print(_run_trace_stats(args))
    elif args.command == "profile":
        print(_run_profile(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
