"""Fixed-width text rendering for reproduced tables and figures.

The paper's figures are bar charts; a terminal reproduction prints the same
series as aligned numeric tables, one row per bar (or per group of stacked
bars).  Values that are fractions are rendered as percentages, matching the
figure axes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class FigureData:
    """The data behind one reproduced figure."""

    name: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]]
    notes: List[str] = field(default_factory=list)

    def column(self, key: str) -> List[object]:
        return [row.get(key) for row in self.rows]

    def filter(self, **criteria) -> List[Dict[str, object]]:
        """Rows matching all ``column=value`` criteria."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                out.append(row)
        return out

    def value(self, column: str, **criteria) -> object:
        """The single value of ``column`` in the row matching ``criteria``."""
        rows = self.filter(**criteria)
        if len(rows) != 1:
            raise KeyError(f"{len(rows)} rows match {criteria!r} in {self.name}")
        return rows[0][column]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value * 100:.1f}%" if -1.5 < value < 1.5 else f"{value:.1f}"
    return str(value)


def render_table(
    columns: Sequence[str], rows: Sequence[Dict[str, object]], title: str = ""
) -> str:
    """Render rows as an aligned fixed-width table."""
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for r in cells:
        lines.append("  ".join(r[i].rjust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def render_figure(figure: FigureData) -> str:
    """Render a :class:`FigureData` (table plus any notes)."""
    text = render_table(figure.columns, figure.rows, title=f"{figure.name}: {figure.title}")
    for note in figure.notes:
        text += f"\n  note: {note}"
    return text
