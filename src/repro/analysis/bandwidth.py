"""Bandwidth-sensitivity study: PV under contended memory timing.

The paper's cost argument (Sections 4.3/4.4) is that virtualization is
cheap because the PVProxy's metadata traffic is absorbed on chip: more
than 98% of PV requests are filled by the L2, so the extra off-chip
pressure is a few percent.  The analytic timing model cannot test the
consequence of that claim — with infinite bandwidth, extra traffic is
free.  This driver runs the contention-aware model
(:class:`~repro.memory.contention.ContentionConfig`) across a DRAM
channel sweep and asks the paper's question directly: **does virtualized
SMS keep its speedup when bandwidth is scarce?**

For every (workload, channel count) it compares no prefetching, dedicated
SMS-1K and virtualized PV-8, all three contending for the same narrowed
channels, banked L2 ports and bounded MSHRs.  The qualitative expectation
(reproduced by the golden ``tests/regression/golden/bandwidth.json``):
PV-8 keeps a positive speedup even at one channel, because its metadata
stays on chip — the >98% L2 fill rate is what makes virtualization
bandwidth-tolerant.

All runs resolve through the active sweep runner, like every figure.
The sweep lattice is declared once, as data, in ``studies/bandwidth.toml``
— the constants below are derived from that matrix, so this driver and
``repro study run studies/bandwidth.toml`` resolve identical specs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.report import FigureData
from repro.memory.contention import ContentionConfig
from repro.runner.context import get_runner
from repro.runner.spec import ExperimentSpec
from repro.sim.config import PrefetcherConfig
from repro.sim.experiment import ExperimentScale, run_experiment
from repro.study.matrix import shipped_matrix

#: DRAM channel sweep, widest to narrowest.
BANDWIDTH_CHANNELS: List[int] = shipped_matrix("bandwidth").axis_values(
    "channels")

#: Representative workloads (the Figure 5 trio), keeping the sweep
#: affordable: 3 workloads x 3 channel counts x 3 configurations.
BANDWIDTH_WORKLOADS: List[str] = shipped_matrix("bandwidth").workloads()

#: The configurations whose contended speedups the sweep compares.
BANDWIDTH_CONFIGS: List[PrefetcherConfig] = shipped_matrix(
    "bandwidth").configs()


def contention_for(channels: int) -> ContentionConfig:
    """The contention model one sweep point runs under."""
    return ContentionConfig(enabled=True, dram_channels=channels)


def bandwidth(
    workloads: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
    channels: Optional[Sequence[int]] = None,
) -> FigureData:
    """Speedup and resource pressure across a DRAM channel sweep."""
    names = list(workloads) if workloads is not None else BANDWIDTH_WORKLOADS
    widths = list(channels) if channels is not None else BANDWIDTH_CHANNELS
    specs = [
        ExperimentSpec.build(n, config, scale=scale,
                             contention=contention_for(width))
        for n in names
        for width in widths
        for config in BANDWIDTH_CONFIGS
    ]
    get_runner().run(specs)
    rows = []
    for name in names:
        for width in widths:
            contention = contention_for(width)
            base = run_experiment(
                name, BANDWIDTH_CONFIGS[0], scale=scale, contention=contention
            )
            for config in BANDWIDTH_CONFIGS:
                r = run_experiment(name, config, scale=scale, contention=contention)
                rows.append(
                    {
                        "workload": name,
                        "channels": width,
                        "config": config.label,
                        "speedup": r.speedup_vs(base),
                        "ipc": r.aggregate_ipc,
                        "dram_utilization": r.dram_utilization,
                        "dram_queue_cycles": r.dram_queue_cycles,
                        "bank_conflict_cycles": r.bank_conflict_cycles,
                        "mshr_rejected": r.mshr_rejected,
                        "pv_l2_fill_rate": (
                            r.pv_l2_fill_rate if r.l2_pv_requests else ""
                        ),
                    }
                )
    return FigureData(
        name="Bandwidth",
        title="PV speedup under finite DRAM bandwidth (contention model)",
        columns=[
            "workload", "channels", "config", "speedup", "ipc",
            "dram_utilization", "dram_queue_cycles", "bank_conflict_cycles",
            "mshr_rejected", "pv_l2_fill_rate",
        ],
        rows=rows,
        notes=[
            "paper: >98% of PV requests are absorbed on-chip (Section 4.3),",
            "so PV's speedup survives even when DRAM channels are narrow;",
            "narrowing channels must never improve IPC (monotonicity)",
        ],
    )
