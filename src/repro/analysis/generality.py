"""The Section 6 generality study: PV beyond the SMS pattern history table.

The paper closes by arguing that predictor virtualization applies to any
table-based predictor — naming branch-target prediction explicitly and
motivating with value prediction.  This driver measures that claim on the
synthetic workloads: for each of the three engine classes (SMS PHT, BTB,
last-value predictor) it compares

* a **budget** dedicated table sized to roughly the PVProxy's ~900-byte
  on-chip budget (what a core could actually afford),
* the **full-size** dedicated table the predictor wants, and
* the full-size table **virtualized** behind a per-core PVProxy,

plus the **shared-PV-space** configuration in which all three predictor
classes are virtualized at once, their PVTables coexisting in the
reserved physical-memory region and competing for the same L2.

All runs resolve through the active :class:`~repro.runner.sweep.SweepRunner`
(parallelism + persistent store), exactly like the numbered figures.  The
scenario table is declared once, as data, in ``studies/generality.toml``
(axis labels are the scenario names); the budget geometries live with the
shared preset catalogue in :mod:`repro.study.presets`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import FigureData
from repro.runner.context import get_runner
from repro.runner.spec import ExperimentSpec
from repro.sim.config import PrefetcherConfig
from repro.sim.experiment import ExperimentScale, run_experiment
from repro.study.matrix import shipped_matrix
from repro.workloads.registry import workload_names


def generality_scenarios() -> List[Tuple[str, PrefetcherConfig]]:
    """The (scenario name, configuration) pairs of the generality table."""
    matrix = shipped_matrix("generality")
    return list(zip(matrix.axis_labels("config"), matrix.configs()))


def _row(name: str, scenario: str, config: PrefetcherConfig, result) -> dict:
    """One generality-table row; engine columns are "" when not applicable."""
    btb = result.engine_stats.get("btb", {})
    lvp = result.engine_stats.get("lvp", {})
    sms_active = config.mode not in ("none", "stride")
    return {
        "workload": name,
        "scenario": scenario,
        "config": config.label,
        "sms_coverage": result.coverage if sms_active else "",
        "btb_hit_rate": btb.get("hit_rate", ""),
        "lvp_coverage": lvp.get("coverage", ""),
        "lvp_accuracy": lvp.get("accuracy", ""),
        "pv_requests": result.l2_pv_requests,
        "pvcache_hit_rate": (
            result.pvcache_hit_rate if result.l2_pv_requests else ""
        ),
        "pv_dropped": result.pv_dropped,
    }


def generality(
    workloads: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
) -> FigureData:
    """Dedicated vs. virtualized across all three predictor classes."""
    names = list(workloads) if workloads is not None else workload_names()
    scenarios = generality_scenarios()
    specs = [
        ExperimentSpec.build(n, config, scale=scale)
        for n in names
        for _, config in scenarios
    ]
    get_runner().run(specs)
    rows = []
    for name in names:
        for scenario, config in scenarios:
            result = run_experiment(name, config, scale=scale)
            rows.append(_row(name, scenario, config, result))
    return FigureData(
        name="Section 6",
        title="Generality: dedicated vs. virtualized predictor classes",
        columns=[
            "workload", "scenario", "config", "sms_coverage",
            "btb_hit_rate", "lvp_coverage", "lvp_accuracy",
            "pv_requests", "pvcache_hit_rate", "pv_dropped",
        ],
        rows=rows,
        notes=[
            "paper: other predictors (e.g. branch target prediction) will",
            "naturally benefit from predictor virtualization (Section 6);",
            "virtualized bars should track the full-size dedicated tables",
            "at roughly the on-chip budget of the small ones",
        ],
    )
