"""ASCII bar charts for reproduced figures.

The paper's figures are (stacked) bar charts; for terminal output each
:class:`~repro.analysis.report.FigureData` can also be rendered as
horizontal bars, one per row, with stacked segments for the
covered/uncovered/overprediction splits of Figures 4 and 5 and the
miss/writeback splits of Figures 7, 8 and 10.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import FigureData

#: Fill characters per stacked segment, in order.
SEGMENT_CHARS = "#=+~"


def bar(value: float, scale: float, width: int, char: str = "#") -> str:
    """One bar segment: ``value`` out of ``scale`` over ``width`` columns."""
    if scale <= 0:
        return ""
    cells = int(round(max(value, 0.0) / scale * width))
    return char * cells


def stacked_bar(
    values: Sequence[float], scale: float, width: int
) -> str:
    """Concatenate one segment per value, preserving total length ratio."""
    out = []
    for i, value in enumerate(values):
        out.append(bar(value, scale, width, SEGMENT_CHARS[i % len(SEGMENT_CHARS)]))
    return "".join(out)


def render_bar_chart(
    figure: FigureData,
    value_columns: Sequence[str],
    label_columns: Sequence[str] = ("workload", "config"),
    width: int = 40,
    scale: Optional[float] = None,
) -> str:
    """Render ``figure`` as a horizontal (stacked) bar chart.

    ``value_columns`` selects the stacked segments; ``scale`` defaults to
    the largest row total so the widest bar fills ``width`` columns.
    """
    rows = figure.rows
    totals = [
        sum(float(row.get(col) or 0.0) for col in value_columns) for row in rows
    ]
    if scale is None:
        scale = max(totals) if totals else 1.0
        if scale <= 0:
            scale = 1.0
    labels = [
        " ".join(str(row.get(col, "")) for col in label_columns if col in row)
        for row in rows
    ]
    label_width = max((len(l) for l in labels), default=0)
    lines = [f"{figure.name}: {figure.title}"]
    legend = ", ".join(
        f"{SEGMENT_CHARS[i % len(SEGMENT_CHARS)]}={col}"
        for i, col in enumerate(value_columns)
    )
    lines.append(f"  [{legend}; full width = {scale * 100:.0f}%]")
    for label, row, total in zip(labels, rows, totals):
        segments = stacked_bar(
            [float(row.get(col) or 0.0) for col in value_columns], scale, width
        )
        lines.append(f"  {label.ljust(label_width)} |{segments} {total * 100:.1f}%")
    return "\n".join(lines)


#: Which value columns make sense as stacked bars, per figure name.
DEFAULT_CHART_COLUMNS: Dict[str, List[str]] = {
    "Figure 4": ["covered", "overpredictions"],
    "Figure 5": ["covered", "overpredictions"],
    "Figure 6": ["l2_request_increase"],
    "Figure 7": ["l2_misses", "l2_writebacks"],
    "Figure 8": ["miss_app", "miss_pv", "wb_app", "wb_pv"],
    "Figure 9": ["speedup"],
    "Figure 10": ["l2_misses", "l2_writebacks"],
    "Figure 11": ["speedup"],
}


def render_default_chart(figure: FigureData, width: int = 40) -> str:
    """Chart a known figure with its conventional segment columns."""
    columns = DEFAULT_CHART_COLUMNS.get(figure.name)
    if columns is None:
        raise KeyError(f"no default chart layout for {figure.name!r}")
    return render_bar_chart(figure, columns, width=width)
