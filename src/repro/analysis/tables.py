"""Tables 1-3 and the Section 4.6 PVProxy budget."""

from __future__ import annotations

from typing import Dict, List

from repro.core.storage import pvproxy_budget, reduction_factor, table3
from repro.sim.config import SystemConfig
from repro.workloads.registry import table2_rows


def table1() -> Dict[str, str]:
    """Table 1: base processor configuration."""
    return SystemConfig.baseline().table1()


def table2() -> List[dict]:
    """Table 2: workload inventory."""
    return table2_rows()


def table3_rows(published: bool = True) -> List[dict]:
    """Table 3: storage for different predictor configurations."""
    return [row.as_row() for row in table3(published=published)]


def pvproxy_budget_table() -> List[dict]:
    """Section 4.6: PVProxy space requirements, byte by byte."""
    budget = pvproxy_budget()
    labels = {
        "pvcache_data_bytes": "PVCache (8 sets x 11 ways x 43 bits)",
        "tag_bytes": "PVCache set tags (+valid)",
        "dirty_bytes": "Dirty bits",
        "mshr_bytes": "MSHRs",
        "evict_buffer_bytes": "Evict buffer (4 x 64B)",
        "pattern_buffer_bytes": "Pattern buffer (16 x 32 bits)",
        "total_bytes": "Total per core",
    }
    rows = [
        {"component": labels[key], "bytes": int(budget[key])}
        for key in labels
    ]
    rows.append(
        {
            "component": "Reduction vs dedicated 1K-11 (59.125KB)",
            "bytes": round(reduction_factor(), 1),
        }
    )
    return rows
