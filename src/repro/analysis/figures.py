"""Drivers for every evaluation figure (Figures 4-11).

Each driver assembles the runs a figure needs through the shared experiment
cache, so e.g. the SMS-1K run of a workload is simulated once even though
five figures reference it.  All drivers accept an
:class:`~repro.sim.experiment.ExperimentScale` so callers control cost.

Before reading any result, a driver hands its full spec list to the active
:class:`~repro.runner.sweep.SweepRunner` (see :mod:`repro.runner.context`),
which resolves them through the persistent store and/or a process pool and
merges everything into the experiment cache — the ``run_experiment`` calls
below then always hit that cache.

Paper-vs-measured comparisons live in EXPERIMENTS.md; the ``notes`` field
of each returned :class:`FigureData` restates the paper's headline claim
for that figure so the shape can be checked at a glance.

Every figure's run lattice (workloads, configurations, hierarchy
overrides) is declared once, as data, in the shipped matrix files under
``studies/`` — the module-level constants below are *derived* from those
matrices, so ``repro figure4`` and ``repro study run studies/figure4.toml``
resolve byte-identical experiment specs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.report import FigureData
from repro.runner.context import get_runner
from repro.runner.spec import ExperimentSpec
from repro.sim.config import PrefetcherConfig
from repro.sim.experiment import ExperimentScale, run_experiment
from repro.sim.sampling import matched_pair
from repro.study.matrix import shipped_matrix
from repro.workloads.registry import workload_names

#: The five PHT configurations of Figure 4, in the paper's bar order
#: (the ``studies/figure4.toml`` config axis).
FIG4_CONFIGS: List[PrefetcherConfig] = shipped_matrix("figure4").configs()

#: The intermediate sweep of Figure 5: the 11-way dedicated geometries
#: of the ``studies/figure5.toml`` config axis, in declared order.
FIG5_SET_SWEEP: List[int] = [
    c.pht_sets
    for c in shipped_matrix("figure5").configs()
    if c.mode == "dedicated" and c.pht_assoc == 11
]

#: The three representative workloads Figure 5 plots.
FIG5_WORKLOADS: List[str] = shipped_matrix("figure5").workloads()

#: L2 capacities of the Section 4.5 sensitivity study (total, 4 cores;
#: the ``studies/figure10.toml`` l2_size axis).
FIG10_L2_SIZES: List[int] = shipped_matrix("figure10").axis_values("l2_size")

#: Longer L2 latencies of Figure 11 (tag/data cycles; baseline is 6/12;
#: the ``studies/figure11.toml`` defaults).
FIG11_L2_LATENCY = (
    shipped_matrix("figure11").defaults["l2_tag_latency"],
    shipped_matrix("figure11").defaults["l2_data_latency"],
)


def _workloads(workloads: Optional[Sequence[str]]) -> List[str]:
    return list(workloads) if workloads is not None else workload_names()


def _spec(
    workload: str,
    config: PrefetcherConfig,
    scale: Optional[ExperimentScale],
    **overrides,
) -> ExperimentSpec:
    return ExperimentSpec.build(workload, config, scale=scale, **overrides)


def _sweep(specs: Sequence[ExperimentSpec]) -> None:
    """Resolve ``specs`` through the active runner into the shared cache."""
    get_runner().run(specs)


# --------------------------------------------------------------------- Fig 4


def figure4(
    workloads: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
) -> FigureData:
    """SMS performance potential vs. predictor table size (Figure 4)."""
    rows = []
    names = _workloads(workloads)
    _sweep([_spec(n, c, scale) for n in names for c in FIG4_CONFIGS])
    for name in names:
        for config in FIG4_CONFIGS:
            r = run_experiment(name, config, scale=scale)
            rows.append(
                {
                    "workload": name,
                    "config": config.label,
                    "covered": r.coverage,
                    "uncovered": r.uncovered_fraction,
                    "overpredictions": r.overprediction_rate,
                }
            )
    return FigureData(
        name="Figure 4",
        title="SMS performance potential (fraction of L1 read misses)",
        columns=["workload", "config", "covered", "uncovered", "overpredictions"],
        rows=rows,
        notes=[
            "paper: large tables outperform small ones by a great margin;",
            "paper: 1K-11a within ~3% of Infinite for every workload",
        ],
    )


# --------------------------------------------------------------------- Fig 5


def figure5(
    workloads: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
) -> FigureData:
    """Coverage across all intermediate table sizes (Figure 5)."""
    rows = []
    names = _workloads(workloads) if workloads is not None else FIG5_WORKLOADS
    configs = shipped_matrix("figure5").configs()
    _sweep([_spec(n, c, scale) for n in names for c in configs])
    for name in names:
        for config in configs:
            r = run_experiment(name, config, scale=scale)
            rows.append(
                {
                    "workload": name,
                    "config": config.label,
                    "covered": r.coverage,
                    "uncovered": r.uncovered_fraction,
                    "overpredictions": r.overprediction_rate,
                }
            )
    return FigureData(
        name="Figure 5",
        title="SMS potential, full table-size sweep (representative workloads)",
        columns=["workload", "config", "covered", "uncovered", "overpredictions"],
        rows=rows,
        notes=["paper: every workload drops significantly as entries shrink"],
    )


# --------------------------------------------------------------------- Fig 6


def figure6(
    workloads: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
) -> FigureData:
    """Increase in L2 requests due to virtualization (Figure 6)."""
    rows = []
    configs = shipped_matrix("figure6").configs()
    reference, pv_configs = configs[0], configs[1:]
    names = _workloads(workloads)
    _sweep([_spec(n, c, scale) for n in names for c in configs])
    for name in names:
        ref = run_experiment(name, reference, scale=scale)
        for pv_config in pv_configs:
            pv = run_experiment(name, pv_config, scale=scale)
            rows.append(
                {
                    "workload": name,
                    "config": f"PV-{pv_config.pvcache_entries}",
                    "l2_request_increase": pv.l2_request_increase(ref),
                    "pvcache_hit_rate": pv.pvcache_hit_rate,
                }
            )
    return FigureData(
        name="Figure 6",
        title="L2 request increase due to virtualization (vs dedicated SMS-1K)",
        columns=["workload", "config", "l2_request_increase", "pvcache_hit_rate"],
        rows=rows,
        notes=[
            "paper: 25-44% more L2 requests for PV-8 (average 33%);",
            "paper: PV-16 barely different from PV-8",
        ],
    )


def pv_l2_fill_rates(
    workloads: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
) -> FigureData:
    """Section 4.3 claim: >98% of PVProxy requests are filled by the L2."""
    rows = []
    config = shipped_matrix("fill_rate").configs()[0]
    names = _workloads(workloads)
    _sweep([_spec(n, config, scale) for n in names])
    for name in names:
        pv = run_experiment(name, config, scale=scale)
        rows.append(
            {
                "workload": name,
                "pv_l2_fill_rate": pv.pv_l2_fill_rate,
                "pvcache_hit_rate": pv.pvcache_hit_rate,
            }
        )
    return FigureData(
        name="Section 4.3",
        title="Fraction of PVProxy requests served on-chip by the L2",
        columns=["workload", "pv_l2_fill_rate", "pvcache_hit_rate"],
        rows=rows,
        notes=["paper: more than 98% of PVProxy requests are filled in L2"],
    )


# --------------------------------------------------------------------- Fig 7


def figure7(
    workloads: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
) -> FigureData:
    """Off-chip bandwidth increase, split into L2 misses and writebacks."""
    rows = []
    configs = shipped_matrix("figure7").configs()
    reference, pv_configs = configs[0], configs[1:]
    names = _workloads(workloads)
    _sweep([_spec(n, c, scale) for n in names for c in configs])
    for name in names:
        ref = run_experiment(name, reference, scale=scale)
        for pv_config in pv_configs:
            pv = run_experiment(name, pv_config, scale=scale)
            inc = pv.offchip_increase(ref)
            rows.append(
                {
                    "workload": name,
                    "config": f"PV-{pv_config.pvcache_entries}",
                    "l2_misses": inc["misses"],
                    "l2_writebacks": inc["writebacks"],
                    "total": inc["total"],
                }
            )
    return FigureData(
        name="Figure 7",
        title="Off-chip bandwidth increase due to virtualization",
        columns=["workload", "config", "l2_misses", "l2_writebacks", "total"],
        rows=rows,
        notes=[
            "paper: average off-chip increase 3.3%, maximum 6.5% (Zeus);",
            "paper: miss increase <1% for five workloads, <3% for the rest",
        ],
    )


# --------------------------------------------------------------------- Fig 8


def figure8(
    workloads: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
) -> FigureData:
    """Figure 7's PV-8 increase split into application vs PV data."""
    rows = []
    reference, pv_config = shipped_matrix("figure8").configs()
    names = _workloads(workloads)
    configs = [reference, pv_config]
    _sweep([_spec(n, c, scale) for n in names for c in configs])
    for name in names:
        ref = run_experiment(name, reference, scale=scale)
        pv = run_experiment(name, pv_config, scale=scale)
        split = pv.offchip_split_increase(ref)
        rows.append(
            {
                "workload": name,
                "miss_app": split["miss_app"],
                "miss_pv": split["miss_pv"],
                "wb_app": split["wb_app"],
                "wb_pv": split["wb_pv"],
            }
        )
    return FigureData(
        name="Figure 8",
        title="Off-chip traffic increase split into application and PV data (PV-8)",
        columns=["workload", "miss_app", "miss_pv", "wb_app", "wb_pv"],
        rows=rows,
        notes=[
            "paper: application-data miss increase <2.5% everywhere (avg ~1%)",
        ],
    )


# --------------------------------------------------------------------- Fig 9


#: The paper's Figure 9 bar order: everything after the NoPF baseline
#: on the ``studies/figure9.toml`` config axis.
FIG9_CONFIGS: List[PrefetcherConfig] = shipped_matrix("figure9").configs()[1:]


def figure9(
    workloads: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
) -> FigureData:
    """Speedup over the no-prefetch baseline (Figure 9), with matched-pair CIs."""
    rows = []
    names = _workloads(workloads)
    baseline = shipped_matrix("figure9").configs()[0]
    configs = [baseline] + FIG9_CONFIGS
    _sweep([_spec(n, c, scale) for n in names for c in configs])
    for name in names:
        base = run_experiment(name, baseline, scale=scale)
        for config in FIG9_CONFIGS:
            r = run_experiment(name, config, scale=scale)
            row = {
                "workload": name,
                "config": config.label,
                "speedup": r.speedup_vs(base),
            }
            if base.window_ipcs and r.window_ipcs:
                pair = matched_pair(base.window_ipcs, r.window_ipcs)
                row["ci95"] = pair.relative_half_width
            rows.append(row)
    return FigureData(
        name="Figure 9",
        title="Speedup over no-prefetching baseline",
        columns=["workload", "config", "speedup", "ci95"],
        rows=rows,
        notes=[
            "paper: SMS-1K avg 19%, PV-8 avg 18%; small tables about half;",
            "paper: Apache gets no speedup from the small dedicated tables",
        ],
    )


# -------------------------------------------------------------------- Fig 10


def figure10(
    workloads: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
) -> FigureData:
    """Off-chip bandwidth increase vs. L2 capacity (Figure 10)."""
    rows = []
    reference, pv_config = shipped_matrix("figure10").configs()
    names = _workloads(workloads)
    _sweep([
        _spec(n, c, scale, l2_size=l2)
        for n in names
        for l2 in FIG10_L2_SIZES
        for c in (reference, pv_config)
    ])
    for name in names:
        for l2_size in FIG10_L2_SIZES:
            ref = run_experiment(name, reference, scale=scale, l2_size=l2_size)
            pv = run_experiment(
                name, pv_config, scale=scale, l2_size=l2_size
            )
            inc = pv.offchip_increase(ref)
            rows.append(
                {
                    "workload": name,
                    "l2": f"{l2_size // 1024**2}MB",
                    "l2_misses": inc["misses"],
                    "l2_writebacks": inc["writebacks"],
                    "total": inc["total"],
                }
            )
    return FigureData(
        name="Figure 10",
        title="Off-chip bandwidth increase for different L2 sizes (PV-8)",
        columns=["workload", "l2", "l2_misses", "l2_writebacks", "total"],
        rows=rows,
        notes=["paper: PV interferes less as L2 capacity grows; minimal at 8MB"],
    )


# -------------------------------------------------------------------- Fig 11


def figure11(
    workloads: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
) -> FigureData:
    """Speedups with a slower L2 (8/16-cycle tag/data, Figure 11)."""
    tag, data = FIG11_L2_LATENCY
    rows = []
    names = _workloads(workloads)
    configs = shipped_matrix("figure11").configs()
    _sweep([
        _spec(n, c, scale, l2_tag_latency=tag, l2_data_latency=data)
        for n in names
        for c in configs
    ])
    for name in names:
        base = run_experiment(
            name, configs[0], scale=scale,
            l2_tag_latency=tag, l2_data_latency=data,
        )
        for config in configs[1:]:
            r = run_experiment(
                name, config, scale=scale,
                l2_tag_latency=tag, l2_data_latency=data,
            )
            rows.append(
                {
                    "workload": name,
                    "config": config.label,
                    "speedup": r.speedup_vs(base),
                }
            )
    return FigureData(
        name="Figure 11",
        title=f"Speedup with increased L2 latency ({tag}/{data} tag/data cycles)",
        columns=["workload", "config", "speedup"],
        rows=rows,
        notes=["paper: PV within ~1.5% of the dedicated prefetcher on average"],
    )
