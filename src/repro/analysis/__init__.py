"""Per-figure and per-table reproduction drivers.

Each ``figureN`` function runs (or reuses, via the experiment cache) the
simulations behind one figure of the paper's evaluation and returns a
:class:`~repro.analysis.report.FigureData` with the same rows/series the
paper plots.  ``repro.analysis.tables`` does the same for the three tables.
``repro.analysis.report`` renders either as fixed-width text.
"""

from repro.analysis.figures import (
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    pv_l2_fill_rates,
)
from repro.analysis.report import FigureData, render_figure, render_table
from repro.analysis.tables import pvproxy_budget_table, table1, table2, table3_rows

__all__ = [
    "FigureData",
    "figure10",
    "figure11",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "pv_l2_fill_rates",
    "pvproxy_budget_table",
    "render_figure",
    "render_table",
    "table1",
    "table2",
    "table3_rows",
]
