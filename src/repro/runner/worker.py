"""Execution backends that drive a :class:`~repro.runner.broker.JobBroker`.

A backend is anything with::

    drain(broker, handle, only=None) -> iterator of (key, SimResult)

It leases specs from the broker, computes them, and publishes results
back, yielding each accepted publish as it happens.  The broker owns all
coordination (leases, retries, quarantine, store write-through); backends
own only the execution substrate, so swapping one for another — or
pointing the sweep at remote hosts — never touches the orchestration
loop.  Three backends ship today:

* :class:`InlineBackend`  — computes in the calling process.  The serial
  path (``jobs=1``) and the simplest possible reference implementation
  of the worker protocol.
* :class:`ProcessBackend` — N forked worker processes, each running
  :func:`_worker_main`: lease → compute → publish, with a heartbeat
  thread keeping the lease alive during long computations.  The parent
  drain loop detects dead workers (crash recovery: their leases expire
  immediately and the worker is respawned), expires overdue leases
  (partition recovery) and verifies payload digests via the broker.
* :class:`~repro.runner.remote.RemoteBackend` (``--backend remote``) —
  dispatches jobs to ``repro serve`` host agents over a digest-verified
  TCP transport with timeouts, backoff and partition recovery; see
  :mod:`repro.runner.remote`.

Both backends route every fault-injection hook of
:mod:`repro.runner.faults` so the test suite can prove the protocol:
with no plan installed the hooks are no-ops.

Backends register by name in :data:`BACKENDS` (``repro sweep
--backend``); :func:`register_backend` lets external code slot in new
substrates without touching this module.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import queue as queue_mod
import threading
import time
from typing import Callable, Dict, Iterator, Optional, Set, Tuple

from repro.runner import faults
from repro.runner.broker import JobBroker, SweepHandle, payload_digest
from repro.runner.serialize import result_to_dict
from repro.runner.spec import ExperimentSpec
from repro.sim.metrics import SimResult

__all__ = [
    "BACKENDS",
    "BackendTeardownError",
    "InlineBackend",
    "ProcessBackend",
    "fork_available",
    "leaked_heartbeat_threads",
    "make_backend",
    "register_backend",
]


class BackendTeardownError(RuntimeError):
    """A backend's execution substrate vanished mid-drain.

    Raised instead of hanging (or dying with a bare ``OSError``) when a
    worker's task queue or the shared result queue is gone — a torn-down
    pool being driven after ``drain`` exited, or a queue closed under a
    racing thread.  The broker state stays consistent: the affected
    lease is failed (re-pended) before this raises.
    """


def _mp_context():
    """fork where available (workers inherit caches/plans); else default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def fork_available() -> bool:
    return _mp_context().get_start_method() == "fork"


def _spec_tag(spec: ExperimentSpec) -> str:
    """Human-aimable fault selector: ``workload/config-label``."""
    return f"{spec.workload}/{spec.prefetcher.label}"


# ---------------------------------------------------------------- inline


class InlineBackend:
    """Drives the broker to completion in the calling process.

    Crash and delay faults cannot partition a single process: a crash
    fault raises (and is retried like any failure) instead of killing the
    test run, and a delay fault cannot expire a lease nobody else is
    watching.  Poison and corrupt faults behave exactly as they do under
    the process backend.
    """

    forks = False

    def drain(
        self,
        broker: JobBroker,
        handle: SweepHandle,
        only: Optional[Set[str]] = None,
    ) -> Iterator[Tuple[str, SimResult]]:
        worker = "inline"
        while not broker.done(handle):
            broker.expire()
            job = broker.lease(worker, only=only)
            if job is None:
                delay = broker.next_event_delay()
                time.sleep(min(delay if delay is not None else 0.01, 0.05))
                continue
            plan = faults.active_plan()
            tag = _spec_tag(job.spec)
            try:
                if plan.is_poison(job.key, tag):
                    raise faults.PoisonFault(f"injected poison for {tag}")
                result = job.spec.execute()
                payload = result_to_dict(result)
                digest = payload_digest(payload)
                payload = plan.maybe_corrupt(job.key, tag, payload)
                plan.maybe_crash(job.key, tag, hard=False)
                status = broker.complete(job.token, payload, digest)
                if status == "published":
                    yield job.key, broker.result(job.key)
            except Exception as exc:
                broker.fail(job.token, f"{type(exc).__name__}: {exc}")


# --------------------------------------------------------------- process


def _heartbeat_loop(result_q, worker_id, token, interval, stop) -> None:
    while not stop.wait(interval):
        try:
            result_q.put(("heartbeat", worker_id, token))
        except (OSError, ValueError):  # queue gone: the drain loop ended
            return


#: Heartbeat threads that outlived their join timeout, per process.
#: Inline/test callers inspect this; worker processes report leaks to the
#: parent through the result queue instead.
_LEAKED_HEARTBEATS: list = []


def leaked_heartbeat_threads() -> list:
    """Heartbeat threads this process failed to join (surfaced, not lost)."""
    _LEAKED_HEARTBEATS[:] = [t for t in _LEAKED_HEARTBEATS if t.is_alive()]
    return list(_LEAKED_HEARTBEATS)


def _reap_heartbeat(thread, timeout: float = 1.0) -> bool:
    """Join a heartbeat thread; False (and tracked) if it leaked.

    The old behavior — ``join(timeout)`` and silently move on — meant a
    wedged heartbeat thread kept spamming the result queue with stale
    tokens forever and nobody could tell.  A leaked thread is now
    remembered so backends and tests can surface it.
    """
    if thread is None:
        return True
    thread.join(timeout=timeout)
    if not thread.is_alive():
        return True
    _LEAKED_HEARTBEATS.append(thread)
    return False


def _worker_main(worker_id, task_q, result_q, hb_interval, plan_json) -> None:
    """One worker process: lease payloads in, results (or failures) out.

    Messages out: ``("heartbeat", wid, token)`` while computing,
    ``("done", wid, token, key, payload, digest)`` on success,
    ``("failed", wid, token, key, error)`` on any exception.  A worker
    killed mid-chunk sends nothing — that is the point; the broker's
    lease expiry covers the silence.
    """
    if plan_json:
        faults.install(faults.FaultPlan.from_dict(json.loads(plan_json)))
    plan = faults.active_plan()
    while True:
        message = task_q.get()
        if message is None:
            return
        key, payload, token = message
        stop = threading.Event()
        heartbeat = None
        try:
            spec = ExperimentSpec.from_dict(payload)
            tag = _spec_tag(spec)
            if not plan.drops_heartbeats(key, tag):
                heartbeat = threading.Thread(
                    target=_heartbeat_loop,
                    args=(result_q, worker_id, token, hb_interval, stop),
                    daemon=True,
                )
                heartbeat.start()
            if plan.is_poison(key, tag):
                raise faults.PoisonFault(f"injected poison for {tag}")
            result = spec.execute()
            result_payload = result_to_dict(result)
            digest = payload_digest(result_payload)
            result_payload = plan.maybe_corrupt(key, tag, result_payload)
            plan.maybe_delay(key, tag)
            stop.set()
            plan.maybe_crash(key, tag, hard=True)
            result_q.put(("done", worker_id, token, key, result_payload, digest))
        except Exception as exc:
            stop.set()
            result_q.put(
                ("failed", worker_id, token, key, f"{type(exc).__name__}: {exc}")
            )
        finally:
            stop.set()
            if not _reap_heartbeat(heartbeat):
                try:
                    result_q.put(("leaked", worker_id, token))
                except (OSError, ValueError):  # pragma: no cover - teardown
                    pass


class _WorkerHandle:
    __slots__ = ("slot", "proc", "task_q", "busy")

    def __init__(self, slot, proc, task_q) -> None:
        self.slot = slot
        self.proc = proc
        self.task_q = task_q
        self.busy = None  # token of the task in flight, if any


class ProcessBackend:
    """N local worker processes under the broker's lease protocol."""

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._ctx = _mp_context()
        self._tallies: Dict[str, Dict[str, int]] = {}

    @property
    def forks(self) -> bool:
        return self._ctx.get_start_method() == "fork"

    def tallies(self) -> Dict[str, Dict[str, int]]:
        """Per-slot ``{done, retried, requeued, reconnects, leaked}``.

        Keyed by worker slot (``w0``, ``w1``, …) so counts survive
        respawns; ``reconnects`` counts those respawns.  Same shape as
        the remote backend's per-host tallies.
        """
        return {slot: dict(tally) for slot, tally in self._tallies.items()}

    def _tally(self, worker_id: str) -> Dict[str, int]:
        slot = worker_id.split(".", 1)[0]
        return self._tallies.setdefault(slot, {
            "done": 0, "retried": 0, "requeued": 0,
            "reconnects": 0, "leaked": 0,
        })

    def drain(
        self,
        broker: JobBroker,
        handle: SweepHandle,
        only: Optional[Set[str]] = None,
    ) -> Iterator[Tuple[str, SimResult]]:
        result_q = self._ctx.Queue()
        plan = faults.active_plan()
        plan_json = None if plan.is_null else plan.to_env()
        hb_interval = max(broker.lease_timeout / 4.0, 0.01)
        generations = itertools.count()
        pool: Dict[str, _WorkerHandle] = {}
        self._tallies = {}

        def spawn(slot: int) -> None:
            worker_id = f"w{slot}.{next(generations)}"
            task_q = self._ctx.SimpleQueue()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(worker_id, task_q, result_q, hb_interval, plan_json),
                daemon=True,
            )
            proc.start()
            pool[worker_id] = _WorkerHandle(slot, proc, task_q)
            self._tally(worker_id)

        for slot in range(self.workers):
            spawn(slot)
        try:
            while not broker.done(handle):
                # 1. Collect worker messages (block briefly: this is also
                #    the loop's pacing).
                try:
                    message = result_q.get(timeout=0.02)
                except queue_mod.Empty:
                    message = None
                except (OSError, ValueError) as exc:
                    raise BackendTeardownError(
                        f"result queue is gone mid-drain: {exc}"
                    ) from exc
                while message is not None:
                    kind, worker_id, token = message[0], message[1], message[2]
                    if kind == "heartbeat":
                        broker.heartbeat(token)
                    elif kind == "done":
                        _, _, _, key, payload, digest = message
                        status = broker.complete(token, payload, digest)
                        self._mark_idle(pool, worker_id, token)
                        if status == "published":
                            self._tally(worker_id)["done"] += 1
                            yield key, broker.result(key)
                        elif status == "corrupt":
                            self._tally(worker_id)["retried"] += 1
                    elif kind == "failed":
                        _, _, _, key, error = message
                        if broker.fail(token, error) != "stale":
                            self._tally(worker_id)["retried"] += 1
                        self._mark_idle(pool, worker_id, token)
                    elif kind == "leaked":
                        self._tally(worker_id)["leaked"] += 1
                    try:
                        message = result_q.get_nowait()
                    except queue_mod.Empty:
                        message = None
                # 2. Crash recovery: a dead worker's leases expire at
                #    once and a fresh worker takes its slot.
                for worker_id, entry in list(pool.items()):
                    if not entry.proc.is_alive():
                        requeued = broker.release_worker(worker_id)
                        tally = self._tally(worker_id)
                        tally["requeued"] += len(requeued)
                        tally["reconnects"] += 1
                        del pool[worker_id]
                        spawn(entry.slot)
                # 3. Partition recovery: overdue leases return to pending.
                broker.expire()
                # 4. Dispatch one spec to every idle worker.
                for worker_id, entry in pool.items():
                    if entry.busy is not None:
                        continue
                    job = broker.lease(worker_id, only=only)
                    if job is None:
                        continue
                    self._dispatch(worker_id, entry, job, broker)
            for hostname, count in broker.expirations_by_worker().items():
                if hostname in pool or hostname.split(".", 1)[0] in self._tallies:
                    self._tally(hostname)["requeued"] += count
        finally:
            for entry in pool.values():
                try:
                    entry.task_q.put(None)
                except (OSError, ValueError):  # pragma: no cover - teardown
                    pass
            deadline = time.monotonic() + 5.0
            for entry in pool.values():
                entry.proc.join(timeout=max(0.0, deadline - time.monotonic()))
                if entry.proc.is_alive():
                    entry.proc.terminate()
                    entry.proc.join(timeout=1.0)
            result_q.close()
            result_q.cancel_join_thread()

    def _dispatch(self, worker_id, entry, job, broker) -> None:
        """Hand a leased job to a worker, or fail fast if its queue died.

        A closed/broken task queue used to raise a bare ``OSError`` out
        of ``drain`` with the lease still held; now the lease is returned
        to the broker first and the error names the torn-down substrate.
        """
        try:
            entry.task_q.put((job.key, job.payload, job.token))
        except (OSError, ValueError) as exc:
            broker.fail(job.token, f"task queue for {worker_id} gone: {exc}")
            raise BackendTeardownError(
                f"task queue for worker {worker_id} is gone mid-drain "
                f"(backend torn down?): {exc}"
            ) from exc
        entry.busy = job.token

    @staticmethod
    def _mark_idle(pool, worker_id, token) -> None:
        entry = pool.get(worker_id)
        if entry is not None and entry.busy == token:
            entry.busy = None


# -------------------------------------------------------------- registry


def _remote_backend(workers: int = 1):
    # Imported lazily: remote.py imports this module, and the remote
    # backend should cost nothing unless actually selected.
    from repro.runner.remote import RemoteBackend

    return RemoteBackend(workers=workers)


#: name -> factory(workers=N) -> backend.  ``repro sweep --backend`` and
#: ``REPRO_BACKEND`` resolve here; remote substrates register alongside.
BACKENDS: Dict[str, Callable[..., object]] = {
    "inline": lambda workers=1: InlineBackend(),
    "process": lambda workers=2: ProcessBackend(workers=workers),
    "remote": lambda workers=1: _remote_backend(workers=workers),
}


def register_backend(name: str, factory: Callable[..., object]) -> None:
    """Expose a new execution substrate under ``--backend <name>``."""
    BACKENDS[name] = factory


def make_backend(name: str, workers: int = 1):
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choices: {', '.join(sorted(BACKENDS))}"
        ) from None
    return factory(workers=workers)
