"""Remote-host sweep backend: ``repro serve`` agents over a hardened TCP
transport.

PR 6 left the broker/worker fabric one backend short of its promise: the
registry and the lease protocol were ready for remote hosts, but both
shipped backends fork on one machine.  This module closes the gap with
three cooperating pieces:

* :class:`HostAgent` — the ``repro serve`` process.  It listens on a TCP
  port, accepts one coordinator connection at a time per session, and
  runs the familiar worker loop (spec in, result or failure out) with a
  heartbeat thread keeping the lease alive over the wire.
* :class:`RemoteBackend` — the coordinator side, registered as
  ``--backend remote`` (``REPRO_BACKEND=remote``); hosts come from the
  constructor or ``REPRO_HOSTS=host:port,host:port``.  One channel
  thread per host owns the socket: connect/read timeouts, exponential
  backoff reconnect, and a silence detector that declares a busy host
  partitioned when neither heartbeats nor results arrive.
* :class:`ArtifactGateway` / :class:`RemoteArtifactStore` — the artifact
  tier over the same wire format: agents read warm-state checkpoints and
  compiled traces through to the coordinator's store by content hash and
  upload what they compute, with every received file re-verified (and
  quarantined on damage) by the ordinary :mod:`repro.runner.artifacts`
  machinery.

**Wire format.**  Every message is one frame::

    repro1 <body-bytes> <sha256-of-body>\\n<body>

where the body is canonical JSON.  The digest is computed by the sender
before the bytes touch the socket, and re-checked by the receiver before
the JSON is parsed — a garbled frame is a *failed attempt*, never a torn
result, exactly the contract the broker already enforces for publishes.
A frame whose header still parses keeps the stream in sync (the lease is
failed, the connection survives); a frame whose header is garbage
desyncs the stream and tears the connection down (reconnect with
backoff).

**Failure semantics.**  All coordination stays in the
:class:`~repro.runner.broker.JobBroker`; the transport only feeds it:

* agent heartbeats are relayed into :meth:`JobBroker.heartbeat`, so a
  partition (silence) expires the lease and re-pends the spec;
* a channel that loses its connection — EOF, refused reconnect, or
  busy-silence past the deadline — drains its host's leases through
  :meth:`JobBroker.release_worker` before reconnecting;
* a host whose reconnects exhaust their budget is dead; when *every*
  host is dead with work still pending, the backend degrades to the
  local process/inline backend and finishes the sweep (degraded, never
  wedged).

Deterministic network faults (``drop`` / ``delay`` / ``garble`` /
``disconnect`` selectors of :class:`~repro.runner.faults.FaultPlan`) are
injected at the agent's wire boundary so ``tests/runner/test_remote.py``
can prove byte-identical convergence under a crash+partition+garble
schedule.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import queue
import socket
import sys
import tempfile
import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.runner import artifacts as artifacts_mod
from repro.runner import faults
from repro.runner.artifacts import TRACE, WARM, ArtifactStore, trace_key_id, warm_key_id
from repro.runner.broker import JobBroker, SweepHandle, payload_digest
from repro.runner.serialize import result_to_dict
from repro.runner.spec import ExperimentSpec
from repro.runner.worker import (
    InlineBackend,
    ProcessBackend,
    _spec_tag,
    fork_available,
)
from repro.sim.metrics import SimResult

__all__ = [
    "ArtifactGateway",
    "ConnectionClosed",
    "FrameError",
    "FrameGarbled",
    "HostAgent",
    "RemoteArtifactStore",
    "RemoteBackend",
    "RemoteProtocolError",
    "parse_hosts",
    "recv_frame",
    "send_frame",
]

#: Frame header magic; bump when the wire format changes.
_MAGIC = b"repro1"
#: Longest legal header line: magic + 20-digit length + hex digest.
_MAX_HEADER = 128
#: Largest body a peer may announce (result payloads are a few KB;
#: artifact blobs a few MB — this is a defense bound, not a budget).
_MAX_BODY = 256 << 20
#: Socket poll granularity for resumable reads.
_POLL = 0.05
#: Write deadline for a single frame.
_SEND_TIMEOUT = 10.0


class RemoteProtocolError(RuntimeError):
    """Base class for transport failures."""


class ConnectionClosed(RemoteProtocolError):
    """The peer closed the connection (EOF mid-stream)."""


class FrameError(RemoteProtocolError):
    """Unparseable frame header: the stream is desynced, close it."""


class FrameGarbled(RemoteProtocolError):
    """Body digest mismatch: the frame is damaged but the stream is
    still in sync — fail the attempt, keep the connection."""


# ------------------------------------------------------------------ frames


def send_frame(sock: socket.socket, obj: dict, garble: bool = False,
               timeout: Optional[float] = _SEND_TIMEOUT) -> None:
    """Write one digest-stamped frame; raises ``OSError`` on failure.

    ``garble=True`` (fault injection only) flips a body byte *after* the
    digest is computed, so the receiver provably detects the damage.
    """
    body = json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")
    digest = hashlib.sha256(body).hexdigest()
    if garble and body:
        damaged = bytearray(body)
        damaged[len(damaged) // 2] ^= 0x01
        body = bytes(damaged)
    header = b"%s %d %s\n" % (_MAGIC, len(body), digest.encode("ascii"))
    data = header + body
    if timeout is None:
        sock.sendall(data)
        return
    old = sock.gettimeout()
    sock.settimeout(timeout)
    try:
        sock.sendall(data)
    finally:
        try:
            sock.settimeout(old)
        except OSError:  # pragma: no cover - peer torn down mid-send
            pass


_INCOMPLETE = object()


class _FrameReader:
    """Resumable frame reader over a timeout-bearing socket.

    ``poll()`` returns one decoded frame, or None when the socket's
    timeout elapsed first — a partial frame stays buffered and resumes on
    the next call, so idle polling never desyncs the stream.
    """

    def __init__(self, sock: socket.socket, max_body: int = _MAX_BODY) -> None:
        self._sock = sock
        self._buf = bytearray()
        self._max_body = max_body

    def poll(self) -> Optional[dict]:
        while True:
            frame = self._extract()
            if frame is not _INCOMPLETE:
                return frame
            try:
                chunk = self._sock.recv(1 << 16)
            except (TimeoutError, socket.timeout):
                return None
            except InterruptedError:  # pragma: no cover - signal race
                continue
            if not chunk:
                raise ConnectionClosed("peer closed the connection")
            self._buf += chunk

    def _extract(self):
        newline = self._buf.find(b"\n")
        if newline < 0:
            if len(self._buf) > _MAX_HEADER:
                raise FrameError("oversized or garbled frame header")
            return _INCOMPLETE
        header = bytes(self._buf[:newline])
        parts = header.split(b" ")
        if len(parts) != 3 or parts[0] != _MAGIC:
            raise FrameError(f"bad frame header {header[:32]!r}")
        try:
            length = int(parts[1])
        except ValueError:
            raise FrameError(f"bad frame length {parts[1][:20]!r}") from None
        if not 0 <= length <= self._max_body:
            raise FrameError(f"frame body of {length} bytes exceeds the cap")
        total = newline + 1 + length
        if len(self._buf) < total:
            return _INCOMPLETE
        body = bytes(self._buf[newline + 1:total])
        # Consume the frame before verifying: a digest mismatch must not
        # leave damaged bytes at the head of the stream.
        del self._buf[:total]
        if hashlib.sha256(body).hexdigest() != parts[2].decode("ascii"):
            raise FrameGarbled("frame digest mismatch")
        try:
            obj = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise FrameGarbled("frame body is not JSON") from None
        if not isinstance(obj, dict):
            raise FrameGarbled("frame body is not an object")
        return obj


def recv_frame(sock: socket.socket, timeout: float) -> Optional[dict]:
    """One frame from a fresh connection, or None on deadline."""
    reader = _FrameReader(sock)
    deadline = time.monotonic() + timeout
    old = sock.gettimeout()
    sock.settimeout(min(_POLL * 2, timeout))
    try:
        while time.monotonic() < deadline:
            frame = reader.poll()
            if frame is not None:
                return frame
        return None
    finally:
        try:
            sock.settimeout(old)
        except OSError:  # pragma: no cover
            pass


def parse_hosts(text: str) -> List[Tuple[str, int]]:
    """``host:port,host:port`` -> [(host, port), ...] (strict)."""
    hosts: List[Tuple[str, int]] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, port_text = part.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"malformed remote host {part!r}: expected host:port"
            )
        hosts.append((host, int(port_text)))
    if not hosts:
        raise ValueError(
            "no remote hosts: set REPRO_HOSTS=host:port,... or pass hosts=[...]"
        )
    return hosts


# ------------------------------------------------------------- host agent


class HostAgent:
    """The ``repro serve`` side: accept jobs, run them, answer with frames.

    One session thread per coordinator connection; within a session jobs
    run serially (the coordinator never has more than one in flight per
    host).  ``hard_faults=False`` makes an injected ``crash`` fault raise
    (and report) instead of ``os._exit`` — for agents embedded in a test
    process.  ``serve_limit`` stops the whole agent after N jobs, a
    deterministic stand-in for a host that dies mid-sweep.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        artifact_cache: Optional[str] = None,
        hard_faults: bool = True,
        serve_limit: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.artifact_cache = artifact_cache
        self.hard_faults = hard_faults
        self.serve_limit = serve_limit
        self.jobs_done = 0
        self._jobs_lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._artifact_installed: Optional[Tuple[str, int]] = None

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "HostAgent":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(8)
        listener.settimeout(0.2)
        self.port = listener.getsockname()[1]
        self._listener = listener
        thread = threading.Thread(
            target=self._accept_loop, name=f"repro-agent-{self.port}", daemon=True
        )
        thread.start()
        self._threads.append(thread)
        return self

    def stop(self) -> None:
        self._stop.set()
        listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover
                pass
        me = threading.current_thread()
        for thread in list(self._threads):
            if thread is not me:
                thread.join(timeout=2.0)

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (the ``repro serve`` main loop)."""
        while not self._stop.wait(0.5):
            pass

    # ----------------------------------------------------------- sessions

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except (TimeoutError, socket.timeout):
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._session, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _session(self, conn: socket.socket) -> None:
        conn.settimeout(_POLL * 2)
        reader = _FrameReader(conn)
        send_lock = threading.Lock()
        hb_interval = 1.0
        try:
            while not self._stop.is_set():
                try:
                    frame = reader.poll()
                except RemoteProtocolError:
                    return
                except OSError:
                    return
                if frame is None:
                    continue
                op = frame.get("op")
                if op == "welcome":
                    hb_interval = max(float(frame.get("hb_interval", 1.0)), 0.01)
                    gateway = frame.get("artifacts")
                    if gateway:
                        self._install_artifact_tier(gateway)
                    if not self._send(conn, send_lock, {
                        "op": "hello",
                        "agent": f"{self.host}:{self.port}",
                        "jobs_done": self.jobs_done,
                    }):
                        return
                elif op == "run":
                    if not self._handle_run(
                        conn, send_lock, frame, hb_interval
                    ):
                        return
                elif op == "shutdown":
                    return
                else:
                    return  # unknown op: drop the session, keep serving
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    @staticmethod
    def _send(conn, lock, obj, garble: bool = False) -> bool:
        try:
            with lock:
                send_frame(conn, obj, garble=garble)
            return True
        except OSError:
            return False

    @staticmethod
    def _heartbeat_loop(conn, lock, token, interval, stop) -> None:
        while not stop.wait(interval):
            try:
                with lock:
                    send_frame(conn, {"op": "heartbeat", "token": token})
            except OSError:
                return

    def _handle_run(self, conn, send_lock, frame, hb_interval) -> bool:
        """Run one leased spec; False tears the session down."""
        plan = faults.active_plan()
        token = str(frame.get("token", ""))
        key = str(frame.get("key", ""))
        try:
            spec = ExperimentSpec.from_dict(frame["spec"])
            tag = _spec_tag(spec)
        except Exception as exc:
            return self._send(conn, send_lock, {
                "op": "failed", "token": token, "key": key,
                "error": f"undecodable spec: {type(exc).__name__}: {exc}",
            })
        if plan.should_disconnect(key, tag):
            return False  # injected partition: hang up without a word
        stop = threading.Event()
        heartbeat = None
        if not plan.drops_heartbeats(key, tag):
            heartbeat = threading.Thread(
                target=self._heartbeat_loop,
                args=(conn, send_lock, token, hb_interval, stop),
                daemon=True,
            )
            heartbeat.start()
        try:
            if plan.is_poison(key, tag):
                raise faults.PoisonFault(f"injected poison for {tag}")
            result = spec.execute()
            payload = result_to_dict(result)
            digest = payload_digest(payload)
            payload = plan.maybe_corrupt(key, tag, payload)
            plan.maybe_delay(key, tag)
            stop.set()
            plan.maybe_crash(key, tag, hard=self.hard_faults)
            if plan.should_drop(key, tag):
                ok = True  # black-holed reply: lease expiry covers it
            else:
                ok = self._send(conn, send_lock, {
                    "op": "done", "token": token, "key": key,
                    "payload": payload, "digest": digest,
                }, garble=plan.should_garble(key, tag))
        except Exception as exc:
            stop.set()
            ok = self._send(conn, send_lock, {
                "op": "failed", "token": token, "key": key,
                "error": f"{type(exc).__name__}: {exc}",
            })
        finally:
            stop.set()
            if heartbeat is not None:
                heartbeat.join(timeout=1.0)
        with self._jobs_lock:
            self.jobs_done += 1
            served = self.jobs_done
        if self.serve_limit is not None and served >= self.serve_limit:
            self.stop()
            return False
        return ok

    def _install_artifact_tier(self, gateway) -> None:
        """Read artifacts through to the coordinator's store."""
        try:
            addr = (str(gateway[0]), int(gateway[1]))
        except (TypeError, ValueError, IndexError):
            return
        if self._artifact_installed == addr:
            return
        current = artifacts_mod.active_store()
        if isinstance(current, RemoteArtifactStore) and current.gateway == addr:
            self._artifact_installed = addr
            return
        cache = self.artifact_cache or tempfile.mkdtemp(
            prefix="repro-agent-artifacts-"
        )
        artifacts_mod.set_active(RemoteArtifactStore(cache, addr))
        self._artifact_installed = addr


# ------------------------------------------------------- artifact gateway


class ArtifactGateway:
    """Serves the coordinator's artifact store over the frame protocol.

    Requests: ``art_get`` (reply ``art_blob`` with the whole digest-
    stamped file, base64) and ``art_put`` (reply ``art_ack``; the blob is
    header-verified before it touches the trusted store).
    """

    def __init__(self, store: ArtifactStore, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.store = store
        self.host = host
        self.port = port
        self._listener: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "ArtifactGateway":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        listener.settimeout(0.2)
        self.port = listener.getsockname()[1]
        self._listener = listener
        thread = threading.Thread(
            target=self._accept_loop, name=f"repro-artifacts-{self.port}",
            daemon=True,
        )
        thread.start()
        self._threads.append(thread)
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        for thread in list(self._threads):
            thread.join(timeout=2.0)

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except (TimeoutError, socket.timeout):
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve(self, conn: socket.socket) -> None:
        conn.settimeout(_POLL * 2)
        reader = _FrameReader(conn)
        try:
            while not self._stop.is_set():
                try:
                    frame = reader.poll()
                except (RemoteProtocolError, OSError):
                    return
                if frame is None:
                    continue
                op = frame.get("op")
                kind = str(frame.get("kind", ""))
                key = str(frame.get("key", ""))
                if op == "art_get":
                    blob = (
                        self.store.get_raw(kind, key)
                        if kind in (WARM, TRACE) else None
                    )
                    reply = {"op": "art_blob", "found": blob is not None}
                    if blob is not None:
                        reply["data"] = base64.b64encode(blob).decode("ascii")
                elif op == "art_put":
                    try:
                        blob = base64.b64decode(
                            frame.get("data", ""), validate=True
                        )
                    except (ValueError, TypeError):
                        blob = b""
                    ok = bool(blob) and self.store.put_raw(
                        kind, key, blob, verify=True
                    )
                    reply = {"op": "art_ack", "ok": ok}
                else:
                    return
                try:
                    send_frame(conn, reply)
                except OSError:
                    return
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass


class RemoteArtifactStore(ArtifactStore):
    """An agent-local artifact cache that reads through to the gateway.

    Misses fetch the whole digest-stamped file from the coordinator and
    install it *unverified* into the local cache; the read that follows
    runs the store's ordinary verification, so a blob damaged in flight
    is quarantined (``*.corrupt``) and treated as a miss — exactly the
    :mod:`repro.runner.artifacts` trust model, no second implementation.
    Local writes upload behind (header-verified at the gateway).
    """

    def __init__(self, cache_root, gateway: Tuple[str, int],
                 timeout: float = 5.0) -> None:
        super().__init__(cache_root)
        self.gateway = (str(gateway[0]), int(gateway[1]))
        self.timeout = timeout
        self.remote_fetches = 0
        self.remote_hits = 0
        self.remote_uploads = 0

    # ----------------------------------------------------------- transport

    def _request(self, obj: dict) -> Optional[dict]:
        try:
            with socket.create_connection(
                self.gateway, timeout=self.timeout
            ) as sock:
                send_frame(sock, obj, timeout=self.timeout)
                return recv_frame(sock, self.timeout)
        except (RemoteProtocolError, OSError):
            return None

    def _fetch(self, kind: str, key_id: str) -> bool:
        self.remote_fetches += 1
        reply = self._request({"op": "art_get", "kind": kind, "key": key_id})
        if not reply or reply.get("op") != "art_blob" or not reply.get("found"):
            return False
        try:
            blob = base64.b64decode(reply.get("data", ""), validate=True)
        except (ValueError, TypeError):
            return False
        if not blob or not self.put_raw(kind, key_id, blob, verify=False):
            return False
        self.remote_hits += 1
        return True

    def _upload(self, kind: str, key_id: str) -> None:
        blob = self.get_raw(kind, key_id)
        if blob is None:
            return
        reply = self._request({
            "op": "art_put", "kind": kind, "key": key_id,
            "data": base64.b64encode(blob).decode("ascii"),
        })
        if reply and reply.get("ok"):
            self.remote_uploads += 1

    # ---------------------------------------------------------- overrides

    def get_warm_state(self, key):
        payload = super().get_warm_state(key)
        if payload is not None:
            return payload
        if self._fetch(WARM, warm_key_id(key)):
            return super().get_warm_state(key)
        return None

    def put_warm_state(self, key, payload):
        path = super().put_warm_state(key, payload)
        if path is not None:
            self._upload(WARM, warm_key_id(key))
        return path

    def get_trace(self, profile, core, seed, region, n):
        records = super().get_trace(profile, core, seed, region, n)
        if records is not None:
            return records
        if self._fetch(TRACE, trace_key_id(profile, core, seed, region)):
            return super().get_trace(profile, core, seed, region, n)
        return None

    def put_trace(self, profile, core, seed, region, records):
        path = super().put_trace(profile, core, seed, region, records)
        if path is not None:
            self._upload(TRACE, trace_key_id(profile, core, seed, region))
        return path


# -------------------------------------------------------------- channels


class _HostChannel(threading.Thread):
    """Coordinator-side owner of one host's connection.

    The channel is the only thread that touches its socket.  It feeds
    the broker directly (heartbeats, publishes, failures — the broker is
    thread-safe) and hands published keys to the drain loop through a
    queue.  The drain loop leases work and drops it in the channel's
    single-slot outbox whenever the channel reports ready.
    """

    def __init__(self, backend: "RemoteBackend", host: str, port: int,
                 broker: JobBroker, results: "queue.Queue",
                 tally: Dict[str, int], hb_interval: float,
                 dead_after: float,
                 gateway_addr: Optional[List] = None) -> None:
        super().__init__(name=f"repro-remote-{host}:{port}", daemon=True)
        self.backend = backend
        self.host = host
        self.port = port
        self.broker = broker
        self.results = results
        self.tally = tally
        self.hb_interval = hb_interval
        self.dead_after = dead_after
        self.gateway_addr = gateway_addr
        self.worker_id = f"remote:{host}:{port}"
        self.dead = False
        self.connected = False
        self._busy: Optional[str] = None
        self._outbox: "queue.Queue" = queue.Queue(maxsize=1)
        # Not ``_stop``: Thread.join() calls a private ``_stop()`` method.
        self._halt = threading.Event()
        self._ever_connected = False

    # ------------------------------------------------------------- control

    @property
    def ready(self) -> bool:
        return (
            self.connected and not self.dead
            and self._busy is None and self._outbox.empty()
        )

    def dispatch(self, job) -> None:
        self._outbox.put_nowait(job)

    def shutdown(self) -> None:
        self._halt.set()

    # --------------------------------------------------------------- loop

    def run(self) -> None:
        backoff = self.backend.reconnect_backoff
        failures = 0
        try:
            while not self._halt.is_set():
                sock = self._connect()
                if sock is None:
                    failures += 1
                    if failures >= self.backend.max_connect_failures:
                        return
                    if self._halt.wait(backoff):
                        return
                    backoff = min(backoff * 2, self.backend.max_backoff)
                    continue
                failures = 0
                backoff = self.backend.reconnect_backoff
                try:
                    self._session(sock)
                finally:
                    self.connected = False
                    try:
                        sock.close()
                    except OSError:  # pragma: no cover
                        pass
                    self._abandon()
        finally:
            self.dead = True
            self.connected = False
            self._abandon()

    def _connect(self) -> Optional[socket.socket]:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.backend.connect_timeout
            )
        except OSError:
            return None
        sock.settimeout(_POLL)
        try:
            send_frame(sock, {
                "op": "welcome",
                "hb_interval": self.hb_interval,
                "artifacts": self.gateway_addr,
            }, timeout=self.backend.connect_timeout)
            hello = recv_frame(sock, self.backend.connect_timeout)
        except (RemoteProtocolError, OSError):
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
            return None
        if not hello or hello.get("op") != "hello":
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
            return None
        if self._ever_connected:
            self.tally["reconnects"] += 1
        self._ever_connected = True
        return sock

    def _session(self, sock: socket.socket) -> None:
        self.connected = True
        reader = _FrameReader(sock)
        last_frame = time.monotonic()
        while not self._halt.is_set():
            if self._busy is None:
                try:
                    job = self._outbox.get_nowait()
                except queue.Empty:
                    job = None
                if job is not None:
                    try:
                        send_frame(sock, {
                            "op": "run", "key": job.key,
                            "token": job.token, "spec": job.payload,
                        })
                    except OSError:
                        return  # _abandon re-pends the lease
                    self._busy = job.token
                    last_frame = time.monotonic()
            try:
                frame = reader.poll()
            except FrameGarbled as exc:
                # A garbled frame is a failed attempt, never a torn
                # result — and the header kept the stream in sync.
                if self._busy is not None:
                    self.broker.fail(
                        self._busy,
                        f"garbled frame from {self.worker_id}: {exc}",
                    )
                    self.tally["retried"] += 1
                    self._busy = None
                last_frame = time.monotonic()
                continue
            except (ConnectionClosed, FrameError, OSError):
                return
            now = time.monotonic()
            if frame is None:
                if self._busy is not None and now - last_frame > self.dead_after:
                    return  # busy silence: declare the host partitioned
                continue
            last_frame = now
            op = frame.get("op")
            if op == "heartbeat":
                self.broker.heartbeat(str(frame.get("token", "")))
            elif op == "done":
                token = str(frame.get("token", ""))
                payload = frame.get("payload")
                if isinstance(payload, dict):
                    status = self.broker.complete(
                        token, payload, frame.get("digest")
                    )
                else:
                    self.broker.fail(token, "malformed done frame")
                    status = "corrupt"
                if token == self._busy:
                    self._busy = None
                if status == "published":
                    self.tally["done"] += 1
                    self.results.put(str(frame.get("key", "")))
                elif status == "corrupt":
                    self.tally["retried"] += 1
            elif op == "failed":
                token = str(frame.get("token", ""))
                status = self.broker.fail(
                    token, str(frame.get("error", "remote failure"))
                )
                if token == self._busy:
                    self._busy = None
                if status != "stale":
                    self.tally["retried"] += 1

    def _abandon(self) -> None:
        """Connection lost: drain this host's leases back to pending."""
        self._busy = None
        requeued = self.broker.release_worker(self.worker_id)
        self.tally["requeued"] += len(requeued)
        try:
            self._outbox.get_nowait()
        except queue.Empty:
            pass


# -------------------------------------------------------------- backend


class RemoteBackend:
    """Drain the broker through ``repro serve`` host agents.

    ``hosts`` defaults to ``REPRO_HOSTS=host:port,host:port``.
    ``workers`` only sizes the *fallback* local backend used when every
    host is gone; remote parallelism equals the host count.
    """

    forks = False

    def __init__(
        self,
        hosts: Optional[Sequence[Tuple[str, int]]] = None,
        workers: int = 1,
        connect_timeout: float = 5.0,
        reconnect_backoff: float = 0.05,
        max_backoff: float = 1.0,
        max_connect_failures: int = 5,
    ) -> None:
        if hosts is None:
            hosts = parse_hosts(os.environ.get("REPRO_HOSTS", ""))
        else:
            hosts = [(str(h), int(p)) for h, p in hosts]
            if not hosts:
                raise ValueError("remote backend needs at least one host")
        self.hosts = list(hosts)
        self.workers = max(1, int(workers))
        self.connect_timeout = connect_timeout
        self.reconnect_backoff = reconnect_backoff
        self.max_backoff = max_backoff
        self.max_connect_failures = max_connect_failures
        self.degraded = False
        self._tallies: Dict[str, Dict[str, int]] = {}

    def tallies(self) -> Dict[str, Dict[str, int]]:
        """Per-host ``{done, retried, requeued, reconnects}`` counters."""
        return {host: dict(tally) for host, tally in self._tallies.items()}

    def _fallback_backend(self):
        if self.workers > 1 and fork_available():
            return ProcessBackend(workers=self.workers)
        return InlineBackend()

    def drain(
        self,
        broker: JobBroker,
        handle: SweepHandle,
        only: Optional[Set[str]] = None,
    ) -> Iterator[Tuple[str, SimResult]]:
        gateway = None
        store = artifacts_mod.active_store()
        if store is not None and not isinstance(store, RemoteArtifactStore):
            gateway = ArtifactGateway(store).start()
        hb_interval = max(broker.lease_timeout / 4.0, 0.05)
        dead_after = max(broker.lease_timeout * 1.5, hb_interval * 6)
        results: "queue.Queue" = queue.Queue()
        self.degraded = False
        self._tallies = {}
        channels: List[_HostChannel] = []
        for host, port in self.hosts:
            tally = {"done": 0, "retried": 0, "requeued": 0, "reconnects": 0}
            self._tallies[f"{host}:{port}"] = tally
            channel = _HostChannel(
                self, host, port, broker, results, tally,
                hb_interval=hb_interval, dead_after=dead_after,
                gateway_addr=(
                    list(gateway.address) if gateway is not None else None
                ),
            )
            channels.append(channel)
            channel.start()
        reaped: Set[str] = set()
        try:
            while not broker.done(handle):
                for key in self._drain_results(results, block=True):
                    result = broker.result(key)
                    if result is not None:
                        yield key, result
                broker.expire()
                for channel in channels:
                    if channel.dead and channel.worker_id not in reaped:
                        # The channel's own drain ran at thread exit;
                        # this covers a dispatch raced onto a dying one.
                        reaped.add(channel.worker_id)
                        broker.release_worker(channel.worker_id)
                if all(channel.dead for channel in channels):
                    break
                for channel in channels:
                    if not channel.ready:
                        continue
                    job = broker.lease(channel.worker_id, only=only)
                    if job is None:
                        break
                    channel.dispatch(job)
        finally:
            for channel in channels:
                channel.shutdown()
            for channel in channels:
                channel.join(timeout=2.0)
            expired = broker.expirations_by_worker()
            for hostname, tally in self._tallies.items():
                tally["requeued"] += expired.get(f"remote:{hostname}", 0)
            if gateway is not None:
                gateway.stop()
        for key in self._drain_results(results, block=False):
            result = broker.result(key)
            if result is not None:
                yield key, result
        if not broker.done(handle):
            # Every host is gone with work still pending: degraded, never
            # wedged — the local backend finishes the sweep.
            self.degraded = True
            print(
                f"remote backend: all {len(self.hosts)} host(s) unreachable; "
                "degrading to the local backend",
                file=sys.stderr,
            )
            fallback = self._fallback_backend()
            yield from fallback.drain(broker, handle, only=only)

    @staticmethod
    def _drain_results(results: "queue.Queue", block: bool) -> List[str]:
        keys: List[str] = []
        try:
            keys.append(results.get(timeout=0.02) if block else
                        results.get_nowait())
            while True:
                keys.append(results.get_nowait())
        except queue.Empty:
            pass
        return keys


def serve(host: str = "127.0.0.1", port: int = 0,
          artifact_cache: Optional[str] = None) -> HostAgent:
    """Start (and return) a host agent — the ``repro serve`` entry point."""
    return HostAgent(
        host=host, port=port, artifact_cache=artifact_cache, hard_faults=True
    ).start()
