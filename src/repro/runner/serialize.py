"""JSON (de)serialization of :class:`~repro.sim.metrics.SimResult`.

The store and the broker/worker fabric both move results as plain dicts:
every field of the dataclass, nothing else — including the nested
``engine_stats`` mapping carrying per-engine (BTB/LVP) counters for the
generality scenarios.  Deserialization is strict — missing or unknown
fields raise — so a schema drift between writer and reader surfaces as a
versioned store miss instead of a half-populated result.
"""

from __future__ import annotations

import json
from dataclasses import asdict, fields
from typing import Any, Dict

from repro.sim.metrics import SimResult


class ResultSchemaError(ValueError):
    """A serialized result does not match the current SimResult schema."""


def result_to_dict(result: SimResult) -> Dict[str, Any]:
    """Every counter of one result as a plain-JSON dict."""
    return asdict(result)


def result_from_dict(data: Dict[str, Any]) -> SimResult:
    """Strictly rebuild a :class:`SimResult` from :func:`result_to_dict`."""
    known = {f.name for f in fields(SimResult)}
    unknown = set(data) - known
    missing = {
        f.name for f in fields(SimResult) if f.name not in data
    }
    if unknown or missing:
        raise ResultSchemaError(
            f"result payload mismatch: unknown={sorted(unknown)} "
            f"missing={sorted(missing)}"
        )
    return SimResult(**data)


def canonical_result_json(result: SimResult) -> str:
    """Byte-stable serialized payload (used by the determinism tests)."""
    return json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )
