"""Persistent, content-addressed result store.

One :class:`SimResult` per file, keyed by the spec's content hash and
sharded by its first two hex digits::

    <root>/
      ab/
        ab3f...e1.json        {"store_schema": 1, "key": ..., "spec": {...},
                               "result": {...}}

Writes are atomic (unique temp file in the final directory, then
``os.replace``), so any number of concurrent writers — sweep workers,
parallel pytest sessions, several reproduction scripts — can share one
store: the worst case is the same result computed twice, never a torn or
half-written file.  Reads treat corrupt, foreign-schema or key-mismatched
files as misses, so an old store survives schema bumps silently.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Iterator, Optional, Union

from repro.runner.serialize import (
    ResultSchemaError,
    result_from_dict,
    result_to_dict,
)
from repro.runner.spec import ExperimentSpec
from repro.sim.metrics import SimResult

#: Bump when the on-disk envelope changes; old entries become misses.
STORE_SCHEMA = 1


class ResultStore:
    """Load-or-compute persistence for simulation results."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = pathlib.Path(root)

    # -------------------------------------------------------------- layout

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def keys(self) -> Iterator[str]:
        """Keys of every readable entry currently in the store."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, spec: ExperimentSpec) -> bool:
        return self.path_for(spec.key).is_file()

    # ---------------------------------------------------------------- read

    def get(self, spec: ExperimentSpec) -> Optional[SimResult]:
        """The stored result for ``spec``, or None (miss/corrupt/foreign)."""
        return self.get_by_key(spec.key)

    def get_by_key(self, key: str) -> Optional[SimResult]:
        path = self.path_for(key)
        try:
            envelope = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(envelope, dict):
            return None
        if envelope.get("store_schema") != STORE_SCHEMA:
            return None
        if envelope.get("key") != key:
            return None
        try:
            return result_from_dict(envelope["result"])
        except (KeyError, TypeError, ResultSchemaError):
            return None

    # --------------------------------------------------------------- write

    def put(self, spec: ExperimentSpec, result: SimResult) -> pathlib.Path:
        """Atomically persist ``result`` under ``spec``'s key."""
        path = self.path_for(spec.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "store_schema": STORE_SCHEMA,
            "key": spec.key,
            "spec": spec.to_dict(),
            "result": result_to_dict(result),
        }
        payload = json.dumps(envelope, sort_keys=True, allow_nan=False)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{spec.key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def load_or_compute(self, spec: ExperimentSpec, compute=None) -> SimResult:
        """Stored result if present, else compute, persist and return it."""
        hit = self.get(spec)
        if hit is not None:
            return hit
        result = compute() if compute is not None else spec.execute()
        self.put(spec, result)
        return result

    # ----------------------------------------------------------------- mgmt

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("??/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r})"
