"""Persistent, content-addressed result store.

One :class:`SimResult` per file, keyed by the spec's content hash and
sharded by its first two hex digits::

    <root>/
      ab/
        ab3f...e1.json        {"store_schema": 1, "key": ..., "spec": {...},
                               "result": {...}}

Writes are atomic (unique temp file in the final directory, then
``os.replace``), so any number of concurrent writers — sweep workers,
parallel pytest sessions, several reproduction scripts — can share one
store: the worst case is the same result computed twice, never a torn or
half-written file.  Reads treat corrupt, foreign-schema or key-mismatched
files as misses, so an old store survives schema bumps silently.  A file
that does not even parse as JSON — the signature of a writer killed
mid-write on a filesystem without atomic replace, or of disk rot — is
additionally *quarantined* (renamed to ``*.json.corrupt``) so it stops
shadowing the key: the next run recomputes and re-persists cleanly
instead of missing forever.

:class:`ShardedResultStore` stripes the same layout over several roots
(e.g. different disks or mounts) by key hash, so the broker/worker
fabric can spread store traffic without any coordination — every shard
is just a :class:`ResultStore`.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Iterator, Optional, Sequence, Union

from repro.runner.serialize import (
    ResultSchemaError,
    result_from_dict,
    result_to_dict,
)
from repro.runner.spec import ExperimentSpec
from repro.sim.metrics import SimResult

#: Bump when the on-disk envelope changes; old entries become misses.
STORE_SCHEMA = 1


class ResultStore:
    """Load-or-compute persistence for simulation results."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = pathlib.Path(root)

    # -------------------------------------------------------------- layout

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def keys(self) -> Iterator[str]:
        """Keys of every readable entry currently in the store."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, spec: ExperimentSpec) -> bool:
        return self.path_for(spec.key).is_file()

    # ---------------------------------------------------------------- read

    def get(self, spec: ExperimentSpec) -> Optional[SimResult]:
        """The stored result for ``spec``, or None (miss/corrupt/foreign)."""
        return self.get_by_key(spec.key)

    def get_by_key(self, key: str) -> Optional[SimResult]:
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            envelope = json.loads(text)
        except ValueError:
            # Truncated/garbled JSON: a killed writer's partial file.
            # Quarantine it so it stops shadowing the key — ``put`` can
            # then heal the entry instead of every read missing forever.
            self._quarantine(path)
            return None
        if not isinstance(envelope, dict):
            return None
        if envelope.get("store_schema") != STORE_SCHEMA:
            return None
        if envelope.get("key") != key:
            return None
        try:
            return result_from_dict(envelope["result"])
        except (KeyError, TypeError, ResultSchemaError):
            return None

    @staticmethod
    def _quarantine(path: pathlib.Path) -> None:
        """Move a corrupt entry aside as ``<name>.json.corrupt``."""
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:  # pragma: no cover - racing readers/cleaners
            pass

    # --------------------------------------------------------------- write

    def put(self, spec: ExperimentSpec, result: SimResult) -> pathlib.Path:
        """Atomically persist ``result`` under ``spec``'s key."""
        path = self.path_for(spec.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "store_schema": STORE_SCHEMA,
            "key": spec.key,
            "spec": spec.to_dict(),
            "result": result_to_dict(result),
        }
        payload = json.dumps(envelope, sort_keys=True, allow_nan=False)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{spec.key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def load_or_compute(self, spec: ExperimentSpec, compute=None) -> SimResult:
        """Stored result if present, else compute, persist and return it."""
        hit = self.get(spec)
        if hit is not None:
            return hit
        result = compute() if compute is not None else spec.execute()
        self.put(spec, result)
        return result

    # ----------------------------------------------------------------- mgmt

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("??/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r})"


class ShardedResultStore:
    """Several :class:`ResultStore` roots striped by key hash.

    The spec key is already a uniform content hash, so routing on its
    leading hex digits balances shards without extra hashing.  The class
    duck-types the full ResultStore surface — ``SweepRunner``, the
    broker and ``run_experiment`` accept either interchangeably.
    Configure via ``REPRO_STORE``/``--store`` with ``os.pathsep``-joined
    directories (``dir1:dir2`` on POSIX).
    """

    def __init__(self, roots: Sequence[Union[str, os.PathLike]]) -> None:
        if not roots:
            raise ValueError("at least one shard root required")
        self.shards = [ResultStore(root) for root in roots]

    def shard_for(self, key: str) -> ResultStore:
        return self.shards[int(key[:8], 16) % len(self.shards)]

    # Reads -----------------------------------------------------------------

    def get(self, spec: ExperimentSpec) -> Optional[SimResult]:
        return self.get_by_key(spec.key)

    def get_by_key(self, key: str) -> Optional[SimResult]:
        return self.shard_for(key).get_by_key(key)

    def keys(self) -> Iterator[str]:
        for shard in self.shards:
            yield from shard.keys()

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def __contains__(self, spec: ExperimentSpec) -> bool:
        return spec in self.shard_for(spec.key)

    # Writes ----------------------------------------------------------------

    def put(self, spec: ExperimentSpec, result: SimResult) -> pathlib.Path:
        return self.shard_for(spec.key).put(spec, result)

    def load_or_compute(self, spec: ExperimentSpec, compute=None) -> SimResult:
        return self.shard_for(spec.key).load_or_compute(spec, compute=compute)

    def clear(self) -> int:
        return sum(shard.clear() for shard in self.shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardedResultStore({[str(s.root) for s in self.shards]!r})"
