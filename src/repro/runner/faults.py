"""Deterministic fault injection for the broker/worker sweep fabric.

The distributed sweep fabric (:mod:`repro.runner.broker` /
:mod:`repro.runner.worker`) claims crash, partition and corruption
tolerance; this module is how the test suite *proves* it.  A
:class:`FaultPlan` names spec selectors and, for each, a failure to
inject at the worker boundary:

* ``crash``   — the worker process calls ``os._exit`` after computing
  the result but before publishing it (a kill mid-chunk: the lease must
  expire and the spec must be re-leased and recomputed elsewhere);
* ``delay``   — the worker suppresses its lease heartbeats and sleeps
  ``delay_s`` seconds before publishing (a network partition: the lease
  expires while the worker is still alive, the spec is re-leased, and
  the late publish must be rejected as stale);
* ``corrupt`` — the worker flips a field of the serialized result
  *after* computing its content digest (bit-rot in flight: the broker
  must detect the digest mismatch and recompute);
* ``poison``  — the worker fails deterministically on every attempt
  (a spec that can never succeed: the broker must quarantine it after
  its bounded retries without stalling the rest of the sweep).

The remote transport (:mod:`repro.runner.remote`) adds three network
fault kinds, injected at the host agent's wire boundary:

* ``drop``       — the agent computes the result, then silently never
  sends the done frame (a lost packet / black-holed reply: the
  coordinator's silence detector must declare the host partitioned and
  the lease must expire and re-pend);
* ``garble``     — the agent flips a byte of the done frame's body
  *after* computing the frame digest (in-flight corruption: the
  coordinator must reject the frame as a failed attempt, never decode a
  torn result);
* ``disconnect`` — the agent closes the connection the moment the job
  arrives (an abrupt partition: the coordinator must drain the host's
  leases and reconnect with backoff).

The local backends ignore the network kinds — there is no wire to
sabotage in a fork.

Crash, delay, corrupt and the network faults fire **once per spec key**,
coordinated
across worker processes (and respawns) through marker files in
``tally_dir`` — otherwise a crash fault would kill every retry and the
sweep could never terminate.  Poison faults fire on every attempt by
design.

Selectors match either a prefix of the spec's content hash
(:attr:`~repro.runner.spec.ExperimentSpec.key`) or the human-readable
``"<workload>/<config label>"`` tag, so both tests (which know exact
keys) and shell smoke runs (which know workload names) can aim faults.

Plans are installed process-wide with :func:`install` (inherited by
fork-spawned workers) or via the ``REPRO_FAULTS`` environment variable,
a JSON object::

    REPRO_FAULTS='{"crash": ["Qry1/NoPF"], "delay": ["Apache/PV8"],
                   "delay_s": 1.0, "tally_dir": "/tmp/fault-tally"}'

Production sweeps never read any of this: with no plan installed and no
``REPRO_FAULTS`` set, :func:`active_plan` returns the immutable
:data:`NO_FAULTS` plan whose hooks are all no-ops.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

__all__ = [
    "NO_FAULTS",
    "FaultError",
    "FaultPlan",
    "PoisonFault",
    "WorkerCrash",
    "active_plan",
    "install",
]


class FaultError(RuntimeError):
    """Base class for injected failures."""


class PoisonFault(FaultError):
    """Deterministic per-attempt failure of a poison spec."""


class WorkerCrash(FaultError):
    """Raised by inline backends in place of ``os._exit`` (a real process
    worker dies instead of raising)."""


def _default_tally_dir() -> str:
    return os.path.join(tempfile.gettempdir(), "repro-fault-tally")


@dataclass(frozen=True)
class FaultPlan:
    """Which specs to sabotage, and how.

    All selector tuples hold key prefixes and/or ``workload/label`` tags.
    """

    crash: Tuple[str, ...] = ()
    poison: Tuple[str, ...] = ()
    corrupt: Tuple[str, ...] = ()
    delay: Tuple[str, ...] = ()
    #: Network faults, honored by the remote transport only.
    drop: Tuple[str, ...] = ()
    garble: Tuple[str, ...] = ()
    disconnect: Tuple[str, ...] = ()
    #: How long a ``delay`` fault sleeps (choose > the broker's lease
    #: timeout so the lease demonstrably expires mid-flight).
    delay_s: float = 1.0
    #: Cross-process once-per-key coordination directory.
    tally_dir: str = field(default_factory=_default_tally_dir)

    # ------------------------------------------------------------ building

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        kwargs: Dict[str, Any] = {}
        selector_fields = (
            "crash", "poison", "corrupt", "delay",
            "drop", "garble", "disconnect",
        )
        for name in selector_fields:
            if name in data:
                value = data[name]
                if isinstance(value, str):
                    value = [value]
                kwargs[name] = tuple(str(sel) for sel in value)
        if "delay_s" in data:
            kwargs["delay_s"] = float(data["delay_s"])
        if "tally_dir" in data:
            kwargs["tally_dir"] = str(data["tally_dir"])
        unknown = set(data) - set(selector_fields) - {"delay_s", "tally_dir"}
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(**kwargs)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULTS``, or None when unset/empty."""
        raw = os.environ.get("REPRO_FAULTS")
        if not raw:
            return None
        return cls.from_dict(json.loads(raw))

    def to_env(self) -> str:
        """JSON form suitable for ``REPRO_FAULTS``."""
        return json.dumps(
            {
                "crash": list(self.crash),
                "poison": list(self.poison),
                "corrupt": list(self.corrupt),
                "delay": list(self.delay),
                "drop": list(self.drop),
                "garble": list(self.garble),
                "disconnect": list(self.disconnect),
                "delay_s": self.delay_s,
                "tally_dir": self.tally_dir,
            },
            sort_keys=True,
        )

    # ------------------------------------------------------------ matching

    @property
    def is_null(self) -> bool:
        return not (
            self.crash or self.poison or self.corrupt or self.delay
            or self.drop or self.garble or self.disconnect
        )

    @staticmethod
    def _matches(selectors: Sequence[str], key: str, tag: str) -> bool:
        return any(key.startswith(sel) or tag == sel for sel in selectors)

    def _trip(self, kind: str, key: str) -> bool:
        """Record (once, cross-process) that ``kind`` fired for ``key``.

        Returns True exactly once per (kind, key): the first caller to
        create the marker file wins; later callers — retries of the same
        spec, possibly in a different worker process — see the marker and
        leave the spec alone.  The marker is written *before* the fault
        executes so even an ``os._exit`` crash is tallied.
        """
        directory = pathlib.Path(self.tally_dir)
        directory.mkdir(parents=True, exist_ok=True)
        marker = directory / f"{kind}-{key}"
        try:
            with open(marker, "x") as handle:
                handle.write(str(os.getpid()))
        except FileExistsError:
            return False
        return True

    # -------------------------------------------------------- worker hooks

    def is_poison(self, key: str, tag: str) -> bool:
        """Whether this spec must fail this attempt (every attempt)."""
        return bool(self.poison) and self._matches(self.poison, key, tag)

    def drops_heartbeats(self, key: str, tag: str) -> bool:
        """Whether the worker must not heartbeat while computing ``key``."""
        return bool(self.delay) and self._matches(self.delay, key, tag)

    def maybe_corrupt(self, key: str, tag: str, payload: dict) -> dict:
        """Return ``payload``, corrupted in flight once per key."""
        if not self.corrupt or not self._matches(self.corrupt, key, tag):
            return payload
        if not self._trip("corrupt", key):
            return payload
        corrupted = dict(payload)
        corrupted["instructions"] = int(payload.get("instructions", 0)) + 1
        return corrupted

    def maybe_delay(self, key: str, tag: str) -> None:
        """Sleep past lease expiry once per key (partition simulation)."""
        if not self.delay or not self._matches(self.delay, key, tag):
            return
        if self._trip("delay", key):
            time.sleep(self.delay_s)

    def maybe_crash(self, key: str, tag: str, hard: bool = True) -> None:
        """Kill the worker once per key, right before it would publish.

        ``hard=True`` (process workers) exits without cleanup, exactly
        like a SIGKILL'd host; ``hard=False`` (inline backends, which
        must not kill the calling process) raises :class:`WorkerCrash`
        instead, which the backend reports as an ordinary failure.
        """
        if not self.crash or not self._matches(self.crash, key, tag):
            return
        if not self._trip("crash", key):
            return
        if hard:
            os._exit(87)
        raise WorkerCrash(f"injected crash for {key[:12]}")

    # ------------------------------------------------------- network hooks
    #
    # Honored by the remote transport (repro.runner.remote) only: a fork
    # has no wire to sabotage.  Each fires once per spec key, like crash.

    def should_drop(self, key: str, tag: str) -> bool:
        """Whether the agent must black-hole this job's done frame."""
        if not self.drop or not self._matches(self.drop, key, tag):
            return False
        return self._trip("drop", key)

    def should_garble(self, key: str, tag: str) -> bool:
        """Whether the agent must corrupt this job's done frame in flight."""
        if not self.garble or not self._matches(self.garble, key, tag):
            return False
        return self._trip("garble", key)

    def should_disconnect(self, key: str, tag: str) -> bool:
        """Whether the agent must hang up the moment this job arrives."""
        if not self.disconnect or not self._matches(self.disconnect, key, tag):
            return False
        return self._trip("disconnect", key)


#: The do-nothing plan production code runs under.
NO_FAULTS = FaultPlan()

_INSTALLED: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` process-wide (None removes it).

    Fork-spawned workers inherit the installed plan, so a test can
    install once in the parent and every worker sees it.
    """
    global _INSTALLED
    _INSTALLED = plan


def active_plan() -> FaultPlan:
    """The installed plan, else the ``REPRO_FAULTS`` plan, else no-op."""
    if _INSTALLED is not None:
        return _INSTALLED
    return FaultPlan.from_env() or NO_FAULTS
