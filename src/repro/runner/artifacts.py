"""Persistent warm-state & compiled-trace artifact store.

PRs 4–5 made warm-up state and compiled traces reusable *within* a
process (:data:`~repro.workloads.generator.TRACE_CACHE`,
:data:`~repro.sim.simulator.WARM_STATE_CACHE`); both die with the
process, so every cold sweep invocation — and every freshly spawned
worker of the broker/worker fabric — re-derives the same SMARTS warm-up
state and reference streams.  The :class:`ArtifactStore` persists both
next to the :class:`~repro.runner.store.ResultStore`, keyed by the same
content hashes, turning cold invocations into mostly-warm ones:

* **warm-state checkpoints** — the compact sparse snapshot
  :meth:`~repro.sim.simulator.CMPSimulator._snapshot_warm_state` builds
  (touched cache sets only, plus fetch-side state), keyed by the
  ``(workload, seed, region, warm-up length, hierarchy geometry)`` tuple
  of :meth:`~repro.sim.simulator.CMPSimulator._warm_key`;
* **compiled traces** — a stream prefix of
  :class:`~repro.cpu.trace.TraceRecord` tuples, keyed by the stream's
  full determinism contract ``(profile, core, seed, region)``.  Only the
  memory-reference fields are stored (20 bytes/record, zlib-compressed);
  the engine-event annotations are pure functions of the reference
  sequence and are recomputed exactly on restore.

**Trust model.**  Every artifact file is a one-line JSON header followed
by a zlib body, and the header carries a SHA-256 digest of the body (the
same publish-verification pattern the broker applies to result
payloads).  A file whose body does not match its digest — truncated by a
killed writer, garbled by disk rot, raced on a filesystem without atomic
replace — is *quarantined* (renamed ``*.corrupt``) and reported as a
miss, never trusted: the caller recomputes, and recompute is always
bitwise-equal to what a healthy restore would have produced.  Writes are
atomic (unique temp file in the final directory, then ``os.replace``),
so any number of concurrent writers — sweep workers, parallel pytest
sessions — can share one store; the worst case is the same artifact
encoded twice, never a torn file served.

**Activation.**  The store is off by default (goldens and perf baselines
never see it).  ``REPRO_ARTIFACTS=<dir>`` (or ``--artifacts <dir>`` on
any experiment-running CLI command) switches it on process-wide; several
``os.pathsep``-joined directories stripe artifacts across shard roots by
key hash, mirroring :class:`~repro.runner.store.ShardedResultStore`.
Forked sweep workers inherit the active store (and the env var covers
spawn), so one store serves a whole broker/worker fabric run.

**Lifecycle.**  ``repro artifacts list / stats / gc`` manage the store;
``gc`` bounds it by total size and/or age (oldest evicted first) and
always sweeps quarantined ``*.corrupt`` leftovers.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import struct
import tempfile
import time
import zlib
from dataclasses import asdict
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Sequence, Union

from repro.cpu.trace import TraceRecord

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactInfo",
    "ArtifactStore",
    "active_store",
    "configure",
    "reset",
    "set_active",
    "trace_key_id",
    "warm_key_id",
]

#: Bump when the on-disk artifact format (header or body encoding)
#: changes; old entries become misses and are overwritten in place.
ARTIFACT_SCHEMA = 1

#: Per-record wire format of a trace body: pc, addr, gap, write flag.
_TRACE_RECORD = struct.Struct("<QQIB")

#: Artifact kinds (also the subdirectory names).
WARM = "warm"
TRACE = "trace"
_KINDS = (WARM, TRACE)


def _canonical_id(payload: Dict[str, Any]) -> str:
    """Stable content hash of a key payload (canonical JSON, SHA-256)."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()


def warm_key_id(key: Sequence[Any]) -> str:
    """Content hash of a simulator warm-state key tuple.

    ``key`` is exactly what
    :meth:`~repro.sim.simulator.CMPSimulator._warm_key` returns:
    ``(profile, seed, region, warmup_refs, *geometry)`` where geometry is
    the flat tuple of hierarchy/fetch knobs the warm-up depends on.  The
    dataclasses are canonicalized field-by-field, so the id is stable
    across processes and platforms (unlike ``hash()``).
    """
    profile, seed, region, warmup, *geometry = key
    return _canonical_id({
        "kind": WARM,
        "schema": ARTIFACT_SCHEMA,
        "workload": asdict(profile),
        "seed": seed,
        "region": asdict(region),
        "warmup": warmup,
        "geometry": list(geometry),
    })


def trace_key_id(profile, core: int, seed: int, region) -> str:
    """Content hash of a compiled stream's determinism contract."""
    return _canonical_id({
        "kind": TRACE,
        "schema": ARTIFACT_SCHEMA,
        "workload": asdict(profile),
        "core": core,
        "seed": seed,
        "region": asdict(region),
    })


# ------------------------------------------------------------ payload codecs


def _encode_warm(payload: tuple) -> bytes:
    """Warm snapshot tuple -> compressed JSON (ints only, fully safe)."""
    snaps, presence, last_iblock, nextline_last = payload
    body = {
        "snaps": [
            [tick, [[sidx, list(tags), list(stamps), list(meta)]
                    for sidx, (tags, stamps, meta) in sets.items()]]
            for tick, sets in snaps
        ],
        "presence": [[block, bits] for block, bits in presence.items()],
        "last_iblock": list(last_iblock),
        "nextline": list(nextline_last),
    }
    return zlib.compress(
        json.dumps(body, separators=(",", ":")).encode("ascii"), 6
    )


def _decode_warm(blob: bytes) -> tuple:
    """Inverse of :func:`_encode_warm`, rebuilding the exact payload shape
    (tuples/dicts/int keys) the simulator snapshots, so a restored payload
    compares equal to a freshly computed one."""
    body = json.loads(zlib.decompress(blob).decode("ascii"))
    snaps = [
        (tick, {sidx: (tags, stamps, meta)
                for sidx, tags, stamps, meta in sets})
        for tick, sets in body["snaps"]
    ]
    presence = {block: bits for block, bits in body["presence"]}
    return (snaps, presence, body["last_iblock"], body["nextline"])


def _encode_trace(records: Sequence[TraceRecord]) -> Optional[bytes]:
    """Trace prefix -> compressed packed records, or None if unencodable.

    Only ``(pc, addr, gap, write)`` are stored; the engine-event
    annotations (taken branch from the PC sequence, load value from the
    address) are pure functions of those fields and are recomputed on
    decode — exactly the rule the generator itself follows.
    """
    pack = _TRACE_RECORD.pack
    try:
        return zlib.compress(
            b"".join(
                pack(r.pc, r.addr, r.gap, 1 if r.write else 0)
                for r in records
            ),
            6,
        )
    except struct.error:  # a field outside the wire format's range
        return None


def _decode_trace(blob: bytes) -> List[TraceRecord]:
    """Rebuild the annotated record list from the packed wire form."""
    from repro.workloads.generator import memory_value

    records: List[TraceRecord] = []
    append = records.append
    prev_pc = None
    for pc, addr, gap, flags in _TRACE_RECORD.iter_unpack(zlib.decompress(blob)):
        write = bool(flags & 1)
        branch_pc = branch_target = None
        if prev_pc is not None and pc != prev_pc + 4:
            branch_pc = prev_pc + 4
            branch_target = pc
        prev_pc = pc
        append(TraceRecord(
            pc, addr, write, gap, branch_pc, branch_target,
            None if write else memory_value(addr),
        ))
    return records


# ---------------------------------------------------------------- the store


class ArtifactInfo(NamedTuple):
    """One on-disk artifact, as reported by ``list``/``gc``."""

    kind: str
    key: str
    path: pathlib.Path
    size: int
    mtime: float
    meta: Dict[str, Any]


class ArtifactStore:
    """Digest-verified, atomically written warm-state/trace artifacts.

    ``root`` is a directory, an ``os.pathsep``-joined list of directories
    (artifacts stripe across them by key hash), or a sequence of roots.
    Artifacts live under ``<root>/artifacts/<kind>/<key[:2]>/<key>.bin``,
    so a store may share its root with a :class:`ResultStore` without
    collision.
    """

    def __init__(self, root: Union[str, os.PathLike, Sequence]) -> None:
        if isinstance(root, (str, os.PathLike)):
            text = os.fspath(root)
            roots = [part for part in text.split(os.pathsep) if part] or [text]
        else:
            roots = [os.fspath(r) for r in root]
            if not roots:
                raise ValueError("at least one artifact root required")
        self.roots = [pathlib.Path(r) / "artifacts" for r in roots]
        # Session counters (per process; the CLI prints them after sweeps).
        self.warm_hits = 0
        self.warm_misses = 0
        self.trace_hits = 0
        self.trace_misses = 0
        self.writes = 0
        self.write_bytes = 0
        self.quarantined = 0
        #: Session quarantines broken down by artifact kind (corrupt
        #: files of unrecognizable kind count under the aggregate only).
        self.quarantined_by_kind = {kind: 0 for kind in _KINDS}

    # -------------------------------------------------------------- layout

    def _root_for(self, key: str) -> pathlib.Path:
        return self.roots[int(key[:8], 16) % len(self.roots)]

    def path_for(self, kind: str, key: str) -> pathlib.Path:
        return self._root_for(key) / kind / key[:2] / f"{key}.bin"

    # ----------------------------------------------------------- raw verify

    def _read_verified(self, kind: str, key: str):
        """``(header, body)`` for a healthy artifact, else None.

        Anything structurally broken — unparseable header, digest or size
        mismatch, undecodable body — is quarantined so it stops shadowing
        the key; schema/kind/key mismatches (old format, foreign file) are
        plain misses that the next write overwrites.
        """
        path = self.path_for(kind, key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        newline = data.find(b"\n")
        if newline < 0:
            self._quarantine(path)
            return None
        try:
            header = json.loads(data[:newline].decode("ascii"))
        except (ValueError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        if not isinstance(header, dict):
            self._quarantine(path)
            return None
        if (
            header.get("artifact_schema") != ARTIFACT_SCHEMA
            or header.get("kind") != kind
            or header.get("key") != key
        ):
            return None
        body = data[newline + 1:]
        if (
            len(body) != header.get("body_bytes")
            or hashlib.sha256(body).hexdigest() != header.get("digest")
        ):
            self._quarantine(path)
            return None
        return header, body

    def _quarantine(self, path: pathlib.Path) -> None:
        self.quarantined += 1
        # <root>/artifacts/<kind>/<key[:2]>/<key>.bin — the kind is two
        # levels up; foreign paths just miss the per-kind breakdown.
        kind = path.parent.parent.name
        if kind in self.quarantined_by_kind:
            self.quarantined_by_kind[kind] += 1
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:  # pragma: no cover - racing readers/cleaners
            pass

    def _write(
        self, kind: str, key: str, body: bytes, meta: Dict[str, Any]
    ) -> pathlib.Path:
        header = {
            "artifact_schema": ARTIFACT_SCHEMA,
            "kind": kind,
            "key": key,
            "digest": hashlib.sha256(body).hexdigest(),
            "body_bytes": len(body),
            "meta": meta,
        }
        blob = json.dumps(header, sort_keys=True).encode("ascii") + b"\n" + body
        return self._write_blob(kind, key, blob)

    def _write_blob(self, kind: str, key: str, blob: bytes) -> pathlib.Path:
        """Atomically install a complete artifact file (header + body)."""
        path = self.path_for(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        self.write_bytes += len(blob)
        return path

    # ------------------------------------------------------ raw blob access
    #
    # The remote transport (repro.runner.remote) moves artifacts between
    # stores as whole files, so the digest travels with the body and the
    # receiving side re-verifies with exactly the machinery above.

    def get_raw(self, kind: str, key: str) -> Optional[bytes]:
        """The complete on-disk file of a healthy artifact, else None.

        The entry is digest-verified first (quarantining on damage), so a
        served blob is always structurally sound at the moment of read.
        """
        if self._read_verified(kind, key) is None:
            return None
        try:
            return self.path_for(kind, key).read_bytes()
        except OSError:  # pragma: no cover - raced with gc/clear
            return None

    def put_raw(
        self, kind: str, key: str, blob: bytes, verify: bool = True
    ) -> bool:
        """Install a complete artifact file fetched from another store.

        With ``verify=True`` (uploads into a trusted store) the blob's
        header must parse and match ``kind``/``key``/digest before it is
        accepted; a damaged blob is rejected without touching disk.
        ``verify=False`` (a local read-through cache) installs the blob
        as-is — the next read digest-checks it and quarantines damage,
        exactly as it would any other file.
        """
        if kind not in _KINDS:
            return False
        if verify and not self._blob_valid(kind, key, blob):
            return False
        self._write_blob(kind, key, blob)
        return True

    @staticmethod
    def _blob_valid(kind: str, key: str, blob: bytes) -> bool:
        newline = blob.find(b"\n")
        if newline < 0:
            return False
        try:
            header = json.loads(blob[:newline].decode("ascii"))
        except (ValueError, UnicodeDecodeError):
            return False
        if not isinstance(header, dict):
            return False
        body = blob[newline + 1:]
        return (
            header.get("artifact_schema") == ARTIFACT_SCHEMA
            and header.get("kind") == kind
            and header.get("key") == key
            and header.get("body_bytes") == len(body)
            and header.get("digest") == hashlib.sha256(body).hexdigest()
        )

    def _peek_meta(self, kind: str, key: str) -> Optional[Dict[str, Any]]:
        """Header meta without reading (or verifying) the body.

        An unparseable header is structural damage and quarantines here,
        same as in the full read; a parseable-but-foreign header (old
        schema, wrong kind) stays a plain miss.
        """
        path = self.path_for(kind, key)
        try:
            with open(path, "rb") as handle:
                line = handle.readline(1 << 20)
        except OSError:
            return None
        try:
            header = json.loads(line.decode("ascii"))
        except (ValueError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        if (
            not isinstance(header, dict)
            or header.get("artifact_schema") != ARTIFACT_SCHEMA
            or header.get("kind") != kind
            or header.get("key") != key
        ):
            return None
        meta = header.get("meta")
        return meta if isinstance(meta, dict) else {}

    # --------------------------------------------------------- warm state

    def get_warm_state(self, key: Sequence[Any]) -> Optional[tuple]:
        """Restore a warm-state snapshot, or None (miss or quarantined)."""
        entry = self._read_verified(WARM, warm_key_id(key))
        if entry is None:
            self.warm_misses += 1
            return None
        _, body = entry
        try:
            payload = _decode_warm(body)
        except (ValueError, KeyError, TypeError, zlib.error):
            self._quarantine(self.path_for(WARM, warm_key_id(key)))
            self.warm_misses += 1
            return None
        self.warm_hits += 1
        return payload

    def put_warm_state(
        self, key: Sequence[Any], payload: tuple
    ) -> Optional[pathlib.Path]:
        """Persist a warm-state snapshot under its content-hash key."""
        profile, seed, region, warmup = key[0], key[1], key[2], key[3]
        meta = {
            "workload": profile.name,
            "seed": seed,
            "warmup": warmup,
            "n_cores": key[4],
        }
        del region
        return self._write(WARM, warm_key_id(key), _encode_warm(payload), meta)

    # -------------------------------------------------------------- traces

    def get_trace(
        self, profile, core: int, seed: int, region, n: int
    ) -> Optional[List[TraceRecord]]:
        """The stored stream prefix, if it is at least ``n`` records long.

        A shorter stored prefix is a miss (the caller regenerates and
        :meth:`put_trace` then extends the entry); annotations are
        recomputed, so the returned records are bitwise identical to what
        the generator would have produced.
        """
        key = trace_key_id(profile, core, seed, region)
        meta = self._peek_meta(TRACE, key)
        if meta is None or int(meta.get("records", 0)) < n:
            self.trace_misses += 1
            return None
        entry = self._read_verified(TRACE, key)
        if entry is None:
            self.trace_misses += 1
            return None
        _, body = entry
        try:
            records = _decode_trace(body)
        except (ValueError, zlib.error, struct.error):
            self._quarantine(self.path_for(TRACE, key))
            self.trace_misses += 1
            return None
        if len(records) < n:  # header lied (bit flip in the body count)
            self.trace_misses += 1
            return None
        self.trace_hits += 1
        return records

    def put_trace(
        self, profile, core: int, seed: int, region,
        records: Sequence[TraceRecord],
    ) -> Optional[pathlib.Path]:
        """Persist a stream prefix; keeps the longest prefix seen.

        A no-op when the store already holds at least as many records for
        the key, so repeated sweep invocations settle into pure reads.
        """
        key = trace_key_id(profile, core, seed, region)
        meta = self._peek_meta(TRACE, key)
        if meta is not None and int(meta.get("records", 0)) >= len(records):
            return None
        body = _encode_trace(records)
        if body is None:
            return None
        return self._write(TRACE, key, body, {
            "workload": profile.name,
            "core": core,
            "seed": seed,
            "records": len(records),
        })

    # ------------------------------------------------------------ lifecycle

    def entries(self) -> Iterator[ArtifactInfo]:
        """Every artifact currently on disk (corrupt files excluded)."""
        for root in self.roots:
            for kind in _KINDS:
                base = root / kind
                if not base.is_dir():
                    continue
                for path in sorted(base.glob("??/*.bin")):
                    try:
                        stat = path.stat()
                    except OSError:
                        continue
                    key = path.stem
                    meta = self._peek_meta(kind, key) or {}
                    yield ArtifactInfo(
                        kind, key, path, stat.st_size, stat.st_mtime, meta
                    )

    def stats(self) -> Dict[str, Any]:
        """Session counters plus on-disk occupancy, broken down by kind."""
        per_kind = {
            kind: {"entries": 0, "bytes": 0, "corrupt": 0, "corrupt_bytes": 0}
            for kind in _KINDS
        }
        for info in self.entries():
            per_kind[info.kind]["entries"] += 1
            per_kind[info.kind]["bytes"] += info.size
        for root in self.roots:
            for kind in _KINDS:
                base = root / kind
                if not base.is_dir():
                    continue
                for path in base.glob("??/*.corrupt"):
                    try:
                        size = path.stat().st_size
                    except OSError:
                        continue
                    per_kind[kind]["corrupt"] += 1
                    per_kind[kind]["corrupt_bytes"] += size
        return {
            "roots": [str(root) for root in self.roots],
            "warm_hits": self.warm_hits,
            "warm_misses": self.warm_misses,
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "writes": self.writes,
            "write_bytes": self.write_bytes,
            "quarantined": self.quarantined,
            "quarantined_by_kind": dict(self.quarantined_by_kind),
            "on_disk": per_kind,
        }

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Dict[str, int]:
        """Bound the store by age and/or total size; sweep corrupt files.

        Age first (anything older than ``max_age_s`` goes), then size
        (oldest evicted until the total fits ``max_bytes``).  Quarantined
        ``*.corrupt`` leftovers are always removed.  Returns a summary.
        """
        now = time.time() if now is None else now
        removed = expired = corrupt = freed = 0
        for root in self.roots:
            if root.is_dir():
                for path in root.glob("*/??/*.corrupt"):
                    try:
                        size = path.stat().st_size
                        path.unlink()
                        corrupt += 1
                        freed += size
                    except OSError:
                        pass
        survivors: List[ArtifactInfo] = []
        for info in self.entries():
            if max_age_s is not None and now - info.mtime > max_age_s:
                try:
                    info.path.unlink()
                    expired += 1
                    freed += info.size
                except OSError:
                    pass
                continue
            survivors.append(info)
        if max_bytes is not None:
            total = sum(info.size for info in survivors)
            for info in sorted(survivors, key=lambda i: i.mtime):
                if total <= max_bytes:
                    break
                try:
                    info.path.unlink()
                    removed += 1
                    total -= info.size
                    freed += info.size
                except OSError:
                    pass
        return {
            "removed": removed,
            "expired": expired,
            "corrupt_swept": corrupt,
            "freed_bytes": freed,
        }

    def clear(self) -> int:
        """Delete every artifact (and corrupt leftover); returns count."""
        count = 0
        for info in self.entries():
            try:
                info.path.unlink()
                count += 1
            except OSError:
                pass
        for root in self.roots:
            if root.is_dir():
                for path in root.glob("*/??/*.corrupt"):
                    try:
                        path.unlink()
                        count += 1
                    except OSError:
                        pass
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({[str(r.parent) for r in self.roots]!r})"


# -------------------------------------------------- process-wide activation

_UNSET = object()
_active: Any = _UNSET


def active_store() -> Optional[ArtifactStore]:
    """The process-wide store, built from ``REPRO_ARTIFACTS`` on first use.

    None when no store is configured — the default, so nothing persists
    unless explicitly asked for.  Forked sweep workers inherit whatever
    the parent resolved; spawned ones re-resolve from the (exported)
    environment variable.
    """
    global _active
    if _active is _UNSET:
        path = os.environ.get("REPRO_ARTIFACTS")
        _active = ArtifactStore(path) if path else None
    return _active


def set_active(store: Optional[ArtifactStore]) -> None:
    """Install (or clear, with None) the process-wide store directly."""
    global _active
    _active = store


def configure(root: Optional[Union[str, os.PathLike]]) -> Optional[ArtifactStore]:
    """Activate a store rooted at ``root`` (``--artifacts``), or disable.

    Also exports ``REPRO_ARTIFACTS`` so worker processes that *spawn*
    rather than fork resolve the same store.
    """
    if root:
        os.environ["REPRO_ARTIFACTS"] = os.fspath(root)
        store = ArtifactStore(root)
    else:
        os.environ.pop("REPRO_ARTIFACTS", None)
        store = None
    set_active(store)
    return store


def reset() -> None:
    """Forget the resolved store; the next use re-reads the environment."""
    global _active
    _active = _UNSET
