"""The process-wide active :class:`SweepRunner`.

Figure drivers, benches and scripts all resolve their simulations through
``get_runner()`` so one knob configures the whole process.  The default
runner is built from the environment:

* ``REPRO_JOBS``    — worker processes (default 1: serial, in-process);
* ``REPRO_STORE``   — directory of the persistent result store (default:
  no persistence, in-process cache only).  Several ``os.pathsep``-joined
  directories configure a :class:`~repro.runner.store.ShardedResultStore`;
* ``REPRO_BACKEND`` — execution backend name (``auto``/``inline``/
  ``process``, or anything registered via
  :func:`repro.runner.worker.register_backend`);
* ``REPRO_MAX_ATTEMPTS`` / ``REPRO_LEASE_TIMEOUT`` — broker failure
  semantics (see :mod:`repro.runner.broker`).

CLI flags (``--jobs`` / ``--store`` / ``--backend``) call
:func:`configure` to override.

The persistent *artifact* store (warm-state checkpoints and compiled
traces, ``REPRO_ARTIFACTS`` / ``--artifacts``) has its own analogous
singleton in :mod:`repro.runner.artifacts` — it is a cache tier under
the simulator, not part of the runner resolution chain, so the two are
configured independently.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.runner.store import ResultStore, ShardedResultStore
from repro.runner.sweep import SweepObserver, SweepRunner

_active: Optional[SweepRunner] = None


def default_jobs() -> int:
    return max(1, int(os.environ.get("REPRO_JOBS", "1")))


def default_backend() -> Optional[str]:
    return os.environ.get("REPRO_BACKEND") or None


def _store_from_path(path: Union[str, os.PathLike]):
    """A ResultStore, or a ShardedResultStore for pathsep-joined roots."""
    text = os.fspath(path)
    roots = [part for part in text.split(os.pathsep) if part]
    if len(roots) > 1:
        return ShardedResultStore(roots)
    return ResultStore(roots[0] if roots else text)


def default_store():
    path = os.environ.get("REPRO_STORE")
    return _store_from_path(path) if path else None


def get_runner() -> SweepRunner:
    """The active runner, creating the env-configured default on first use."""
    global _active
    if _active is None:
        _active = SweepRunner(
            jobs=default_jobs(), store=default_store(), backend=default_backend()
        )
    return _active


def active_runner() -> Optional[SweepRunner]:
    """The currently installed runner, without creating one."""
    return _active


def set_runner(runner: Optional[SweepRunner]) -> None:
    global _active
    _active = runner


def configure(
    jobs: Optional[int] = None,
    store=None,
    observer: Optional[SweepObserver] = None,
    backend: Optional[str] = None,
) -> SweepRunner:
    """Install (and return) a runner; unset arguments fall back to the env."""
    if store is None:
        resolved_store = default_store()
    elif isinstance(store, (ResultStore, ShardedResultStore)):
        resolved_store = store
    else:
        resolved_store = _store_from_path(store)
    runner = SweepRunner(
        jobs=jobs if jobs is not None else default_jobs(),
        store=resolved_store,
        observer=observer,
        backend=backend if backend is not None else default_backend(),
    )
    set_runner(runner)
    return runner


def reset() -> None:
    """Drop the active runner; the next ``get_runner`` rebuilds from env."""
    set_runner(None)
