"""The process-wide active :class:`SweepRunner`.

Figure drivers, benches and scripts all resolve their simulations through
``get_runner()`` so one knob configures the whole process.  The default
runner is built from the environment:

* ``REPRO_JOBS``  — worker processes (default 1: serial, in-process);
* ``REPRO_STORE`` — directory of the persistent result store (default:
  no persistence, in-process cache only).

CLI flags (``--jobs`` / ``--store``) call :func:`configure` to override.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.runner.store import ResultStore
from repro.runner.sweep import SweepObserver, SweepRunner

_active: Optional[SweepRunner] = None


def default_jobs() -> int:
    return max(1, int(os.environ.get("REPRO_JOBS", "1")))


def default_store() -> Optional[ResultStore]:
    path = os.environ.get("REPRO_STORE")
    return ResultStore(path) if path else None


def get_runner() -> SweepRunner:
    """The active runner, creating the env-configured default on first use."""
    global _active
    if _active is None:
        _active = SweepRunner(jobs=default_jobs(), store=default_store())
    return _active


def active_runner() -> Optional[SweepRunner]:
    """The currently installed runner, without creating one."""
    return _active


def set_runner(runner: Optional[SweepRunner]) -> None:
    global _active
    _active = runner


def configure(
    jobs: Optional[int] = None,
    store: Union[ResultStore, str, os.PathLike, None] = None,
    observer: Optional[SweepObserver] = None,
) -> SweepRunner:
    """Install (and return) a runner; unset arguments fall back to the env."""
    if store is None:
        resolved_store: Optional[ResultStore] = default_store()
    elif isinstance(store, ResultStore):
        resolved_store = store
    else:
        resolved_store = ResultStore(store)
    runner = SweepRunner(
        jobs=jobs if jobs is not None else default_jobs(),
        store=resolved_store,
        observer=observer,
    )
    set_runner(runner)
    return runner


def reset() -> None:
    """Drop the active runner; the next ``get_runner`` rebuilds from env."""
    set_runner(None)
