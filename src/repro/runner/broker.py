"""Job broker: a durable queue of content-hashed specs with lease/retry
semantics.

The broker is the coordination half of the distributed sweep fabric.  It
holds one job per unique :class:`~repro.runner.spec.ExperimentSpec` key
and walks each through a small state machine::

    pending ──lease──▶ leased ──complete──▶ done
       ▲                  │
       │   expire/fail    │ fail (attempts exhausted)
       └──────────────────┴──────────────▶ quarantined

* **Leases expire.**  A lease carries a deadline; a worker that neither
  heartbeats nor publishes before it (crashed, partitioned, wedged) loses
  the lease and the spec returns to pending.  A publish arriving under an
  expired (or superseded) lease token is rejected as stale — a key is
  published at most once, no matter how many workers raced on it.
* **Failures retry with backoff, then quarantine.**  Every failure
  (worker exception, expired lease, corrupt payload) counts one attempt;
  after ``max_attempts`` the spec is quarantined with its error history
  and the rest of the sweep proceeds.  Between attempts the spec is held
  back ``retry_backoff * 2**(attempt-1)`` seconds.
* **Payloads are verified.**  Workers publish the serialized result dict
  together with a SHA-256 digest of its canonical JSON computed *at the
  worker*; the broker recomputes the digest over what actually arrived
  and treats a mismatch as a failed attempt (in-flight corruption), never
  as a result.
* **Results publish into the store.**  When a
  :class:`~repro.runner.store.ResultStore` is attached, every accepted
  publish is written through, and ``submit`` serves keys the store
  already holds without queueing them — a warm store answers repeat
  sweeps as pure JSON loads.
* **Affinity, not assignment.**  Jobs carry a group tag (by default the
  spec's workload); the first worker to lease from a group binds it, and
  later leases prefer bound groups so per-process trace and warm-state
  caches stay hot.  Bindings are advisory: they release when the holder's
  leases expire or the worker is reported gone, so a crashed worker never
  strands its group.

The broker never runs a simulation itself and holds no infrastructure
dependencies — backends (:mod:`repro.runner.worker`) inject the execution
substrate, and tests drive the protocol directly with a fake clock.

``submit`` / ``gather`` form the thin async client API: any number of
clients may submit overlapping sweeps; jobs dedupe on content hash, and
every handle sees each key resolved exactly once.

With ``state_path`` set, the queue itself is durable: every transition
snapshots pending/quarantined state (leases are not persisted — a
restarted broker re-leases), so a broker restarted over the same store
resumes where it left off.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pathlib
import tempfile
import threading
import time
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.runner.serialize import result_from_dict
from repro.runner.spec import ExperimentSpec
from repro.sim.metrics import SimResult

__all__ = [
    "BROKER_STATE_SCHEMA",
    "JobBroker",
    "LeasedJob",
    "PoisonSpecError",
    "SweepHandle",
    "payload_digest",
    "PENDING",
    "LEASED",
    "DONE",
    "QUARANTINED",
]

#: Job states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
QUARANTINED = "quarantined"

#: Bump when the persisted queue snapshot changes shape.
BROKER_STATE_SCHEMA = 1


def payload_digest(payload: Dict[str, Any]) -> str:
    """Content digest of a serialized result, as computed by workers."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()


class PoisonSpecError(RuntimeError):
    """A sweep terminated with quarantined specs.

    Carries the full picture: ``quarantined`` maps each quarantined key
    to its error history, ``results`` holds every result that *did*
    resolve, so callers can salvage the healthy part of the sweep.
    """

    def __init__(
        self,
        quarantined: Dict[str, List[str]],
        results: Optional[Dict[str, SimResult]] = None,
    ) -> None:
        self.quarantined = dict(quarantined)
        self.results = dict(results or {})
        lines = []
        for key, errors in sorted(self.quarantined.items()):
            last = errors[-1] if errors else "unknown error"
            lines.append(f"  {key[:12]}…: {last} (after {len(errors)} attempts)")
        super().__init__(
            "sweep quarantined %d spec(s):\n%s"
            % (len(self.quarantined), "\n".join(lines))
        )


class LeasedJob(NamedTuple):
    """What a worker receives: the spec, its wire form, and a lease."""

    key: str
    spec: ExperimentSpec
    payload: Dict[str, Any]
    token: str
    deadline: float
    group: str


class SweepHandle(NamedTuple):
    """One submission: the unique keys it resolves, in submit order."""

    keys: Tuple[str, ...]


class _Job:
    __slots__ = (
        "key", "spec", "payload", "group", "state", "attempts",
        "token", "worker", "deadline", "not_before", "errors",
    )

    def __init__(self, spec: ExperimentSpec, group: str) -> None:
        self.key = spec.key
        self.spec = spec
        self.payload = spec.to_dict()
        self.group = group
        self.state = PENDING
        self.attempts = 0
        self.token: Optional[str] = None
        self.worker: Optional[str] = None
        self.deadline = 0.0
        self.not_before = 0.0
        self.errors: List[str] = []


class JobBroker:
    """Lease/retry/quarantine coordination over content-hashed specs."""

    def __init__(
        self,
        store=None,
        max_attempts: int = 3,
        lease_timeout: float = 30.0,
        retry_backoff: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
        state_path: Optional[os.PathLike] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be > 0")
        self.store = store
        self.max_attempts = max_attempts
        self.lease_timeout = lease_timeout
        self.retry_backoff = retry_backoff
        self.clock = clock
        self.state_path = (
            pathlib.Path(state_path) if state_path is not None else None
        )
        self._lock = threading.RLock()
        self._jobs: Dict[str, _Job] = {}
        self._results: Dict[str, SimResult] = {}
        #: group tag -> worker currently holding the group's affinity.
        self._bindings: Dict[str, str] = {}
        #: live lease token -> job, for O(1) heartbeat/publish lookup.
        self._leased: Dict[str, _Job] = {}
        #: worker -> leases lost to deadline expiry (per-host tallies).
        self._expired_by_worker: Dict[str, int] = {}
        # Tokens carry a per-incarnation epoch: after a coordinator
        # restart, a lease token issued by the previous broker can never
        # collide with (and publish under) a freshly issued one.
        self._token_epoch = os.urandom(4).hex()
        self._tokens = itertools.count(1)
        self._stats = {
            "submitted": 0,
            "deduped": 0,
            "store_hits": 0,
            "leases": 0,
            "heartbeats": 0,
            "expirations": 0,
            "retries": 0,
            "published": 0,
            "stale_rejected": 0,
            "corrupt_rejected": 0,
            "failures": 0,
            "quarantined": 0,
        }
        if self.state_path is not None and self.state_path.is_file():
            self._restore_state()

    # ------------------------------------------------------------- submit

    def submit(
        self,
        specs: Sequence[ExperimentSpec],
        groups: Optional[Sequence[str]] = None,
    ) -> SweepHandle:
        """Enqueue ``specs``; returns a handle over their unique keys.

        Jobs dedupe on content hash — against this submission, against
        every earlier submission, and against the attached store (a
        store hit becomes ``done`` immediately, no lease ever issued).
        ``groups`` optionally overrides the affinity tag per spec
        (default: the spec's workload).
        """
        if groups is not None and len(groups) != len(specs):
            raise ValueError("groups must align with specs")
        keys: List[str] = []
        with self._lock:
            for i, spec in enumerate(specs):
                key = spec.key
                if key not in keys:
                    keys.append(key)
                job = self._jobs.get(key)
                if job is not None:
                    self._stats["deduped"] += 1
                    continue
                job = _Job(spec, groups[i] if groups is not None else spec.workload)
                self._jobs[key] = job
                self._stats["submitted"] += 1
                if key not in self._results and self.store is not None:
                    stored = self.store.get_by_key(key)
                    if stored is not None:
                        self._results[key] = stored
                        self._stats["store_hits"] += 1
                if key in self._results:
                    job.state = DONE
            self._persist_state()
        return SweepHandle(tuple(keys))

    # -------------------------------------------------------------- lease

    def lease(
        self,
        worker: str,
        now: Optional[float] = None,
        only: Optional[set] = None,
    ) -> Optional[LeasedJob]:
        """Lease the next ready spec to ``worker``, or None.

        ``only`` restricts candidates to a key set (a backend draining
        one handle of a shared broker leaves other clients' jobs alone).
        Preference order keeps caches hot: a group already bound to this
        worker first, then an unbound group (binding it), then — only
        when nothing else is ready — a group bound to another worker
        (splitting it is better than idling; the protocol stays correct
        either way, only cache warmth is at stake).
        """
        now = self.clock() if now is None else now
        with self._lock:
            ready = [
                job for job in self._jobs.values()
                if job.state == PENDING and job.not_before <= now
                and (only is None or job.key in only)
            ]
            if not ready:
                return None
            chosen = None
            for job in ready:
                holder = self._bindings.get(job.group)
                if holder == worker:
                    chosen = job
                    break
            if chosen is None:
                for job in ready:
                    if job.group not in self._bindings:
                        chosen = job
                        break
            if chosen is None:
                chosen = ready[0]
            self._bindings[chosen.group] = worker
            chosen.state = LEASED
            chosen.worker = worker
            chosen.token = f"{self._token_epoch}-{next(self._tokens)}"
            chosen.deadline = now + self.lease_timeout
            self._leased[chosen.token] = chosen
            self._stats["leases"] += 1
            key = self._key_of(chosen)
            return LeasedJob(
                key, chosen.spec, chosen.payload, chosen.token,
                chosen.deadline, chosen.group,
            )

    def heartbeat(self, token: str, now: Optional[float] = None) -> bool:
        """Extend the lease holding ``token``; False when it no longer does."""
        now = self.clock() if now is None else now
        with self._lock:
            job = self._job_for_token(token)
            if job is None:
                return False
            job.deadline = now + self.lease_timeout
            self._stats["heartbeats"] += 1
            return True

    # ------------------------------------------------------------ publish

    def complete(
        self,
        token: str,
        payload: Dict[str, Any],
        digest: Optional[str] = None,
        now: Optional[float] = None,
    ) -> str:
        """Publish a result under lease ``token``.

        Returns ``"published"``, ``"stale"`` (the lease expired or was
        superseded — the payload is discarded, the key stays with
        whichever attempt owns it now) or ``"corrupt"`` (digest mismatch
        — counted as a failed attempt and requeued/quarantined).
        """
        now = self.clock() if now is None else now
        with self._lock:
            job = self._job_for_token(token)
            if job is None:
                self._stats["stale_rejected"] += 1
                return "stale"
            key = self._key_of(job)
            if digest is not None and payload_digest(payload) != digest:
                self._stats["corrupt_rejected"] += 1
                self._fail_locked(job, "corrupt payload (digest mismatch)", now)
                return "corrupt"
            try:
                result = result_from_dict(payload)
            except Exception as exc:
                self._stats["corrupt_rejected"] += 1
                self._fail_locked(job, f"undecodable payload: {exc}", now)
                return "corrupt"
            self._release_lease(job)
            job.state = DONE
            self._results[key] = result
            self._stats["published"] += 1
            if self.store is not None:
                self.store.put(job.spec, result)
            self._persist_state()
            return "published"

    def fail(
        self, token: str, error: str, now: Optional[float] = None
    ) -> str:
        """Report a failed attempt; returns ``"requeued"``,
        ``"quarantined"`` or ``"stale"``."""
        now = self.clock() if now is None else now
        with self._lock:
            job = self._job_for_token(token)
            if job is None:
                self._stats["stale_rejected"] += 1
                return "stale"
            return self._fail_locked(job, error, now)

    def _fail_locked(self, job: _Job, error: str, now: float) -> str:
        self._release_lease(job)
        job.attempts += 1
        job.errors.append(error)
        self._stats["failures"] += 1
        if job.attempts >= self.max_attempts:
            job.state = QUARANTINED
            self._stats["quarantined"] += 1
        else:
            job.state = PENDING
            job.not_before = now + self.retry_backoff * (2 ** (job.attempts - 1))
            self._stats["retries"] += 1
        self._persist_state()
        return "quarantined" if job.state == QUARANTINED else "requeued"

    # ------------------------------------------------------------- expiry

    def expire(self, now: Optional[float] = None) -> List[str]:
        """Requeue every lease whose deadline has passed; returns keys."""
        now = self.clock() if now is None else now
        with self._lock:
            lapsed = [
                job for job in self._jobs.values()
                if job.state == LEASED and job.deadline <= now
            ]
            keys = []
            for job in lapsed:
                keys.append(self._key_of(job))
                self._stats["expirations"] += 1
                if job.worker is not None:
                    self._expired_by_worker[job.worker] = (
                        self._expired_by_worker.get(job.worker, 0) + 1
                    )
                self._fail_locked(job, f"lease expired (worker {job.worker})", now)
            return keys

    def release_worker(self, worker: str, now: Optional[float] = None) -> List[str]:
        """A worker is known gone: expire its leases now, drop its bindings."""
        now = self.clock() if now is None else now
        with self._lock:
            keys = []
            for job in self._jobs.values():
                if job.state == LEASED and job.worker == worker:
                    keys.append(self._key_of(job))
                    self._stats["expirations"] += 1
                    self._fail_locked(
                        job, f"worker {worker} died holding the lease", now
                    )
            for group, holder in list(self._bindings.items()):
                if holder == worker:
                    del self._bindings[group]
            return keys

    def _release_lease(self, job: _Job) -> None:
        # Bindings are left alone here: they are advisory cache-affinity
        # hints, dropped only when a worker is reported gone.
        if job.token is not None:
            self._leased.pop(job.token, None)
        job.token = None
        job.worker = None
        job.deadline = 0.0

    # ------------------------------------------------------------ queries

    @staticmethod
    def _key_of(job: _Job) -> str:
        return job.key

    def _job_for_token(self, token: str) -> Optional[_Job]:
        job = self._leased.get(token)
        if job is not None and job.state == LEASED and job.token == token:
            return job
        return None

    def next_event_delay(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds until the next deadline/backoff event, or None if idle."""
        now = self.clock() if now is None else now
        with self._lock:
            horizons = [
                job.deadline for job in self._jobs.values() if job.state == LEASED
            ] + [
                job.not_before
                for job in self._jobs.values()
                if job.state == PENDING and job.not_before > now
            ]
            if not horizons:
                return None
            return max(0.0, min(horizons) - now)

    def pending_group_count(self, keys: Optional[Sequence[str]] = None) -> int:
        """Distinct affinity groups with unresolved work (sizes a backend)."""
        with self._lock:
            wanted = set(keys) if keys is not None else None
            return len({
                job.group
                for key, job in self._jobs.items()
                if job.state in (PENDING, LEASED)
                and (wanted is None or key in wanted)
            })

    def counts(self) -> Dict[str, int]:
        """State histogram of every job the broker has ever accepted."""
        with self._lock:
            counts = {PENDING: 0, LEASED: 0, DONE: 0, QUARANTINED: 0}
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._stats)

    def expirations_by_worker(self) -> Dict[str, int]:
        """Per-worker count of leases lost to deadline expiry.

        Backends fold this into their per-host tallies: deadline expiry
        is detected by the drain loop's ``expire()``, not by the channel
        that held the lease, so the attribution lives here.
        """
        with self._lock:
            return dict(self._expired_by_worker)

    def quarantined(self) -> Dict[str, List[str]]:
        """Error history of every quarantined spec."""
        with self._lock:
            return {
                key: list(job.errors)
                for key, job in self._jobs.items()
                if job.state == QUARANTINED
            }

    def done(self, handle: SweepHandle) -> bool:
        """Whether every key of ``handle`` reached a terminal state."""
        with self._lock:
            return all(
                self._jobs[key].state in (DONE, QUARANTINED)
                for key in handle.keys
            )

    def result(self, key: str) -> Optional[SimResult]:
        with self._lock:
            return self._results.get(key)

    def gather(self, handle: SweepHandle) -> List[SimResult]:
        """Results for a completed handle, in submit order.

        Raises :class:`PoisonSpecError` when any of the handle's specs
        was quarantined (the exception carries the healthy results), and
        ``RuntimeError`` if called before the handle completed.
        """
        with self._lock:
            if not self.done(handle):
                raise RuntimeError("handle not complete; drive a backend first")
            quarantined = {
                key: list(self._jobs[key].errors)
                for key in handle.keys
                if self._jobs[key].state == QUARANTINED
            }
            if quarantined:
                healthy = {
                    key: self._results[key]
                    for key in handle.keys
                    if key in self._results
                }
                raise PoisonSpecError(quarantined, healthy)
            return [self._results[key] for key in handle.keys]

    # -------------------------------------------------------- durability

    def _persist_state(self) -> None:
        """Atomic queue snapshot (leases saved as pending: they re-lease)."""
        if self.state_path is None:
            return
        jobs = []
        for key, job in self._jobs.items():
            state = PENDING if job.state == LEASED else job.state
            jobs.append(
                {
                    "key": key,
                    "spec": job.payload,
                    "group": job.group,
                    "state": state,
                    "attempts": job.attempts,
                    "errors": list(job.errors),
                }
            )
        snapshot = {"broker_state_schema": BROKER_STATE_SCHEMA, "jobs": jobs}
        self.state_path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.state_path.parent, prefix=".queue.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(snapshot, handle, sort_keys=True)
            os.replace(tmp, self.state_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _restore_state(self) -> None:
        try:
            snapshot = json.loads(self.state_path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(snapshot, dict):
            return
        if snapshot.get("broker_state_schema") != BROKER_STATE_SCHEMA:
            return
        for entry in snapshot.get("jobs", []):
            try:
                spec = ExperimentSpec.from_dict(entry["spec"])
            except (KeyError, TypeError, ValueError):
                continue
            key = entry.get("key")
            if key != spec.key:
                continue
            job = _Job(spec, entry.get("group", spec.workload))
            job.attempts = int(entry.get("attempts", 0))
            job.errors = [str(e) for e in entry.get("errors", [])]
            state = entry.get("state", PENDING)
            if state == DONE:
                # Results live in the store; re-pend if it lost them.
                stored = (
                    self.store.get_by_key(key) if self.store is not None else None
                )
                if stored is not None:
                    job.state = DONE
                    self._results[key] = stored
                    self._stats["store_hits"] += 1
                else:
                    job.state = PENDING
            elif state == QUARANTINED:
                job.state = QUARANTINED
            self._jobs[key] = job

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = self.counts()
        return (
            "JobBroker("
            + ", ".join(f"{state}={n}" for state, n in counts.items())
            + ")"
        )
