"""Fan a list of :class:`ExperimentSpec` across the broker/worker fabric.

The runner resolves each spec through three layers, cheapest first:

1. the in-process experiment cache (`repro.sim.experiment`);
2. the persistent :class:`~repro.runner.store.ResultStore`, if configured;
3. simulation, through a :class:`~repro.runner.broker.JobBroker` driven
   by an execution backend (:mod:`repro.runner.worker`): the inline
   backend for ``jobs<=1``, N local worker processes otherwise.

The broker brings failure semantics the old process pool lacked: leases
that expire when a worker dies or wedges, bounded retries with backoff,
digest-verified result payloads, and poison-spec quarantine
(:class:`~repro.runner.broker.PoisonSpecError` reports quarantined specs
without losing the healthy results).  Workers publish straight into the
result store; a parallel run produces byte-identical payloads to a
serial one.  Completion order is irrelevant to the outcome: computed
results are persisted (and progress reported) as they arrive, then
merged into the in-process cache in input-spec order, and ``run``
returns results aligned with its argument.

``submit``/``gather`` expose the same machinery asynchronously: any
number of clients enqueue sweeps into one shared broker (deduped on
content hash, warm store entries served as pure JSON loads), then gather
their handles whenever they like.

Warm-state reuse across a sweep is organized around **workload groups**:

* specs carry their workload as a broker affinity tag, and the broker
  leases a group's specs to the worker that first touched it — every
  configuration of one workload lands in the same worker process, where
  the process-local compiled-trace cache
  (:data:`~repro.workloads.generator.TRACE_CACHE`) and warm-state
  checkpoint cache (:data:`~repro.sim.simulator.WARM_STATE_CACHE`) serve
  every spec after the first;
* the pool never spawns more workers than there are groups (extra
  workers would only split groups and defeat the sharing); an explicit
  ``chunksize`` splits groups into finer affinity units (better load
  balancing, less reuse);
* before forking, the parent precompiles each multi-spec group's shared
  traces (``REPRO_SHARE_TRACES=0`` disables), so fork-inherited memory
  hands every worker a hot trace cache for free;
* when a persistent :class:`~repro.runner.artifacts.ArtifactStore` is
  active (``REPRO_ARTIFACTS`` / ``--artifacts``), both in-process caches
  read through to it and write behind: presharing restores compiled
  traces from disk instead of regenerating, forked workers inherit the
  same store handle (spawned ones re-resolve it from the exported
  environment), and warm-state checkpoints survive across sweep
  *invocations*, not just within one process.

``REPRO_JOBS`` sets the requested pool width (see
:mod:`repro.runner.context`); the effective width of one ``run`` call is
``min(REPRO_JOBS, distinct workloads pending)``.  ``REPRO_BACKEND``
picks the execution backend (``auto``/``inline``/``process``/``remote``
— the last dispatching to ``repro serve`` agents named by
``REPRO_HOSTS``), and ``REPRO_MAX_ATTEMPTS`` / ``REPRO_LEASE_TIMEOUT``
tune the failure semantics.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.runner import worker as worker_mod
from repro.runner.broker import JobBroker, PoisonSpecError, SweepHandle
from repro.runner.spec import ExperimentSpec
from repro.runner.store import ResultStore
from repro.sim.metrics import SimResult


@dataclass(frozen=True)
class SweepProgress:
    """One observer notification: a spec was resolved."""

    done: int
    total: int
    spec: ExperimentSpec
    source: str  # "cache" | "store" | "computed"


#: Observer hook signature.
SweepObserver = Callable[[SweepProgress], None]


def default_max_attempts() -> int:
    return max(1, int(os.environ.get("REPRO_MAX_ATTEMPTS", "3")))


def default_lease_timeout() -> float:
    return float(os.environ.get("REPRO_LEASE_TIMEOUT", "30"))


class SweepRunner:
    """Runs design-space sweeps with caching, persistence and parallelism.

    ``backend`` selects the execution substrate: a name registered in
    :data:`repro.runner.worker.BACKENDS`, a factory ``f(workers=N) ->
    backend``, or None/"auto" (inline when one worker suffices, local
    processes otherwise).
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        chunksize: Optional[int] = None,
        observer: Optional[SweepObserver] = None,
        use_cache: bool = True,
        backend=None,
        max_attempts: Optional[int] = None,
        lease_timeout: Optional[float] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.store = store
        self.chunksize = chunksize
        self.observer = observer
        self.use_cache = use_cache
        self.backend = backend
        self.max_attempts = (
            max_attempts if max_attempts is not None else default_max_attempts()
        )
        self.lease_timeout = (
            lease_timeout if lease_timeout is not None else default_lease_timeout()
        )
        #: Broker counters of the most recent drain (CLI status output).
        self.last_stats: Optional[Dict[str, int]] = None
        #: Per-worker/host tallies of the most recent drain, when the
        #: backend keeps them (process and remote backends do).
        self.last_host_tallies: Optional[Dict[str, Dict[str, int]]] = None
        self._async_broker: Optional[JobBroker] = None
        self._broker_lock = threading.Lock()
        self._drain_lock = threading.Lock()

    # ------------------------------------------------------------------ run

    def run(
        self,
        specs: Sequence[ExperimentSpec],
        observer: Optional[SweepObserver] = None,
    ) -> List[SimResult]:
        """Resolve every spec; returns results aligned with ``specs``.

        Raises :class:`~repro.runner.broker.PoisonSpecError` when a spec
        exhausts its retries (the exception carries every healthy
        result); the rest of the sweep still completes first.
        """
        from repro.sim import experiment  # deferred: experiment imports spec

        specs = list(specs)
        observer = observer or self.observer
        resolved: Dict[str, SimResult] = {}
        sources: Dict[str, str] = {}
        unique: List[ExperimentSpec] = []
        pending: List[ExperimentSpec] = []

        for spec in specs:
            key = spec.key
            if key in sources:
                continue
            unique.append(spec)
            hit = experiment.cache_get(key) if self.use_cache else None
            if hit is not None:
                resolved[key] = hit
                sources[key] = "cache"
                continue
            if self.store is not None:
                stored = self.store.get(spec)
                if stored is not None:
                    resolved[key] = stored
                    sources[key] = "store"
                    continue
            pending.append(spec)
            sources[key] = "pending"

        # One notification per unique spec: hits up front, computed specs
        # live as the fabric publishes them (completion order).
        total = len(unique)
        done = 0
        if observer is not None:
            for spec in unique:
                if sources[spec.key] != "pending":
                    done += 1
                    observer(SweepProgress(done, total, spec, sources[spec.key]))

        if pending:
            by_key = {spec.key: spec for spec in pending}
            # The broker write-through persists computed results; no
            # separate store.put here.
            for key, result in self._compute(pending):
                resolved[key] = result
                sources[key] = "computed"
                done += 1
                if observer is not None:
                    observer(SweepProgress(done, total, by_key[key], "computed"))

        # Deterministic merge: input order, independent of completion order.
        if self.use_cache:
            for spec in unique:
                experiment.cache_put(spec.key, resolved[spec.key])
        return [resolved[spec.key] for spec in specs]

    # ---------------------------------------------------- async submission

    def _shared_broker(self) -> JobBroker:
        with self._broker_lock:
            if self._async_broker is None:
                self._async_broker = JobBroker(
                    store=self.store,
                    max_attempts=self.max_attempts,
                    lease_timeout=self.lease_timeout,
                )
            return self._async_broker

    def submit(self, specs: Sequence[ExperimentSpec]) -> SweepHandle:
        """Enqueue a sweep into the shared broker; returns immediately.

        Safe to call from any number of threads: overlapping submissions
        dedupe on content hash, and specs the store already holds are
        served without ever being leased.
        """
        return self._shared_broker().submit(list(specs))

    def gather(self, handle: SweepHandle) -> List[SimResult]:
        """Drive the handle to completion and return its results.

        Results are ordered by the handle's unique keys (submit order).
        One drain runs at a time; concurrent gathers queue up and find
        their work already published.  Raises
        :class:`~repro.runner.broker.PoisonSpecError` on quarantine.
        """
        broker = self._shared_broker()
        with self._drain_lock:
            if not broker.done(handle):
                groups = broker.pending_group_count(handle.keys)
                backend = self._make_backend(max(1, min(self.jobs, groups)))
                for _ in backend.drain(broker, handle, only=set(handle.keys)):
                    pass
                tallies = getattr(backend, "tallies", None)
                self.last_host_tallies = tallies() if callable(tallies) else None
            self.last_stats = broker.stats()
        results = broker.gather(handle)
        if self.use_cache:
            from repro.sim import experiment

            for key, result in zip(handle.keys, results):
                experiment.cache_put(key, result)
        return results

    # -------------------------------------------------------------- compute

    @staticmethod
    def _group_specs(
        pending: Sequence[ExperimentSpec],
    ) -> "Dict[str, List[ExperimentSpec]]":
        """Pending specs grouped by workload, in first-appearance order."""
        groups: Dict[str, List[ExperimentSpec]] = {}
        for spec in pending:
            groups.setdefault(spec.workload, []).append(spec)
        return groups

    def _chunks(
        self, groups: "Dict[str, List[ExperimentSpec]]", jobs: int
    ) -> List[List[ExperimentSpec]]:
        """Split the groups into chunks; chunks never straddle groups.

        Chunks are the broker's affinity units.  By default each group is
        one chunk: with the worker count already capped at the group
        count, the broker then hands every worker whole workloads, which
        is what makes the per-process trace cache and warm-state
        checkpoints hit from a group's second spec on.  An explicit
        ``chunksize`` splits within groups (finer load balancing, at the
        cost of intra-workload reuse when a group's chunks land on
        different workers).
        """
        chunks = []
        for specs in groups.values():
            size = self.chunksize or len(specs)
            for start in range(0, len(specs), size):
                chunks.append(specs[start:start + size])
        return chunks

    def _affinity_tags(
        self, pending: Sequence[ExperimentSpec], jobs: int
    ) -> Optional[List[str]]:
        """Per-spec broker group tags (None = plain workload groups)."""
        if not self.chunksize:
            return None
        tag_by_key: Dict[str, str] = {}
        for chunk_index, chunk in enumerate(
            self._chunks(self._group_specs(pending), jobs)
        ):
            for spec in chunk:
                tag_by_key[spec.key] = f"{spec.workload}#{chunk_index}"
        return [tag_by_key[spec.key] for spec in pending]

    @staticmethod
    def _preshare_traces(groups: "Dict[str, List[ExperimentSpec]]",
                         fork: bool = True) -> None:
        """Precompile each multi-spec group's traces in the parent.

        Workers are forked, so everything compiled here is inherited for
        free; a group's specs then share one compiled trace no matter how
        its chunks land.  Bounded by the trace cache's own record budget.
        Single-spec groups are skipped (the one worker that runs the spec
        compiles it just as fast itself), as is the whole step when the
        pool cannot fork (spawned workers start empty — presharing would
        only double the generation work).  ``REPRO_SHARE_TRACES=0``
        disables presharing.
        """
        if not fork or os.environ.get("REPRO_SHARE_TRACES", "1") == "0":
            return
        from repro.workloads.generator import TRACE_CACHE
        from repro.workloads.registry import get_workload

        for workload, specs in groups.items():
            if len(specs) < 2:
                continue
            need = max(
                spec.scale.refs_per_core + spec.scale.warmup_refs
                for spec in specs
            )
            n = min(need, TRACE_CACHE.max_records)
            if n <= 0:
                continue
            try:
                profile = get_workload(workload)
            except KeyError:  # unknown workload: let the worker raise
                continue
            system = specs[0].system_config()
            for seed in sorted({spec.seed for spec in specs}):
                for core in range(system.hierarchy.n_cores):
                    TRACE_CACHE.get(profile, core, seed, system.sms.region, n)

    def _make_backend(self, workers: int):
        """Resolve the injected backend (name, factory or instance)."""
        backend = self.backend
        if backend is None or backend == "auto":
            name = "inline" if workers <= 1 else "process"
            return worker_mod.make_backend(name, workers=workers)
        if isinstance(backend, str):
            return worker_mod.make_backend(backend, workers=workers)
        if callable(backend):
            return backend(workers=workers)
        return backend

    def _compute(self, pending: List[ExperimentSpec]):
        """Yield ``(key, result)`` for every pending spec as it publishes.

        Each ``run`` drives a fresh broker (so ``use_cache=False`` truly
        recomputes); the shared async broker is only used by
        ``submit``/``gather``.
        """
        groups = self._group_specs(pending)
        # Never spawn more workers than spec groups: extra workers would
        # only split a workload across processes and defeat trace/warm
        # sharing.  The deliberate flip side: a single-workload sweep
        # computes in one worker — maximal reuse over maximal parallelism.
        workers = min(self.jobs, len(groups))
        broker = JobBroker(
            store=self.store,
            max_attempts=self.max_attempts,
            lease_timeout=self.lease_timeout,
        )
        handle = broker.submit(pending, groups=self._affinity_tags(pending, workers))
        backend = self._make_backend(workers)
        if getattr(backend, "forks", False):
            self._preshare_traces(groups, fork=True)
        yield from backend.drain(broker, handle, only=set(handle.keys))
        tallies = getattr(backend, "tallies", None)
        self.last_host_tallies = tallies() if callable(tallies) else None
        self.last_stats = broker.stats()
        quarantined = broker.quarantined()
        if quarantined:
            healthy = {
                key: broker.result(key)
                for key in handle.keys
                if broker.result(key) is not None
            }
            raise PoisonSpecError(quarantined, healthy)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SweepRunner(jobs={self.jobs}, store={self.store!r}, "
            f"backend={self.backend!r}, use_cache={self.use_cache})"
        )
