"""Fan a list of :class:`ExperimentSpec` across a process pool.

The runner resolves each spec through three layers, cheapest first:

1. the in-process experiment cache (`repro.sim.experiment`);
2. the persistent :class:`~repro.runner.store.ResultStore`, if configured;
3. simulation — serially for ``jobs<=1``, otherwise chunked across a
   ``multiprocessing`` pool.

Workers receive spec dicts and return result dicts (the same payloads the
store persists), so a parallel run produces byte-identical payloads to a
serial one.  Completion order is irrelevant to the outcome: computed
results are persisted (and progress reported) as they arrive, then merged
into the in-process cache in input-spec order, and ``run`` returns
results aligned with its argument.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runner.serialize import result_from_dict, result_to_dict
from repro.runner.spec import ExperimentSpec
from repro.runner.store import ResultStore
from repro.sim.metrics import SimResult


@dataclass(frozen=True)
class SweepProgress:
    """One observer notification: a spec was resolved."""

    done: int
    total: int
    spec: ExperimentSpec
    source: str  # "cache" | "store" | "computed"


#: Observer hook signature.
SweepObserver = Callable[[SweepProgress], None]


def _execute_payload(payload: dict) -> Tuple[str, dict]:
    """Pool worker: simulate one spec dict, return (key, result dict)."""
    spec = ExperimentSpec.from_dict(payload)
    return spec.key, result_to_dict(spec.execute())


def _pool_context():
    # fork (Linux/macOS<=3.7 default) avoids re-importing the package per
    # worker; fall back to the platform default where unavailable.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class SweepRunner:
    """Runs design-space sweeps with caching, persistence and parallelism."""

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        chunksize: Optional[int] = None,
        observer: Optional[SweepObserver] = None,
        use_cache: bool = True,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.store = store
        self.chunksize = chunksize
        self.observer = observer
        self.use_cache = use_cache

    # ------------------------------------------------------------------ run

    def run(
        self,
        specs: Sequence[ExperimentSpec],
        observer: Optional[SweepObserver] = None,
    ) -> List[SimResult]:
        """Resolve every spec; returns results aligned with ``specs``."""
        from repro.sim import experiment  # deferred: experiment imports spec

        specs = list(specs)
        observer = observer or self.observer
        resolved: Dict[str, SimResult] = {}
        sources: Dict[str, str] = {}
        unique: List[ExperimentSpec] = []
        pending: List[ExperimentSpec] = []

        for spec in specs:
            key = spec.key
            if key in sources:
                continue
            unique.append(spec)
            hit = experiment.cache_get(key) if self.use_cache else None
            if hit is not None:
                resolved[key] = hit
                sources[key] = "cache"
                continue
            if self.store is not None:
                stored = self.store.get(spec)
                if stored is not None:
                    resolved[key] = stored
                    sources[key] = "store"
                    continue
            pending.append(spec)
            sources[key] = "pending"

        # One notification per unique spec: hits up front, computed specs
        # live as the pool delivers them (completion order).
        total = len(unique)
        done = 0
        if observer is not None:
            for spec in unique:
                if sources[spec.key] != "pending":
                    done += 1
                    observer(SweepProgress(done, total, spec, sources[spec.key]))

        if pending:
            by_key = {spec.key: spec for spec in pending}
            for key, result in self._compute(pending):
                resolved[key] = result
                sources[key] = "computed"
                if self.store is not None:
                    self.store.put(by_key[key], result)
                done += 1
                if observer is not None:
                    observer(SweepProgress(done, total, by_key[key], "computed"))

        # Deterministic merge: input order, independent of completion order.
        if self.use_cache:
            for spec in unique:
                experiment.cache_put(spec.key, resolved[spec.key])
        return [resolved[spec.key] for spec in specs]

    # -------------------------------------------------------------- compute

    def _compute(self, pending: List[ExperimentSpec]):
        if self.jobs == 1:
            for spec in pending:
                yield spec.key, spec.execute()
            return
        chunksize = self.chunksize or max(1, len(pending) // (self.jobs * 4))
        payloads = [spec.to_dict() for spec in pending]
        ctx = _pool_context()
        with ctx.Pool(processes=min(self.jobs, len(pending))) as pool:
            for key, payload in pool.imap_unordered(
                _execute_payload, payloads, chunksize=chunksize
            ):
                yield key, result_from_dict(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SweepRunner(jobs={self.jobs}, store={self.store!r}, "
            f"use_cache={self.use_cache})"
        )
