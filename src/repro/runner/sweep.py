"""Fan a list of :class:`ExperimentSpec` across a process pool.

The runner resolves each spec through three layers, cheapest first:

1. the in-process experiment cache (`repro.sim.experiment`);
2. the persistent :class:`~repro.runner.store.ResultStore`, if configured;
3. simulation — serially for ``jobs<=1``, otherwise chunked across a
   ``multiprocessing`` pool.

Workers receive spec dicts and return result dicts (the same payloads the
store persists), so a parallel run produces byte-identical payloads to a
serial one.  Completion order is irrelevant to the outcome: computed
results are persisted (and progress reported) as they arrive, then merged
into the in-process cache in input-spec order, and ``run`` returns
results aligned with its argument.

Warm-state reuse across a sweep is organized around **workload groups**:

* pending specs are grouped by workload, and chunks handed to the pool
  never straddle a group — every configuration of one workload lands in
  the same worker, where the process-local compiled-trace cache
  (:data:`~repro.workloads.generator.TRACE_CACHE`) and warm-state
  checkpoint cache (:data:`~repro.sim.simulator.WARM_STATE_CACHE`) serve
  every spec after the first;
* the pool never spawns more workers than there are groups (extra workers
  would only split groups and defeat the sharing);
* before forking, the parent precompiles each multi-spec group's shared
  traces (``REPRO_SHARE_TRACES=0`` disables), so fork-inherited memory
  hands every worker a hot trace cache for free.

``REPRO_JOBS`` sets the requested pool width (see
:mod:`repro.runner.context`); the effective width of one ``run`` call is
``min(REPRO_JOBS, distinct workloads pending, specs pending)``.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runner.serialize import result_from_dict, result_to_dict
from repro.runner.spec import ExperimentSpec
from repro.runner.store import ResultStore
from repro.sim.metrics import SimResult


@dataclass(frozen=True)
class SweepProgress:
    """One observer notification: a spec was resolved."""

    done: int
    total: int
    spec: ExperimentSpec
    source: str  # "cache" | "store" | "computed"


#: Observer hook signature.
SweepObserver = Callable[[SweepProgress], None]


def _execute_payload(payload: dict) -> Tuple[str, dict]:
    """Pool worker: simulate one spec dict, return (key, result dict)."""
    spec = ExperimentSpec.from_dict(payload)
    return spec.key, result_to_dict(spec.execute())


def _execute_chunk(payloads: List[dict]) -> List[Tuple[str, dict]]:
    """Pool worker: simulate one group-aligned chunk of spec dicts.

    A chunk only ever contains specs of one workload, so the worker's
    trace cache and warm-state checkpoints hit from the second spec on.
    """
    return [_execute_payload(payload) for payload in payloads]


def _pool_context():
    # fork (Linux/macOS<=3.7 default) avoids re-importing the package per
    # worker; fall back to the platform default where unavailable.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class SweepRunner:
    """Runs design-space sweeps with caching, persistence and parallelism."""

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        chunksize: Optional[int] = None,
        observer: Optional[SweepObserver] = None,
        use_cache: bool = True,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.store = store
        self.chunksize = chunksize
        self.observer = observer
        self.use_cache = use_cache

    # ------------------------------------------------------------------ run

    def run(
        self,
        specs: Sequence[ExperimentSpec],
        observer: Optional[SweepObserver] = None,
    ) -> List[SimResult]:
        """Resolve every spec; returns results aligned with ``specs``."""
        from repro.sim import experiment  # deferred: experiment imports spec

        specs = list(specs)
        observer = observer or self.observer
        resolved: Dict[str, SimResult] = {}
        sources: Dict[str, str] = {}
        unique: List[ExperimentSpec] = []
        pending: List[ExperimentSpec] = []

        for spec in specs:
            key = spec.key
            if key in sources:
                continue
            unique.append(spec)
            hit = experiment.cache_get(key) if self.use_cache else None
            if hit is not None:
                resolved[key] = hit
                sources[key] = "cache"
                continue
            if self.store is not None:
                stored = self.store.get(spec)
                if stored is not None:
                    resolved[key] = stored
                    sources[key] = "store"
                    continue
            pending.append(spec)
            sources[key] = "pending"

        # One notification per unique spec: hits up front, computed specs
        # live as the pool delivers them (completion order).
        total = len(unique)
        done = 0
        if observer is not None:
            for spec in unique:
                if sources[spec.key] != "pending":
                    done += 1
                    observer(SweepProgress(done, total, spec, sources[spec.key]))

        if pending:
            by_key = {spec.key: spec for spec in pending}
            for key, result in self._compute(pending):
                resolved[key] = result
                sources[key] = "computed"
                if self.store is not None:
                    self.store.put(by_key[key], result)
                done += 1
                if observer is not None:
                    observer(SweepProgress(done, total, by_key[key], "computed"))

        # Deterministic merge: input order, independent of completion order.
        if self.use_cache:
            for spec in unique:
                experiment.cache_put(spec.key, resolved[spec.key])
        return [resolved[spec.key] for spec in specs]

    # -------------------------------------------------------------- compute

    @staticmethod
    def _group_specs(
        pending: Sequence[ExperimentSpec],
    ) -> "Dict[str, List[ExperimentSpec]]":
        """Pending specs grouped by workload, in first-appearance order."""
        groups: Dict[str, List[ExperimentSpec]] = {}
        for spec in pending:
            groups.setdefault(spec.workload, []).append(spec)
        return groups

    def _chunks(
        self, groups: "Dict[str, List[ExperimentSpec]]", jobs: int
    ) -> List[List[ExperimentSpec]]:
        """Split the groups into chunks; chunks never straddle groups.

        By default each group is one chunk: with the worker count already
        capped at the group count, ``imap_unordered`` then hands every
        worker whole workloads, which is what makes the per-process trace
        cache and warm-state checkpoints hit from a group's second spec
        on.  An explicit ``chunksize`` splits within groups (finer
        progress and load balancing, at the cost of intra-workload reuse
        when a group's chunks land on different workers).
        """
        chunks = []
        for specs in groups.values():
            size = self.chunksize or len(specs)
            for start in range(0, len(specs), size):
                chunks.append(specs[start:start + size])
        return chunks

    @staticmethod
    def _preshare_traces(groups: "Dict[str, List[ExperimentSpec]]",
                         fork: bool = True) -> None:
        """Precompile each multi-spec group's traces in the parent.

        Workers are forked, so everything compiled here is inherited for
        free; a group's specs then share one compiled trace no matter how
        its chunks land.  Bounded by the trace cache's own record budget.
        Single-spec groups are skipped (the one worker that runs the spec
        compiles it just as fast itself), as is the whole step when the
        pool cannot fork (spawned workers start empty — presharing would
        only double the generation work).  ``REPRO_SHARE_TRACES=0``
        disables presharing.
        """
        if not fork or os.environ.get("REPRO_SHARE_TRACES", "1") == "0":
            return
        from repro.workloads.generator import TRACE_CACHE
        from repro.workloads.registry import get_workload

        for workload, specs in groups.items():
            if len(specs) < 2:
                continue
            need = max(
                spec.scale.refs_per_core + spec.scale.warmup_refs
                for spec in specs
            )
            n = min(need, TRACE_CACHE.max_records)
            if n <= 0:
                continue
            try:
                profile = get_workload(workload)
            except KeyError:  # unknown workload: let the worker raise
                continue
            system = specs[0].system_config()
            for seed in sorted({spec.seed for spec in specs}):
                for core in range(system.hierarchy.n_cores):
                    TRACE_CACHE.get(profile, core, seed, system.sms.region, n)

    def _compute(self, pending: List[ExperimentSpec]):
        if self.jobs == 1:
            for spec in pending:
                yield spec.key, spec.execute()
            return
        groups = self._group_specs(pending)
        # Never spawn more workers than spec groups: extra workers would
        # only split a workload across processes and defeat trace/warm
        # sharing (each group is one chunk by default).  The deliberate
        # flip side: a single-workload sweep computes in one worker —
        # maximal reuse instead of maximal parallelism.
        jobs = min(self.jobs, len(groups))
        ctx = _pool_context()
        self._preshare_traces(groups, fork=ctx.get_start_method() == "fork")
        chunks = self._chunks(groups, jobs)
        payload_chunks = [
            [spec.to_dict() for spec in chunk] for chunk in chunks
        ]
        with ctx.Pool(processes=min(jobs, len(chunks))) as pool:
            for results in pool.imap_unordered(_execute_chunk, payload_chunks):
                for key, payload in results:
                    yield key, result_from_dict(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SweepRunner(jobs={self.jobs}, store={self.store!r}, "
            f"use_cache={self.use_cache})"
        )
