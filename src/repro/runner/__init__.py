"""Sweep orchestration: specs, persistent results, parallel execution.

* :mod:`repro.runner.spec`      — :class:`ExperimentSpec`, the frozen
  content-hashed description of one run (and :class:`ExperimentScale`);
* :mod:`repro.runner.serialize` — strict SimResult <-> JSON round-trip;
* :mod:`repro.runner.store`     — :class:`ResultStore`, atomic on-disk
  persistence keyed by spec hash;
* :mod:`repro.runner.sweep`     — :class:`SweepRunner`, the parallel
  load-or-compute engine;
* :mod:`repro.runner.context`   — the process-wide active runner
  (``REPRO_JOBS`` / ``REPRO_STORE``, ``--jobs`` / ``--store``).
"""

from repro.runner.context import (
    active_runner,
    configure,
    get_runner,
    reset,
    set_runner,
)
from repro.runner.serialize import (
    ResultSchemaError,
    canonical_result_json,
    result_from_dict,
    result_to_dict,
)
from repro.runner.spec import SPEC_SCHEMA, ExperimentScale, ExperimentSpec
from repro.runner.store import STORE_SCHEMA, ResultStore
from repro.runner.sweep import SweepObserver, SweepProgress, SweepRunner

__all__ = [
    "SPEC_SCHEMA",
    "STORE_SCHEMA",
    "ExperimentScale",
    "ExperimentSpec",
    "ResultSchemaError",
    "ResultStore",
    "SweepObserver",
    "SweepProgress",
    "SweepRunner",
    "active_runner",
    "canonical_result_json",
    "configure",
    "get_runner",
    "reset",
    "result_from_dict",
    "result_to_dict",
    "set_runner",
]
