"""Sweep orchestration: specs, persistent results, broker/worker fabric.

* :mod:`repro.runner.spec`      — :class:`ExperimentSpec`, the frozen
  content-hashed description of one run (and :class:`ExperimentScale`);
* :mod:`repro.runner.serialize` — strict SimResult <-> JSON round-trip;
* :mod:`repro.runner.store`     — :class:`ResultStore` (and its sharded
  variant), atomic on-disk persistence keyed by spec hash;
* :mod:`repro.runner.broker`    — :class:`JobBroker`, the durable
  lease/retry/quarantine queue of content-hashed specs;
* :mod:`repro.runner.worker`    — execution backends (inline, local
  process pool) driving the broker, plus the backend registry;
* :mod:`repro.runner.remote`    — the remote-host backend: ``repro
  serve`` agents over a digest-verified TCP transport with timeouts,
  backoff, partition recovery and artifact-tier sharing;
* :mod:`repro.runner.faults`    — deterministic fault injection
  (:class:`FaultPlan`) the failure-semantics tests are built on;
* :mod:`repro.runner.sweep`     — :class:`SweepRunner`, the parallel
  load-or-compute engine (sync ``run``, async ``submit``/``gather``);
* :mod:`repro.runner.context`   — the process-wide active runner
  (``REPRO_JOBS`` / ``REPRO_STORE`` / ``REPRO_BACKEND``);
* :mod:`repro.runner.artifacts` — :class:`ArtifactStore`, persistent
  digest-verified warm-state checkpoints and compiled traces backing the
  in-process caches (``REPRO_ARTIFACTS``; off by default).
"""

from repro.runner.artifacts import ArtifactStore

from repro.runner.broker import (
    JobBroker,
    LeasedJob,
    PoisonSpecError,
    SweepHandle,
    payload_digest,
)
from repro.runner.context import (
    active_runner,
    configure,
    get_runner,
    reset,
    set_runner,
)
from repro.runner.faults import FaultPlan
from repro.runner.remote import HostAgent, RemoteBackend
from repro.runner.serialize import (
    ResultSchemaError,
    canonical_result_json,
    result_from_dict,
    result_to_dict,
)
from repro.runner.spec import SPEC_SCHEMA, ExperimentScale, ExperimentSpec
from repro.runner.store import STORE_SCHEMA, ResultStore, ShardedResultStore
from repro.runner.sweep import SweepObserver, SweepProgress, SweepRunner
from repro.runner.worker import BACKENDS, register_backend

__all__ = [
    "ArtifactStore",
    "BACKENDS",
    "SPEC_SCHEMA",
    "STORE_SCHEMA",
    "ExperimentScale",
    "ExperimentSpec",
    "FaultPlan",
    "HostAgent",
    "JobBroker",
    "LeasedJob",
    "PoisonSpecError",
    "RemoteBackend",
    "ResultSchemaError",
    "ResultStore",
    "ShardedResultStore",
    "SweepHandle",
    "SweepObserver",
    "SweepProgress",
    "SweepRunner",
    "active_runner",
    "canonical_result_json",
    "configure",
    "get_runner",
    "payload_digest",
    "register_backend",
    "reset",
    "result_from_dict",
    "result_to_dict",
    "set_runner",
]
