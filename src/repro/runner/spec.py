"""Frozen, content-addressed description of one simulation run.

An :class:`ExperimentSpec` captures everything that determines a
:class:`~repro.sim.metrics.SimResult`: workload, prefetcher configuration,
scale, L2 sensitivity overrides, the pv-aware ablation flag and the seed.
Equal specs therefore name equal results, and the stable content hash
(:attr:`ExperimentSpec.key`) is the single identity shared by the
in-process experiment cache, the on-disk :class:`~repro.runner.store.ResultStore`
and the :class:`~repro.runner.sweep.SweepRunner`.

The hash is computed over the canonical JSON form (sorted keys, no
whitespace) of :meth:`ExperimentSpec.to_dict`, together with a spec schema
version, so it is independent of field ordering, process, platform and
dict insertion order — and changes deliberately whenever the spec schema
itself changes.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Optional

from repro.memory.contention import ContentionConfig
from repro.sim.config import PrefetcherConfig, SystemConfig
from repro.sim.sampling import SamplingConfig, default_sampling

#: Bump whenever the meaning of a spec field changes: every key (and hence
#: every store entry) derived from the old schema is invalidated at once.
#: 2: PrefetcherConfig grew ``engines`` (multi-predictor generality study).
#: 3: specs grew ``contention`` (finite DRAM bandwidth / L2 bank ports /
#:    MSHR-bounded miss paths).
#: 4: specs grew ``sampling`` (two-speed sampled execution), and SimResult
#:    grew the sampled-run accounting fields.
SPEC_SCHEMA = 4


@dataclass(frozen=True)
class ExperimentScale:
    """How much work each simulation does."""

    refs_per_core: int = 16_000
    warmup_refs: int = 20_000
    window_refs: int = 1_600

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        """Default scale, overridable via REPRO_REFS / REPRO_WARMUP."""
        refs = int(os.environ.get("REPRO_REFS", "16000"))
        warmup = int(os.environ.get("REPRO_WARMUP", str(max(refs * 5 // 4, 1))))
        window = max(refs // 10, 1)
        return cls(refs_per_core=refs, warmup_refs=warmup, window_refs=window)


@dataclass(frozen=True)
class ExperimentSpec:
    """One point of the design space: everything one simulation depends on."""

    workload: str
    prefetcher: PrefetcherConfig
    scale: ExperimentScale
    l2_size: Optional[int] = None
    l2_tag_latency: Optional[int] = None
    l2_data_latency: Optional[int] = None
    pv_aware: bool = False
    seed: int = 1
    #: Contention-aware timing (None or disabled = the analytic model).
    contention: Optional[ContentionConfig] = None
    #: Two-speed sampled execution (None or disabled = full detail).
    sampling: Optional[SamplingConfig] = None

    # ------------------------------------------------------------- identity

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (nested configs become dicts)."""
        d = asdict(self)
        d["schema"] = SPEC_SCHEMA
        return d

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (any key order)."""
        data = dict(data)
        schema = data.pop("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise ValueError(
                f"spec schema {schema} not supported (current {SPEC_SCHEMA})"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        data["prefetcher"] = PrefetcherConfig(**data["prefetcher"])
        data["scale"] = ExperimentScale(**data["scale"])
        if data.get("contention") is not None:
            data["contention"] = ContentionConfig(**data["contention"])
        if data.get("sampling") is not None:
            data["sampling"] = SamplingConfig(**data["sampling"])
        return cls(**data)

    def canonical_json(self) -> str:
        """Canonical serialized form the content hash is computed over."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )

    @property
    def key(self) -> str:
        """Stable content hash: the spec's identity everywhere."""
        return hashlib.sha256(self.canonical_json().encode("ascii")).hexdigest()

    # ---------------------------------------------------------- convenience

    @classmethod
    def build(
        cls,
        workload: str,
        prefetcher: PrefetcherConfig,
        scale: Optional[ExperimentScale] = None,
        l2_size: Optional[int] = None,
        l2_tag_latency: Optional[int] = None,
        l2_data_latency: Optional[int] = None,
        pv_aware: bool = False,
        seed: int = 1,
        contention: Optional[ContentionConfig] = None,
        sampling: Optional[SamplingConfig] = None,
    ) -> "ExperimentSpec":
        """The spec ``run_experiment`` would run for these arguments.

        ``sampling=None`` falls back to the process-wide default installed
        by :func:`repro.sim.sampling.set_default_sampling` (the CLI's
        ``--sampled`` switch), the same way ``scale=None`` falls back to
        the environment.
        """
        if sampling is None:
            sampling = default_sampling()
        return cls(
            workload=workload,
            prefetcher=prefetcher,
            scale=scale or ExperimentScale.from_env(),
            l2_size=l2_size,
            l2_tag_latency=l2_tag_latency,
            l2_data_latency=l2_data_latency,
            pv_aware=pv_aware,
            seed=seed,
            contention=contention,
            sampling=sampling,
        )

    def system_config(self) -> SystemConfig:
        """The :class:`SystemConfig` this spec simulates."""
        system = SystemConfig.baseline()
        if (
            self.l2_size is not None
            or self.l2_tag_latency is not None
            or self.l2_data_latency is not None
        ):
            system = system.with_l2(
                size_bytes=self.l2_size,
                tag_latency=self.l2_tag_latency,
                data_latency=self.l2_data_latency,
            )
        if self.pv_aware:
            system = replace(
                system, hierarchy=replace(system.hierarchy, pv_aware_caches=True)
            )
        if self.contention is not None:
            system = system.with_contention(self.contention)
        if self.sampling is not None:
            system = system.with_sampling(self.sampling)
        return system

    def execute(self):
        """Run the simulation this spec describes (no caching)."""
        from repro.sim.simulator import CMPSimulator
        from repro.workloads.registry import get_workload

        simulator = CMPSimulator(
            get_workload(self.workload),
            self.prefetcher,
            system=self.system_config(),
            seed=self.seed,
        )
        return simulator.run(
            self.scale.refs_per_core,
            warmup_refs=self.scale.warmup_refs,
            window_refs=self.scale.window_refs,
        )
