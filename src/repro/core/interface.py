"""The predictor-table interface shared by dedicated and virtualized tables.

Section 2.2 of the paper: "The interface between the optimization engine and
the original predictor table is preserved in the virtualized architecture";
the table supports exactly two operations, *store* an entry and *retrieve*
an entry, both addressed by an index the optimization engine computes.

The one semantic difference virtualization introduces is non-uniform access
latency (Section 2.4), so ``lookup`` returns a :class:`LookupResult` whose
``ready_at`` says when the answer is actually available.  A dedicated table
answers at ``now + 1``; a virtualized table may answer tens or hundreds of
cycles later when the containing set must be fetched from the L2 or memory.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True)
class TableGeometry:
    """Logical geometry of a set-associative predictor table."""

    n_sets: int
    assoc: int
    index_bits: int

    def __post_init__(self) -> None:
        if self.n_sets <= 0 or self.n_sets & (self.n_sets - 1):
            raise ValueError(f"n_sets must be a power of two, got {self.n_sets}")
        if self.assoc <= 0:
            raise ValueError("assoc must be positive")
        if self.index_bits <= 0:
            raise ValueError("index_bits must be positive")
        if self.n_sets > (1 << self.index_bits):
            raise ValueError("more sets than index values")

    @property
    def set_bits(self) -> int:
        return self.n_sets.bit_length() - 1

    @property
    def tag_bits(self) -> int:
        return self.index_bits - self.set_bits

    @property
    def entries(self) -> int:
        return self.n_sets * self.assoc

    def split(self, index: int) -> tuple:
        """Split a table index into ``(set_index, tag)``."""
        if index < 0 or index >= (1 << self.index_bits):
            raise ValueError(
                f"index {index:#x} out of range for {self.index_bits}-bit table"
            )
        return index & (self.n_sets - 1), index >> self.set_bits

    def join(self, set_index: int, tag: int) -> int:
        """Inverse of :meth:`split`."""
        return (tag << self.set_bits) | set_index

    def label(self) -> str:
        """Paper-style geometry label, e.g. ``1K-11a`` or ``16-11a``."""
        sets = f"{self.n_sets // 1024}K" if self.n_sets >= 1024 else str(self.n_sets)
        return f"{sets}-{self.assoc}a"


@dataclass
class LookupResult:
    """Outcome of a predictor lookup.

    ``value``    — the stored entry, or ``None`` on a predictor miss;
    ``hit``      — whether the entry was found (predictor hit);
    ``ready_at`` — cycle at which the answer is available to the engine;
    ``pvcache_hit`` — for virtualized tables, whether the containing set was
    already resident in the PVCache (always ``True`` for dedicated tables,
    which have uniform latency).
    """

    value: Optional[Any]
    hit: bool
    ready_at: int
    pvcache_hit: bool = True


class PredictorTable(abc.ABC):
    """Store/retrieve interface between optimization engine and predictor."""

    @abc.abstractmethod
    def lookup(self, index: int, now: int = 0) -> LookupResult:
        """Retrieve the entry at ``index`` (operation 2 of Section 2.2)."""

    @abc.abstractmethod
    def store(self, index: int, value: Any, now: int = 0) -> None:
        """Store ``value`` at ``index`` (operation 1 of Section 2.2)."""

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Dedicated on-chip storage this table consumes, in bits."""

    def reset(self) -> None:  # pragma: no cover - trivial default
        """Discard all learned state (e.g. on a simulated VM migration)."""
        raise NotImplementedError
