"""The PVTable: predictor contents laid out in main-memory address space.

Section 2.1/3.2.1 of the paper.  One predictor-table *set* (all ways, tags
and data) is packed into one contiguous 64-byte memory block so that a
single L2 request delivers a whole set to the PVCache (Figure 3a).  The
memory address of a set is ``PVStart + set_index * block_size`` (Figure 3b).

Two representations coexist here:

* a *bit-exact codec* (:class:`EntryCodec`) that packs ``(tag, value)``
  entries into the 43-bit fields of Figure 3a and whole sets into 64-byte
  blocks — this is what the hardware would ship over the bus, and tests
  round-trip it;
* a *behavioural store* inside :class:`PVTable` that keeps decoded sets for
  speed, with **two** copies: ``_mem`` (what main memory holds) and
  ``_chip`` (dirty copies living in the L2).  The distinction matters for
  the "virtualization-aware caches" design option of Section 2.2, where
  dirty PV lines evicted from the L2 are *dropped* instead of written back:
  the next fetch from memory then observes the stale contents, losing the
  not-hot-enough predictor state exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.interface import TableGeometry

# A decoded set is a list of (tag, value_bits) ways, most recently used last.
SetWays = List[Tuple[int, int]]


@dataclass(frozen=True)
class EntryCodec:
    """Bit-exact packing of predictor entries and sets.

    For the virtualized SMS PHT: ``tag_bits=11`` (21-bit index, 1K sets) and
    ``value_bits=32`` (one pattern bit per block of a 32-block spatial
    region), i.e. 43 bits per entry and 11 entries per 64-byte block with 43
    trailing unused bits (Figure 3a).
    """

    tag_bits: int
    value_bits: int

    @property
    def entry_bits(self) -> int:
        return self.tag_bits + self.value_bits

    def entries_per_block(self, block_size: int = 64) -> int:
        return (block_size * 8) // self.entry_bits

    def pack_entry(self, tag: int, value: int) -> int:
        """Pack one entry into an ``entry_bits``-wide integer (tag low)."""
        if tag < 0 or tag >= (1 << self.tag_bits):
            raise ValueError(f"tag {tag:#x} does not fit in {self.tag_bits} bits")
        if value < 0 or value >= (1 << self.value_bits):
            raise ValueError(
                f"value {value:#x} does not fit in {self.value_bits} bits"
            )
        return tag | (value << self.tag_bits)

    def unpack_entry(self, word: int) -> Tuple[int, int]:
        return word & ((1 << self.tag_bits) - 1), word >> self.tag_bits

    def pack_set(self, ways: SetWays, block_size: int = 64) -> bytes:
        """Pack up to ``entries_per_block`` ways into one memory block.

        Empty ways are encoded with the reserved all-ones entry word (an
        all-ones tag cannot collide because we forbid it in ``pack_entry``
        callers via the valid encoding below).
        """
        capacity = self.entries_per_block(block_size)
        if len(ways) > capacity:
            raise ValueError(f"{len(ways)} ways exceed block capacity {capacity}")
        empty = (1 << self.entry_bits) - 1
        acc = 0
        shift = 0
        for slot in range(capacity):
            if slot < len(ways):
                tag, value = ways[slot]
                word = self.pack_entry(tag, value)
                if word == empty:
                    raise ValueError("entry collides with the empty encoding")
            else:
                word = empty
            acc |= word << shift
            shift += self.entry_bits
        return acc.to_bytes(block_size, "little")

    def unpack_set(self, block: bytes) -> SetWays:
        """Inverse of :meth:`pack_set`; skips empty slots."""
        acc = int.from_bytes(block, "little")
        capacity = self.entries_per_block(len(block))
        empty = (1 << self.entry_bits) - 1
        mask = empty
        ways: SetWays = []
        for _ in range(capacity):
            word = acc & mask
            acc >>= self.entry_bits
            if word != empty:
                ways.append(self.unpack_entry(word))
        return ways


@dataclass(frozen=True)
class PVTableLayout:
    """Geometry + codec + address mapping for one virtualized table."""

    geometry: TableGeometry
    codec: EntryCodec
    block_size: int = 64

    def __post_init__(self) -> None:
        if self.codec.tag_bits != self.geometry.tag_bits:
            raise ValueError(
                f"codec tag bits ({self.codec.tag_bits}) disagree with geometry "
                f"tag bits ({self.geometry.tag_bits})"
            )
        if self.geometry.assoc > self.codec.entries_per_block(self.block_size):
            raise ValueError(
                f"associativity {self.geometry.assoc} does not fit in a "
                f"{self.block_size}-byte block "
                f"(max {self.codec.entries_per_block(self.block_size)})"
            )

    @property
    def table_bytes(self) -> int:
        """Main-memory footprint: one block per set (64KB for the SMS PHT)."""
        return self.geometry.n_sets * self.block_size

    def block_address(self, pv_start: int, set_index: int) -> int:
        """Figure 3b: set index padded with block-offset zeros, plus PVStart."""
        if set_index < 0 or set_index >= self.geometry.n_sets:
            raise ValueError(f"set index {set_index} out of range")
        return pv_start + set_index * self.block_size

    def set_of_address(self, pv_start: int, addr: int) -> int:
        return (addr - pv_start) // self.block_size

    def unused_bits_per_block(self) -> int:
        """Trailing bits left after packing (43 for the SMS layout); the
        paper notes these could hold LRU state or future optimizations."""
        return self.block_size * 8 - self.geometry.assoc * self.codec.entry_bits


class PVTable:
    """Backing storage for a virtualized predictor table.

    Holds the reserved physical-address chunk (via ``pv_start``, the per-core
    PVStart control register of Section 2.1) and the authoritative contents.
    Reads say where the data was served from so that on-chip dirty copies
    (``_chip``) shadow stale main-memory copies (``_mem``); the memory
    hierarchy's PV-eviction callback routes dirty L2 victims back here,
    either committing them to ``_mem`` or dropping them (pv-aware option).
    """

    def __init__(self, layout: PVTableLayout, pv_start: int) -> None:
        if pv_start % layout.block_size:
            raise ValueError("pv_start must be block aligned")
        self.layout = layout
        self.pv_start = pv_start
        self._mem: Dict[int, SetWays] = {}
        self._chip: Dict[int, SetWays] = {}
        self.commits = 0
        self.drops = 0

    # ------------------------------------------------------------- reading

    def read_set(self, set_index: int, from_memory: bool) -> SetWays:
        """Return the ways of ``set_index`` as observed by a fetch.

        ``from_memory=True`` models an L2 miss: the fetch sees main memory's
        copy, which misses any dirty update still (or formerly) on chip.
        """
        if from_memory:
            ways = self._mem.get(set_index, [])
        else:
            ways = self._chip.get(set_index) or self._mem.get(set_index, [])
        return list(ways)

    # ------------------------------------------------------------- writing

    def write_back(self, set_index: int, ways: SetWays) -> int:
        """PVProxy evicts a dirty PVCache entry: deposit it on chip (the L2
        receives the block as dirty).  Returns the block's memory address."""
        self._chip[set_index] = list(ways)
        return self.layout.block_address(self.pv_start, set_index)

    def on_l2_eviction(self, set_index: int, dirty: bool, pv_aware: bool) -> None:
        """The L2 evicted this table's block for ``set_index``.

        Dirty victims are committed to main memory unless the hierarchy runs
        virtualization-aware (Section 2.2 design option), in which case the
        update is lost.
        """
        chip = self._chip.pop(set_index, None)
        if chip is None or not dirty:
            return
        if pv_aware:
            self.drops += 1
        else:
            self._mem[set_index] = chip
            self.commits += 1

    def software_update(self, set_index: int, tag: int, value) -> None:
        """Apply an application store to the in-memory table (Section 2.3).

        The store supersedes whatever copy is current: the merged set is
        committed to main memory and any stale on-chip overlay is dropped
        (the write itself travels through the regular cache hierarchy; see
        ``VirtualizedPredictorTable.software_store`` for the full path).
        """
        ways = list(self._chip.get(set_index) or self._mem.get(set_index, []))
        for slot, (existing_tag, _) in enumerate(ways):
            if existing_tag == tag:
                ways[slot] = (tag, value)
                break
        else:
            capacity = self.layout.geometry.assoc
            if len(ways) >= capacity:
                ways.pop(0)  # displace the set's oldest way
            ways.append((tag, value))
        self._mem[set_index] = ways
        self._chip.pop(set_index, None)

    # -------------------------------------------------------------- misc

    def block_address(self, set_index: int) -> int:
        return self.layout.block_address(self.pv_start, set_index)

    def owns_address(self, addr: int) -> bool:
        return self.pv_start <= addr < self.pv_start + self.layout.table_bytes

    def set_of_address(self, addr: int) -> int:
        return self.layout.set_of_address(self.pv_start, addr)

    def packed_block(self, set_index: int) -> bytes:
        """Bit-exact image of the set as main memory holds it (for tests)."""
        return self.layout.codec.pack_set(
            self._mem.get(set_index, []), self.layout.block_size
        )

    def resident_sets(self) -> int:
        return len(set(self._mem) | set(self._chip))
