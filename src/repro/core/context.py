"""Per-process predictor tables via PVStart swapping (Sections 2.1 and 2.3).

The paper: "If sharing the predictor table among applications is
detrimental, independent tables can be preserved by allocating different
chunks of main memory to different applications via the PVStart registers"
and "Per-process predictor tables eliminate inter-process interference in
multi-programmed environments."

:class:`PredictorContextManager` models exactly that OS/hardware contract:
it owns one PVTable per process (each in its own reserved physical chunk),
and a context switch (a) writes the dirty PVCache entries of the outgoing
process back to its table and (b) repoints the core's PVProxy — its PVStart
register — at the incoming process's table.  Dirty L2 lines belonging to a
switched-out process keep committing correctly: the manager routes PV
evictions for *any* of its tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.pvproxy import PVProxy
from repro.core.pvtable import PVTable, PVTableLayout
from repro.memory.addr import AddressSpace
from repro.memory.cache import EvictedLine


@dataclass
class ContextStats:
    switches: int = 0
    tables_created: int = 0
    flush_writebacks: int = 0


class PredictorContextManager:
    """Swaps a PVProxy between per-process PVTables on context switches."""

    def __init__(
        self,
        proxy: PVProxy,
        layout: PVTableLayout,
        address_space: AddressSpace,
    ) -> None:
        self.proxy = proxy
        self.layout = layout
        self.address_space = address_space
        self.stats = ContextStats()
        self._tables: Dict[object, PVTable] = {}
        self.current_pid: Optional[object] = None
        # Route L2 PV evictions for switched-out processes' tables (the
        # proxy itself only handles its current table).
        proxy.hierarchy.pv_eviction_listeners.append(self._on_l2_pv_eviction)
        # Adopt the proxy's initial table as the first process if it has one.
        if proxy.table is not None:
            self._tables[None] = proxy.table

    # ---------------------------------------------------------------- tables

    def table_for(self, pid) -> PVTable:
        """The process's PVTable, reserving a fresh chunk on first use."""
        table = self._tables.get(pid)
        if table is None:
            pv_start = self.address_space.reserve(self.layout.table_bytes)
            table = PVTable(self.layout, pv_start)
            self._tables[pid] = table
            self.stats.tables_created += 1
        return table

    @property
    def pv_start(self) -> int:
        """The current value of the core's PVStart control register."""
        return self.proxy.table.pv_start

    # --------------------------------------------------------------- switch

    def switch(self, pid) -> None:
        """Context-switch the core to process ``pid``.

        Dirty PVCache entries belong to the outgoing process's table and
        must reach its memory image before PVStart changes; clean entries
        are simply dropped (they would be stale under the new table).
        """
        if pid == self.current_pid and pid in self._tables:
            return
        before = self.proxy.stats.writebacks
        self.proxy.flush()
        self.stats.flush_writebacks += self.proxy.stats.writebacks - before
        self.proxy.table = self.table_for(pid)
        self.current_pid = pid
        self.stats.switches += 1

    # -------------------------------------------------------------- routing

    def _on_l2_pv_eviction(self, victim: EvictedLine) -> None:
        current = self.proxy.table
        for table in self._tables.values():
            if table is current:
                continue  # the proxy's own listener handles this one
            if table.owns_address(victim.block_addr):
                table.on_l2_eviction(
                    table.set_of_address(victim.block_addr),
                    dirty=victim.dirty,
                    pv_aware=self.proxy.hierarchy.config.pv_aware_caches,
                )
                return

    def processes(self):
        return [pid for pid in self._tables if pid is not None]
