"""Adapter presenting a PVProxy as an ordinary :class:`PredictorTable`.

The central promise of the paper's Figure 1: "the optimization engine
remains unchanged".  An engine written against :class:`PredictorTable`
(e.g. the SMS prefetcher in :mod:`repro.prefetch.sms`) can be handed either
a dedicated table or this wrapper and cannot tell the difference except
through latency.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.interface import LookupResult, PredictorTable
from repro.core.pvproxy import PVProxy, PVProxyConfig
from repro.core.pvtable import PVTable
from repro.core.storage import pvproxy_budget
from repro.memory.hierarchy import MemorySystem


class VirtualizedPredictorTable(PredictorTable):
    """A predictor table whose contents live in the memory hierarchy."""

    def __init__(
        self,
        core: int,
        table: PVTable,
        hierarchy: MemorySystem,
        config: Optional[PVProxyConfig] = None,
    ) -> None:
        self.proxy = PVProxy(core, table, hierarchy, config)

    @classmethod
    def create(
        cls,
        core: int,
        layout,
        hierarchy: MemorySystem,
        address_space,
        config: Optional[PVProxyConfig] = None,
    ) -> "VirtualizedPredictorTable":
        """Reserve physical memory for a fresh PVTable and wrap it.

        ``address_space`` is the :class:`~repro.memory.addr.AddressSpace`
        from which the PVStart chunk is carved (Section 2.1: reserved
        without declaring it to the OS).
        """
        pv_start = address_space.reserve(layout.table_bytes)
        return cls(core, PVTable(layout, pv_start), hierarchy, config)

    # ------------------------------------------------------ PredictorTable

    def lookup(self, index: int, now: int = 0) -> LookupResult:
        return self.proxy.lookup(index, now)

    def store(self, index: int, value: Any, now: int = 0) -> None:
        self.proxy.store(index, value, now)

    def storage_bits(self) -> int:
        """Dedicated on-chip cost: the PVProxy budget, not the table size."""
        cfg = self.proxy.config
        geom = self.proxy.geometry
        budget = pvproxy_budget(
            pvcache_sets=cfg.pvcache_entries,
            assoc=geom.assoc,
            entry_bits=self.proxy.table.layout.codec.entry_bits,
            set_index_bits=geom.set_bits,
            mshr_entries=cfg.mshr_entries,
            evict_buffer_entries=cfg.evict_buffer_entries,
            pattern_buffer_entries=cfg.pattern_buffer_entries,
            value_bits=self.proxy.table.layout.codec.value_bits,
        )
        return budget["total_bytes"] * 8

    def reset(self) -> None:
        self.proxy.flush()

    # ------------------------------------------- software-visible updates

    def enable_software_updates(self) -> None:
        """Allow the application to update predictor entries via stores."""
        self.proxy.enable_software_updates()

    def software_store(self, index: int, value: Any, core: int = 0,
                       now: int = 0) -> None:
        """Application-level predictor update (Section 2.3).

        The process writes the corresponding memory location with an
        ordinary store — here modelled as a demand write travelling through
        the core's L1/L2 — and the PVTable contents change underneath the
        proxy.  If :meth:`enable_software_updates` was called, the write
        watcher drops any stale PVCache entry, guaranteeing delivery.
        """
        proxy = self.proxy
        geometry = proxy.geometry
        set_index, tag = geometry.split(index)
        block = proxy.table.block_address(set_index)
        proxy.hierarchy.access(core, block, write=True)
        proxy.table.software_update(set_index, tag, value)

    # ------------------------------------------------------------- stats

    @property
    def stats(self):
        return self.proxy.stats
