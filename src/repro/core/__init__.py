"""Predictor Virtualization — the paper's primary contribution.

The framework mirrors Figure 1 of the paper.  A hardware optimization is
split into an *optimization engine* (unchanged by virtualization) and a
*predictor table*.  Virtualization replaces the dedicated table with:

* :class:`~repro.core.pvtable.PVTable` — the table's contents, laid out in a
  reserved chunk of the physical address space, several entries packed per
  64-byte cache block;
* :class:`~repro.core.pvproxy.PVProxy` — a small on-chip agent holding the
  hot table sets in a fully-associative :class:`PVCache`, fetching missing
  sets from the memory hierarchy through ordinary L2 requests tracked in an
  MSHR file, and writing dirty sets back on eviction;
* :class:`~repro.core.virtualized.VirtualizedPredictorTable` — an adapter
  that makes the proxy satisfy the exact same
  :class:`~repro.core.interface.PredictorTable` interface a dedicated table
  implements, so the optimization engine cannot tell the difference.

``repro.core.storage`` holds the analytic storage-cost model behind Table 3
and the Section 4.6 on-chip budget (889 bytes, a 68x reduction).
"""

from repro.core.context import ContextStats, PredictorContextManager
from repro.core.interface import LookupResult, PredictorTable, TableGeometry
from repro.core.pvtable import EntryCodec, PVTable, PVTableLayout
from repro.core.pvproxy import PVCache, PVProxy, PVProxyConfig
from repro.core.storage import (
    PHTStorage,
    pht_storage,
    pvproxy_budget,
    reduction_factor,
    TABLE3_GEOMETRIES,
)
from repro.core.virtualized import VirtualizedPredictorTable

__all__ = [
    "ContextStats",
    "EntryCodec",
    "PredictorContextManager",
    "LookupResult",
    "PHTStorage",
    "PVCache",
    "PVProxy",
    "PVProxyConfig",
    "PVTable",
    "PVTableLayout",
    "PredictorTable",
    "TABLE3_GEOMETRIES",
    "TableGeometry",
    "VirtualizedPredictorTable",
    "pht_storage",
    "pvproxy_budget",
    "reduction_factor",
]
