"""The PVProxy: on-chip mediator between an optimization engine and PVTable.

Section 2.2 and 3.2.2 of the paper.  The proxy owns:

* the **PVCache** — a small fully-associative cache whose entries are whole
  predictor-table *sets* (one 64-byte PVTable block each), LRU-replaced,
  with a dirty bit per entry;
* an **MSHR file** for in-flight PVTable fetches (coalescing duplicate
  requests to the same set);
* an **evict buffer** that stages dirty victim sets on their way to the L2;
* a **pattern buffer** that holds store operands while the containing set is
  being fetched (the paper sizes it at 16 entries, Section 4.6).

Requests that cannot be tracked (MSHR or pattern buffer full) are dropped:
predictions are advisory, so dropping affects effectiveness, never
correctness — the drop counters let experiments quantify it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.interface import LookupResult
from repro.core.pvtable import PVTable
from repro.memory.cache import EvictedLine
from repro.memory.hierarchy import MemorySystem, ServedBy
from repro.memory.mshr import MSHRFile


@dataclass
class PVProxyConfig:
    """Sizing knobs; defaults reproduce the Section 4.6 budget (889 bytes)."""

    pvcache_entries: int = 8       # PVTable sets resident on chip
    mshr_entries: int = 4
    evict_buffer_entries: int = 4
    pattern_buffer_entries: int = 16
    pvcache_latency: int = 1       # cycles for a PVCache hit
    # When True, a PVCache miss is reported to the engine as a predictor
    # miss instead of stalling the request until the fetch returns
    # (the alternative mentioned in Section 2.2).  The fetched set is still
    # installed, so the *next* trigger to the set hits.
    report_miss_on_fetch: bool = False


@dataclass
class PVCacheEntry:
    """One resident PVTable set: ways in LRU order plus a dirty bit."""

    set_index: int
    ways: "OrderedDict[int, Any]" = field(default_factory=OrderedDict)
    dirty: bool = False
    ready_at: int = 0  # cycle the fetch that brought this set completes


@dataclass
class PVProxyStats:
    lookups: int = 0
    stores: int = 0
    pvcache_hits: int = 0
    pvcache_misses: int = 0
    predictor_hits: int = 0
    fetches: int = 0
    fetches_from_l2: int = 0
    fetches_from_memory: int = 0
    writebacks: int = 0
    dropped_lookups: int = 0
    dropped_stores: int = 0
    buffered_stores: int = 0
    coalesced: int = 0
    reported_misses: int = 0
    software_invalidations: int = 0

    @property
    def pvcache_hit_rate(self) -> float:
        total = self.pvcache_hits + self.pvcache_misses
        return self.pvcache_hits / total if total else 0.0


class PVCache:
    """Fully-associative, LRU cache of predictor-table sets."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("PVCache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, PVCacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, set_index: int) -> bool:
        return set_index in self._entries

    def drop(self, set_index: int) -> Optional[PVCacheEntry]:
        """Remove an entry without eviction processing (coherence kill)."""
        return self._entries.pop(set_index, None)

    def get(self, set_index: int, touch: bool = True) -> Optional[PVCacheEntry]:
        entry = self._entries.get(set_index)
        if entry is not None and touch:
            self._entries.move_to_end(set_index)
        return entry

    def install(self, entry: PVCacheEntry) -> Optional[PVCacheEntry]:
        """Insert ``entry``; return the evicted LRU victim if the cache was full."""
        victim = None
        if entry.set_index in self._entries:
            self._entries.move_to_end(entry.set_index)
            self._entries[entry.set_index] = entry
            return None
        if len(self._entries) >= self.capacity:
            _, victim = self._entries.popitem(last=False)
        self._entries[entry.set_index] = entry
        return victim

    def entries(self):
        return list(self._entries.values())

    def clear(self) -> None:
        self._entries.clear()


class PVProxy:
    """Services predictor store/retrieve requests against a PVTable.

    ``assoc`` bounds the ways kept per set (the logical table
    associativity); inserting into a full set silently replaces the set's
    LRU way, exactly as the dedicated table would.
    """

    def __init__(
        self,
        core: int,
        table: PVTable,
        hierarchy: MemorySystem,
        config: Optional[PVProxyConfig] = None,
    ) -> None:
        self.core = core
        self.table = table
        self.hierarchy = hierarchy
        self.config = config or PVProxyConfig()
        self.geometry = table.layout.geometry
        self.pvcache = PVCache(self.config.pvcache_entries)
        self.mshr = MSHRFile(self.config.mshr_entries, name=f"pvproxy{core}")
        self.stats = PVProxyStats()
        self.pattern_buffer_peak = 0
        #: Functional-warming mode (two-speed sampled simulation): fetches
        #: complete instantly, nothing occupies the MSHR file or pattern
        #: buffer, and PVTable traffic reaches the hierarchy untimed — the
        #: proxy becomes a pure state machine.  Full-detail runs never set
        #: this, so timed behavior is untouched.
        self.functional = False
        # Latest issue cycle this proxy has observed.  Some requests reach
        # the proxy without a timestamp (e.g. generation-ending stores fired
        # from eviction listeners); in contention mode their hierarchy
        # traffic is priced at this clock instead of cycle 0 so they queue
        # at the core's present, not the beginning of time.
        self._clock: float = 0
        # Release cycles of store operands waiting for their set's fetch to
        # complete; occupancy is the number of not-yet-released operands.
        self._pattern_buffer: list = []
        hierarchy.pv_eviction_listeners.append(self._on_l2_pv_eviction)

    # -------------------------------------------------------------- engine API

    def lookup(self, index: int, now: int = 0) -> LookupResult:
        """Retrieve the entry for ``index`` (Section 2.2, operation 2)."""
        self.stats.lookups += 1
        if now > self._clock:
            self._clock = now
        self._drain(now)
        set_index, tag = self.geometry.split(index)
        entry = self.pvcache.get(set_index)
        if entry is not None:
            self.stats.pvcache_hits += 1
            ready = max(now + self.config.pvcache_latency, entry.ready_at)
            value = self._touch_way(entry, tag)
            if value is not None:
                self.stats.predictor_hits += 1
                return LookupResult(value, True, ready, pvcache_hit=True)
            return LookupResult(None, False, ready, pvcache_hit=True)
        self.stats.pvcache_misses += 1
        entry, ready = self._fetch_set(set_index, now)
        if entry is None:
            self.stats.dropped_lookups += 1
            return LookupResult(None, False, now + 1, pvcache_hit=False)
        if self.config.report_miss_on_fetch:
            self.stats.reported_misses += 1
            return LookupResult(None, False, now + 1, pvcache_hit=False)
        value = self._touch_way(entry, tag)
        if value is not None:
            self.stats.predictor_hits += 1
            return LookupResult(value, True, ready, pvcache_hit=False)
        return LookupResult(None, False, ready, pvcache_hit=False)

    def store(self, index: int, value: Any, now: int = 0) -> None:
        """Install ``value`` at ``index`` (Section 2.2, operation 1).

        A store whose target set is not ready on chip (the set is still
        being fetched, or a fetch must be issued now) parks its operand in
        the pattern buffer until the fetch completes, so occupancy tracks
        *outstanding* fetches rather than the synchronous call: with the
        Section 4.6 budget of 16 entries, a burst of stores against
        in-flight sets fills the buffer and further stores are dropped.
        """
        self.stats.stores += 1
        if now > self._clock:
            self._clock = now
        self._drain(now)
        set_index, tag = self.geometry.split(index)
        entry = self.pvcache.get(set_index)
        if entry is not None:
            self.stats.pvcache_hits += 1
            if entry.ready_at > now and not self._buffer_operand(entry.ready_at):
                self.stats.dropped_stores += 1
                return
        else:
            self.stats.pvcache_misses += 1
            if len(self._pattern_buffer) >= self.config.pattern_buffer_entries:
                self.stats.dropped_stores += 1
                return
            entry, ready = self._fetch_set(set_index, now)
            if entry is None:
                self.stats.dropped_stores += 1
                return
            if ready > now:
                self._buffer_operand(ready)
        self._insert_way(entry, tag, value)
        entry.dirty = True

    def _buffer_operand(self, release_at: int) -> bool:
        """Park one store operand until ``release_at``; False if full."""
        if len(self._pattern_buffer) >= self.config.pattern_buffer_entries:
            return False
        self._pattern_buffer.append(release_at)
        self.stats.buffered_stores += 1
        self.pattern_buffer_peak = max(
            self.pattern_buffer_peak, len(self._pattern_buffer)
        )
        return True

    @property
    def pattern_buffer_occupancy(self) -> int:
        """Store operands currently waiting on outstanding fetches."""
        return len(self._pattern_buffer)

    # ----------------------------------------------------------- way handling

    def _touch_way(self, entry: PVCacheEntry, tag: int) -> Optional[Any]:
        if tag in entry.ways:
            entry.ways.move_to_end(tag)
            return entry.ways[tag]
        return None

    def _insert_way(self, entry: PVCacheEntry, tag: int, value: Any) -> None:
        if tag in entry.ways:
            entry.ways.move_to_end(tag)
            entry.ways[tag] = value
            return
        while len(entry.ways) >= self.geometry.assoc:
            entry.ways.popitem(last=False)  # drop the set's LRU way
        entry.ways[tag] = value

    # ------------------------------------------------------------- fetch path

    def _fetch_set(self, set_index: int, now: int):
        """Bring a PVTable set into the PVCache via an ordinary L2 request."""
        block_addr = self.table.block_address(set_index)
        if self.functional:
            # Untimed fetch: the set appears immediately, tracked nowhere.
            _, served = self.hierarchy.pv_access(
                self.core, block_addr, write=False, now=None
            )
            self.stats.fetches += 1
            if served is ServedBy.L2:
                self.stats.fetches_from_l2 += 1
            else:
                self.stats.fetches_from_memory += 1
            ways = self.table.read_set(
                set_index, from_memory=(served is ServedBy.MEM)
            )
            entry = PVCacheEntry(
                set_index=set_index, ways=OrderedDict(ways), dirty=False,
                ready_at=now,
            )
            victim = self.pvcache.install(entry)
            if victim is not None:
                self._write_back(victim, now)
            return entry, now
        in_flight = self.mshr.find(block_addr)
        if in_flight is not None:
            entry = self.pvcache.get(set_index)
            if entry is not None:
                # A fetch for this set is outstanding; in this sequential
                # model the set was installed at issue, so coalesce timing.
                self.stats.coalesced += 1
                return entry, in_flight.ready_at
            # The set was installed and displaced again before the tracked
            # fetch's completion time; retire the stale entry and refetch.
            self.mshr.complete(block_addr)
        if self.mshr.full:
            return None, now
        latency, served = self.hierarchy.pv_access(
            self.core, block_addr, write=False,
            now=now if now >= self._clock else self._clock,
        )
        self.stats.fetches += 1
        if served is ServedBy.L2:
            self.stats.fetches_from_l2 += 1
        else:
            self.stats.fetches_from_memory += 1
        ready = now + self.config.pvcache_latency + latency
        self.mshr.allocate(block_addr, issued_at=now, ready_at=ready)
        ways = self.table.read_set(set_index, from_memory=(served is ServedBy.MEM))
        entry = PVCacheEntry(
            set_index=set_index,
            ways=OrderedDict(ways),
            dirty=False,
            ready_at=ready,
        )
        victim = self.pvcache.install(entry)
        if victim is not None:
            self._write_back(victim, now)
        return entry, ready

    def _write_back(self, victim: PVCacheEntry, now: Optional[int] = None) -> None:
        """Evicted PVCache entries: dirty sets go to the L2, clean ones die."""
        if not victim.dirty:
            return
        self.stats.writebacks += 1
        block_addr = self.table.write_back(
            victim.set_index, list(victim.ways.items())
        )
        if self.functional:
            self.hierarchy.pv_access(self.core, block_addr, write=True, now=None)
            return
        if now is None or now < self._clock:
            now = self._clock
        self.hierarchy.pv_access(self.core, block_addr, write=True, now=now)

    def _drain(self, now: int) -> None:
        self.mshr.retire_ready(now)
        if self._pattern_buffer:
            self._pattern_buffer = [
                t for t in self._pattern_buffer if t > now
            ]

    # --------------------------------------------- software-visible updates

    def enable_software_updates(self) -> None:
        """Keep this PVCache coherent with application stores (Section 2.3).

        Registers a write watcher over the PVTable's address range; any
        demand store landing in it kills the matching PVCache entry, so the
        next lookup observes the updated in-memory table.
        """
        self.hierarchy.watch_pv_writes(
            self.table.pv_start,
            self.table.layout.table_bytes,
            self._on_software_write,
        )

    def _on_software_write(self, block_addr: int) -> None:
        set_index = self.table.set_of_address(block_addr)
        if self.pvcache.drop(set_index) is not None:
            self.stats.software_invalidations += 1

    # ------------------------------------------------------------- callbacks

    def _on_l2_pv_eviction(self, victim: EvictedLine) -> None:
        if not self.table.owns_address(victim.block_addr):
            return
        self.table.on_l2_eviction(
            self.table.set_of_address(victim.block_addr),
            dirty=victim.dirty,
            pv_aware=self.hierarchy.config.pv_aware_caches,
        )

    # ----------------------------------------------------------------- misc

    def flush(self) -> None:
        """Write back every dirty PVCache entry (e.g. before a VM migration)."""
        for entry in self.pvcache.entries():
            self._write_back(entry)
        self.pvcache.clear()
        self._pattern_buffer.clear()
