"""Analytic on-chip storage model: Table 3 and Section 4.6 of the paper.

Two artifacts are reproduced:

* **Table 3** — tag/pattern/total storage for the four PHT geometries the
  evaluation studies (1K-16, 1K-11, 16-11, 8-11).  The published table uses
  32 bits per pattern for the two large geometries but 40 bits per pattern
  for the two small ones (880 B and 440 B are 176 x 5 B and 88 x 5 B);
  ``published=True`` reproduces the rows exactly as printed, while
  ``published=False`` applies a uniform 32-bit pattern.  The discrepancy is
  recorded in DESIGN.md ("Known deviations").

* **Section 4.6** — the PVProxy's dedicated on-chip budget: 473 B PVCache
  data, 11 B set tags, 1 B dirty bits, 84 B MSHRs, 256 B evict buffer, 64 B
  pattern buffer = 889 B per core, a 68x reduction over the 59.125 KB
  dedicated 1K-11 table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.interface import TableGeometry

#: The four geometries of Table 3, as (n_sets, assoc) pairs.
TABLE3_GEOMETRIES: List[Tuple[int, int]] = [
    (1024, 16),
    (1024, 11),
    (16, 11),
    (8, 11),
]

#: Pattern widths the published Table 3 implicitly used per geometry.
_PUBLISHED_PATTERN_BITS = {
    (1024, 16): 32,
    (1024, 11): 32,
    (16, 11): 40,
    (8, 11): 40,
}


@dataclass(frozen=True)
class PHTStorage:
    """One row of Table 3."""

    label: str
    n_sets: int
    assoc: int
    tag_bytes: float
    pattern_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.tag_bytes + self.pattern_bytes

    @property
    def total_kb(self) -> float:
        return self.total_bytes / 1024.0

    def as_row(self) -> dict:
        return {
            "configuration": self.label,
            "tags": _fmt_bytes(self.tag_bytes),
            "patterns": _fmt_bytes(self.pattern_bytes),
            "total": _fmt_bytes(self.total_bytes),
        }


def _fmt_bytes(value: float) -> str:
    if value >= 1024:
        kb = value / 1024.0
        text = f"{kb:.3f}".rstrip("0").rstrip(".")
        return f"{text}KB"
    return f"{value:g}B"


def pht_storage(
    n_sets: int,
    assoc: int,
    index_bits: int = 21,
    pattern_bits: int = 32,
    published: bool = False,
) -> PHTStorage:
    """Storage for a dedicated PHT of the given geometry.

    ``index_bits`` defaults to the paper's 21 (16 PC bits concatenated with a
    5-bit block offset for 32-block regions); the per-entry tag is whatever
    the set index does not consume.
    """
    geometry = TableGeometry(n_sets=n_sets, assoc=assoc, index_bits=index_bits)
    if published:
        pattern_bits = _PUBLISHED_PATTERN_BITS.get((n_sets, assoc), pattern_bits)
    entries = geometry.entries
    tag_bytes = entries * geometry.tag_bits / 8.0
    pattern_bytes = entries * pattern_bits / 8.0
    return PHTStorage(
        label=geometry.label().rstrip("a"),
        n_sets=n_sets,
        assoc=assoc,
        tag_bytes=tag_bytes,
        pattern_bytes=pattern_bytes,
    )


def table3(published: bool = True) -> List[PHTStorage]:
    """All four rows of Table 3."""
    return [pht_storage(s, a, published=published) for s, a in TABLE3_GEOMETRIES]


def pvproxy_budget(
    pvcache_sets: int = 8,
    assoc: int = 11,
    entry_bits: int = 43,
    set_index_bits: int = 10,
    mshr_entries: int = 4,
    evict_buffer_entries: int = 4,
    pattern_buffer_entries: int = 16,
    value_bits: int = 32,
    block_size: int = 64,
    mshr_bytes: int = 84,
) -> Dict[str, float]:
    """Section 4.6 budget breakdown, in bytes.

    With the defaults this reproduces the paper's arithmetic exactly:
    8 sets x 11 ways x 43 bits = 473 B of PVCache data; 8 x (10-bit set tag
    + valid) = 11 B of tags; 1 B of dirty bits; 84 B of MSHRs; a 4-entry
    64-byte evict buffer (256 B); a 16-entry pattern buffer of 32-bit
    patterns (64 B); total 889 B.
    """
    pvcache_data = pvcache_sets * assoc * entry_bits / 8.0
    # One set-index tag plus a valid bit per PVCache entry, byte-rounded the
    # way the paper rounds (11 bytes for 8 entries of 10+1 bits).
    tag_bits_total = pvcache_sets * (set_index_bits + 1)
    tags = -(-tag_bits_total // 8)
    dirty = -(-pvcache_sets // 8)
    evict_buffer = evict_buffer_entries * block_size
    pattern_buffer = pattern_buffer_entries * value_bits / 8.0
    total = pvcache_data + tags + dirty + mshr_bytes + evict_buffer + pattern_buffer
    return {
        "pvcache_data_bytes": pvcache_data,
        "tag_bytes": float(tags),
        "dirty_bytes": float(dirty),
        "mshr_bytes": float(mshr_bytes),
        "evict_buffer_bytes": float(evict_buffer),
        "pattern_buffer_bytes": float(pattern_buffer),
        "total_bytes": total,
    }


def reduction_factor(
    dedicated: PHTStorage = None, budget: Dict[str, float] = None
) -> float:
    """On-chip storage reduction of virtualization (paper: a factor of 68)."""
    if dedicated is None:
        dedicated = pht_storage(1024, 11)
    if budget is None:
        budget = pvproxy_budget()
    return dedicated.total_bytes / budget["total_bytes"]
