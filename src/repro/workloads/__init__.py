"""Synthetic commercial workloads (Table 2 substitutes).

The paper drives its evaluation with eight commercial workloads (TPC-C on
DB2 and Oracle, four TPC-H queries on DB2, SPECweb99 on Apache and Zeus)
captured in a full-system simulator.  Those traces are proprietary, so this
package synthesizes per-core memory-reference streams whose *spatial
structure* is what matters to SMS and PV:

* a population of spatial **signatures** — (trigger PC, trigger offset)
  pairs with a canonical access pattern over a 2KB region — reused with a
  Zipf popularity distribution, which sets how large a PHT must be;
* per-episode **pattern noise**, which bounds prediction accuracy and
  produces overpredictions;
* region **reuse locality**, cache-sized **footprints**, and a share of
  unpatterned **filler** references, which set baseline miss rates and the
  L2 pressure PV metadata must coexist with.

:mod:`repro.workloads.profiles` holds one calibrated profile per paper
workload; DESIGN.md documents the substitution rationale.
"""

from repro.workloads.base import WorkloadProfile
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.registry import WORKLOADS, get_workload, workload_names
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "WORKLOADS",
    "WorkloadGenerator",
    "WorkloadProfile",
    "ZipfSampler",
    "get_workload",
    "workload_names",
]
