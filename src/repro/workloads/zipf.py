"""Zipf-distributed sampling over a finite population.

Signature popularity in commercial workloads is heavy-tailed: a few code
paths trigger most spatial regions while a long tail keeps predictor tables
under pressure.  A Zipf law with exponent ``alpha`` captures both regimes
with one knob; the sampler draws in O(log n) per sample via a precomputed
CDF and binary search, vectorized with numpy for batch draws.
"""

from __future__ import annotations

import numpy as np


class ZipfSampler:
    """Draw ranks 0..n-1 with probability proportional to 1/(rank+1)^alpha."""

    def __init__(self, n: int, alpha: float, rng: np.random.Generator) -> None:
        if n <= 0:
            raise ValueError("population must be positive")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.n = n
        self.alpha = alpha
        self._rng = rng
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), alpha)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` ranks (ascending popularity = rank 0 is hottest)."""
        if size <= 0:
            raise ValueError("size must be positive")
        u = self._rng.random(size)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)

    def pmf(self, rank: int) -> float:
        """Probability of ``rank`` (for tests and analysis)."""
        if rank < 0 or rank >= self.n:
            raise ValueError("rank out of range")
        previous = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - previous)

    def expected_unique(self, draws: int) -> float:
        """Expected number of distinct ranks after ``draws`` samples."""
        pmf = np.diff(np.concatenate(([0.0], self._cdf)))
        return float(np.sum(1.0 - np.power(1.0 - pmf, draws)))
