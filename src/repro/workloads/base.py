"""Workload profile definition and the simulated physical address map.

A :class:`WorkloadProfile` is a complete parameterization of one synthetic
commercial workload.  The parameters map to the workload properties that
drive the paper's results:

====================  =====================================================
``n_signatures``      distinct (PC, offset) trigger signatures — how many
                      PHT entries the workload wants (Figures 4/5)
``zipf_alpha``        signature popularity skew — how gracefully coverage
                      degrades as the PHT shrinks
``pattern_density``   mean fraction of a region's 32 blocks a pattern
                      touches — prefetches per prediction
``pattern_noise``     per-bit episode-to-episode pattern instability —
                      bounds accuracy, produces overpredictions
``regions_per_sig``   data-footprint regions behind each signature
``region_reuse``      probability an episode revisits its signature's most
                      recent region — temporal locality
``concurrency``       episodes in flight — interleaving pressure on the AGT
``filler_fraction``   share of unpatterned references — uncoverable misses
``filler_blocks``     footprint of the filler pool (64-byte blocks)
``write_fraction``    share of non-trigger references that store —
                      dirty-line writeback traffic (Figures 7/10)
``rehit_fraction``    share of references that revisit a recently touched
                      block (word-level locality) — sets the L1 hit rate
                      and hence the baseline MPKI
``mean_gap``          mean non-memory instructions between references
``mlp``/``base_ipc``  timing-model factors (Figure 9/11)
====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

#: Simulated physical layout (below the 3GB ceiling of Table 1; PVTables are
#: reserved from the top of memory by AddressSpace and never collide).
CODE_BASE = 0x1000_0000
DATA_BASE = 0x2000_0000
PER_CORE_STRIDE = 0x2000_0000  # 512MB of address space per core
FILLER_OFFSET = 0x1800_0000    # filler pool sits 384MB into a core's window


@dataclass(frozen=True)
class WorkloadProfile:
    """Full parameterization of one synthetic workload."""

    name: str
    description: str
    category: str
    n_signatures: int
    zipf_alpha: float
    pattern_density: float
    pattern_noise: float
    regions_per_sig: int
    region_reuse: float
    concurrency: int
    filler_fraction: float
    filler_blocks: int
    write_fraction: float
    mean_gap: float
    rehit_fraction: float = 0.65
    mlp: float = 1.6
    base_ipc: float = 2.0
    code_blocks: int = 2048

    def __post_init__(self) -> None:
        if self.n_signatures <= 0:
            raise ValueError("n_signatures must be positive")
        if not 0.0 < self.pattern_density <= 1.0:
            raise ValueError("pattern_density must be in (0, 1]")
        for frac_name in ("pattern_noise", "region_reuse", "filler_fraction",
                          "write_fraction", "rehit_fraction"):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{frac_name} must be in [0, 1]")
        if self.concurrency <= 0:
            raise ValueError("concurrency must be positive")
        if self.regions_per_sig <= 0:
            raise ValueError("regions_per_sig must be positive")

    # ------------------------------------------------------------ layout

    def core_data_base(self, core: int) -> int:
        return DATA_BASE + core * PER_CORE_STRIDE

    def core_filler_base(self, core: int) -> int:
        return self.core_data_base(core) + FILLER_OFFSET

    @property
    def n_regions(self) -> int:
        return self.n_signatures * self.regions_per_sig

    def footprint_bytes(self, region_bytes: int = 2048) -> int:
        """Per-core data footprint (regions + filler pool)."""
        return self.n_regions * region_bytes + self.filler_blocks * 64

    def describe(self) -> dict:
        """Table 2-style row."""
        return {
            "workload": self.name,
            "category": self.category,
            "description": self.description,
            "footprint_mb": round(self.footprint_bytes() / 2**20, 1),
            "signatures": self.n_signatures,
        }
