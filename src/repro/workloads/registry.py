"""Lookup of the eight paper workloads by name (Table 2)."""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import WorkloadProfile
from repro.workloads.profiles import ALL_PROFILES

WORKLOADS: Dict[str, WorkloadProfile] = {p.name: p for p in ALL_PROFILES}


def workload_names() -> List[str]:
    """The eight workloads, in the paper's figure order."""
    return [p.name for p in ALL_PROFILES]


def get_workload(name: str) -> WorkloadProfile:
    """Fetch a profile by (case-insensitive) name."""
    for key, profile in WORKLOADS.items():
        if key.lower() == name.lower():
            return profile
    raise KeyError(
        f"unknown workload {name!r}; available: {', '.join(WORKLOADS)}"
    )


def table2_rows() -> List[dict]:
    """Table 2: the workload inventory."""
    return [p.describe() for p in ALL_PROFILES]
