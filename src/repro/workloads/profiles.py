"""Calibrated profiles for the eight Table 2 workloads.

Each profile is tuned so the synthetic workload reproduces the qualitative
behaviour the paper reports for its namesake:

* **Oracle** (TPC-C): the most PHT-hungry workload — a large, nearly
  unskewed signature population, so coverage collapses from ~44% at 1K sets
  to a few percent at 8 sets (Section 4.2).
* **DB2** (TPC-C): similar OLTP behaviour with a somewhat hotter core set.
* **Qry 1** (TPC-H, scan-dominated): a small population of dense sequential
  signatures; the highest coverage of all workloads (~73% infinite),
  degrading gently (~62% at 16 sets).
* **Qry 2 / Qry 16** (join-dominated): mid-size signature populations with
  sparse, noisier patterns — moderate coverage, visible overprediction.
* **Qry 17** (balanced scan-join): fewer signatures, denser patterns;
  size-tolerant like Qry 1 but with a lower ceiling.
* **Apache / Zeus** (SPECweb99): sizeable signature populations where tiny
  tables are "entirely inefficient" (Section 4.4).  Zeus writes much more,
  making it the off-chip-bandwidth worst case (+6.5%, Section 4.3).

Scale note: signature populations are sized for the default experiment
scale (tens of thousands of references per core), playing the role the
paper's tens-of-thousands of signatures play against its billions of
simulated cycles.  What is preserved is the *ratio* between each workload's
signature working set and the PHT geometries under study, which is what
Figures 4/5/9 measure.  The values were calibrated with
``scripts/calibrate.py``; EXPERIMENTS.md records paper-vs-measured.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadProfile

APACHE = WorkloadProfile(
    name="Apache",
    description="SPECweb99, Apache HTTP Server 2.0, 16K connections, FastCGI, worker threading model",
    category="Web",
    n_signatures=450,
    zipf_alpha=0.4,
    pattern_density=0.30,
    pattern_noise=0.06,
    regions_per_sig=4,
    region_reuse=0.45,
    concurrency=12,
    filler_fraction=0.16,
    filler_blocks=30000,
    write_fraction=0.16,
    mean_gap=24.0,
    rehit_fraction=0.6,
    mlp=3.0,
    base_ipc=2.0,
    code_blocks=3072,
)

ZEUS = WorkloadProfile(
    name="Zeus",
    description="SPECweb99, Zeus Web Server 4.3, 16K connections, FastCGI",
    category="Web",
    n_signatures=420,
    zipf_alpha=0.4,
    pattern_density=0.28,
    pattern_noise=0.07,
    regions_per_sig=4,
    region_reuse=0.45,
    concurrency=12,
    filler_fraction=0.16,
    filler_blocks=30000,
    write_fraction=0.34,
    mean_gap=26.0,
    rehit_fraction=0.6,
    mlp=2.8,
    base_ipc=2.0,
    code_blocks=3072,
)

DB2 = WorkloadProfile(
    name="DB2",
    description="TPC-C v3.0, IBM DB2 v8 ESE, 100 warehouses (10GB), 64 clients, 450MB buffer pool",
    category="OLTP",
    n_signatures=500,
    zipf_alpha=0.3,
    pattern_density=0.34,
    pattern_noise=0.05,
    regions_per_sig=4,
    region_reuse=0.5,
    concurrency=16,
    filler_fraction=0.2,
    filler_blocks=35000,
    write_fraction=0.20,
    mean_gap=24.0,
    rehit_fraction=0.58,
    mlp=3.0,
    base_ipc=2.0,
    code_blocks=4096,
)

ORACLE = WorkloadProfile(
    name="Oracle",
    description="TPC-C v3.0, Oracle 10g Enterprise, 100 warehouses (10GB), 16 clients, 1.4GB SGA",
    category="OLTP",
    n_signatures=800,
    zipf_alpha=0.2,
    pattern_density=0.30,
    pattern_noise=0.05,
    regions_per_sig=3,
    region_reuse=0.55,
    concurrency=16,
    filler_fraction=0.22,
    filler_blocks=30000,
    write_fraction=0.20,
    mean_gap=48.0,
    rehit_fraction=0.5,
    mlp=4.5,
    base_ipc=2.0,
    code_blocks=4096,
)

QRY1 = WorkloadProfile(
    name="Qry1",
    description="TPC-H Q1 on DB2, scan-dominated, 450MB buffer pool",
    category="DSS",
    n_signatures=140,
    zipf_alpha=0.50,
    pattern_density=0.60,
    pattern_noise=0.02,
    regions_per_sig=48,
    region_reuse=0.3,
    concurrency=8,
    filler_fraction=0.06,
    filler_blocks=20000,
    write_fraction=0.05,
    mean_gap=16.0,
    rehit_fraction=0.7,
    mlp=8.0,
    base_ipc=2.0,
    code_blocks=1024,
)

QRY2 = WorkloadProfile(
    name="Qry2",
    description="TPC-H Q2 on DB2, join-dominated, 450MB buffer pool",
    category="DSS",
    n_signatures=350,
    zipf_alpha=0.4,
    pattern_density=0.24,
    pattern_noise=0.07,
    regions_per_sig=6,
    region_reuse=0.45,
    concurrency=12,
    filler_fraction=0.24,
    filler_blocks=25000,
    write_fraction=0.06,
    mean_gap=44.0,
    rehit_fraction=0.6,
    mlp=5.0,
    base_ipc=2.0,
    code_blocks=2048,
)

QRY16 = WorkloadProfile(
    name="Qry16",
    description="TPC-H Q16 on DB2, join-dominated, 450MB buffer pool",
    category="DSS",
    n_signatures=380,
    zipf_alpha=0.4,
    pattern_density=0.26,
    pattern_noise=0.08,
    regions_per_sig=6,
    region_reuse=0.45,
    concurrency=12,
    filler_fraction=0.22,
    filler_blocks=25000,
    write_fraction=0.10,
    mean_gap=26.0,
    rehit_fraction=0.6,
    mlp=3.2,
    base_ipc=2.0,
    code_blocks=2048,
)

QRY17 = WorkloadProfile(
    name="Qry17",
    description="TPC-H Q17 on DB2, balanced scan-join, 450MB buffer pool",
    category="DSS",
    n_signatures=300,
    zipf_alpha=0.45,
    pattern_density=0.42,
    pattern_noise=0.04,
    regions_per_sig=12,
    region_reuse=0.35,
    concurrency=10,
    filler_fraction=0.14,
    filler_blocks=25000,
    write_fraction=0.08,
    mean_gap=32.0,
    rehit_fraction=0.62,
    mlp=5.0,
    base_ipc=2.0,
    code_blocks=1536,
)

ALL_PROFILES = [APACHE, ZEUS, DB2, ORACLE, QRY1, QRY2, QRY16, QRY17]
