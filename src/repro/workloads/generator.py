"""The synthetic trace generator.

Emits a per-core stream of :class:`~repro.cpu.trace.TraceRecord` tuples
from a :class:`~repro.workloads.base.WorkloadProfile`.  The stream is a
random interleaving of:

* **spatial episodes** — a signature is drawn from the Zipf popularity
  distribution, bound to a region (preferring the signature's most recent
  region with probability ``region_reuse``), and walked: first the
  triggering access at the signature's trigger offset, then the blocks of
  the episode's (noise-perturbed) copy of the signature's canonical
  pattern, in rotated ascending order;
* **filler references** — single accesses into a large unpatterned pool,
  modelling pointer chasing and other traffic SMS cannot learn.

Records are annotated with **predictor-engine events** for the generality
study: the resolved branch that led control to each record (derived from
the PC sequence — a non-sequential PC transition is a taken branch from
the previous instruction) and, for loads, the value the load returns
(:func:`memory_value`, a fixed content hash of the address).  Both are
pure functions of the reference stream, so they consume no RNG draws and
leave the memory trace bit-identical to an unannotated generator.

Determinism: the generator is fully seeded by ``(profile, seed, core)``;
two generators with equal arguments produce identical streams, which the
matched-pair measurement methodology (Section 4.1) relies on.
"""

from __future__ import annotations

import zlib
from typing import Iterator, List, Optional

import numpy as np

from repro.cpu.trace import TraceRecord
from repro.prefetch.regions import SpatialRegionGeometry
from repro.workloads.base import CODE_BASE, WorkloadProfile
from repro.workloads.zipf import ZipfSampler

_CHUNK = 8192

_VALUE_MASK = (1 << 32) - 1


def memory_value(addr: int) -> int:
    """The 32-bit value stored at ``addr`` (word granularity).

    Simulated memory content is a fixed hash of the address: the same
    location always loads the same value, so value-prediction accuracy is
    governed purely by the address stream (reused blocks repeat values,
    episode walks produce fresh ones).
    """
    x = (addr >> 2) & _VALUE_MASK
    x = (x * 0x9E3779B1) & _VALUE_MASK
    x ^= x >> 16
    x = (x * 0x85EBCA6B) & _VALUE_MASK
    x ^= x >> 13
    return x


class _RandomPool:
    """Buffered draws from a numpy Generator (amortizes RNG call overhead).

    Buffers are converted to plain Python lists wholesale (``tolist`` is
    exact for float64 and int64), so the per-draw path is a list index with
    no numpy-scalar boxing.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._uniform = rng.random(_CHUNK).tolist()
        self._u_pos = 0
        self._ints = rng.integers(0, 1 << 30, _CHUNK, dtype=np.int64).tolist()
        self._i_pos = 0

    def uniform(self) -> float:
        pos = self._u_pos
        if pos >= _CHUNK:
            self._uniform = self._rng.random(_CHUNK).tolist()
            pos = 0
        self._u_pos = pos + 1
        return self._uniform[pos]

    def randint(self, bound: int) -> int:
        """Uniform integer in [0, bound)."""
        pos = self._i_pos
        if pos >= _CHUNK:
            self._ints = self._rng.integers(0, 1 << 30, _CHUNK, dtype=np.int64).tolist()
            pos = 0
        self._i_pos = pos + 1
        return self._ints[pos] % bound


class _Episode:
    """One in-flight spatial episode: a precomputed list of accesses."""

    __slots__ = ("addrs", "pos", "pc")

    def __init__(self, addrs: List[int], pc: int) -> None:
        self.addrs = addrs
        self.pos = 0
        self.pc = pc  # body PC: the loop walking this region

    def next_addr(self) -> int:
        addr = self.addrs[self.pos]
        self.pos += 1
        return addr

    @property
    def done(self) -> bool:
        return self.pos >= len(self.addrs)


class WorkloadGenerator:
    """Per-core synthetic reference stream for one workload profile."""

    def __init__(
        self,
        profile: WorkloadProfile,
        core: int = 0,
        seed: int = 1,
        region: Optional[SpatialRegionGeometry] = None,
    ) -> None:
        self.profile = profile
        self.core = core
        self.region = region or SpatialRegionGeometry()
        # zlib.crc32 is stable across processes (str.hash is salted).
        name_hash = zlib.crc32(profile.name.encode("utf-8"))
        self._rng = np.random.default_rng(
            np.random.SeedSequence([name_hash, seed, core])
        )
        self._pool = _RandomPool(self._rng)
        self._zipf = ZipfSampler(profile.n_signatures, profile.zipf_alpha, self._rng)
        self._zipf_buffer = self._zipf.sample(_CHUNK).tolist()
        self._zipf_pos = 0

        blocks = self.region.blocks_per_region
        n = profile.n_signatures
        # RNG draw order is part of the determinism contract: permutation,
        # then offsets, then pattern bits — do not reorder.
        self._sig_pc = (
            CODE_BASE + self._rng.permutation(n).astype(np.int64) * 4
        ).tolist()
        sig_offset = self._rng.integers(0, blocks, n, dtype=np.int64)
        # Canonical patterns: each block set with probability pattern_density,
        # trigger block always set.
        bits = self._rng.random((n, blocks)) < profile.pattern_density
        bits[np.arange(n), sig_offset] = True
        sig_pattern = np.zeros(n, dtype=np.int64)
        for b in range(blocks):
            sig_pattern |= bits[:, b].astype(np.int64) << b
        # Plain-list copies for the per-reference paths (no numpy boxing).
        self._sig_offset = sig_offset.tolist()
        self._sig_pattern = sig_pattern.tolist()
        self._last_region: dict = {}
        self._active: List[_Episode] = []
        self._data_base = profile.core_data_base(core)
        self._filler_base = profile.core_filler_base(core)
        # Recency ring for word-level block reuse (rehit_fraction).
        self._ring: List[tuple] = []
        self._ring_pos = 0
        self._ring_size = 128
        self._prev_pc: Optional[int] = None
        # Hoisted gap-draw bound (0 disables the draw, matching mean_gap<=0).
        mean_gap = profile.mean_gap
        self._gap_bound = int(2 * mean_gap) + 1 if mean_gap > 0 else 0

    # --------------------------------------------------------------- helpers

    def _next_signature(self) -> int:
        if self._zipf_pos >= _CHUNK:
            self._zipf_buffer = self._zipf.sample(_CHUNK).tolist()
            self._zipf_pos = 0
        sig = self._zipf_buffer[self._zipf_pos]
        self._zipf_pos += 1
        return sig

    def _episode_pattern(self, sig: int) -> int:
        """Perturb the canonical pattern with per-bit noise; keep the trigger."""
        pattern = self._sig_pattern[sig]
        noise = self.profile.pattern_noise
        if noise > 0.0:
            blocks = self.region.blocks_per_region
            flips = 0
            pool = self._pool
            for b in range(blocks):
                if pool.uniform() < noise:
                    flips |= 1 << b
            pattern ^= flips
            pattern |= 1 << self._sig_offset[sig]
        return pattern

    def _start_episode(self) -> "tuple[int, int]":
        """Begin a new episode; return (trigger_pc, trigger_addr)."""
        profile = self.profile
        sig = self._next_signature()
        reuse = self._last_region.get(sig)
        if reuse is not None and self._pool.uniform() < profile.region_reuse:
            region_id = reuse
        else:
            region_id = sig * profile.regions_per_sig + self._pool.randint(
                profile.regions_per_sig
            )
            self._last_region[sig] = region_id
        base = self._data_base + region_id * self.region.region_bytes
        offset = self._sig_offset[sig]
        pattern = self._episode_pattern(sig)
        blocks = self.region.blocks_per_region
        block_size = self.region.block_size
        # Rotated ascending walk starting just after the trigger offset.
        addrs = []
        for i in range(1, blocks + 1):
            b = (offset + i) % blocks
            if b != offset and pattern & (1 << b):
                addrs.append(base + b * block_size)
        trigger_pc = self._sig_pc[sig]
        if addrs:
            # Body accesses come from the loop just after the trigger load.
            self._active.append(_Episode(addrs, trigger_pc + 4))
        trigger_addr = base + offset * block_size
        return trigger_pc, trigger_addr

    def _body_pc(self, addr: int) -> int:
        """Deterministic per-block body PC (only trigger PCs matter to SMS)."""
        block = addr // self.region.block_size
        return CODE_BASE + (block % (self.profile.code_blocks * 16)) * 4

    # ------------------------------------------------------------ the stream

    def _emit(self, pc: int, addr: int, write: bool) -> TraceRecord:
        """Build one annotated record (draws only the gap, preserving the
        RNG sequence of an unannotated stream)."""
        prev = self._prev_pc
        self._prev_pc = pc
        branch_pc = branch_target = None
        if prev is not None and pc != prev + 4:
            # Control did not fall through: a taken branch at the
            # instruction after the previous reference targeted this PC.
            branch_pc = prev + 4
            branch_target = pc
        load_value = None if write else memory_value(addr)
        bound = self._gap_bound
        gap = self._pool.randint(bound) if bound else 0
        return TraceRecord(
            pc, addr, write, gap, branch_pc, branch_target, load_value
        )

    def _remember(self, pc: int, addr: int) -> None:
        ring = self._ring
        if len(ring) < self._ring_size:
            ring.append((pc, addr))
        else:
            ring[self._ring_pos] = (pc, addr)
            self._ring_pos = (self._ring_pos + 1) % self._ring_size

    def records(self, n: int) -> Iterator[TraceRecord]:
        """Yield ``n`` trace records."""
        profile = self.profile
        pool = self._pool
        filler_span = profile.filler_blocks
        block_size = self.region.block_size
        rehit = profile.rehit_fraction
        wf = profile.write_fraction
        ring = self._ring
        for _ in range(n):
            # Word-level reuse: revisit a recently touched block (L1 hit).
            if ring and pool.uniform() < rehit:
                pc, addr = ring[pool.randint(len(ring))]
                write = pool.uniform() < wf
                yield self._emit(pc, addr, write)
                continue
            u = pool.uniform()
            if u < profile.filler_fraction:
                addr = self._filler_base + pool.randint(filler_span) * block_size
                pc = self._body_pc(addr)
                write = pool.uniform() < wf
                self._remember(pc, addr)
                yield self._emit(pc, addr, write)
                continue
            if len(self._active) < profile.concurrency:
                pc, addr = self._start_episode()
                self._remember(pc + 4, addr)
                yield self._emit(pc, addr, False)
                continue
            slot = pool.randint(len(self._active))
            episode = self._active[slot]
            addr = episode.next_addr()
            pc = episode.pc
            if episode.done:
                last = self._active.pop()
                if slot < len(self._active):
                    self._active[slot] = last
            write = pool.uniform() < wf
            self._remember(pc, addr)
            yield self._emit(pc, addr, write)

    def __iter__(self) -> Iterator[TraceRecord]:  # pragma: no cover - sugar
        while True:
            yield from self.records(_CHUNK)

    def compile_trace(self, n: int) -> List[TraceRecord]:
        """Materialize the next ``n`` records as a flat list.

        Trace *compilation*: the stream is generated once and the simulator
        then iterates plain tuples instead of resuming a generator frame per
        reference.  The list holds exactly the records :meth:`records` would
        have yielded (same RNG draws, same annotations), so compiled and
        streamed execution are bitwise-identical.
        """
        return list(self.records(n))


class TraceCache:
    """Per-process cache of compiled reference streams.

    Keyed by the full determinism contract of a stream — ``(profile, core,
    seed, region)`` (all hashable value objects) — so any two generators
    that would produce identical records share one compiled trace.  Entries
    grow on demand: asking for a longer prefix extends the cached list from
    the entry's own generator, which continues the identical stream.

    Sweeps resolve many configurations of the same workload in one process;
    with the cache they pay for trace generation once per workload instead
    of once per experiment.  Total cached records are bounded
    (``REPRO_TRACE_CACHE_REFS``, default 1M records ≈ a few hundred MB;
    ``0`` disables caching), evicting least-recently-used streams first.

    When a persistent :class:`~repro.runner.artifacts.ArtifactStore` is
    active (``REPRO_ARTIFACTS``), it backs this cache as a second tier:
    an in-memory miss restores the compiled stream from disk when a long
    enough prefix is persisted there, and freshly generated or extended
    streams are written behind.  Restored records are rebuilt through the
    same annotation rules :class:`WorkloadGenerator` applies, so they are
    bitwise identical to regeneration.
    """

    DEFAULT_MAX_RECORDS = 1_000_000

    def __init__(self, max_records: Optional[int] = None) -> None:
        if max_records is None:
            import os

            max_records = int(
                os.environ.get("REPRO_TRACE_CACHE_REFS", self.DEFAULT_MAX_RECORDS)
            )
        self.max_records = max_records
        self._entries: dict = {}  # key -> [generator, list, lru_tick]
        # key -> [built_n, pc, addr, write]: columnar (numpy) views of the
        # same streams for the vectorized functional kernel, grown lazily
        # alongside the record lists (amortized-doubling capacity).
        self._columns: dict = {}
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.store_hits = 0
        self.store_misses = 0

    @staticmethod
    def _store():
        from repro.runner import artifacts

        return artifacts.active_store()

    def _from_store(self, store, key, n: int) -> Optional[List[TraceRecord]]:
        """Persisted prefix of the keyed stream, counted, or None."""
        profile, core, seed, region = key
        records = store.get_trace(profile, core, seed, region, n)
        if records is None:
            self.store_misses += 1
        else:
            self.store_hits += 1
        return records

    def _materialize_generator(self, entry, key) -> WorkloadGenerator:
        """The entry's live generator, creating one for restored entries.

        A stream restored from the artifact store has no generator yet;
        extending it creates one and burns the persisted prefix, which
        continues the identical record sequence.
        """
        if entry[0] is None:
            profile, core, seed, region = key
            generator = WorkloadGenerator(
                profile, core=core, seed=seed, region=region
            )
            burned = generator.compile_trace(len(entry[1]))
            del burned
            entry[0] = generator
        return entry[0]

    def get(
        self,
        profile: WorkloadProfile,
        core: int,
        seed: int,
        region: SpatialRegionGeometry,
        n: int,
    ) -> List[TraceRecord]:
        """Return (at least) the first ``n`` records of the keyed stream.

        The returned list is shared — callers must treat it as immutable
        and may read beyond ``n`` only up to the length they asked for.
        """
        if region is None:
            region = SpatialRegionGeometry()
        store = self._store()
        key = (profile, core, seed, region)
        if n > self.max_records:
            # Oversized request: compile without caching in memory
            # (bounded footprint); the persistent tier still applies.
            if store is not None:
                restored = self._from_store(store, key, n)
                if restored is not None:
                    return restored
            records = WorkloadGenerator(
                profile, core=core, seed=seed, region=region
            ).compile_trace(n)
            if store is not None:
                store.put_trace(profile, core, seed, region, records)
            return records
        entry = self._entries.get(key)
        grown = False
        if entry is None:
            self.misses += 1
            restored = self._from_store(store, key, n) if store is not None else None
            if restored is not None:
                # No generator yet: materialized lazily if the stream ever
                # needs to grow beyond the persisted prefix.
                entry = [None, restored, 0]
            else:
                generator = WorkloadGenerator(
                    profile, core=core, seed=seed, region=region
                )
                entry = [generator, generator.compile_trace(n), 0]
                grown = True
            self._entries[key] = entry
        else:
            self.hits += 1
            if len(entry[1]) < n:
                generator = self._materialize_generator(entry, key)
                entry[1].extend(generator.records(n - len(entry[1])))
                grown = True
        if grown and store is not None:
            store.put_trace(profile, core, seed, region, entry[1])
        self._tick += 1
        entry[2] = self._tick
        self._evict()
        return entry[1]

    def get_columns(
        self,
        profile: WorkloadProfile,
        core: int,
        seed: int,
        region: SpatialRegionGeometry,
        n: int,
    ):
        """``(pc, addr, write)`` numpy columns of the keyed stream's prefix.

        The arrays are at least ``n`` long and shared across callers (treat
        them as immutable).  Built from the same cached record list
        :meth:`get` serves, so the columns are by construction the same
        stream; ``None`` when the request exceeds the cache bound (callers
        fall back to the per-record path).
        """
        if region is None:
            region = SpatialRegionGeometry()
        if n > self.max_records:
            return None
        records = self.get(profile, core, seed, region, n)
        key = (profile, core, seed, region)
        cols = self._columns.get(key)
        if cols is None:
            cap = max(4096, n)
            cols = [
                0,
                np.empty(cap, dtype=np.int64),
                np.empty(cap, dtype=np.int64),
                np.empty(cap, dtype=np.bool_),
            ]
            self._columns[key] = cols
        built = cols[0]
        if built < n:
            if n > len(cols[1]):
                cap = max(n, 2 * len(cols[1]))
                for i in (1, 2, 3):
                    grown = np.empty(cap, dtype=cols[i].dtype)
                    grown[:built] = cols[i][:built]
                    cols[i] = grown
            fresh = records[built:n]
            count = n - built
            cols[1][built:n] = np.fromiter(
                (r.pc for r in fresh), dtype=np.int64, count=count
            )
            cols[2][built:n] = np.fromiter(
                (r.addr for r in fresh), dtype=np.int64, count=count
            )
            cols[3][built:n] = np.fromiter(
                (r.write for r in fresh), dtype=np.bool_, count=count
            )
            cols[0] = n
        return cols[1][: cols[0]], cols[2][: cols[0]], cols[3][: cols[0]]

    def _evict(self) -> None:
        total = sum(len(entry[1]) for entry in self._entries.values())
        while total > self.max_records and len(self._entries) > 1:
            oldest = min(self._entries, key=lambda k: self._entries[k][2])
            total -= len(self._entries[oldest][1])
            del self._entries[oldest]
            self._columns.pop(oldest, None)
            self.evictions += 1

    def stats(self) -> dict:
        """Hit/miss/eviction counters plus current occupancy.

        Per-process: workers of the broker/worker fabric's process backend
        fork with (and then extend) their own copy of the cache, so the
        parent's numbers cover exactly the presharing work it did.  The
        ``store_*`` counters track consultations of the persistent
        artifact tier (always zero when ``REPRO_ARTIFACTS`` is off).
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "entries": len(self._entries),
            "records": sum(len(entry[1]) for entry in self._entries.values()),
            "max_records": self.max_records,
        }

    def clear(self) -> None:
        self._entries.clear()
        self._columns.clear()


#: Process-wide compiled-trace cache the simulator resolves streams through.
TRACE_CACHE = TraceCache()
