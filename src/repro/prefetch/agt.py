"""The Active Generation Table: filter table + accumulation table.

Section 3.1 of the paper.  The AGT tracks regions whose generation is in
progress.  The *filter table* holds regions that have seen only their
triggering access; once a region records an access to a different block,
its entry moves to the *accumulation table*, where the spatial pattern is
built up bit by bit.  A generation ends when any block accessed during it
is evicted or invalidated from the L1; at that point the accumulated
pattern is handed to the PHT and the entry is freed.

Both tables are small, LRU-replaced, fully-associative structures (the
tuned sizes from the original SMS study are 32 filter / 64 accumulation
entries).  An entry displaced by LRU pressure simply loses its generation;
``transfer_on_evict`` optionally flushes displaced accumulation entries to
the PHT instead (an ablation, not the paper's configuration).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.prefetch.regions import SpatialRegionGeometry


@dataclass
class FilterEntry:
    """A region that has seen exactly one (triggering) access."""

    region: int
    pc: int
    offset: int


@dataclass
class AccumulationEntry:
    """A region actively accumulating its spatial pattern."""

    region: int
    pc: int            # PC of the triggering access
    offset: int        # block offset of the triggering access
    pattern: int       # bit vector of blocks accessed this generation


@dataclass
class AGTStats:
    triggers: int = 0
    promotions: int = 0
    generations_ended: int = 0
    filter_generations_ended: int = 0
    filter_lru_evictions: int = 0
    accumulation_lru_evictions: int = 0
    abandoned: int = 0


class FilterTable:
    """LRU table of single-access regions."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity <= 0:
            raise ValueError("filter table capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, FilterEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, region: int) -> Optional[FilterEntry]:
        entry = self._entries.get(region)
        if entry is not None:
            self._entries.move_to_end(region)
        return entry

    def insert(self, entry: FilterEntry) -> Optional[FilterEntry]:
        """Insert; returns the LRU victim if the table overflowed."""
        victim = None
        if entry.region not in self._entries and len(self._entries) >= self.capacity:
            _, victim = self._entries.popitem(last=False)
        self._entries[entry.region] = entry
        self._entries.move_to_end(entry.region)
        return victim

    def remove(self, region: int) -> Optional[FilterEntry]:
        return self._entries.pop(region, None)


class AccumulationTable:
    """LRU table of regions with two or more distinct blocks accessed."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("accumulation table capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, AccumulationEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, region: int) -> Optional[AccumulationEntry]:
        entry = self._entries.get(region)
        if entry is not None:
            self._entries.move_to_end(region)
        return entry

    def insert(self, entry: AccumulationEntry) -> Optional[AccumulationEntry]:
        victim = None
        if entry.region not in self._entries and len(self._entries) >= self.capacity:
            _, victim = self._entries.popitem(last=False)
        self._entries[entry.region] = entry
        self._entries.move_to_end(entry.region)
        return victim

    def remove(self, region: int) -> Optional[AccumulationEntry]:
        return self._entries.pop(region, None)


class ActiveGenerationTable:
    """Filter + accumulation tables and the generation life-cycle.

    ``on_generation_end(pc, offset, pattern)`` is invoked whenever a
    generation with at least two accessed blocks ends; the SMS engine wires
    it to a PHT store.
    """

    def __init__(
        self,
        geometry: SpatialRegionGeometry,
        filter_entries: int = 32,
        accumulation_entries: int = 64,
        on_generation_end: Optional[Callable[[int, int, int], None]] = None,
        transfer_on_evict: bool = False,
    ) -> None:
        self.geometry = geometry
        self.filter = FilterTable(filter_entries)
        self.accumulation = AccumulationTable(accumulation_entries)
        self.on_generation_end = on_generation_end
        self.transfer_on_evict = transfer_on_evict
        self.stats = AGTStats()
        # Inlined geometry constants for the per-access paths.
        self._region_bytes = geometry.region_bytes
        self._block_size = geometry.block_size

    # ------------------------------------------------------------ training

    def record_access(self, pc: int, addr: int) -> Optional[Tuple[int, int]]:
        """Track one L1 access.

        Returns ``(trigger_pc, trigger_offset)`` iff this access *starts a
        new generation* (i.e. it is a triggering access) — the caller should
        then consult the PHT for a prediction.  Returns ``None`` otherwise.
        """
        rb = self._region_bytes
        region = addr // rb
        offset = (addr % rb) // self._block_size

        acc = self.accumulation.get(region)
        if acc is not None:
            acc.pattern |= 1 << offset
            return None

        filt = self.filter.get(region)
        if filt is not None:
            if offset == filt.offset:
                return None  # repeated access to the triggering block
            # Second distinct block: promote to the accumulation table.
            self.filter.remove(region)
            entry = AccumulationEntry(
                region=region,
                pc=filt.pc,
                offset=filt.offset,
                pattern=(1 << filt.offset) | (1 << offset),
            )
            victim = self.accumulation.insert(entry)
            if victim is not None:
                self._lru_displace(victim)
            self.stats.promotions += 1
            return None

        # Triggering access: start a new generation.
        self.stats.triggers += 1
        victim = self.filter.insert(FilterEntry(region=region, pc=pc, offset=offset))
        if victim is not None:
            self.stats.filter_lru_evictions += 1
        return pc, offset

    # ----------------------------------------------------- generation end

    def block_removed(self, block_addr: int) -> Optional[Tuple[int, int, int]]:
        """An L1 block was evicted or invalidated.

        If the block belongs to an active generation *and was accessed
        during it*, the generation ends.  Returns ``(pc, offset, pattern)``
        when a pattern (two or more blocks) was produced, after also firing
        ``on_generation_end``; returns ``None`` otherwise.
        """
        rb = self._region_bytes
        region = block_addr // rb
        offset = (block_addr % rb) // self._block_size

        acc = self.accumulation.get(region)
        if acc is not None:
            if not acc.pattern & (1 << offset):
                return None  # block not touched this generation
            self.accumulation.remove(region)
            self.stats.generations_ended += 1
            self._emit(acc)
            return acc.pc, acc.offset, acc.pattern

        filt = self.filter.get(region)
        if filt is not None and filt.offset == offset:
            # Single-access generation: freed, nothing worth storing.
            self.filter.remove(region)
            self.stats.filter_generations_ended += 1
        return None

    # ------------------------------------------------------------ helpers

    def _lru_displace(self, victim: AccumulationEntry) -> None:
        self.stats.accumulation_lru_evictions += 1
        if self.transfer_on_evict:
            self._emit(victim)

    def _emit(self, entry: AccumulationEntry) -> None:
        if self.on_generation_end is not None:
            self.on_generation_end(entry.pc, entry.offset, entry.pattern)

    def flush_all(self, emit: bool = True) -> int:
        """End every open generation at once (observed-stream gap).

        Used when the observed reference stream has a gap (the sampled
        simulator's fast skip): open generations cannot be tracked across
        the gap.  With ``emit`` (the default) accumulated patterns — two
        or more blocks — are stored to the PHT exactly as a generation end
        would store them, so workloads whose generations outlive one
        observed span (little L1 pressure, long region lifetimes) still
        train; single-access filter entries are discarded as always.
        ``emit=False`` drops everything unstored (the LRU-displacement
        treatment).  Returns the number of generations closed.
        """
        closed = len(self.filter) + len(self.accumulation)
        if emit:
            for entry in list(self.accumulation._entries.values()):
                self.stats.generations_ended += 1
                self._emit(entry)
        self.filter._entries.clear()
        self.accumulation._entries.clear()
        self.stats.abandoned += closed
        return closed

    def active_regions(self) -> int:
        return len(self.filter) + len(self.accumulation)

    def is_active(self, addr: int) -> bool:
        region = self.geometry.region_of(addr)
        return (
            self.accumulation.get(region) is not None
            or self.filter.get(region) is not None
        )

    def storage_bits(self) -> int:
        """Rough dedicated storage: the paper notes the AGT needs <1KB."""
        region_tag_bits = 26  # region number tag, generous
        filter_bits = self.filter.capacity * (region_tag_bits + 16 + 5)
        accum_bits = self.accumulation.capacity * (
            region_tag_bits + 16 + 5 + self.geometry.blocks_per_region
        )
        return filter_bits + accum_bits
