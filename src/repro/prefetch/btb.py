"""A branch-target buffer, used to demonstrate PV's generality.

Section 6 of the paper: "we expect that there are other existing
predictors, such as, for example, branch target prediction, that will
naturally benefit from predictor virtualization".  This module provides a
small BTB written against the same :class:`PredictorTable` interface so the
examples can run it over either a dedicated table or a virtualized one —
no change to the engine, exactly as with SMS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.interface import PredictorTable, TableGeometry
from repro.core.pvtable import EntryCodec, PVTableLayout

BTB_INDEX_BITS = 16
BTB_TARGET_BITS = 32


def btb_index(pc: int, index_bits: int = BTB_INDEX_BITS) -> int:
    """Hash a branch PC into the BTB index (word-aligned PCs, low bits)."""
    return (pc >> 2) & ((1 << index_bits) - 1)


def btb_layout(
    n_sets: int = 512, assoc: int = 8, block_size: int = 64
) -> PVTableLayout:
    """PVTable layout for a virtualized BTB.

    With the defaults: 16-bit index, 9 set bits, 7-bit tags, 32-bit targets
    → 39-bit entries, 13 of which fit a 64-byte block (assoc 8 leaves slack
    for LRU state, mirroring the paper's "trailing unused bits" remark).
    """
    geometry = TableGeometry(n_sets=n_sets, assoc=assoc, index_bits=BTB_INDEX_BITS)
    codec = EntryCodec(tag_bits=geometry.tag_bits, value_bits=BTB_TARGET_BITS)
    return PVTableLayout(geometry=geometry, codec=codec, block_size=block_size)


@dataclass
class BTBStats:
    lookups: int = 0
    hits: int = 0
    correct: int = 0
    updates: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def accuracy(self) -> float:
        return self.correct / self.lookups if self.lookups else 0.0


class BranchTargetBuffer:
    """The optimization engine half of a BTB: predict and train.

    The table itself is any :class:`PredictorTable`; targets are stored
    truncated to ``BTB_TARGET_BITS`` (the packable field width).
    """

    def __init__(self, table: PredictorTable) -> None:
        self.table = table
        self.stats = BTBStats()

    def predict(self, pc: int, now: int = 0) -> Optional[int]:
        self.stats.lookups += 1
        result = self.table.lookup(btb_index(pc), now)
        if result.hit:
            self.stats.hits += 1
            return result.value
        return None

    def update(self, pc: int, target: int, predicted: Optional[int], now: int = 0) -> None:
        """Train with the resolved target; track prediction accuracy."""
        truncated = target & ((1 << BTB_TARGET_BITS) - 1)
        if predicted is not None and predicted == truncated:
            self.stats.correct += 1
        self.stats.updates += 1
        self.table.store(btb_index(pc), truncated, now)
