"""Pattern History Table implementations and the PHT index function.

The PHT maps the signature of a region's triggering access — 16 bits of PC
concatenated with the 5-bit block offset (21-bit index, Section 3.2.1) — to
the spatial pattern last observed for that signature.

Three implementations of :class:`~repro.core.interface.PredictorTable`:

* :class:`DedicatedPHT` — the conventional on-chip set-associative, LRU
  table whose storage Table 3 prices;
* :class:`InfinitePHT` — an unbounded table, the "Infinite" bars of
  Figures 4/5;
* the virtualized table of :mod:`repro.core.virtualized` (built with
  :func:`sms_pht_layout`), which this module never imports — the SMS engine
  only ever sees the shared interface.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.interface import LookupResult, PredictorTable, TableGeometry
from repro.core.pvtable import EntryCodec, PVTableLayout

#: Paper parameters: 16 PC bits, 5 offset bits.
PC_INDEX_BITS = 16
OFFSET_BITS = 5
PHT_INDEX_BITS = PC_INDEX_BITS + OFFSET_BITS


def pht_index(pc: int, offset: int, offset_bits: int = OFFSET_BITS,
              pc_bits: int = PC_INDEX_BITS) -> int:
    """Combine trigger PC and block offset into the table index (Figure 3b)."""
    if offset < 0 or offset >= (1 << offset_bits):
        raise ValueError(f"offset {offset} does not fit in {offset_bits} bits")
    return ((pc & ((1 << pc_bits) - 1)) << offset_bits) | offset


def sms_pht_layout(
    n_sets: int = 1024,
    assoc: int = 11,
    pattern_bits: int = 32,
    block_size: int = 64,
) -> PVTableLayout:
    """The virtualized PHT layout of Section 3.2.1.

    With the defaults: 21-bit index, 10 set bits, 11-bit tags, 32-bit
    patterns → 43-bit entries, 11 of which pack into a 64-byte block with 43
    trailing unused bits (Figure 3a).
    """
    geometry = TableGeometry(n_sets=n_sets, assoc=assoc, index_bits=PHT_INDEX_BITS)
    codec = EntryCodec(tag_bits=geometry.tag_bits, value_bits=pattern_bits)
    return PVTableLayout(geometry=geometry, codec=codec, block_size=block_size)


@dataclass
class PHTStats:
    lookups: int = 0
    hits: int = 0
    stores: int = 0
    replacements: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class DedicatedPHT(PredictorTable):
    """Conventional on-chip set-associative PHT with LRU replacement."""

    def __init__(
        self,
        n_sets: int = 1024,
        assoc: int = 16,
        index_bits: int = PHT_INDEX_BITS,
        pattern_bits: int = 32,
        latency: int = 1,
    ) -> None:
        self.geometry = TableGeometry(n_sets=n_sets, assoc=assoc, index_bits=index_bits)
        self.pattern_bits = pattern_bits
        self.latency = latency
        self.stats = PHTStats()
        self._sets = [OrderedDict() for _ in range(n_sets)]

    def lookup(self, index: int, now: int = 0) -> LookupResult:
        set_index, tag = self.geometry.split(index)
        ways = self._sets[set_index]
        value = ways.get(tag)
        self.stats.lookups += 1
        if value is None:
            return LookupResult(None, False, now + self.latency)
        ways.move_to_end(tag)
        self.stats.hits += 1
        return LookupResult(value, True, now + self.latency)

    def store(self, index: int, value: Any, now: int = 0) -> None:
        set_index, tag = self.geometry.split(index)
        ways = self._sets[set_index]
        self.stats.stores += 1
        if tag in ways:
            ways.move_to_end(tag)
            ways[tag] = value
            return
        if len(ways) >= self.geometry.assoc:
            ways.popitem(last=False)
            self.stats.replacements += 1
        ways[tag] = value

    def storage_bits(self) -> int:
        """Tag + pattern bits across all entries (the Table 3 quantity)."""
        return self.geometry.entries * (self.geometry.tag_bits + self.pattern_bits)

    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def reset(self) -> None:
        for ways in self._sets:
            ways.clear()


class InfinitePHT(PredictorTable):
    """Unbounded PHT: keeps every pattern ever stored ("Infinite" bars)."""

    def __init__(self, latency: int = 1) -> None:
        self.latency = latency
        self.stats = PHTStats()
        self._entries: Dict[int, Any] = {}

    def lookup(self, index: int, now: int = 0) -> LookupResult:
        self.stats.lookups += 1
        value = self._entries.get(index)
        if value is None:
            return LookupResult(None, False, now + self.latency)
        self.stats.hits += 1
        return LookupResult(value, True, now + self.latency)

    def store(self, index: int, value: Any, now: int = 0) -> None:
        self.stats.stores += 1
        self._entries[index] = value

    def storage_bits(self) -> int:
        """An infinite table has no meaningful budget; report current use."""
        return len(self._entries) * (PHT_INDEX_BITS + 32)

    def __len__(self) -> int:
        return len(self._entries)

    def reset(self) -> None:
        self._entries.clear()
