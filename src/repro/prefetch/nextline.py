"""Next-line instruction prefetcher.

Table 1's baseline: "Each core implements a next-line instruction
prefetcher."  On every instruction fetch that touches block *B*, the block
*B+1* is prefetched into the L1I.  Stateless except for a last-block
filter that avoids re-issuing the same prefetch on consecutive fetches
within one block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class NextLineStats:
    observed: int = 0
    issued: int = 0


class NextLinePrefetcher:
    def __init__(self, block_size: int = 64, degree: int = 1) -> None:
        if degree < 1:
            raise ValueError("degree must be at least 1")
        self.block_size = block_size
        self.degree = degree
        self.stats = NextLineStats()
        self._last_block: Optional[int] = None

    def on_fetch(self, pc: int, block: Optional[int] = None) -> list:
        """Observe an instruction fetch; return block addresses to prefetch.

        ``block`` lets callers that already computed the fetch's block
        address pass it in instead of re-deriving it.
        """
        self.stats.observed += 1
        if block is None:
            block = pc - (pc % self.block_size)
        if block == self._last_block:
            return []
        self._last_block = block
        if self.degree == 1:
            self.stats.issued += 1
            return [block + self.block_size]
        targets = [block + i * self.block_size for i in range(1, self.degree + 1)]
        self.stats.issued += len(targets)
        return targets
