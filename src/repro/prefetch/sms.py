"""The Spatial Memory Streaming optimization engine.

Ties together the AGT (:mod:`repro.prefetch.agt`) and a Pattern History
Table satisfying :class:`repro.core.interface.PredictorTable`.  Whether the
PHT is the dedicated on-chip table or the virtualized one is invisible here
— exactly the property the paper's Figure 1 promises ("the optimization
engine remains unchanged").

Flow, per Section 3.1:

* every L1 data access trains the AGT;
* an access that *starts a generation* (triggering access) additionally
  consults the PHT with index ``pc(16b) ++ offset(5b)``; a hit streams the
  predicted blocks of the region toward the L1 (minus the trigger block,
  which the demand access itself fetches);
* an L1 eviction/invalidation ending a generation stores the accumulated
  pattern back into the PHT under the generation's trigger signature.

Prefetches carry a ``ready_at`` timestamp: the PHT answers at
``LookupResult.ready_at`` (one cycle for a dedicated table, potentially an
L2 or memory round-trip for a virtualized one), which is how PV's
non-uniform latency feeds the timing model of Figure 9/11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.interface import PredictorTable
from repro.prefetch.agt import ActiveGenerationTable
from repro.prefetch.pht import pht_index
from repro.prefetch.regions import SpatialRegionGeometry


@dataclass
class SMSConfig:
    """Tuned values from the original SMS study (Section 4.1)."""

    region: SpatialRegionGeometry = field(default_factory=SpatialRegionGeometry)
    filter_entries: int = 32
    accumulation_entries: int = 64
    transfer_on_evict: bool = False
    pc_bits: int = 16
    # Cap on prefetches generated per prediction (a full 32-block pattern
    # minus the trigger).  The paper streams the whole pattern.
    max_prefetches_per_prediction: int = 32


@dataclass
class SMSStats:
    accesses: int = 0
    predictions: int = 0       # trigger accesses that hit in the PHT
    trigger_lookups: int = 0   # trigger accesses (PHT consulted)
    prefetches_issued: int = 0
    patterns_stored: int = 0


class SMSPrefetcher:
    """One core's SMS engine."""

    def __init__(
        self,
        table: PredictorTable,
        config: Optional[SMSConfig] = None,
        issue_prefetch: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.table = table
        self.config = config or SMSConfig()
        self.issue_prefetch = issue_prefetch
        self.stats = SMSStats()
        self._now = 0
        self.agt = ActiveGenerationTable(
            geometry=self.config.region,
            filter_entries=self.config.filter_entries,
            accumulation_entries=self.config.accumulation_entries,
            on_generation_end=self._store_pattern,
            transfer_on_evict=self.config.transfer_on_evict,
        )

    # --------------------------------------------------------------- train

    def on_access(self, pc: int, addr: int, now: int = 0) -> List[Tuple[int, int]]:
        """Observe one L1 data access; return ``[(block_addr, ready_at), ...]``
        prefetches if this access triggered a prediction."""
        self.stats.accesses += 1
        self._now = now
        trigger = self.agt.record_access(pc, addr)
        if trigger is None:
            return []
        return self._predict(trigger[0], trigger[1], addr, now)

    def on_block_removed(self, block_addr: int, now: int = 0) -> None:
        """An L1 block was evicted or invalidated (ends generations)."""
        self._now = now
        self.agt.block_removed(block_addr)

    def flush_generations(self, emit: bool = True) -> int:
        """End every open generation (stream gap, see AGT.flush_all)."""
        return self.agt.flush_all(emit)

    # ------------------------------------------------------------- predict

    def _predict(
        self, pc: int, offset: int, addr: int, now: int
    ) -> List[Tuple[int, int]]:
        geometry = self.config.region
        index = pht_index(pc, offset, geometry.offset_bits, self.config.pc_bits)
        self.stats.trigger_lookups += 1
        result = self.table.lookup(index, now)
        if not result.hit:
            return []
        self.stats.predictions += 1
        region_base = geometry.region_base(addr)
        prefetches: List[Tuple[int, int]] = []
        for block_addr in geometry.prefetch_addresses(
            region_base, result.value, exclude_offset=offset
        ):
            if len(prefetches) >= self.config.max_prefetches_per_prediction:
                break
            prefetches.append((block_addr, result.ready_at))
        self.stats.prefetches_issued += len(prefetches)
        if self.issue_prefetch is not None:
            for block_addr, ready_at in prefetches:
                self.issue_prefetch(block_addr, ready_at)
        return prefetches

    # --------------------------------------------------------------- store

    def _store_pattern(self, pc: int, offset: int, pattern: int) -> None:
        geometry = self.config.region
        index = pht_index(pc, offset, geometry.offset_bits, self.config.pc_bits)
        self.stats.patterns_stored += 1
        self.table.store(index, pattern, self._now)

    # ---------------------------------------------------------------- misc

    def storage_bits(self) -> int:
        """AGT + PHT dedicated storage (PHT dominates, Section 3.2)."""
        return self.agt.storage_bits() + self.table.storage_bits()
