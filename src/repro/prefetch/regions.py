"""Spatial-region geometry and pattern bit-vector helpers.

SMS divides memory into fixed-size *spatial regions* (the paper uses 32
blocks of 64 bytes = 2KB) and summarizes the blocks touched during a
region's *generation* as a bit vector, one bit per block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


@dataclass(frozen=True)
class SpatialRegionGeometry:
    """Region shape and the address arithmetic it induces."""

    blocks_per_region: int = 32
    block_size: int = 64

    def __post_init__(self) -> None:
        for name in ("blocks_per_region", "block_size"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two")

    @property
    def region_bytes(self) -> int:
        return self.blocks_per_region * self.block_size

    @property
    def offset_bits(self) -> int:
        """Bits needed for a block offset within a region (5 in the paper)."""
        return self.blocks_per_region.bit_length() - 1

    def region_of(self, addr: int) -> int:
        return addr // self.region_bytes

    def region_base(self, addr: int) -> int:
        return addr - (addr % self.region_bytes)

    def offset_of(self, addr: int) -> int:
        return (addr % self.region_bytes) // self.block_size

    def block_address(self, region_base: int, offset: int) -> int:
        if offset < 0 or offset >= self.blocks_per_region:
            raise ValueError(f"offset {offset} out of range")
        return region_base + offset * self.block_size

    # -------------------------------------------------------- bit vectors

    def pattern_of_offsets(self, offsets) -> int:
        """Build a bit vector from block offsets."""
        pattern = 0
        for offset in offsets:
            if offset < 0 or offset >= self.blocks_per_region:
                raise ValueError(f"offset {offset} out of range")
            pattern |= 1 << offset
        return pattern

    def offsets_of_pattern(self, pattern: int) -> List[int]:
        """List block offsets whose bit is set, ascending."""
        if pattern < 0 or pattern >= (1 << self.blocks_per_region):
            raise ValueError("pattern wider than the region")
        return [i for i in range(self.blocks_per_region) if pattern & (1 << i)]

    def prefetch_addresses(
        self, region_base: int, pattern: int, exclude_offset: int = -1
    ) -> Iterator[int]:
        """Yield the block addresses a pattern predicts (Figure 2).

        ``exclude_offset`` skips the triggering block, which the demand miss
        that started the generation is already fetching.
        """
        for offset in self.offsets_of_pattern(pattern):
            if offset != exclude_offset:
                yield region_base + offset * self.block_size

    @staticmethod
    def pattern_density(pattern: int) -> int:
        """Number of blocks a pattern covers (popcount)."""
        return bin(pattern).count("1")
