"""A last-value load predictor — another virtualization candidate.

The paper's introduction motivates PV with the breadth of predictor-based
optimizations: value prediction [16, 17, 24], instruction reuse, pointer
caching.  Value-prediction tables share the PHT's problem exactly: accuracy
grows with table size, and the tables are too expensive to dedicate.

:class:`LastValuePredictor` is the classic design (Lipasti et al.): a table
indexed by load PC holding the last loaded value and a saturating
confidence counter; a prediction is offered only above a confidence
threshold.  Like the BTB and the SMS PHT, it is written against the
:class:`PredictorTable` interface, so it runs unmodified over a dedicated
or a virtualized table — see ``lvp_layout`` for the packed PVTable format.

Entries are ``(confidence << value_bits) | value``; the helper functions
below keep that encoding in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.interface import PredictorTable, TableGeometry
from repro.core.pvtable import EntryCodec, PVTableLayout

LVP_INDEX_BITS = 14
LVP_VALUE_BITS = 32
LVP_CONF_BITS = 2
LVP_CONF_MAX = (1 << LVP_CONF_BITS) - 1


def lvp_index(pc: int, index_bits: int = LVP_INDEX_BITS) -> int:
    """Hash a (word-aligned) load PC into the table index."""
    return (pc >> 2) & ((1 << index_bits) - 1)


def pack_lvp_entry(value: int, confidence: int) -> int:
    """Encode (value, confidence) into one table word."""
    if confidence < 0 or confidence > LVP_CONF_MAX:
        raise ValueError(f"confidence {confidence} out of range")
    return (confidence << LVP_VALUE_BITS) | (value & ((1 << LVP_VALUE_BITS) - 1))


def unpack_lvp_entry(word: int) -> Tuple[int, int]:
    """Inverse of :func:`pack_lvp_entry`: returns (value, confidence)."""
    return word & ((1 << LVP_VALUE_BITS) - 1), word >> LVP_VALUE_BITS


def lvp_layout(n_sets: int = 256, assoc: int = 8,
               block_size: int = 64) -> PVTableLayout:
    """PVTable layout for a virtualized last-value predictor.

    14-bit index, 8 set bits, 6-bit tags, 34-bit payload (32-bit value plus
    2 confidence bits) -> 40-bit entries, 12 per 64-byte block.
    """
    geometry = TableGeometry(n_sets=n_sets, assoc=assoc, index_bits=LVP_INDEX_BITS)
    codec = EntryCodec(
        tag_bits=geometry.tag_bits, value_bits=LVP_VALUE_BITS + LVP_CONF_BITS
    )
    return PVTableLayout(geometry=geometry, codec=codec, block_size=block_size)


@dataclass
class LVPStats:
    lookups: int = 0
    predictions: int = 0   # confident predictions offered
    correct: int = 0
    updates: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of loads for which a prediction was offered."""
        return self.predictions / self.lookups if self.lookups else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of offered predictions that were correct."""
        return self.correct / self.predictions if self.predictions else 0.0


class LastValuePredictor:
    """The optimization-engine half of a last-value predictor."""

    def __init__(self, table: PredictorTable, threshold: int = 2) -> None:
        if threshold < 1 or threshold > LVP_CONF_MAX:
            raise ValueError(f"threshold must be in [1, {LVP_CONF_MAX}]")
        self.table = table
        self.threshold = threshold
        self.stats = LVPStats()

    def predict(self, pc: int, now: int = 0) -> Optional[int]:
        """Offer a value prediction for the load at ``pc``, if confident."""
        self.stats.lookups += 1
        result = self.table.lookup(lvp_index(pc), now)
        if not result.hit:
            return None
        value, confidence = unpack_lvp_entry(result.value)
        if confidence < self.threshold:
            return None
        self.stats.predictions += 1
        return value

    def update(self, pc: int, actual: int, predicted: Optional[int],
               now: int = 0) -> None:
        """Train with the load's actual value; adjust confidence."""
        self.stats.updates += 1
        truncated = actual & ((1 << LVP_VALUE_BITS) - 1)
        if predicted is not None and predicted == truncated:
            self.stats.correct += 1
        index = lvp_index(pc)
        result = self.table.lookup(index, now)
        if result.hit:
            value, confidence = unpack_lvp_entry(result.value)
            if value == truncated:
                confidence = min(confidence + 1, LVP_CONF_MAX)
            else:
                confidence = max(confidence - 1, 0)
                if confidence == 0:
                    value = truncated
        else:
            value, confidence = truncated, 1
        self.table.store(index, pack_lvp_entry(value, confidence), now)
