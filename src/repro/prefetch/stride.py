"""Classic PC-indexed stride prefetcher (comparison baseline).

Not part of the paper's evaluation, but a useful second data-prefetching
baseline for the examples and ablations: it shows that SMS-style spatial
patterns capture the commercial-workload behaviour strides miss, and its
reference-prediction table is another candidate for virtualization.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional


@dataclass
class StrideEntry:
    last_addr: int
    stride: int = 0
    confidence: int = 0


@dataclass
class StrideStats:
    accesses: int = 0
    issued: int = 0
    trained: int = 0


class StridePrefetcher:
    """Reference-prediction-table stride prefetcher with 2-bit confidence."""

    def __init__(
        self,
        table_entries: int = 256,
        block_size: int = 64,
        degree: int = 2,
        threshold: int = 2,
        max_confidence: int = 3,
    ) -> None:
        if table_entries <= 0:
            raise ValueError("table_entries must be positive")
        self.block_size = block_size
        self.degree = degree
        self.threshold = threshold
        self.max_confidence = max_confidence
        self.table_entries = table_entries
        self.stats = StrideStats()
        self._table: "OrderedDict[int, StrideEntry]" = OrderedDict()

    def on_access(self, pc: int, addr: int) -> List[int]:
        """Observe a memory access; return block addresses to prefetch."""
        self.stats.accesses += 1
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_entries:
                self._table.popitem(last=False)
            self._table[pc] = StrideEntry(last_addr=addr)
            return []
        self._table.move_to_end(pc)
        stride = addr - entry.last_addr
        if stride == entry.stride and stride != 0:
            entry.confidence = min(entry.confidence + 1, self.max_confidence)
            self.stats.trained += 1
        else:
            entry.confidence = max(entry.confidence - 1, 0)
            if entry.confidence == 0:
                entry.stride = stride
        entry.last_addr = addr
        if entry.confidence < self.threshold or entry.stride == 0:
            return []
        targets = []
        for i in range(1, self.degree + 1):
            target = addr + entry.stride * i
            if target >= 0:
                block = target - (target % self.block_size)
                if block not in targets:
                    targets.append(block)
        self.stats.issued += len(targets)
        return targets
