"""Hardware prefetchers: Spatial Memory Streaming and baselines.

:mod:`repro.prefetch.sms` implements the SMS data prefetcher of Somogyi et
al. (ISCA 2006), the optimization the paper virtualizes: an Active
Generation Table (filter + accumulation tables) that learns spatial bit
patterns over 2KB regions, and a Pattern History Table (PHT) that stores
them keyed by the PC+offset of each region's triggering access.  The PHT is
written against the generic :class:`repro.core.interface.PredictorTable`
interface, so the engine runs unmodified over either the dedicated table of
:mod:`repro.prefetch.pht` or a virtualized one.

:mod:`repro.prefetch.nextline` is the per-core next-line instruction
prefetcher in the paper's baseline; :mod:`repro.prefetch.stride` is an
additional classic PC-stride baseline; :mod:`repro.prefetch.btb` is a small
branch-target buffer used to demonstrate PV's generality (Section 6).
"""

from repro.prefetch.agt import AccumulationTable, ActiveGenerationTable, FilterTable
from repro.prefetch.btb import BranchTargetBuffer, btb_layout
from repro.prefetch.nextline import NextLinePrefetcher
from repro.prefetch.pht import DedicatedPHT, InfinitePHT, pht_index, sms_pht_layout
from repro.prefetch.regions import SpatialRegionGeometry
from repro.prefetch.sms import SMSConfig, SMSPrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.prefetch.value import LastValuePredictor, lvp_layout

__all__ = [
    "AccumulationTable",
    "ActiveGenerationTable",
    "BranchTargetBuffer",
    "DedicatedPHT",
    "FilterTable",
    "InfinitePHT",
    "LastValuePredictor",
    "NextLinePrefetcher",
    "SMSConfig",
    "SMSPrefetcher",
    "SpatialRegionGeometry",
    "StridePrefetcher",
    "btb_layout",
    "lvp_layout",
    "pht_index",
    "sms_pht_layout",
]
