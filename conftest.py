"""Repo-wide pytest configuration.

``--update-golden`` regenerates the checked-in golden metrics under
``tests/regression/golden/`` from the current code instead of asserting
against them (see tests/regression/test_golden_figures.py).

The session-scoped fixture below routes every figure driver through a
sweep runner backed by a per-session result store, so simulations persist
across test modules: a ``clear_cache()`` in one module's fixtures no
longer forces a later module (notably the golden regression suite, which
replays the bench-scale figures) to recompute them.  A user-level
``REPRO_STORE`` is deliberately ignored under pytest — results computed
by older code would otherwise satisfy the regression suite and mask the
exact drift it exists to catch.  ``REPRO_JOBS`` is still honored.

``REPRO_ARTIFACTS`` is ignored for the same reason: warm-state and trace
artifacts written by older code would feed the suite state the current
code didn't compute.  Tests that exercise the artifact store install
their own via :func:`repro.runner.artifacts.set_active`.
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/regression/golden/*.json from the current run",
    )


@pytest.fixture(scope="session", autouse=True)
def _session_sweep_runner(tmp_path_factory):
    """One session-local store-backed runner for the whole test run."""
    from repro.runner import artifacts, context

    os.environ.pop("REPRO_ARTIFACTS", None)
    artifacts.reset()
    context.configure(store=tmp_path_factory.mktemp("result-store"))
    yield
    context.reset()
    artifacts.reset()
