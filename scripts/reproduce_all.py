"""Regenerate every table and figure without pytest.

Equivalent to ``pytest benchmarks/ --benchmark-only`` minus the assertions:
runs all experiment drivers (sharing simulations through the in-process
cache), prints each artifact, and archives them under
``benchmarks/results/``.

Usage::

    REPRO_REFS=16000 python scripts/reproduce_all.py [results_dir]
"""

import pathlib
import sys
import time

from repro.analysis import figures
from repro.analysis.report import render_figure, render_table
from repro.analysis.tables import pvproxy_budget_table, table1, table2, table3_rows

RESULTS = pathlib.Path(
    sys.argv[1] if len(sys.argv) > 1 else "benchmarks/results"
)


def save(name: str, text: str) -> None:
    RESULTS.mkdir(parents=True, exist_ok=True)
    (RESULTS / f"{name}.txt").write_text(text + "\n")
    print(text)
    print()


def main() -> None:
    started = time.time()
    save("table1", render_table(
        ["parameter", "value"],
        [{"parameter": k, "value": v} for k, v in table1().items()],
        title="Table 1: Base processor configuration",
    ))
    save("table2", render_table(
        ["workload", "category", "footprint_mb", "signatures", "description"],
        table2(), title="Table 2: Workloads",
    ))
    save("table3", render_table(
        ["configuration", "tags", "patterns", "total"],
        table3_rows(), title="Table 3: Predictor storage",
    ))
    save("section4_6_budget", render_table(
        ["component", "bytes"], pvproxy_budget_table(),
        title="Section 4.6: PVProxy space requirements",
    ))
    drivers = [
        ("figure4", figures.figure4),
        ("figure5", figures.figure5),
        ("figure6", figures.figure6),
        ("section4_3_fill_rate", figures.pv_l2_fill_rates),
        ("figure7", figures.figure7),
        ("figure8", figures.figure8),
        ("figure9", figures.figure9),
        ("figure10", figures.figure10),
        ("figure11", figures.figure11),
    ]
    for name, driver in drivers:
        t = time.time()
        save(name, render_figure(driver()))
        print(f"[{name} in {time.time() - t:.0f}s]\n", file=sys.stderr)
    print(f"all artifacts regenerated in {time.time() - started:.0f}s "
          f"-> {RESULTS}", file=sys.stderr)


if __name__ == "__main__":
    main()
