"""Regenerate every table and figure without pytest.

Equivalent to ``pytest benchmarks/ --benchmark-only`` minus the assertions:
runs all experiment drivers through the shared sweep runner, prints each
artifact, and archives them under ``benchmarks/results/``.

With ``--store DIR`` every simulation is persisted to (and reloaded from)
a content-addressed result store, so a second full reproduction is pure
JSON loading; with ``--jobs N`` cache/store misses fan out across a
process pool.

Usage::

    REPRO_REFS=16000 python scripts/reproduce_all.py [results_dir] \
        [--jobs N] [--store DIR]
"""

import argparse
import pathlib
import sys
import time

from repro.analysis import figures
from repro.analysis.bandwidth import bandwidth
from repro.analysis.generality import generality
from repro.analysis.report import render_figure, render_table
from repro.analysis.tables import pvproxy_budget_table, table1, table2, table3_rows
from repro.cli import positive_int
from repro.runner import context as runner_context


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results_dir", nargs="?", default="benchmarks/results",
                        help="where rendered artifacts are archived")
    parser.add_argument("--jobs", type=positive_int, default=None,
                        help="worker processes (default: REPRO_JOBS or 1)")
    parser.add_argument("--store", default=None,
                        help="persistent result-store directory "
                             "(default: REPRO_STORE or none)")
    return parser.parse_args(argv)


def save(results: pathlib.Path, name: str, text: str) -> None:
    results.mkdir(parents=True, exist_ok=True)
    (results / f"{name}.txt").write_text(text + "\n")
    print(text)
    print()


def main(argv=None) -> None:
    args = parse_args(argv)
    results = pathlib.Path(args.results_dir)
    if args.jobs is not None or args.store:
        runner_context.configure(jobs=args.jobs, store=args.store)
    runner = runner_context.get_runner()
    print(
        f"sweep runner: jobs={runner.jobs}, "
        f"store={runner.store.root if runner.store is not None else 'off'}",
        file=sys.stderr,
    )

    started = time.time()
    save(results, "table1", render_table(
        ["parameter", "value"],
        [{"parameter": k, "value": v} for k, v in table1().items()],
        title="Table 1: Base processor configuration",
    ))
    save(results, "table2", render_table(
        ["workload", "category", "footprint_mb", "signatures", "description"],
        table2(), title="Table 2: Workloads",
    ))
    save(results, "table3", render_table(
        ["configuration", "tags", "patterns", "total"],
        table3_rows(), title="Table 3: Predictor storage",
    ))
    save(results, "section4_6_budget", render_table(
        ["component", "bytes"], pvproxy_budget_table(),
        title="Section 4.6: PVProxy space requirements",
    ))
    drivers = [
        ("figure4", figures.figure4),
        ("figure5", figures.figure5),
        ("figure6", figures.figure6),
        ("section4_3_fill_rate", figures.pv_l2_fill_rates),
        ("figure7", figures.figure7),
        ("figure8", figures.figure8),
        ("figure9", figures.figure9),
        ("figure10", figures.figure10),
        ("figure11", figures.figure11),
        ("section6_generality", generality),
        ("bandwidth_sensitivity", bandwidth),
    ]
    for name, driver in drivers:
        t = time.time()
        save(results, name, render_figure(driver()))
        print(f"[{name} in {time.time() - t:.0f}s]\n", file=sys.stderr)
    print(f"all artifacts regenerated in {time.time() - started:.0f}s "
          f"-> {results}", file=sys.stderr)


if __name__ == "__main__":
    main()
