"""Assert the vectorized batch kernel degrades cleanly without numpy.

Run with ``python scripts/check_no_numpy.py`` from the repository root.
Blocks the numpy import, then loads ``repro.sim.batchkernel`` (and just
the two cache modules it depends on) by file path — the full ``repro``
package cannot import without numpy because trace generation requires
it, which is exactly why the kernel's *own* fallback surface is what
this smoke exercises.  The kernel must report itself disabled and
decline to run, leaving the scalar reference loop in charge.
"""

import importlib.util
import pathlib
import sys
import types

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

sys.modules["numpy"] = None  # make ``import numpy`` raise ImportError

for name in ("repro", "repro.memory", "repro.sim"):
    package = types.ModuleType(name)
    package.__path__ = []
    sys.modules[name] = package


def _load(name, relpath):
    spec = importlib.util.spec_from_file_location(name, SRC / relpath)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


_load("repro.memory.addr", "repro/memory/addr.py")
_load("repro.memory.cache", "repro/memory/cache.py")
batchkernel = _load("repro.sim.batchkernel", "repro/sim/batchkernel.py")

assert not batchkernel.HAVE_NUMPY
assert not batchkernel.default_enabled()
assert batchkernel.run_batch(None, 10**6, True) is False
print("batchkernel declines cleanly without numpy")
