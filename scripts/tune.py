"""Parameter-space exploration for one workload (development helper)."""

import sys
from dataclasses import replace

from repro import CMPSimulator, PrefetcherConfig
from repro.workloads import get_workload

REFS = 16_000
WARMUP = 20_000

CONFIGS = [
    ("Inf", PrefetcherConfig.infinite()),
    ("1K", PrefetcherConfig.dedicated(1024)),
    ("16", PrefetcherConfig.dedicated(16)),
    ("8", PrefetcherConfig.dedicated(8)),
    ("PV8", PrefetcherConfig.virtualized(8)),
]


def ladder(profile):
    base = CMPSimulator(profile, PrefetcherConfig.none()).run(REFS, warmup_refs=WARMUP)
    mr = base.uncovered / max(base.l1d_read_accesses, 1)
    l2hr = 1 - base.offchip_reads / max(base.l2_requests, 1)
    print(
        f"  base ipc={base.aggregate_ipc:.3f} mr={mr:.3f} l2_hit~{l2hr:.2f}",
        flush=True,
    )
    for label, cfg in CONFIGS:
        r = CMPSimulator(profile, cfg).run(REFS, warmup_refs=WARMUP)
        print(
            f"  {label:4s} cov={r.coverage:.3f} over={r.overprediction_rate:.3f} "
            f"speedup={r.speedup_vs(base):+.3f} pvfill={r.pv_l2_fill_rate:.3f}",
            flush=True,
        )


if __name__ == "__main__":
    name = sys.argv[1]
    overrides = {}
    for kv in sys.argv[2:]:
        k, v = kv.split("=")
        overrides[k] = type(getattr(get_workload(name), k))(
            float(v) if "." in v else int(v) if v.isdigit() else v
        )
    profile = replace(get_workload(name), **overrides)
    print(name, overrides, flush=True)
    ladder(profile)
