"""Calibration helper: coverage ladder per workload across PHT geometries.

Not part of the library — used during development to tune workload
profiles toward the paper's Figure 4/5/9 shapes, and kept for
reproducibility of the calibration process.
"""

import sys
import time

from repro import CMPSimulator, PrefetcherConfig, get_workload, workload_names

REFS = int(sys.argv[2]) if len(sys.argv) > 2 else 16_000
WARMUP = REFS * 5 // 4

CONFIGS = [
    ("Inf", PrefetcherConfig.infinite()),
    ("1K", PrefetcherConfig.dedicated(1024)),
    ("16", PrefetcherConfig.dedicated(16)),
    ("8", PrefetcherConfig.dedicated(8)),
    ("PV8", PrefetcherConfig.virtualized(8)),
]


def ladder(name: str) -> None:
    base = CMPSimulator(get_workload(name), PrefetcherConfig.none()).run(
        REFS, warmup_refs=WARMUP
    )
    row = [f"{name:7s} ipc0={base.aggregate_ipc:.3f} mr={base.uncovered / max(base.l1d_read_accesses, 1):.2f}"]
    for label, cfg in CONFIGS:
        t = time.time()
        r = CMPSimulator(get_workload(name), cfg).run(REFS, warmup_refs=WARMUP)
        sp = r.speedup_vs(base)
        row.append(
            f"{label}:c={r.coverage:.2f}/o={r.overprediction_rate:.2f}/s={sp:+.2f}"
        )
    print("  ".join(row), flush=True)


if __name__ == "__main__":
    names = [sys.argv[1]] if len(sys.argv) > 1 and sys.argv[1] != "all" else workload_names()
    for name in names:
        ladder(name)
