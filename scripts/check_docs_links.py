"""Validate relative links in README.md and docs/*.md.

Every markdown link target that is not an external URL or a pure anchor
must resolve to an existing file (relative to the file containing the
link).  Anchor fragments on relative links are checked against the
target file's headings.  Exits nonzero listing every broken link, so CI
catches a renamed doc or a stale cross-reference the moment it lands.

Usage: python scripts/check_docs_links.py
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target).  Good enough for these docs —
#: no reference-style links, no angle-bracket autolinks to check.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _anchor(heading: str) -> str:
    """GitHub-style anchor slug of one heading line."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: pathlib.Path) -> set:
    return {_anchor(m.group(1)) for m in HEADING.finditer(path.read_text())}


def check_file(path: pathlib.Path) -> list:
    errors = []
    for match in LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if not base:  # same-file anchor
            if fragment and _anchor(fragment) not in _anchors(path):
                errors.append(f"{path}: broken anchor #{fragment}")
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if _anchor(fragment) not in _anchors(resolved):
                errors.append(
                    f"{path}: broken anchor {target} "
                    f"(no heading for #{fragment} in {base})"
                )
    return errors


def main() -> int:
    files = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    errors = []
    for path in files:
        if path.exists():
            errors.extend(check_file(path))
    if errors:
        print("\n".join(errors), file=sys.stderr)
        return 1
    print(f"docs links ok ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
