"""Virtualized vs. dedicated SMS when DRAM bandwidth is scarce.

The paper argues PV is cheap because its metadata is absorbed on chip
(>98% of PVProxy requests are filled by the L2, Section 4.3).  The
analytic timing model cannot test what that buys: with infinite
bandwidth, extra traffic never costs a cycle.  This example turns on the
contention model and squeezes the DRAM channel count — 4, 2, then 1 —
to show the consequence: virtualized SMS keeps (most of) its speedup even
when off-chip bandwidth is precious, precisely because its predictor
traffic stays on chip.

Usage::

    python examples/bandwidth_pressure.py [refs_per_core]
"""

import sys

from repro import (
    CMPSimulator,
    PrefetcherConfig,
    SystemConfig,
    get_workload,
)

CONFIGS = [
    ("No prefetch", PrefetcherConfig.none()),
    ("SMS dedicated 1K-11a", PrefetcherConfig.dedicated(1024, 11)),
    ("SMS virtualized PV8", PrefetcherConfig.virtualized(8)),
]

CHANNELS = [4, 2, 1]


def main() -> None:
    refs = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    workload = get_workload("Apache")

    print(f"Apache, {refs} refs/core (+ 5/4 warmup), contention model on\n")
    print(f"{'DRAM channels':>14s} " +
          "".join(f"{label:>22s}" for label, _ in CONFIGS) +
          f" {'DRAM util':>10s}")
    for channels in CHANNELS:
        system = SystemConfig.baseline().with_contention(dram_channels=channels)
        cells = []
        base_ipc = None
        util = 0.0
        for _, config in CONFIGS:
            sim = CMPSimulator(workload, config, system=system)
            result = sim.run(refs, warmup_refs=refs * 5 // 4)
            if base_ipc is None:
                base_ipc = result.aggregate_ipc
                cells.append(f"ipc {result.aggregate_ipc:5.2f}")
            else:
                speedup = result.aggregate_ipc / base_ipc - 1.0
                cells.append(f"{speedup:+6.1%}")
            util = max(util, result.dram_utilization)
        print(f"{channels:>14d} " +
              "".join(f"{c:>22s}" for c in cells) + f" {util:>9.1%}")
    print(
        "\nThe virtualized prefetcher tracks the dedicated one at every"
        "\nchannel width: its PVTable traffic is served by the L2, so"
        "\nnarrow channels starve application misses, not predictions."
    )


if __name__ == "__main__":
    main()
