"""Database-server study: how PHT capacity limits commercial workloads.

Reproduces the paper's motivating observation (Section 4.2) for the two
TPC-C database workloads: OLTP needs *large* pattern history tables, so
naively shrinking the table to save SRAM destroys the prefetcher, while
virtualization keeps the large table's coverage with <1KB on chip.

Sweeps the dedicated PHT from 1K sets down to 8 and compares against the
virtualized configuration, per workload.

Usage::

    python examples/database_study.py [refs_per_core]
"""

import sys

from repro import CMPSimulator, PrefetcherConfig, get_workload

WORKLOADS = ["DB2", "Oracle"]
SWEEP = [1024, 256, 64, 16, 8]


def main() -> None:
    refs = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000
    warmup = refs

    for name in WORKLOADS:
        workload = get_workload(name)
        print(f"\n=== {name}: {workload.description}")
        base = CMPSimulator(workload, PrefetcherConfig.none()).run(
            refs, warmup_refs=warmup
        )
        print(f"{'PHT config':>12s} {'entries':>8s} {'coverage':>9s} {'speedup':>8s}")
        for n_sets in SWEEP:
            config = PrefetcherConfig.dedicated(n_sets, assoc=11)
            r = CMPSimulator(workload, config).run(refs, warmup_refs=warmup)
            print(
                f"{config.label:>12s} {n_sets * 11:8d} "
                f"{r.coverage:8.1%} {r.speedup_vs(base):+7.1%}"
            )
        pv = CMPSimulator(workload, PrefetcherConfig.virtualized(8)).run(
            refs, warmup_refs=warmup
        )
        print(
            f"{'PV8 (<1KB)':>12s} {'11264*':>8s} "
            f"{pv.coverage:8.1%} {pv.speedup_vs(base):+7.1%}"
            f"   <- virtualized 1K-set table"
        )
        print("  * logical entries; backing store lives in reserved DRAM")


if __name__ == "__main__":
    main()
