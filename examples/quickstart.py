"""Quickstart: virtualize the SMS prefetcher's pattern history table.

Runs the paper's headline comparison on one workload: no prefetching,
SMS with its large dedicated PHT (59KB of on-chip SRAM per core), and SMS
with the PHT virtualized into the memory hierarchy behind an 889-byte
PVProxy.  Prints coverage, traffic, speedup, and the storage bill.

Usage::

    python examples/quickstart.py [workload] [refs_per_core]
"""

import sys

from repro import CMPSimulator, PrefetcherConfig, get_workload
from repro.core.storage import pht_storage, pvproxy_budget


def main() -> None:
    workload = get_workload(sys.argv[1] if len(sys.argv) > 1 else "Qry1")
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000
    warmup = refs

    configs = [
        PrefetcherConfig.none(),
        PrefetcherConfig.dedicated(1024, assoc=11),
        PrefetcherConfig.virtualized(8),
    ]

    print(f"workload: {workload.name} — {workload.description}")
    print(f"simulating {refs} references/core on a 4-core CMP "
          f"(+{warmup} warmup)\n")

    results = {}
    for config in configs:
        simulator = CMPSimulator(workload, config)
        results[config.label] = simulator.run(refs, warmup_refs=warmup)

    base = results["NoPF"]
    header = f"{'config':10s} {'coverage':>9s} {'IPC':>7s} {'speedup':>8s} {'L2 reqs':>9s}"
    print(header)
    print("-" * len(header))
    for label, r in results.items():
        speedup = r.speedup_vs(base) if label != "NoPF" else 0.0
        print(
            f"{label:10s} {r.coverage:8.1%} {r.aggregate_ipc:7.3f} "
            f"{speedup:+7.1%} {r.l2_requests:9d}"
        )

    dedicated_kb = pht_storage(1024, 11).total_bytes / 1024
    pv_bytes = pvproxy_budget()["total_bytes"]
    print(
        f"\non-chip predictor storage per core: dedicated {dedicated_kb:.3f}KB"
        f" -> virtualized {pv_bytes:.0f}B"
        f" ({dedicated_kb * 1024 / pv_bytes:.0f}x reduction)"
    )
    pv = results["PV8"]
    print(f"PVProxy requests served by the L2: {pv.pv_l2_fill_rate:.1%}")


if __name__ == "__main__":
    main()
