"""PV design-space walk: the knobs Section 2 leaves to the designer.

Explores, on one workload, the PV design decisions the paper discusses:

* PVCache capacity (Section 4.3 picks 8 sets);
* virtualization-aware caches (Section 2.2: drop dirty PV lines at the L2
  rather than spending off-chip bandwidth);
* report-miss-on-fetch (Section 2.2: answer "miss" instead of stalling on
  a PVTable fetch);
* and the L2-size sensitivity of Section 4.5.

Usage::

    python examples/pv_design_space.py [workload] [refs_per_core]
"""

import sys
from dataclasses import replace

from repro import CMPSimulator, PrefetcherConfig, SystemConfig, get_workload


def run(workload, config, refs, system=None):
    return CMPSimulator(workload, config, system=system).run(
        refs, warmup_refs=refs
    )


def main() -> None:
    workload = get_workload(sys.argv[1] if len(sys.argv) > 1 else "Apache")
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000
    print(f"workload: {workload.name}; {refs} refs/core (+ equal warmup)\n")

    reference = run(workload, PrefetcherConfig.dedicated(1024), refs)

    print("PVCache capacity (paper picks 8 sets):")
    print(f"{'sets':>6s} {'coverage':>9s} {'L2 req increase':>16s} {'PVCache hit':>12s}")
    for entries in (2, 4, 8, 16, 32):
        r = run(workload, PrefetcherConfig.virtualized(entries), refs)
        print(
            f"{entries:6d} {r.coverage:8.1%} "
            f"{r.l2_request_increase(reference):15.1%} {r.pvcache_hit_rate:11.1%}"
        )

    print("\nvirtualization-aware caches (drop dirty PV lines at L2):")
    for aware in (False, True):
        system = SystemConfig.baseline()
        system = replace(
            system, hierarchy=replace(system.hierarchy, pv_aware_caches=aware)
        )
        r = run(workload, PrefetcherConfig.virtualized(8), refs, system=system)
        print(
            f"  pv_aware={str(aware):5s} coverage={r.coverage:6.1%} "
            f"pv off-chip writes={r.offchip_pv_writes}"
        )

    print("\nreport-miss-on-fetch (instead of waiting for the PVTable):")
    for report in (False, True):
        config = PrefetcherConfig(
            mode="virtualized", pht_sets=1024, pht_assoc=11,
            pvcache_entries=8, report_miss_on_fetch=report,
        )
        r = run(workload, config, refs)
        print(f"  report_miss={str(report):5s} coverage={r.coverage:6.1%}")

    print("\nL2 capacity sensitivity (off-chip increase vs dedicated SMS):")
    for mb in (2, 4, 8):
        system = SystemConfig.baseline().with_l2(size_bytes=mb * 1024**2)
        ref = run(workload, PrefetcherConfig.dedicated(1024), refs, system=system)
        pv = run(workload, PrefetcherConfig.virtualized(8), refs, system=system)
        inc = pv.offchip_increase(ref)
        print(
            f"  L2={mb}MB  off-chip increase={inc['total']:+6.1%} "
            f"(misses {inc['misses']:+6.1%}, writebacks {inc['writebacks']:+6.1%})"
        )


if __name__ == "__main__":
    main()
