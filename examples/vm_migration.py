"""Live VM migration with predictor state (Section 2.3).

One advantage the paper claims for PV: because predictor metadata lives in
ordinary physical memory, a live VM migration moves it along with the
memory image — a dedicated on-chip predictor would arrive cold on the
destination host and pay its training period again.

This example simulates that scenario end to end:

1. train a virtualized SMS prefetcher on "host A";
2. migrate — flush the PVProxy and drain the L2 so all dirty predictor
   state commits to (migratable) DRAM, then copy the PVTable contents to a
   fresh "host B" machine;
3. compare host B's warm-start coverage against a cold dedicated
   prefetcher that lost its tables in the move.

Usage::

    python examples/vm_migration.py [workload] [refs_per_core]
"""

import sys

from repro import CMPSimulator, PrefetcherConfig, get_workload
from repro.core.virtualized import VirtualizedPredictorTable


def migrate(source: CMPSimulator, destination: CMPSimulator) -> int:
    """Move all PVTable state from one machine to another."""
    # 1. Flush on-chip predictor state into the memory image.
    for pht in source.phts:
        pht.proxy.flush()
    source.hierarchy.drain_l2()
    # 2. Copy the memory pages backing each PVTable (the part of the
    #    migration the hypervisor performs anyway).
    moved = 0
    for src, dst in zip(source.phts, destination.phts):
        dst.proxy.table._mem = {
            k: list(v) for k, v in src.proxy.table._mem.items()
        }
        moved += len(src.proxy.table._mem)
    return moved


def main() -> None:
    workload = get_workload(sys.argv[1] if len(sys.argv) > 1 else "Qry17")
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000

    # Host A: train a virtualized prefetcher.
    host_a = CMPSimulator(workload, PrefetcherConfig.virtualized(8))
    host_a.run(refs, warmup_refs=0)

    # Host B: an identical machine, predictor state migrated in.
    host_b = CMPSimulator(workload, PrefetcherConfig.virtualized(8))
    pages = migrate(host_a, host_b)

    # A competitor machine with a *dedicated* prefetcher: its SRAM tables
    # cannot migrate, so it starts cold.
    cold = CMPSimulator(workload, PrefetcherConfig.dedicated(1024))

    after_b = host_b.run(refs, warmup_refs=0)
    after_cold = cold.run(refs, warmup_refs=0)

    print(f"workload: {workload.name}")
    print(f"migrated {pages} PVTable sets ({pages * 64 / 1024:.0f}KB of metadata)\n")
    print(f"{'machine':34s} {'coverage (post-migration window)':>34s}")
    print("-" * 70)
    print(f"{'host B (virtualized, migrated)':34s} {after_b.coverage:33.1%}")
    print(f"{'dedicated prefetcher (cold start)':34s} {after_cold.coverage:33.1%}")
    gain = after_b.coverage - after_cold.coverage
    print(f"\nwarm-start advantage from migrating predictor state: {gain:+.1%}")


if __name__ == "__main__":
    main()
