"""Virtualizing a different predictor: a branch target buffer.

Section 6 of the paper expects branch *target* prediction to "naturally
benefit from predictor virtualization".  Because the PV framework only
requires the :class:`PredictorTable` store/retrieve interface, the BTB
engine in :mod:`repro.prefetch.btb` runs unmodified over either a
dedicated table or a virtualized one — the same property the SMS
virtualization relies on.

This example trains both on a synthetic branch trace with a heavy-tailed
working set (big commercial codes overflow on-chip BTBs) and reports hit
rates and on-chip storage.

Usage::

    python examples/virtualize_btb.py [branches]
"""

import sys

import numpy as np

from repro.core.pvproxy import PVProxyConfig
from repro.core.pvtable import PVTable
from repro.core.virtualized import VirtualizedPredictorTable
from repro.memory.addr import AddressSpace
from repro.memory.hierarchy import HierarchyConfig, MemorySystem
from repro.prefetch.btb import BranchTargetBuffer, btb_layout
from repro.prefetch.pht import DedicatedPHT


def branch_trace(n: int, population: int = 6000, seed: int = 7):
    """A Zipf-popular set of (branch PC, target) pairs."""
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, population + 1) ** 0.7
    weights /= weights.sum()
    pcs = 0x40_0000 + np.arange(population, dtype=np.int64) * 12
    targets = 0x80_0000 + rng.integers(0, 1 << 20, population) * 4
    picks = rng.choice(population, size=n, p=weights)
    return [(int(pcs[i]), int(targets[i])) for i in picks]


def evaluate(btb: BranchTargetBuffer, trace) -> float:
    for step, (pc, target) in enumerate(trace):
        predicted = btb.predict(pc, now=step * 50)
        btb.update(pc, target, predicted, now=step * 50)
    return btb.stats.accuracy


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    trace = branch_trace(n)

    # A small dedicated BTB (the SRAM budget a core might actually spend).
    small = BranchTargetBuffer(DedicatedPHT(n_sets=64, assoc=4, index_bits=16))
    small_bits = small.table.storage_bits()

    # A large dedicated BTB (what the workload wants: 4K entries).
    large = BranchTargetBuffer(DedicatedPHT(n_sets=512, assoc=8, index_bits=16))
    large_bits = large.table.storage_bits()

    # The large BTB, virtualized: same geometry, entries live in DRAM/L2.
    hierarchy = MemorySystem(HierarchyConfig(n_cores=1))
    space = AddressSpace()
    layout = btb_layout(n_sets=512, assoc=8)
    table = PVTable(layout, space.reserve(layout.table_bytes))
    virtual = BranchTargetBuffer(
        VirtualizedPredictorTable(
            0, table, hierarchy, PVProxyConfig(pvcache_entries=8)
        )
    )
    virtual_bits = virtual.table.storage_bits()

    rows = [
        ("small dedicated (256 entries)", small, small_bits),
        ("large dedicated (4K entries)", large, large_bits),
        ("large virtualized (PVCache 8)", virtual, virtual_bits),
    ]
    print(f"replaying {n} branches over {6000} static branch sites\n")
    print(f"{'BTB configuration':32s} {'accuracy':>9s} {'on-chip':>9s}")
    print("-" * 53)
    for label, btb, bits in rows:
        accuracy = evaluate(btb, trace)
        print(f"{label:32s} {accuracy:8.1%} {bits / 8 / 1024:8.2f}KB")

    fills = hierarchy.pv_l2_fill_rate()
    print(f"\nvirtualized BTB requests served on-chip by the L2: {fills:.1%}")


if __name__ == "__main__":
    main()
