"""Per-process predictor tables in a multiprogrammed system (Section 2.3).

Two "processes" with different access behaviour time-share one core.  With
a single shared predictor table they evict each other's patterns on every
quantum; with per-process PVTables (one PVStart value per process, swapped
by the context-switch code) each process keeps its own table and suffers
no interference — the flexibility the paper argues virtualization adds
almost for free.

Usage::

    python examples/multiprogrammed.py [quanta] [lookups_per_quantum]
"""

import sys

import numpy as np

from repro.core.context import PredictorContextManager
from repro.core.pvproxy import PVProxy, PVProxyConfig
from repro.core.pvtable import PVTable
from repro.memory.addr import AddressSpace
from repro.memory.hierarchy import HierarchyConfig, MemorySystem
from repro.prefetch.pht import sms_pht_layout


class Process:
    """A synthetic process exercising a signature working set."""

    def __init__(self, pid: str, base_index: int, n_signatures: int, seed: int):
        self.pid = pid
        rng = np.random.default_rng(seed)
        self.indices = (base_index + rng.permutation(n_signatures)).tolist()
        self.value = (hash(pid) & 0xFFFF) or 1
        self.hits = 0
        self.lookups = 0

    def run_quantum(self, proxy: PVProxy, lookups: int, now: int) -> int:
        for step in range(lookups):
            index = self.indices[step % len(self.indices)]
            result = proxy.lookup(index, now)
            self.lookups += 1
            if result.hit and result.value == self.value:
                self.hits += 1
            proxy.store(index, self.value, now)
            now += 60
        return now

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def simulate(per_process_tables: bool, quanta: int, lookups: int):
    hierarchy = MemorySystem(HierarchyConfig(n_cores=1))
    space = AddressSpace()
    layout = sms_pht_layout()
    proxy = PVProxy(
        0, PVTable(layout, space.reserve(layout.table_bytes)),
        hierarchy, PVProxyConfig(pvcache_entries=8),
    )
    manager = PredictorContextManager(proxy, layout, space)
    # Both processes use overlapping PHT indices -> they conflict when the
    # table is shared.
    procs = [Process("db", 0, 600, 1), Process("web", 200, 600, 2)]
    now = 0
    for quantum in range(quanta):
        proc = procs[quantum % 2]
        if per_process_tables:
            manager.switch(proc.pid)
        now = proc.run_quantum(proxy, lookups, now) + 10_000
    return procs, manager


def main() -> None:
    quanta = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    lookups = int(sys.argv[2]) if len(sys.argv) > 2 else 800

    print(f"{quanta} scheduling quanta, {lookups} predictor ops each\n")
    for per_process in (False, True):
        label = "per-process PVTables" if per_process else "shared table"
        procs, manager = simulate(per_process, quanta, lookups)
        rates = ", ".join(f"{p.pid}: {p.hit_rate:.1%}" for p in procs)
        extra = (
            f" (switches: {manager.stats.switches}, "
            f"tables: {manager.stats.tables_created})"
            if per_process else ""
        )
        print(f"{label:22s} predictor hit rates -> {rates}{extra}")

    print(
        "\nPer-process tables keep each process's predictions intact across"
        "\ncontext switches; the only hardware change is reloading PVStart."
    )


if __name__ == "__main__":
    main()
