"""SMS vs. a classic stride prefetcher on commercial-style workloads.

The paper's premise (Section 1): only the simplest prefetchers ship in
real processors, yet commercial workloads need the sophisticated ones with
big tables.  This example makes that concrete: a PC-stride prefetcher — the
kind of simple design that does ship — against SMS, whose spatial patterns
capture what strides cannot, and against SMS virtualized so its table cost
no longer blocks adoption.

Usage::

    python examples/sms_vs_stride.py [refs_per_core]
"""

import sys

from repro import CMPSimulator, PrefetcherConfig, get_workload, workload_names

CONFIGS = [
    ("Stride (256-entry RPT)", PrefetcherConfig.stride()),
    ("SMS dedicated 1K-11a", PrefetcherConfig.dedicated(1024, 11)),
    ("SMS virtualized PV8", PrefetcherConfig.virtualized(8)),
]


def main() -> None:
    refs = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    names = ["Apache", "Oracle", "Qry1"]

    print(f"{refs} refs/core (+ equal warmup), 4-core CMP\n")
    header = f"{'workload':8s} " + "".join(f"{label:>24s}" for label, _ in CONFIGS)
    print(header + "   (coverage / speedup)")
    print("-" * len(header))
    for name in names:
        workload = get_workload(name)
        base = CMPSimulator(workload, PrefetcherConfig.none()).run(
            refs, warmup_refs=refs
        )
        cells = []
        for _, config in CONFIGS:
            r = CMPSimulator(workload, config).run(refs, warmup_refs=refs)
            cells.append(f"{r.coverage:7.1%} / {r.speedup_vs(base):+6.1%}")
        print(f"{name:8s} " + "".join(f"{c:>24s}" for c in cells))

    print(
        "\nSMS needs its large pattern table to beat the stride prefetcher;"
        "\nvirtualization delivers that table for <1KB of dedicated SRAM."
    )


if __name__ == "__main__":
    main()
