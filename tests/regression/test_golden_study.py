"""Golden regression for the declarative study pipeline.

Runs the shipped smoke matrix (``studies/smoke.toml``, pinned tiny
scale) end-to-end and asserts both artifacts against checked-in goldens:

* ``study_smoke.jsonl`` — the per-run records (floats to 1e-9 relative);
* ``study_smoke.md``    — the rendered markdown report, byte-for-byte
  (report floats are fixed at four decimals, so this is stable).

Regenerate after an intentional modelling change with::

    PYTHONPATH=src python -m pytest tests/regression --update-golden
"""

import json
import pathlib

import pytest

from repro.study.executor import run_study, write_jsonl
from repro.study.matrix import shipped_matrix
from repro.study.report import load_records, render_report

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def update_golden(request):
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="module")
def smoke_records():
    return run_study(shipped_matrix("smoke"))


def _approx_equal(actual, expected, path=""):
    if isinstance(expected, float) and isinstance(actual, (int, float)):
        assert actual == pytest.approx(expected, rel=1e-9, abs=1e-12), (
            f"{path}: {actual} != golden {expected}"
        )
    elif isinstance(expected, dict):
        assert isinstance(actual, dict) and set(actual) == set(expected), (
            f"{path}: keys changed"
        )
        for key in expected:
            _approx_equal(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list) and len(actual) == len(expected), (
            f"{path}: length changed"
        )
        for i, (a, e) in enumerate(zip(actual, expected)):
            _approx_equal(a, e, f"{path}[{i}]")
    else:
        assert actual == expected, f"{path}: {actual!r} != golden {expected!r}"


def test_smoke_study_records_golden(smoke_records, update_golden, tmp_path):
    path = GOLDEN_DIR / "study_smoke.jsonl"
    if update_golden or not path.is_file():
        if not update_golden:
            pytest.fail(
                f"missing golden {path}; regenerate with "
                "`python -m pytest tests/regression --update-golden`"
            )
        write_jsonl(smoke_records, path)
    golden = load_records(path)
    # JSON-normalize the fresh records (tuples -> lists etc.)
    actual = [json.loads(json.dumps(r, sort_keys=True)) for r in smoke_records]
    _approx_equal(actual, golden, "records")


def test_smoke_study_report_golden(smoke_records, update_golden):
    matrix = shipped_matrix("smoke")
    report = render_report(matrix, smoke_records)
    path = GOLDEN_DIR / "study_smoke.md"
    if update_golden or not path.is_file():
        if not update_golden:
            pytest.fail(
                f"missing golden {path}; regenerate with "
                "`python -m pytest tests/regression --update-golden`"
            )
        path.write_text(report)
    assert report == path.read_text()


def test_smoke_study_checks_all_pass(smoke_records):
    from repro.study.checks import evaluate_checks
    from repro.study.executor import records_to_runs

    outcomes = evaluate_checks(
        shipped_matrix("smoke"), records_to_runs(smoke_records)
    )
    assert outcomes, "smoke matrix declares no checks"
    failed = [c.name for c in outcomes if not c.passed]
    assert not failed, f"smoke checks failed: {failed}"
