"""Golden-metrics regression suite.

Re-runs the headline artifacts — Figure 4 (coverage potential), Figure 9
(speedups), Table 3 / the Section 4.6 PVProxy budget (predictor storage),
the Section 6 generality scenarios (BTB + last-value predictor, dedicated
vs virtualized) and the bandwidth-sensitivity sweep (PV under finite DRAM
channels, contention model) — and asserts their metrics against checked-in
golden JSON under ``tests/regression/golden/``.  The goldens pin the default bench scale, so
any change to the simulator, the workload generators or the sweep/runner
machinery that shifts a number is caught here byte-for-byte (floats to
1e-9 relative).

Regenerate after an intentional modelling change with::

    PYTHONPATH=src python -m pytest tests/regression --update-golden

In a full-suite run these simulations are warm: the bench drivers resolve
the same specs through the shared sweep runner first.
"""

import json
import pathlib
from dataclasses import asdict

import pytest

from repro.analysis import figures
from repro.analysis.bandwidth import bandwidth
from repro.analysis.generality import generality
from repro.analysis.tables import pvproxy_budget_table, table3_rows
from repro.sim.config import PrefetcherConfig
from repro.sim.experiment import ExperimentScale, run_experiment

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Representative workloads the generality golden pins (the Figure 5 set;
#: the full driver defaults to all eight).
GENERALITY_WORKLOADS = ["Apache", "Oracle", "Qry17"]

#: Scale the goldens were generated at when the env does not say otherwise.
#: (Matches ExperimentScale defaults = the bench suite's default scale.)


@pytest.fixture(scope="module")
def update_golden(request):
    return request.config.getoption("--update-golden")


def _resolve(name: str, payload_fn, update: bool):
    """Golden payload + fresh payload; regenerates when asked.

    ``payload_fn(scale)`` computes the current payload at a given scale.
    Returns ``(golden, actual)`` — identical (same object) right after an
    update, so update runs trivially pass.
    """
    path = GOLDEN_DIR / f"{name}.json"
    golden = None
    if path.is_file() and not update:
        golden = json.loads(path.read_text())
    scale = (
        ExperimentScale(**golden["scale"])
        if golden is not None and "scale" in golden
        else ExperimentScale.from_env()
    )
    actual = payload_fn(scale)
    if golden is None:
        if not update:
            pytest.fail(
                f"missing golden {path}; regenerate with "
                "`python -m pytest tests/regression --update-golden`"
            )
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(actual, indent=1, sort_keys=True) + "\n")
        golden = actual
    return golden, actual


def _assert_rows_match(actual_rows, golden_rows):
    assert len(actual_rows) == len(golden_rows)
    for actual, golden in zip(actual_rows, golden_rows):
        assert set(actual) == set(golden)
        for column, expected in golden.items():
            value = actual[column]
            if isinstance(expected, float):
                assert value == pytest.approx(expected, rel=1e-9, abs=1e-12), (
                    f"{column}: {value} != golden {expected} in {golden}"
                )
            else:
                assert value == expected, f"{column} drifted in {golden}"


# ------------------------------------------------------------------ Table 3


def test_table3_storage_golden(update_golden):
    def payload(_scale):
        return {
            "table3": table3_rows(),
            "pvproxy_budget": pvproxy_budget_table(),
        }

    golden, actual = _resolve("table3", payload, update_golden)
    _assert_rows_match(actual["table3"], golden["table3"])
    _assert_rows_match(actual["pvproxy_budget"], golden["pvproxy_budget"])

    # Headline storage invariants: the dedicated 1K-11 PHT costs 59.125KB;
    # the PVProxy keeps less than 1KB per core on chip.
    by_config = {row["configuration"]: row for row in actual["table3"]}
    assert by_config["1K-11"]["total"] == "59.125KB"
    budget = {row["component"]: row["bytes"] for row in actual["pvproxy_budget"]}
    total = budget["Total per core"]
    assert 0 < total < 1024


# ----------------------------------------------------------------- Figure 4


def test_figure4_coverage_golden(update_golden):
    def payload(scale):
        fig = figures.figure4(scale=scale)
        return {"scale": asdict(scale), "rows": fig.rows}

    golden, actual = _resolve("figure4", payload, update_golden)
    _assert_rows_match(actual["rows"], golden["rows"])


# ----------------------------------------------------------------- Figure 9


def test_figure9_speedup_golden(update_golden):
    def payload(scale):
        fig = figures.figure9(scale=scale)
        offchip = {}
        for workload in sorted({r["workload"] for r in fig.rows}):
            sms = run_experiment(
                workload, PrefetcherConfig.dedicated(1024, 11), scale=scale
            )
            pv = run_experiment(
                workload, PrefetcherConfig.virtualized(8), scale=scale
            )
            offchip[workload] = {
                "SMS-1K": sms.offchip_transfers,
                "PV8": pv.offchip_transfers,
            }
        return {"scale": asdict(scale), "rows": fig.rows, "offchip": offchip}

    golden, actual = _resolve("figure9", payload, update_golden)
    _assert_rows_match(actual["rows"], golden["rows"])
    assert actual["offchip"] == golden["offchip"]

    # Speedup-ordering invariants (paper Section 4.4): the big dedicated
    # table beats the small ones on average, and the virtualized PV-8
    # design tracks SMS-1K far more closely than SMS-8 does.
    def mean_speedup(config):
        values = [r["speedup"] for r in actual["rows"] if r["config"] == config]
        assert values, f"no rows for {config}"
        return sum(values) / len(values)

    sms1k, sms8, pv8 = map(mean_speedup, ["1K-11a", "8-11a", "PV8"])
    assert sms1k > sms8
    assert pv8 > sms8
    assert abs(sms1k - pv8) < (sms1k - sms8)

    # Off-chip traffic direction: virtualization adds traffic — PV-8 never
    # moves fewer blocks off chip than the dedicated reference.
    for workload, row in actual["offchip"].items():
        assert row["PV8"] >= row["SMS-1K"], workload


# ---------------------------------------------------------------- Section 6


def test_generality_golden(update_golden):
    def payload(scale):
        fig = generality(workloads=GENERALITY_WORKLOADS, scale=scale)
        return {"scale": asdict(scale), "rows": fig.rows}

    golden, actual = _resolve("generality", payload, update_golden)
    _assert_rows_match(actual["rows"], golden["rows"])

    rows = actual["rows"]

    def metric(workload, scenario, column):
        matches = [
            r for r in rows
            if r["workload"] == workload and r["scenario"] == scenario
        ]
        assert len(matches) == 1, (workload, scenario)
        return matches[0][column]

    for workload in GENERALITY_WORKLOADS:
        # Each predictor class: the virtualized full-size table tracks the
        # dedicated full-size table far more closely than the budget-sized
        # dedicated table does (the paper's generality claim).
        for quality, kinds in [
            ("sms_coverage", "SMS"),
            ("btb_hit_rate", "BTB"),
            ("lvp_coverage", "LVP"),
        ]:
            budget = metric(workload, f"{kinds} budget", quality)
            dedicated = metric(workload, f"{kinds} dedicated", quality)
            virtualized = metric(workload, f"{kinds} virtualized", quality)
            assert dedicated >= budget, (workload, kinds)
            assert abs(dedicated - virtualized) <= max(
                dedicated - budget, 1e-9
            ), (workload, kinds)

        # Only virtualized scenarios produce PV traffic, and the shared
        # space carries all three predictor classes' traffic at once.
        for kinds in ("SMS", "BTB", "LVP"):
            assert metric(workload, f"{kinds} dedicated", "pv_requests") == 0
        shared = metric(workload, "Shared PV space", "pv_requests")
        for kinds in ("SMS", "BTB", "LVP"):
            single = metric(workload, f"{kinds} virtualized", "pv_requests")
            assert 0 < single < shared, (workload, kinds)


# --------------------------------------------------------------- Bandwidth


def test_bandwidth_golden(update_golden):
    def payload(scale):
        fig = bandwidth(scale=scale)
        return {"scale": asdict(scale), "rows": fig.rows}

    golden, actual = _resolve("bandwidth", payload, update_golden)
    _assert_rows_match(actual["rows"], golden["rows"])

    rows = actual["rows"]
    assert rows, "bandwidth sweep produced no rows"

    def row(workload, channels, config):
        matches = [
            r for r in rows
            if r["workload"] == workload
            and r["channels"] == channels
            and r["config"] == config
        ]
        assert len(matches) == 1, (workload, channels, config)
        return matches[0]

    workloads = sorted({r["workload"] for r in rows})
    widths = sorted({r["channels"] for r in rows})
    narrowest = widths[0]

    # Contention actually happened: every run moved bits over finite
    # channels, and queuing delays register as such.
    for r in rows:
        assert r["dram_utilization"] > 0, r
    assert any(r["dram_queue_cycles"] > 0 for r in rows)

    for workload in workloads:
        # Paper Section 4.3 under pressure: PV metadata is absorbed on
        # chip even when channels are scarce.
        for channels in widths:
            assert row(workload, channels, "PV8")["pv_l2_fill_rate"] > 0.98, (
                workload, channels
            )
        # The headline claim: virtualized SMS keeps a positive speedup
        # over no-prefetching at the narrowest channel setting.
        assert row(workload, narrowest, "PV8")["speedup"] > 0, workload
        # Monotonicity: narrowing DRAM channels never improves IPC.
        for config in ("NoPF", "1K-11a", "PV8"):
            ipcs = [row(workload, c, config)["ipc"] for c in widths]
            assert ipcs == sorted(ipcs), (workload, config, ipcs)
        # Scarcer bandwidth means busier channels.
        utils = [row(workload, c, "NoPF")["dram_utilization"] for c in widths]
        assert utils == sorted(utils, reverse=True), (workload, utils)


# ------------------------------------------------------- Bandwidth, sampled


#: Pinned scale of the sampled-contended golden.  ``window_refs`` matches
#: the sampling period, so the full-detail run's batch-means windows line
#: up with the sampled run's measurement grain.
SAMPLED_SCALE = ExperimentScale(
    refs_per_core=4_000, warmup_refs=2_000, window_refs=1_000
)

SAMPLED_WORKLOAD = "Apache"
SAMPLED_CHANNELS = [2, 1]


def test_bandwidth_sampled_golden(update_golden):
    """The two-speed sampled simulator under DRAM contention.

    Pins the sampled estimates byte-for-byte (like every golden) and, on
    every sweep point, checks the statistical-quality contract the fast
    path is allowed to exist by: the sampled IPC estimate falls inside
    the full-detail run's 95% confidence interval.
    """
    from repro.analysis.bandwidth import BANDWIDTH_CONFIGS, contention_for
    from repro.sim.sampling import SamplingConfig

    # Denser than ``for_scale``'s sweep default: contended runs carry DRAM
    # queue and bank state that the short default warm ramp undersamples
    # (cf. the convergence property in tests/sim/test_sampled.py), so the
    # statistical-quality golden observes a quarter of each period in
    # detail after a longer functional-warming ramp.
    sampling = SamplingConfig.smarts(
        period_refs=1_000, detail_refs=250, warm_refs=120, functional_refs=300
    )

    def sweep_point(config, width, use_sampling):
        return run_experiment(
            SAMPLED_WORKLOAD, config, scale=SAMPLED_SCALE,
            contention=contention_for(width),
            sampling=sampling if use_sampling else None,
        )

    def payload(_env_scale):
        rows = []
        for width in SAMPLED_CHANNELS:
            base = sweep_point(PrefetcherConfig.none(), width, True)
            for config in BANDWIDTH_CONFIGS:
                r = sweep_point(config, width, True)
                rows.append(
                    {
                        "workload": SAMPLED_WORKLOAD,
                        "channels": width,
                        "config": config.label,
                        "ipc": r.aggregate_ipc,
                        "speedup": r.speedup_vs(base),
                        "windows": len(r.window_ipcs),
                    }
                )
        return {
            "scale": asdict(SAMPLED_SCALE),
            "sampling": asdict(sampling),
            "rows": rows,
        }

    golden, actual = _resolve("bandwidth_sampled", payload, update_golden)
    assert actual["sampling"] == golden["sampling"]
    _assert_rows_match(actual["rows"], golden["rows"])

    for width in SAMPLED_CHANNELS:
        for config in BANDWIDTH_CONFIGS:
            sampled = sweep_point(config, width, True)
            full = sweep_point(config, width, False)
            stats = full.ipc_ci()
            assert stats.contains(sampled.aggregate_ipc), (
                f"{config.label}@{width}ch: sampled IPC "
                f"{sampled.aggregate_ipc:.4f} outside full-detail 95% CI "
                f"[{stats.lower:.4f}, {stats.upper:.4f}]"
            )
            # Sampling must actually be sampling: the estimate came from
            # short detailed windows, not a full-detail run in disguise.
            assert sampled.is_sampled and not full.is_sampled
            assert sampled.sampled_detail_refs < SAMPLED_SCALE.refs_per_core
