"""Two-speed sampled simulation (SMARTS fast-forward + windows).

Pinned guarantees:

* a disabled :class:`SamplingConfig` is invisible — bitwise-identical
  ``SimResult`` payloads to a simulator that never heard of sampling,
  analytic and contended alike;
* sampled runs are deterministic, and the warm-state checkpoint path is
  too: restoring a cached snapshot produces exactly the result computing
  the warm-up fresh does, so process history can never change a result;
* the shared demand-only warm-up is reused across predictor
  configurations (the point of keying it by hierarchy geometry only);
* the sampled IPC estimate converges into the matched-pair CI of the
  full-detail run as the detailed fraction of each period grows
  (hypothesis property, seeded workloads).
"""

from __future__ import annotations

from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import PrefetcherConfig, SystemConfig
from repro.sim.sampling import SamplingConfig
from repro.sim.simulator import WARM_STATE_CACHE, CMPSimulator, WarmStateCache
from repro.workloads.registry import get_workload


def _system(sampling=None, contended=False):
    system = SystemConfig.baseline()
    if contended:
        system = system.with_contention(dram_channels=1)
    if sampling is not None:
        system = system.with_sampling(sampling)
    return system


def _run(config, system=None, refs=1200, warmup=600, window=300):
    sim = CMPSimulator(get_workload("Qry1"), config, system=system)
    return sim.run(refs, warmup_refs=warmup, window_refs=window)


SMALL = SamplingConfig.smarts(
    period_refs=400, detail_refs=60, warm_refs=30, functional_refs=100
)


class TestDisabledIsInvisible:
    def test_bitwise_identical_analytic(self):
        plain = _run(PrefetcherConfig.virtualized(8))
        explicit = _run(
            PrefetcherConfig.virtualized(8),
            system=_system(SamplingConfig.disabled()),
        )
        assert asdict(plain) == asdict(explicit)

    def test_bitwise_identical_contended(self):
        plain = _run(PrefetcherConfig.virtualized(8), system=_system(contended=True))
        explicit = _run(
            PrefetcherConfig.virtualized(8),
            system=_system(SamplingConfig.disabled(), contended=True),
        )
        assert asdict(plain) == asdict(explicit)

    def test_disabled_result_reports_no_sampling(self):
        result = _run(PrefetcherConfig.none())
        assert not result.is_sampled
        assert result.sampled_periods == 0


class TestSamplingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingConfig.smarts(period_refs=0)
        with pytest.raises(ValueError):
            SamplingConfig.smarts(period_refs=100, detail_refs=0)
        with pytest.raises(ValueError):
            SamplingConfig.smarts(period_refs=100, detail_refs=80, warm_refs=40)
        # Disabled configs skip validation entirely (all-default instance).
        SamplingConfig(enabled=False, period_refs=0)

    def test_layout_shrinks_back_to_front(self):
        cfg = SamplingConfig.smarts(
            period_refs=1000, detail_refs=100, warm_refs=50, functional_refs=200
        )
        assert cfg.layout(1000) == (650, 200, 50, 100)
        # Short trailing period: skip goes first, then the ramp, then warm.
        assert cfg.layout(350) == (0, 200, 50, 100)
        assert cfg.layout(120) == (0, 0, 20, 100)
        assert cfg.layout(80) == (0, 0, 0, 80)

    def test_for_scale_is_enabled_and_valid(self):
        cfg = SamplingConfig.for_scale(16_000)
        assert cfg.enabled
        assert cfg.detail_refs + cfg.warm_refs <= cfg.period_refs


class TestSampledRun:
    def test_accounting(self):
        result = _run(
            PrefetcherConfig.virtualized(8), system=_system(SMALL), refs=1200
        )
        assert result.is_sampled
        assert result.sampled_periods == 3
        assert (
            result.sampled_detail_refs
            + result.sampled_warm_refs
            + result.sampled_functional_refs
            + result.sampled_skipped_refs
            == 1200
        )
        assert len(result.window_ipcs) == 3
        assert result.aggregate_ipc > 0
        # Measurement-only estimator: elapsed is the slowest core's summed
        # measurement windows.
        assert result.elapsed_cycles == max(result.per_core_cycles)

    def test_deterministic_across_runs_and_checkpoint_hits(self):
        WARM_STATE_CACHE.clear()
        first = _run(PrefetcherConfig.virtualized(8), system=_system(SMALL))
        hits_before = WARM_STATE_CACHE.hits
        second = _run(PrefetcherConfig.virtualized(8), system=_system(SMALL))
        assert WARM_STATE_CACHE.hits > hits_before  # second run restored
        assert asdict(first) == asdict(second)

    def test_checkpoint_restore_equals_fresh_compute(self, monkeypatch):
        """A warm-cache hit can never change a result."""
        WARM_STATE_CACHE.clear()
        cached = _run(PrefetcherConfig.virtualized(8), system=_system(SMALL))
        cached2 = _run(PrefetcherConfig.virtualized(8), system=_system(SMALL))
        monkeypatch.setattr(
            "repro.sim.simulator.WARM_STATE_CACHE", WarmStateCache(max_entries=0)
        )
        fresh = _run(PrefetcherConfig.virtualized(8), system=_system(SMALL))
        assert asdict(cached) == asdict(fresh)
        assert asdict(cached2) == asdict(fresh)

    def test_shared_warm_reused_across_predictor_configs(self):
        WARM_STATE_CACHE.clear()
        _run(PrefetcherConfig.none(), system=_system(SMALL))
        misses = WARM_STATE_CACHE.misses
        hits = WARM_STATE_CACHE.hits
        _run(PrefetcherConfig.virtualized(8), system=_system(SMALL))
        _run(PrefetcherConfig.dedicated(64, 11), system=_system(SMALL))
        assert WARM_STATE_CACHE.misses == misses  # geometry unchanged
        assert WARM_STATE_CACHE.hits == hits + 2

    def test_own_warm_trains_predictors(self):
        own = SamplingConfig.smarts(
            period_refs=400, detail_refs=60, warm_refs=30,
            functional_refs=100, shared_warm=False,
        )
        WARM_STATE_CACHE.clear()
        misses = WARM_STATE_CACHE.misses
        result = _run(PrefetcherConfig.dedicated(64, 11), system=_system(own))
        assert WARM_STATE_CACHE.misses == misses  # never consulted
        assert result.is_sampled

    def test_sampled_contended_runs(self):
        result = _run(
            PrefetcherConfig.virtualized(8),
            system=_system(SMALL, contended=True),
        )
        assert result.is_sampled
        assert result.aggregate_ipc > 0

    def test_streaming_fallback_bitwise_equal(self):
        """Timed spans may stream (REPRO_PRECOMPILE=0); fast-forward always
        uses compiled slices — the unified cursor keeps both aligned."""
        WARM_STATE_CACHE.clear()
        compiled = _run(PrefetcherConfig.virtualized(8), system=_system(SMALL))
        WARM_STATE_CACHE.clear()
        sim = CMPSimulator(
            get_workload("Qry1"), PrefetcherConfig.virtualized(8),
            system=_system(SMALL),
        )
        sim.precompile = False
        streamed = sim.run(1200, warmup_refs=600, window_refs=300)
        assert asdict(compiled) == asdict(streamed)

    def test_full_functional_warming_layout(self):
        """functional_refs big enough leaves no skip at all (pure SMARTS)."""
        cfg = SamplingConfig.smarts(
            period_refs=400, detail_refs=60, warm_refs=30, functional_refs=400
        )
        result = _run(PrefetcherConfig.virtualized(8), system=_system(cfg))
        assert result.sampled_skipped_refs == 0
        assert result.sampled_functional_refs == (400 - 90) * 3


class TestWarmStateCache:
    def test_lru_bound_and_stats(self):
        cache = WarmStateCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)  # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("c") == 3
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        assert stats["misses"] == 1

    def test_zero_entries_disables(self):
        cache = WarmStateCache(max_entries=0)
        cache.put("a", 1)
        assert cache.get("a") is None


class TestConvergence:
    """Sampled IPC converges into the full run's CI as detail grows."""

    @given(
        workload=st.sampled_from(["Qry1", "Apache", "Zeus"]),
        seed=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=6, deadline=None)
    def test_sampled_ipc_converges_into_full_ci(self, workload, seed):
        profile = get_workload(workload)
        period = 500
        full = CMPSimulator(
            profile, PrefetcherConfig.virtualized(8),
            system=SystemConfig.baseline(), seed=seed,
        ).run(2000, warmup_refs=800, window_refs=period)
        ci = full.ipc_ci()

        def sampled_ipc(detail, warm, functional):
            cfg = SamplingConfig.smarts(
                period_refs=period, detail_refs=detail, warm_refs=warm,
                functional_refs=functional,
            )
            sim = CMPSimulator(
                profile, PrefetcherConfig.virtualized(8),
                system=SystemConfig.baseline().with_sampling(cfg), seed=seed,
            )
            return sim.run(2000, warmup_refs=800).aggregate_ipc

        sparse = sampled_ipc(40, 20, 60)
        dense = sampled_ipc(200, 100, 200)  # period fully observed
        err_sparse = abs(sparse - full.aggregate_ipc)
        err_dense = abs(dense - full.aggregate_ipc)
        # The fully-observed layout must land inside the full run's 95% CI
        # (tiny slack for the short-window accounting grain)...
        slack = 0.05 * full.aggregate_ipc
        assert ci.lower - slack <= dense <= ci.upper + slack, (
            workload, seed, dense, (ci.lower, ci.upper)
        )
        # ...and growing the observed fraction must not push the estimate
        # away from the truth by more than noise.
        assert err_dense <= err_sparse + 0.1 * full.aggregate_ipc, (
            workload, seed, err_sparse, err_dense
        )
