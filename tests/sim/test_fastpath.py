"""Equivalence suite for the hot-path overhaul.

Two independent guarantees are pinned here:

* the array-backed cache (flat per-set tag/stamp/flag lists, PR 4) makes
  exactly the decisions — hit/miss, LRU victim choice, flag handling,
  counters — of the previous reference implementation (``OrderedDict`` of
  per-line objects), checked property-style over random access streams;
* trace precompilation (``CMPSimulator.precompile``) is invisible to
  results: a precompiled run and a streaming-generator run of the same
  experiment produce bitwise-identical ``SimResult`` payloads, and a
  compiled trace is exactly the record list the generator would stream.

The golden regression suite (``tests/regression``) runs with trace
precompilation on (the default), so the checked-in goldens double as a
bitwise end-to-end check of the compiled path at full scale.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import asdict, dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import AccessKind, Cache, CacheGeometry
from repro.sim.config import PrefetcherConfig, SystemConfig
from repro.sim.simulator import CMPSimulator
from repro.workloads.generator import TraceCache, WorkloadGenerator
from repro.workloads.registry import get_workload

BLOCK = 64
N_SETS = 4
ASSOC = 2
GEOMETRY = dict(size_bytes=N_SETS * ASSOC * BLOCK, assoc=ASSOC, block_size=BLOCK)


# --------------------------------------------------------------------------
# Reference model: the pre-refactor cache (OrderedDict of per-line objects).
# --------------------------------------------------------------------------


@dataclass
class _RefLine:
    block_addr: int
    dirty: bool = False
    prefetched: bool = False
    is_pv: bool = False
    owner: int = -1


class ReferenceCache:
    """Behavioural twin of the original object-based LRU cache model."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._sets = [OrderedDict() for _ in range(geometry.n_sets)]
        self.stats = {
            "hits": 0, "misses": 0, "fills": 0, "evictions": 0,
            "dirty_evictions": 0, "invalidations": 0,
            "covered_misses": 0, "overpredictions": 0,
        }
        self.evicted_log = []

    def _locate(self, addr):
        bidx = addr // self.geometry.block_size
        return self._sets[bidx % self.geometry.n_sets], bidx // self.geometry.n_sets

    def access(self, addr, kind, write=False):
        ways, tag = self._locate(addr)
        line = ways.get(tag)
        self.stats["hits" if line is not None else "misses"] += 1
        if line is None:
            return None
        ways.move_to_end(tag)
        if write:
            line.dirty = True
        if line.prefetched and kind in (
            AccessKind.DEMAND_READ, AccessKind.DEMAND_WRITE, AccessKind.IFETCH
        ):
            if kind is AccessKind.DEMAND_READ:
                self.stats["covered_misses"] += 1
            line.prefetched = False
        return line

    def fill(self, addr, dirty=False, prefetched=False, is_pv=False, owner=-1):
        ways, tag = self._locate(addr)
        existing = ways.get(tag)
        if existing is not None:
            ways.move_to_end(tag)
            existing.dirty = existing.dirty or dirty
            self.stats["fills"] += 1
            return None
        victim = None
        if len(ways) >= self.geometry.assoc:
            _, victim = ways.popitem(last=False)
            self.stats["evictions"] += 1
            if victim.dirty:
                self.stats["dirty_evictions"] += 1
            if victim.prefetched:
                self.stats["overpredictions"] += 1
            self.evicted_log.append((victim.block_addr, victim.dirty))
        block = (addr // self.geometry.block_size) * self.geometry.block_size
        ways[tag] = _RefLine(block, dirty, prefetched, is_pv, owner)
        self.stats["fills"] += 1
        return victim

    def invalidate(self, addr):
        ways, tag = self._locate(addr)
        line = ways.pop(tag, None)
        if line is None:
            return None
        self.stats["invalidations"] += 1
        if line.prefetched:
            self.stats["overpredictions"] += 1
        # Listeners fire on invalidations too (SMS generations end on them).
        self.evicted_log.append((line.block_addr, line.dirty))
        return line

    def resident(self):
        return {line.block_addr for ways in self._sets for line in ways.values()}


# Note: the reference `fill` counts fills on the already-resident path too —
# mirroring would hide a divergence, so the property below compares fills
# only on the paths both models count (see _apply).


_KINDS = st.sampled_from([
    AccessKind.DEMAND_READ, AccessKind.DEMAND_WRITE, AccessKind.IFETCH,
    AccessKind.PREFETCH, AccessKind.PV_READ, AccessKind.WRITEBACK,
])
# Small address range over few sets: constant conflict/eviction pressure.
_ADDRS = st.integers(min_value=0, max_value=N_SETS * ASSOC * 4 - 1).map(
    lambda block: block * BLOCK + (block % BLOCK)
)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("access"), _ADDRS, _KINDS, st.booleans()),
        st.tuples(st.just("fill"), _ADDRS, st.booleans(), st.booleans(),
                  st.booleans()),
        st.tuples(st.just("invalidate"), _ADDRS),
        st.tuples(st.just("touch"), _ADDRS),
    ),
    min_size=1,
    max_size=250,
)


class TestCacheEquivalence:
    """Array-backed decisions == reference-model decisions, op by op."""

    @given(ops=_OPS)
    @settings(max_examples=200, deadline=None)
    def test_random_streams_match(self, ops):
        cache = Cache("dut", CacheGeometry(**GEOMETRY))
        ref = ReferenceCache(CacheGeometry(**GEOMETRY))
        evictions = []
        cache.eviction_listeners.append(
            lambda e: evictions.append((e.block_addr, e.dirty))
        )
        for op in ops:
            self._apply(cache, ref, op)
        assert set(cache.resident_blocks()) == ref.resident()
        assert evictions == ref.evicted_log
        st_ = cache.stats
        assert st_.hits == ref.stats["hits"]
        assert st_.misses == ref.stats["misses"]
        assert st_.evictions == ref.stats["evictions"]
        assert st_.dirty_evictions == ref.stats["dirty_evictions"]
        assert st_.invalidations == ref.stats["invalidations"]
        assert st_.covered_misses == ref.stats["covered_misses"]
        assert st_.overpredictions == ref.stats["overpredictions"]

    @staticmethod
    def _apply(cache, ref, op):
        kind = op[0]
        if kind == "access":
            _, addr, access_kind, write = op
            got = cache.access(addr, access_kind, write=write)
            want = ref.access(addr, access_kind, write=write)
            assert (got is None) == (want is None), (addr, access_kind)
            if got is not None:
                assert got.block_addr == want.block_addr
                assert got.dirty == want.dirty
                assert got.prefetched == want.prefetched
        elif kind == "fill":
            _, addr, dirty, prefetched, is_pv = op
            got = cache.fill(addr, dirty=dirty, prefetched=prefetched,
                             is_pv=is_pv, owner=1)
            want = ref.fill(addr, dirty=dirty, prefetched=prefetched,
                            is_pv=is_pv, owner=1)
            assert (got is None) == (want is None), addr
            if got is not None:
                assert got.block_addr == want.block_addr
                assert got.dirty == want.dirty
                assert got.prefetched == want.prefetched
                assert got.is_pv == want.is_pv
        elif kind == "invalidate":
            _, addr = op
            got = cache.invalidate(addr)
            want = ref.invalidate(addr)
            assert (got is None) == (want is None), addr
            if got is not None:
                assert got.block_addr == want.block_addr
                assert got.dirty == want.dirty
        else:  # touch: LRU refresh in both models
            _, addr = op
            cache.touch(addr)
            ways, tag = ref._locate(addr)
            if tag in ways:
                ways.move_to_end(tag)


# --------------------------------------------------------------------------
# Trace precompilation equivalence.
# --------------------------------------------------------------------------


def _run(config, system=None, precompile=True):
    sim = CMPSimulator(get_workload("Qry1"), config, system=system)
    sim.precompile = precompile
    return asdict(sim.run(800, warmup_refs=400, window_refs=200))


class TestPrecompiledEquivalence:
    def test_precompile_is_default(self):
        sim = CMPSimulator(get_workload("Qry1"), PrefetcherConfig.none())
        assert sim.precompile is True

    def test_sms_bitwise_equal(self):
        compiled = _run(PrefetcherConfig.dedicated(64, 11))
        streamed = _run(PrefetcherConfig.dedicated(64, 11), precompile=False)
        assert compiled == streamed

    def test_pv_bitwise_equal(self):
        compiled = _run(PrefetcherConfig.virtualized(8))
        streamed = _run(PrefetcherConfig.virtualized(8), precompile=False)
        assert compiled == streamed

    def test_contended_bitwise_equal(self):
        system = SystemConfig.baseline().with_contention(dram_channels=1)
        compiled = _run(PrefetcherConfig.virtualized(8), system=system)
        streamed = _run(
            PrefetcherConfig.virtualized(8), system=system, precompile=False
        )
        assert compiled == streamed

    def test_compiled_trace_is_the_streamed_stream(self):
        profile = get_workload("Apache")
        compiled = WorkloadGenerator(profile, core=2, seed=7).compile_trace(600)
        streamed = list(WorkloadGenerator(profile, core=2, seed=7).records(600))
        assert compiled == streamed

    def test_trace_cache_extends_prefix_consistently(self):
        profile = get_workload("Oracle")
        cache = TraceCache(max_records=10_000)
        short = cache.get(profile, 0, 3, None, 200)[:200]
        longer = cache.get(profile, 0, 3, None, 500)
        assert longer[:200] == short
        oneshot = WorkloadGenerator(profile, core=0, seed=3).compile_trace(500)
        assert longer[:500] == oneshot
        assert cache.hits == 1 and cache.misses == 1

    def test_trace_cache_shares_across_configurations(self):
        from repro.workloads.generator import TRACE_CACHE

        TRACE_CACHE.clear()
        before = TRACE_CACHE.misses
        _run(PrefetcherConfig.none())
        misses_first = TRACE_CACHE.misses - before
        assert misses_first == 4  # one compile per core
        hits_before = TRACE_CACHE.hits
        _run(PrefetcherConfig.dedicated(64, 11))
        assert TRACE_CACHE.misses == before + misses_first  # no recompile
        assert TRACE_CACHE.hits > hits_before

    def test_toggling_precompile_between_runs_stays_aligned(self):
        """Both drive modes share one stream cursor: flipping the flag
        between runs neither replays nor skips records."""
        def two_phase(first_mode, second_mode):
            sim = CMPSimulator(
                get_workload("Qry1"), PrefetcherConfig.dedicated(64, 11)
            )
            sim.precompile = first_mode
            sim.run(300)
            sim.precompile = second_mode
            return asdict(sim.run(300))

        baseline = two_phase(True, True)
        assert two_phase(True, False) == baseline
        assert two_phase(False, True) == baseline
        assert two_phase(False, False) == baseline

    def test_overflow_continuation_matches_streaming(self, monkeypatch):
        """Runs longer than the trace-cache bound switch to per-simulator
        continuation generators mid-run and stay bitwise identical."""
        from repro.workloads.generator import TRACE_CACHE

        TRACE_CACHE.clear()
        # 1200 records/core needed; the warmup drive fits the bound, the
        # windowed drives overflow — exercising the skip-ahead transition.
        monkeypatch.setattr(TRACE_CACHE, "max_records", 500)
        compiled = _run(PrefetcherConfig.dedicated(64, 11))
        streamed = _run(PrefetcherConfig.dedicated(64, 11), precompile=False)
        assert compiled == streamed

    def test_oversized_requests_bypass_the_cache(self):
        profile = get_workload("Qry1")
        cache = TraceCache(max_records=100)
        trace = cache.get(profile, 0, 1, None, 300)
        assert len(trace) >= 300
        assert cache.hits == 0 and cache.misses == 0
