"""Multi-predictor scenarios: the engine registry through the simulator."""

import pytest

from repro.core.virtualized import VirtualizedPredictorTable
from repro.sim.config import EngineConfig, PrefetcherConfig
from repro.sim.engines import ENGINE_KINDS, build_engine
from repro.sim.simulator import CMPSimulator
from repro.workloads.registry import get_workload

REFS = 2000
WARMUP = 1000


def run(config, workload="Qry1", refs=REFS, warmup=WARMUP):
    sim = CMPSimulator(get_workload(workload), config)
    return sim.run(refs, warmup_refs=warmup)


class TestEngineConfig:
    def test_labels(self):
        assert EngineConfig.btb().label == "BTB"
        assert EngineConfig.btb("virtualized").label == "BTBpv8"
        assert EngineConfig.lvp("infinite").label == "LVPinf"
        assert EngineConfig.btb(n_sets=32, assoc=4).label == "BTB32x4"

    def test_prefetcher_label_appends_engines(self):
        config = PrefetcherConfig.virtualized(8).with_engines(
            EngineConfig.btb("virtualized"), EngineConfig.lvp()
        )
        assert config.label == "PV8+BTBpv8+LVP"

    def test_invalid_table_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(kind="btb", table="huge")

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig.btb(n_sets=48)

    def test_duplicate_kinds_rejected(self):
        with pytest.raises(ValueError):
            PrefetcherConfig.none().with_engines(
                EngineConfig.btb(), EngineConfig.btb("virtualized")
            )

    def test_engine_dicts_coerced(self):
        config = PrefetcherConfig(
            mode="none", engines=[{"kind": "btb", "table": "virtualized"}]
        )
        assert config.engines == (EngineConfig.btb("virtualized"),)


class TestRegistry:
    def test_builtin_kinds(self):
        assert {"btb", "lvp"} <= set(ENGINE_KINDS)

    def test_unknown_kind_fails_at_assembly(self):
        config = PrefetcherConfig.none().with_engines(EngineConfig(kind="tlb"))
        with pytest.raises(ValueError, match="unknown engine kind"):
            CMPSimulator(get_workload("Qry1"), config)


class TestBTBScenarios:
    def test_dedicated_btb_predicts(self):
        r = run(PrefetcherConfig.none().with_engines(EngineConfig.btb()))
        stats = r.engine_stats["btb"]
        assert stats["lookups"] > 0
        assert 0.0 < stats["hit_rate"] <= 1.0
        assert stats["updates"] == stats["lookups"]

    def test_virtualized_btb_generates_pv_traffic(self):
        r = run(
            PrefetcherConfig.none().with_engines(EngineConfig.btb("virtualized"))
        )
        stats = r.engine_stats["btb"]
        assert r.l2_pv_requests > 0
        assert stats["pv_fetches"] > 0
        assert 0.0 < stats["pvcache_hit_rate"] < 1.0

    def test_virtualized_tracks_dedicated(self):
        ded = run(PrefetcherConfig.none().with_engines(EngineConfig.btb()))
        pv = run(
            PrefetcherConfig.none().with_engines(EngineConfig.btb("virtualized"))
        )
        assert pv.engine_stats["btb"]["hit_rate"] == pytest.approx(
            ded.engine_stats["btb"]["hit_rate"], abs=0.05
        )

    def test_dedicated_btb_produces_no_pv_traffic(self):
        r = run(PrefetcherConfig.none().with_engines(EngineConfig.btb()))
        assert r.l2_pv_requests == 0
        assert "pv_fetches" not in r.engine_stats["btb"]


class TestLVPScenarios:
    def test_lvp_predicts_confidently(self):
        r = run(PrefetcherConfig.none().with_engines(EngineConfig.lvp()))
        stats = r.engine_stats["lvp"]
        assert stats["lookups"] > 0
        assert 0.0 < stats["coverage"] < 1.0
        assert 0.0 < stats["accuracy"] <= 1.0

    def test_virtualized_tracks_dedicated(self):
        ded = run(PrefetcherConfig.none().with_engines(EngineConfig.lvp()))
        pv = run(
            PrefetcherConfig.none().with_engines(EngineConfig.lvp("virtualized"))
        )
        assert pv.engine_stats["lvp"]["accuracy"] == pytest.approx(
            ded.engine_stats["lvp"]["accuracy"], abs=0.05
        )

    def test_infinite_table_at_least_as_good(self):
        inf = run(PrefetcherConfig.none().with_engines(EngineConfig.lvp("infinite")))
        tiny = run(
            PrefetcherConfig.none().with_engines(
                EngineConfig.lvp(n_sets=2, assoc=1)
            )
        )
        assert (
            inf.engine_stats["lvp"]["coverage"]
            >= tiny.engine_stats["lvp"]["coverage"]
        )


class TestSharedPVSpace:
    CONFIG = PrefetcherConfig.virtualized(8).with_engines(
        EngineConfig.btb("virtualized"), EngineConfig.lvp("virtualized")
    )

    def test_three_predictor_classes_coexist(self):
        r = run(self.CONFIG)
        assert r.covered > 0 or r.prefetches_issued > 0  # SMS active
        assert r.engine_stats["btb"]["lookups"] > 0
        assert r.engine_stats["lvp"]["lookups"] > 0

    def test_pvtables_share_reserved_space_without_collision(self):
        sim = CMPSimulator(get_workload("Qry1"), self.CONFIG)
        tables = [p.proxy.table for p in sim.phts]
        tables += [
            rt.table.proxy.table
            for per_core in sim.engines
            for rt in per_core
            if isinstance(rt.table, VirtualizedPredictorTable)
        ]
        assert len(tables) == 12  # 3 predictor classes x 4 cores
        ranges = sorted(
            (t.pv_start, t.pv_start + t.layout.table_bytes) for t in tables
        )
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end <= start  # disjoint reservations
        assert all(sim.address_space.is_reserved(t.pv_start) for t in tables)

    def test_combined_pv_traffic_exceeds_single_engine(self):
        shared = run(self.CONFIG)
        sms_only = run(PrefetcherConfig.virtualized(8))
        assert shared.l2_pv_requests > sms_only.l2_pv_requests
        assert shared.pv_pattern_buffer_peak >= 0

    def test_deterministic(self):
        a = run(self.CONFIG)
        b = run(self.CONFIG)
        assert a.engine_stats == b.engine_stats
        assert a.l2_pv_requests == b.l2_pv_requests


class TestWarmupBoundary:
    def test_engine_counters_reset_after_warmup(self):
        r = run(PrefetcherConfig.none().with_engines(EngineConfig.btb()))
        # At most one branch event per post-warmup record per core; without
        # the reset the warmup events would be counted too.
        assert r.engine_stats["btb"]["lookups"] <= REFS * 4


class TestEngineAssembly:
    def test_engines_attach_alongside_stride(self):
        config = PrefetcherConfig.stride().with_engines(EngineConfig.btb())
        r = run(config)
        assert r.prefetches_issued > 0
        assert r.engine_stats["btb"]["lookups"] > 0

    def test_default_geometry_from_registry(self):
        sim = CMPSimulator(
            get_workload("Qry1"),
            PrefetcherConfig.none().with_engines(EngineConfig.btb()),
        )
        table = sim.engines[0][0].table
        assert table.geometry.n_sets == ENGINE_KINDS["btb"].default_sets
        assert table.geometry.assoc == ENGINE_KINDS["btb"].default_assoc
