"""Contention-model invariants.

The refactor's contract, straight from the design notes:

(a) contention disabled (the default) is the analytic model — results are
    **bitwise** identical whether the knob is absent or explicitly off;
(b) narrowing DRAM channels or L2 banks never *improves* aggregate IPC;
(c) MSHR coalescing/occupancy never exceeds capacity, and contended runs
    replay deterministically — including through the parallel SweepRunner.
"""

import pytest

from repro.memory.contention import ContentionConfig
from repro.memory.main_memory import MainMemory
from repro.runner.serialize import canonical_result_json
from repro.runner.spec import ExperimentScale, ExperimentSpec
from repro.runner.sweep import SweepRunner
from repro.sim.config import PrefetcherConfig, SystemConfig
from repro.sim.simulator import CMPSimulator
from repro.workloads.registry import get_workload

SCALE = ExperimentScale(refs_per_core=1500, warmup_refs=800, window_refs=150)


def _run(prefetcher, system=None, workload="Apache", refs=1500, warmup=800):
    sim = CMPSimulator(get_workload(workload), prefetcher, system=system)
    return sim.run(refs, warmup_refs=warmup)


def _contended(channels=2, **kw):
    return SystemConfig.baseline().with_contention(
        dram_channels=channels, **kw
    )


class TestConfigValidation:
    def test_defaults_are_off(self):
        assert not ContentionConfig().enabled
        assert not SystemConfig.baseline().hierarchy.contention.enabled

    @pytest.mark.parametrize("field,value", [
        ("dram_channels", 0),
        ("dram_service_cycles", 0),
        ("l2_bank_busy_cycles", 0),
        ("mshr_entries", 0),
    ])
    def test_rejects_non_positive(self, field, value):
        with pytest.raises(ValueError):
            ContentionConfig(**{field: value})

    def test_narrow_builder(self):
        cfg = ContentionConfig.narrow(1)
        assert cfg.enabled and cfg.dram_channels == 1


class TestDisabledIsAnalytic:
    """(a): the knob's mere existence changes nothing."""

    @pytest.mark.parametrize("prefetcher", [
        PrefetcherConfig.none(),
        PrefetcherConfig.virtualized(8),
        PrefetcherConfig.stride(),
    ])
    def test_disabled_bitwise_equal_to_default(self, prefetcher):
        default = _run(prefetcher)
        explicit = _run(
            prefetcher,
            system=SystemConfig.baseline().with_contention(
                ContentionConfig(enabled=False)
            ),
        )
        assert canonical_result_json(default) == canonical_result_json(explicit)

    def test_disabled_run_reports_no_contention(self):
        r = _run(PrefetcherConfig.virtualized(8))
        assert r.dram_utilization == 0.0
        assert r.dram_busy_cycles == 0
        assert r.bank_conflict_cycles == 0.0
        assert r.queue_stall_cycles == 0.0
        assert r.mshr_allocations == 0

    def test_spec_hash_distinguishes_contention(self):
        plain = ExperimentSpec.build("Apache", PrefetcherConfig.none(), SCALE)
        contended = ExperimentSpec.build(
            "Apache", PrefetcherConfig.none(), SCALE,
            contention=ContentionConfig.narrow(1),
        )
        assert plain.key != contended.key
        # Round-trip through the dict form preserves the key.
        assert ExperimentSpec.from_dict(contended.to_dict()).key == contended.key


class TestMonotonicity:
    """(b): fewer resources can only hurt aggregate IPC."""

    @pytest.mark.parametrize("workload", ["Apache", "Qry17"])
    def test_narrowing_dram_channels(self, workload):
        ipcs = [
            _run(PrefetcherConfig.virtualized(8),
                 system=_contended(channels=c), workload=workload).aggregate_ipc
            for c in (4, 2, 1)
        ]
        assert ipcs[0] >= ipcs[1] >= ipcs[2], ipcs

    def test_narrowing_l2_banks(self):
        from dataclasses import replace

        ipcs = []
        for banks in (8, 2, 1):
            system = _contended(channels=4)
            system = replace(
                system, hierarchy=replace(system.hierarchy, l2_banks=banks)
            )
            ipcs.append(_run(PrefetcherConfig.none(), system=system).aggregate_ipc)
        assert ipcs[0] >= ipcs[1] >= ipcs[2], ipcs

    def test_contended_never_faster_than_analytic(self):
        analytic = _run(PrefetcherConfig.none()).aggregate_ipc
        contended = _run(
            PrefetcherConfig.none(), system=_contended(channels=1)
        ).aggregate_ipc
        assert contended <= analytic

    def test_contention_registers_in_metrics(self):
        r = _run(PrefetcherConfig.virtualized(8), system=_contended(channels=1))
        assert r.dram_utilization > 0
        assert r.dram_busy_cycles > 0
        assert r.queue_stall_cycles > 0
        assert r.mshr_allocations > 0


class TestMSHRBounds:
    """(c): the bounded miss path honors its capacity."""

    def test_peak_occupancy_within_capacity(self):
        for entries in (2, 4, 16):
            system = SystemConfig.baseline().with_contention(
                dram_channels=2, mshr_entries=entries
            )
            r = _run(PrefetcherConfig.virtualized(8), system=system)
            assert 0 < r.mshr_peak_occupancy <= entries

    def test_tiny_mshr_rejects_prefetches(self):
        system = SystemConfig.baseline().with_contention(
            dram_channels=2, mshr_entries=1
        )
        r = _run(PrefetcherConfig.virtualized(8), system=system)
        assert r.mshr_rejected > 0
        assert r.mshr_peak_occupancy == 1

    def test_contended_run_is_deterministic(self):
        system = _contended(channels=1)
        a = _run(PrefetcherConfig.virtualized(8), system=system)
        b = _run(PrefetcherConfig.virtualized(8), system=system)
        assert canonical_result_json(a) == canonical_result_json(b)


class TestParallelDeterminism:
    """(c): the SweepRunner replays contended runs bit-identically."""

    def test_sweep_runner_matches_inline(self):
        specs = [
            ExperimentSpec.build(
                "Apache", config, SCALE,
                contention=ContentionConfig.narrow(channels),
            )
            for channels in (2, 1)
            for config in (PrefetcherConfig.none(), PrefetcherConfig.virtualized(8))
        ]
        inline = [spec.execute() for spec in specs]
        parallel = SweepRunner(jobs=2, use_cache=False).run(specs)
        for spec, a, b in zip(specs, inline, parallel):
            assert canonical_result_json(a) == canonical_result_json(b), spec.key


class TestChannelModel:
    """The DRAM channel queue in isolation."""

    def test_untimed_read_is_fixed_latency(self):
        mem = MainMemory(latency=100, channels=2)
        assert mem.read(0) == 100
        assert mem.busy_cycles == 0

    def test_back_to_back_reads_queue(self):
        mem = MainMemory(latency=100, block_size=64, channels=1,
                         service_cycles=32)
        assert mem.read(0, now=0) == 100          # empty channel
        assert mem.read(64, now=0) == 132         # behind one transfer
        assert mem.read(128, now=0) == 164        # behind two
        assert mem.queued_requests == 2
        assert mem.busy_cycles == 96

    def test_backlog_drains_with_time(self):
        mem = MainMemory(latency=100, block_size=64, channels=1,
                         service_cycles=32)
        mem.read(0, now=0)
        assert mem.read(64, now=1000) == 100      # backlog long gone
        assert mem.queue_cycles == 0.0

    def test_interleaving_spreads_channels(self):
        mem = MainMemory(latency=100, block_size=64, channels=2,
                         service_cycles=32)
        assert mem.read(0, now=0) == 100          # channel 0
        assert mem.read(64, now=0) == 100         # channel 1: no queue
        assert mem.read(128, now=0) == 132        # channel 0 again: queues

    def test_writes_consume_bandwidth(self):
        mem = MainMemory(latency=100, block_size=64, channels=1,
                         service_cycles=32)
        mem.write(0, now=0)
        assert mem.read(64, now=0) == 132
        assert mem.utilization(64) == 1.0

    def test_reset_counters_keeps_schedule(self):
        mem = MainMemory(latency=100, block_size=64, channels=1,
                         service_cycles=32)
        mem.read(0, now=0)
        mem.reset_counters()
        assert mem.busy_cycles == 0 and mem.reads == 0
        # The in-flight transfer still occupies the channel.
        assert mem.read(64, now=0) == 132
