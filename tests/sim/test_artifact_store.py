"""The artifact store as a tier under WARM_STATE_CACHE and TraceCache.

Pinned guarantees:

* the store is invisible when off (the default): nothing on disk, no
  counter movement, results bitwise identical to a store-free process;
* a cold process restoring warm state and traces from a populated store
  produces bitwise-identical ``SimResult`` payloads *and* machine state
  vs recomputing everything — persistence can never change a result;
* corruption at any artifact falls back to recompute with identical
  results (and quarantines the damaged file);
* a restored trace extends past its persisted prefix by materializing
  the generator and continuing the identical stream;
* sweep workers (forked process backend) populate one shared store a
  later inline invocation hits.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.prefetch.regions import SpatialRegionGeometry
from repro.runner import artifacts
from repro.runner.artifacts import ArtifactStore, trace_key_id
from repro.sim.config import PrefetcherConfig, SystemConfig
from repro.sim.sampling import SamplingConfig
from repro.sim.simulator import WARM_STATE_CACHE, CMPSimulator
from repro.workloads.generator import TRACE_CACHE, TraceCache, WorkloadGenerator
from repro.workloads.registry import get_workload

SAMPLING = SamplingConfig.smarts(
    period_refs=400, detail_refs=60, warm_refs=30, functional_refs=100
)
REGION = SpatialRegionGeometry()


@pytest.fixture
def store(tmp_path):
    """A fresh active store; caches cleared so every run starts cold."""
    store = ArtifactStore(tmp_path / "artifacts")
    artifacts.set_active(store)
    WARM_STATE_CACHE.clear()
    TRACE_CACHE.clear()
    yield store
    artifacts.set_active(None)
    WARM_STATE_CACHE.clear()
    TRACE_CACHE.clear()


def _state(sim):
    """Complete post-run machine state, for bitwise comparison."""
    h = sim.hierarchy
    caches = [*h.l1d, *h.l1i, h.l2]
    return {
        "caches": [
            (c._tick, c._tags, c._stamps, c._meta, vars(c.stats))
            for c in caches
        ],
        "presence": dict(h._l1_presence),
        "hstats": vars(h.stats),
        "last_iblock": list(sim._last_iblock),
        "trace_pos": list(sim._trace_pos),
        "mem": (h.memory.reads, h.memory.writes),
    }


def _sampled_run(workload="Qry1", config=None, seed=1):
    sim = CMPSimulator(
        get_workload(workload),
        config or PrefetcherConfig.virtualized(8),
        system=SystemConfig.baseline().with_sampling(SAMPLING),
        seed=seed,
    )
    result = sim.run(2_000, warmup_refs=800)
    return asdict(result), _state(sim)


class TestOffByDefault:
    def test_no_store_resolved_under_pytest(self):
        # conftest strips REPRO_ARTIFACTS for the whole session.
        assert artifacts.active_store() is None

    def test_runs_identical_with_and_without_store(self, store, tmp_path):
        warm_result, warm_state = _sampled_run()
        artifacts.set_active(None)
        WARM_STATE_CACHE.clear()
        TRACE_CACHE.clear()
        off_result, off_state = _sampled_run()
        assert off_result == warm_result
        assert off_state == warm_state


class TestColdVsWarmBitwise:
    def test_restore_equals_recompute(self, store):
        cold_result, cold_state = _sampled_run()
        assert store.writes > 0
        # Second cold process (both in-memory caches emptied): everything
        # the store can serve comes from disk.
        WARM_STATE_CACHE.clear()
        TRACE_CACHE.clear()
        warm_result, warm_state = _sampled_run()
        assert store.warm_hits >= 1
        assert store.trace_hits >= 1
        assert warm_result == cold_result
        assert warm_state == cold_state

    def test_warm_checkpoint_shared_across_configs(self, store):
        _sampled_run(config=PrefetcherConfig.none())
        warm_writes = store.stats()["on_disk"]["warm"]["entries"]
        WARM_STATE_CACHE.clear()
        TRACE_CACHE.clear()
        _sampled_run(config=PrefetcherConfig.virtualized(8))
        # The demand-only warm-up is predictor-independent: the second
        # configuration restored the first one's checkpoint.
        assert store.warm_hits >= 1
        assert store.stats()["on_disk"]["warm"]["entries"] == warm_writes


class TestCorruptionFallback:
    def _damage_all(self, store, kind):
        damaged = 0
        for root in store.roots:
            for path in root.glob(f"{kind}/??/*.bin"):
                path.write_bytes(b"\x00garbage")
                damaged += 1
        return damaged

    @pytest.mark.parametrize("kind", ["warm", "trace"])
    def test_recompute_identical_after_corruption(self, store, kind):
        cold_result, cold_state = _sampled_run()
        assert self._damage_all(store, kind) > 0
        WARM_STATE_CACHE.clear()
        TRACE_CACHE.clear()
        again_result, again_state = _sampled_run()
        assert again_result == cold_result
        assert again_state == cold_state
        assert store.quarantined > 0
        # The recompute re-persisted healthy artifacts over the wreckage.
        WARM_STATE_CACHE.clear()
        TRACE_CACHE.clear()
        quarantined_before = store.quarantined
        third_result, _ = _sampled_run()
        assert third_result == cold_result
        assert store.quarantined == quarantined_before


class TestTraceCacheTier:
    def test_miss_restores_from_store(self, store):
        profile = get_workload("Apache")
        fresh = TraceCache(max_records=10_000)
        expected = fresh.get(profile, 0, 5, REGION, 300)
        assert fresh.store_misses >= 1
        cold = TraceCache(max_records=10_000)
        got = cold.get(profile, 0, 5, REGION, 300)
        assert cold.store_hits == 1
        assert cold.misses == 1  # in-memory miss, served from disk
        assert got == expected

    def test_extension_beyond_persisted_prefix(self, store):
        profile = get_workload("Apache")
        TraceCache(max_records=10_000).get(profile, 0, 5, REGION, 200)
        cold = TraceCache(max_records=10_000)
        assert cold.get(profile, 0, 5, REGION, 150) is not None  # restored
        longer = cold.get(profile, 0, 5, REGION, 450)
        reference = WorkloadGenerator(
            profile, core=0, seed=5, region=REGION
        ).compile_trace(450)
        assert longer == reference
        # The extension was written behind: a third cache restores 450.
        third = TraceCache(max_records=10_000)
        assert third.get(profile, 0, 5, REGION, 450) == reference
        assert third.store_hits == 1

    def test_oversized_requests_use_store_without_caching(self, store):
        profile = get_workload("Apache")
        tiny = TraceCache(max_records=100)
        first = tiny.get(profile, 0, 5, REGION, 250)
        assert tiny.stats()["records"] == 0  # not cached in memory
        again = tiny.get(profile, 0, 5, REGION, 250)
        assert again == first
        assert tiny.store_hits == 1

    def test_counters_stay_zero_without_store(self):
        artifacts.set_active(None)
        cache = TraceCache(max_records=10_000)
        cache.get(get_workload("Apache"), 0, 5, REGION, 100)
        stats = cache.stats()
        assert stats["store_hits"] == 0
        assert stats["store_misses"] == 0


class TestSweepFabricSharing:
    def test_forked_workers_populate_shared_store(self, store, tmp_path):
        from repro.runner.spec import ExperimentScale, ExperimentSpec
        from repro.runner.sweep import SweepRunner

        scale = ExperimentScale(
            refs_per_core=1_200, warmup_refs=600, window_refs=300
        )
        specs = [
            ExperimentSpec.build(w, c, scale=scale)
            for w in ("Qry1", "Apache")
            for c in (PrefetcherConfig.none(), PrefetcherConfig.virtualized(8))
        ]
        runner = SweepRunner(jobs=2, backend="process")
        computed = runner.run(specs)
        stats = store.stats()
        # The workers (not this process) wrote trace artifacts into the
        # shared store as a side effect of computing.
        assert stats["on_disk"]["trace"]["entries"] > 0
        # A cold inline process resolves the same streams from disk.
        from repro.sim import experiment

        experiment.clear_cache()
        TRACE_CACHE.clear()
        WARM_STATE_CACHE.clear()
        inline = SweepRunner(jobs=1, backend="inline").run(specs)
        assert store.trace_hits > 0
        assert [asdict(r) for r in inline] == [asdict(r) for r in computed]
