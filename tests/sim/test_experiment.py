"""The cached experiment runner."""

import pytest

from repro.sim.config import PrefetcherConfig
from repro.sim.experiment import ExperimentScale, clear_cache, run_experiment

SMALL = ExperimentScale(refs_per_core=1200, warmup_refs=600, window_refs=400)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestCaching:
    def test_same_spec_is_cached(self):
        a = run_experiment("Qry1", PrefetcherConfig.none(), scale=SMALL)
        b = run_experiment("Qry1", PrefetcherConfig.none(), scale=SMALL)
        assert a is b

    def test_cache_can_be_bypassed(self):
        a = run_experiment("Qry1", PrefetcherConfig.none(), scale=SMALL)
        b = run_experiment(
            "Qry1", PrefetcherConfig.none(), scale=SMALL, use_cache=False
        )
        assert a is not b
        assert a.uncovered == b.uncovered  # still deterministic

    def test_distinct_specs_not_conflated(self):
        a = run_experiment("Qry1", PrefetcherConfig.none(), scale=SMALL)
        b = run_experiment("Qry1", PrefetcherConfig.none(), scale=SMALL, l2_size=1024**2)
        assert a is not b


class TestOverrides:
    def test_l2_size_override_changes_traffic(self):
        big = run_experiment("Qry1", PrefetcherConfig.none(), scale=SMALL)
        small = run_experiment(
            "Qry1", PrefetcherConfig.none(), scale=SMALL, l2_size=128 * 1024
        )
        assert small.offchip_transfers > big.offchip_transfers

    def test_latency_override_slows_l2(self):
        fast = run_experiment("Qry1", PrefetcherConfig.none(), scale=SMALL)
        slow = run_experiment(
            "Qry1", PrefetcherConfig.none(), scale=SMALL,
            l2_tag_latency=8, l2_data_latency=16,
        )
        assert slow.aggregate_ipc <= fast.aggregate_ipc

    def test_pv_aware_flag(self):
        aware = run_experiment(
            "Zeus", PrefetcherConfig.virtualized(8), scale=SMALL, pv_aware=True
        )
        assert aware.offchip_pv_writes == 0


class TestScale:
    def test_from_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_REFS", raising=False)
        monkeypatch.delenv("REPRO_WARMUP", raising=False)
        scale = ExperimentScale.from_env()
        assert scale.refs_per_core == 16_000
        assert scale.warmup_refs == 20_000

    def test_from_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_REFS", "4000")
        monkeypatch.setenv("REPRO_WARMUP", "1000")
        scale = ExperimentScale.from_env()
        assert scale.refs_per_core == 4000
        assert scale.warmup_refs == 1000

    def test_warmup_derived_from_refs(self, monkeypatch):
        monkeypatch.setenv("REPRO_REFS", "8000")
        monkeypatch.delenv("REPRO_WARMUP", raising=False)
        assert ExperimentScale.from_env().warmup_refs == 10_000
