"""System and prefetcher configuration (Table 1)."""

import pytest

from repro.sim.config import PrefetcherConfig, SystemConfig


class TestPrefetcherConfig:
    def test_labels(self):
        assert PrefetcherConfig.none().label == "NoPF"
        assert PrefetcherConfig.infinite().label == "Infinite"
        assert PrefetcherConfig.dedicated(1024, 11).label == "1K-11a"
        assert PrefetcherConfig.dedicated(16, 11).label == "16-11a"
        assert PrefetcherConfig.virtualized(8).label == "PV8"
        assert PrefetcherConfig.virtualized(16).label == "PV16"

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            PrefetcherConfig(mode="magic")

    def test_sets_validation(self):
        with pytest.raises(ValueError):
            PrefetcherConfig(mode="dedicated", pht_sets=100)

    def test_frozen_and_hashable(self):
        a = PrefetcherConfig.virtualized(8)
        b = PrefetcherConfig.virtualized(8)
        assert a == b
        assert hash(a) == hash(b)


class TestSystemConfig:
    def test_table1_defaults(self):
        cfg = SystemConfig.baseline()
        h = cfg.hierarchy
        assert h.n_cores == 4
        assert h.l1d_size == 64 * 1024 and h.l1d_assoc == 4
        assert h.l1_latency == 2
        assert h.l2_size == 8 * 1024 * 1024 and h.l2_assoc == 16
        assert h.l2_tag_latency == 6 and h.l2_data_latency == 12
        assert h.memory_latency == 400
        assert cfg.clock_ghz == 4.0

    def test_table1_rendering(self):
        table = SystemConfig.baseline().table1()
        assert "64kB 4-way" in table["L1D/L1I"]
        assert "8MB, 16-way" in table["UL2"]
        assert "400 cycles" in table["Main Memory"]

    def test_with_l2_size(self):
        cfg = SystemConfig.baseline().with_l2(size_bytes=2 * 1024**2)
        assert cfg.hierarchy.l2_size == 2 * 1024**2
        # Other parameters untouched.
        assert cfg.hierarchy.l2_tag_latency == 6

    def test_with_l2_latency(self):
        cfg = SystemConfig.baseline().with_l2(tag_latency=8, data_latency=16)
        assert cfg.hierarchy.l2_tag_latency == 8
        assert cfg.hierarchy.l2_data_latency == 16
        assert cfg.hierarchy.l2_size == 8 * 1024**2

    def test_with_l2_does_not_mutate_original(self):
        cfg = SystemConfig.baseline()
        cfg.with_l2(size_bytes=1024 * 1024)
        assert cfg.hierarchy.l2_size == 8 * 1024**2

    def test_sms_defaults_match_paper(self):
        cfg = SystemConfig.baseline()
        assert cfg.sms.filter_entries == 32
        assert cfg.sms.accumulation_entries == 64
        assert cfg.sms.region.blocks_per_region == 32

    def test_pvproxy_defaults_match_section_4_6(self):
        cfg = SystemConfig.baseline()
        assert cfg.pvproxy.pvcache_entries == 8
        assert cfg.pvproxy.pattern_buffer_entries == 16
        assert cfg.pvproxy.evict_buffer_entries == 4
