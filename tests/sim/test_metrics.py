"""SimResult derived metrics."""

import pytest

from repro.sim.metrics import SimResult


def result(**kw):
    base = dict(workload="w", config_label="c", n_cores=4, refs=1000)
    base.update(kw)
    return SimResult(**base)


class TestCoverage:
    def test_coverage_definition(self):
        r = result(covered=30, uncovered=70)
        assert r.coverage == pytest.approx(0.30)
        assert r.uncovered_fraction == pytest.approx(0.70)
        assert r.baseline_read_misses == 100

    def test_overprediction_rate(self):
        r = result(covered=30, uncovered=70, overpredictions=15)
        assert r.overprediction_rate == pytest.approx(0.15)

    def test_zero_misses(self):
        r = result()
        assert r.coverage == 0.0
        assert r.uncovered_fraction == 1.0


class TestTiming:
    def test_aggregate_ipc(self):
        r = result(instructions=4000, elapsed_cycles=2000.0)
        assert r.aggregate_ipc == pytest.approx(2.0)

    def test_speedup(self):
        base = result(instructions=1000, elapsed_cycles=1000.0)
        fast = result(instructions=1000, elapsed_cycles=800.0)
        assert fast.speedup_vs(base) == pytest.approx(0.25)

    def test_speedup_requires_baseline_progress(self):
        with pytest.raises(ValueError):
            result().speedup_vs(result())


class TestTraffic:
    def test_l2_request_increase(self):
        ref = result(l2_requests=1000)
        pv = result(l2_requests=1330)
        assert pv.l2_request_increase(ref) == pytest.approx(0.33)

    def test_offchip_increase_components_sum(self):
        ref = result(offchip_reads=800, offchip_writes=200)
        pv = result(offchip_reads=816, offchip_writes=214)
        inc = pv.offchip_increase(ref)
        assert inc["misses"] + inc["writebacks"] == pytest.approx(inc["total"])
        assert inc["total"] == pytest.approx(0.03)

    def test_offchip_split_app_vs_pv(self):
        ref = result(offchip_reads=800, offchip_writes=200)
        pv = result(
            offchip_reads=820, offchip_writes=210,
            offchip_pv_reads=15, offchip_pv_writes=8,
        )
        split = pv.offchip_split_increase(ref)
        assert split["miss_pv"] == pytest.approx(15 / 1000)
        assert split["miss_app"] == pytest.approx(5 / 1000)
        assert split["wb_pv"] == pytest.approx(8 / 1000)
        assert split["wb_app"] == pytest.approx(2 / 1000)

    def test_increase_requires_reference_traffic(self):
        with pytest.raises(ValueError):
            result().l2_request_increase(result())
        with pytest.raises(ValueError):
            result().offchip_increase(result())


class TestSummary:
    def test_summary_keys(self):
        s = result(covered=1, uncovered=1).summary()
        assert {"coverage", "ipc", "l2_requests", "offchip"} <= set(s)
