"""Vectorized batch functional path (``repro.sim.batchkernel``) equivalence.

Pinned guarantees:

* ``REPRO_VEC=1`` (the default) is invisible to results: the vectorized
  batch kernel produces bitwise-identical ``SimResult`` payloads *and*
  identical cache/presence/fetch state to the scalar reference loop —
  analytic, contended, sampled, prefetched and prefetcher-less alike,
  plus a hypothesis sweep over sampling layouts and warm-up sizes;
* toggling ``use_vec`` mid-run (between ``run()`` calls on one
  simulator) cannot change results — both paths commit the same state,
  so any interleaving of them is equivalent;
* ``REPRO_COMPILED=1`` without numba degrades silently to the numpy
  verdict kernel (and, when numba is importable, produces the same
  verdicts bit for bit);
* without numpy the kernel declines (``run_batch`` returns ``False``,
  ``default_enabled`` is ``False``) and the scalar loop runs.
"""

from __future__ import annotations

import sys
from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import batchkernel
from repro.sim.config import PrefetcherConfig, SystemConfig
from repro.sim.sampling import SamplingConfig
from repro.sim.simulator import WARM_STATE_CACHE, CMPSimulator
from repro.workloads.registry import get_workload

SAMPLING = SamplingConfig.smarts(
    period_refs=1_000, detail_refs=150, warm_refs=60, functional_refs=250
)


def _make(config, workload="Apache", system=None, vec=True):
    sim = CMPSimulator(get_workload(workload), config, system=system)
    sim.use_vec = vec and batchkernel.default_enabled()
    return sim


def _state(sim):
    """Complete post-run machine state, for bitwise comparison."""
    h = sim.hierarchy
    caches = [*h.l1d, *h.l1i, h.l2]
    return {
        "caches": [
            (c._tick, c._tags, c._stamps, c._meta, vars(c.stats))
            for c in caches
        ],
        "presence": dict(h._l1_presence),
        "hstats": vars(h.stats),
        "last_iblock": list(sim._last_iblock),
        "trace_pos": list(sim._trace_pos),
        "mem": (h.memory.reads, h.memory.writes),
    }


def _pair(config, workload="Apache", system=None, refs=3_000, warmup=2_000,
          min_batch=None):
    """Run scalar and vectorized twins; return both (result, state) pairs."""
    outs = []
    for vec in (False, True):
        WARM_STATE_CACHE.clear()
        if min_batch is not None:
            old = batchkernel.MIN_BATCH
            batchkernel.MIN_BATCH = min_batch
        try:
            sim = _make(config, workload=workload, system=system, vec=vec)
            result = sim.run(refs, warmup_refs=warmup)
        finally:
            if min_batch is not None:
                batchkernel.MIN_BATCH = old
        outs.append((asdict(result), _state(sim)))
    WARM_STATE_CACHE.clear()
    return outs


def _assert_equal(outs):
    (scalar_result, scalar_state), (vec_result, vec_state) = outs
    assert vec_result == scalar_result
    assert vec_state == scalar_state


needs_numpy = pytest.mark.skipif(
    not batchkernel.HAVE_NUMPY, reason="numpy unavailable"
)


@needs_numpy
class TestBitwiseEquivalence:
    def test_sampled_analytic_pv8(self):
        system = SystemConfig.baseline().with_sampling(SAMPLING)
        _assert_equal(_pair(PrefetcherConfig.virtualized(8), system=system))

    def test_sampled_contended_pv8(self):
        system = (
            SystemConfig.baseline()
            .with_contention(dram_channels=2)
            .with_sampling(SAMPLING)
        )
        _assert_equal(_pair(PrefetcherConfig.virtualized(8), system=system))

    def test_sampled_no_prefetcher(self):
        system = SystemConfig.baseline().with_sampling(SAMPLING)
        _assert_equal(_pair(PrefetcherConfig.none(), system=system))

    def test_sampled_dedicated_sms(self):
        system = SystemConfig.baseline().with_sampling(SAMPLING)
        _assert_equal(_pair(PrefetcherConfig.dedicated(1024, 11),
                            system=system))

    def test_sampled_stride(self):
        system = SystemConfig.baseline().with_sampling(SAMPLING)
        _assert_equal(_pair(PrefetcherConfig.stride(), system=system))

    def test_sampled_second_workload(self):
        system = SystemConfig.baseline().with_sampling(SAMPLING)
        _assert_equal(_pair(PrefetcherConfig.virtualized(8), workload="Qry1",
                            system=system))

    def test_unsampled_run_unaffected_by_flag(self):
        # No sampling -> no functional spans -> the kernel never engages;
        # the flag must still be inert.
        _assert_equal(_pair(PrefetcherConfig.virtualized(8), refs=1_200,
                            warmup=600))

    @settings(max_examples=8, deadline=None)
    @given(
        detail=st.integers(min_value=60, max_value=200),
        functional=st.integers(min_value=150, max_value=400),
        warmup=st.sampled_from([0, 700, 2_000]),
        seed_cfg=st.sampled_from(["pv8", "none", "sms"]),
    )
    def test_property_sampled_layouts(self, detail, functional, warmup,
                                      seed_cfg):
        sampling = SamplingConfig.smarts(
            period_refs=1_000,
            detail_refs=detail,
            warm_refs=60,
            functional_refs=functional,
        )
        config = {
            "pv8": PrefetcherConfig.virtualized(8),
            "none": PrefetcherConfig.none(),
            "sms": PrefetcherConfig.dedicated(1024, 11),
        }[seed_cfg]
        system = SystemConfig.baseline().with_sampling(sampling)
        _assert_equal(_pair(config, system=system, refs=2_000, warmup=warmup,
                            min_batch=256))


@needs_numpy
class TestMidRunToggle:
    def test_toggling_between_runs_is_bitwise_invisible(self):
        system = SystemConfig.baseline().with_sampling(SAMPLING)

        def run_with(vec_schedule):
            WARM_STATE_CACHE.clear()
            sim = _make(PrefetcherConfig.virtualized(8), system=system,
                        vec=False)
            states = []
            for vec in vec_schedule:
                sim.use_vec = vec and batchkernel.default_enabled()
                states.append(asdict(sim.run(1_500, warmup_refs=1_500)))
            states.append(_state(sim))
            return states

        assert run_with([False, False]) == run_with([True, True])
        assert run_with([False, True]) == run_with([True, False])

    def test_mid_span_state_is_never_partial(self):
        # run_batch either commits a whole span or touches nothing: an
        # infeasible span (trace bound exceeded) must leave state intact
        # for the scalar loop.
        system = SystemConfig.baseline().with_sampling(SAMPLING)
        WARM_STATE_CACHE.clear()
        sim = _make(PrefetcherConfig.virtualized(8), system=system)
        before = _state(sim)
        assert not batchkernel.run_batch(sim, 10**9, True)
        assert _state(sim) == before
        WARM_STATE_CACHE.clear()


class TestCompiledBackend:
    def test_compiled_request_without_numba_falls_back(self, monkeypatch):
        if not batchkernel.HAVE_NUMPY:
            pytest.skip("numpy unavailable")
        monkeypatch.setenv("REPRO_COMPILED", "1")
        monkeypatch.setattr(batchkernel, "_COMPILED", None)
        monkeypatch.setattr(batchkernel, "_COMPILED_TRIED", False)
        monkeypatch.setitem(sys.modules, "numba", None)
        assert batchkernel.compiled_requested()
        assert batchkernel._load_compiled() is None
        system = SystemConfig.baseline().with_sampling(SAMPLING)
        _assert_equal(_pair(PrefetcherConfig.virtualized(8), system=system))

    def test_compiled_verdicts_match_numpy(self, monkeypatch):
        numba = pytest.importorskip("numba")
        assert numba is not None
        np = batchkernel.np
        monkeypatch.setenv("REPRO_COMPILED", "1")
        monkeypatch.setattr(batchkernel, "_COMPILED", None)
        monkeypatch.setattr(batchkernel, "_COMPILED_TRIED", False)
        rng = np.random.default_rng(7)
        n, nsets, assoc, count = 2, 8, 4, 500
        ftags = rng.integers(-1, 40, size=(n, nsets, assoc)).astype(np.int64)
        fmeta = rng.integers(0, 8, size=(n, nsets, assoc)).astype(np.int64)
        cidx = rng.integers(0, n, size=count).astype(np.int64)
        sidx = rng.integers(0, nsets, size=count).astype(np.int64)
        tag = rng.integers(-1, 40, size=count).astype(np.int64)
        got = batchkernel._verdicts(ftags, fmeta, cidx, sidx, tag)
        monkeypatch.setenv("REPRO_COMPILED", "0")
        want = batchkernel._verdicts(ftags, fmeta, cidx, sidx, tag)
        for g, w in zip(got, want):
            assert (g == w).all()


class TestNumpylessFallback:
    def test_kernel_declines_without_numpy(self, monkeypatch):
        monkeypatch.setattr(batchkernel, "HAVE_NUMPY", False)
        assert not batchkernel.default_enabled()
        assert not batchkernel.run_batch(object(), 10**6, True)

    def test_simulator_falls_back_to_scalar(self, monkeypatch):
        monkeypatch.setattr(batchkernel, "HAVE_NUMPY", False)
        system = SystemConfig.baseline().with_sampling(SAMPLING)
        WARM_STATE_CACHE.clear()
        sim = CMPSimulator(
            get_workload("Qry1"), PrefetcherConfig.virtualized(8),
            system=system,
        )
        assert sim.use_vec is False
        result = sim.run(1_500, warmup_refs=700)
        assert result.aggregate_ipc > 0
        WARM_STATE_CACHE.clear()


class TestEnvPolicy:
    def test_repro_vec_0_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_VEC", "0")
        assert not batchkernel.default_enabled()

    def test_repro_vec_default_on_with_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_VEC", raising=False)
        assert batchkernel.default_enabled() == batchkernel.HAVE_NUMPY
