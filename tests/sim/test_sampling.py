"""SMARTS-style statistics: batch means, CIs, matched-pair comparison."""

import math

import pytest

from repro.sim.sampling import confidence_interval, matched_pair


class TestConfidenceInterval:
    def test_mean(self):
        s = confidence_interval([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.n == 3

    def test_zero_variance_zero_width(self):
        s = confidence_interval([5.0] * 10)
        assert s.half_width == pytest.approx(0.0)

    def test_single_sample_infinite_width(self):
        s = confidence_interval([5.0])
        assert math.isinf(s.half_width)

    def test_no_samples_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([])

    def test_width_shrinks_with_samples(self):
        noisy = [1.0, 2.0] * 4
        wider = confidence_interval(noisy[:4])
        narrower = confidence_interval(noisy * 8)
        assert narrower.half_width < wider.half_width

    def test_bounds(self):
        s = confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert s.lower == pytest.approx(s.mean - s.half_width)
        assert s.upper == pytest.approx(s.mean + s.half_width)

    def test_95_percent_default(self):
        assert confidence_interval([1.0, 2.0]).confidence == 0.95

    def test_t_quantile_value(self):
        # n=5, 95%: t = 2.776; samples with known variance.
        s = confidence_interval([0.0, 0.0, 0.0, 0.0, 5.0])
        var = (4 * 1.0**2 + (5 - 1.0) ** 2) / 4
        expected = 2.7764 * math.sqrt(var / 5)
        assert s.half_width == pytest.approx(expected, rel=1e-3)


class TestMatchedPair:
    def test_constant_delta_is_exact(self):
        """Matched-pair cancels per-window variation entirely when the
        improvement is uniform — the methodology's whole point."""
        base = [1.0, 3.0, 2.0, 4.0]  # very noisy windows
        new = [x * 1.10 for x in base]
        pair = matched_pair(base, new)
        assert pair.relative_delta == pytest.approx(0.10)
        # CI of the deltas is far narrower than the raw variation.
        raw = confidence_interval(new)
        assert pair.delta.half_width < raw.half_width

    def test_unequal_lengths_truncate(self):
        pair = matched_pair([1.0, 1.0, 9.9], [2.0, 2.0])
        assert pair.delta.mean == pytest.approx(1.0)
        assert pair.delta.n == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            matched_pair([], [1.0])

    def test_negative_delta(self):
        pair = matched_pair([2.0, 2.0], [1.0, 1.0])
        assert pair.relative_delta == pytest.approx(-0.5)
