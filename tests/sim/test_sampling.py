"""SMARTS-style statistics: batch means, CIs, matched-pair comparison."""

import math

import pytest

from repro.sim import sampling
from repro.sim.sampling import (
    _normal_ppf,
    _t_ppf_fallback,
    confidence_interval,
    matched_pair,
    t_quantile,
)


class TestConfidenceInterval:
    def test_mean(self):
        s = confidence_interval([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.n == 3

    def test_zero_variance_zero_width(self):
        s = confidence_interval([5.0] * 10)
        assert s.half_width == pytest.approx(0.0)

    def test_single_sample_infinite_width(self):
        s = confidence_interval([5.0])
        assert math.isinf(s.half_width)

    def test_no_samples_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([])

    def test_width_shrinks_with_samples(self):
        noisy = [1.0, 2.0] * 4
        wider = confidence_interval(noisy[:4])
        narrower = confidence_interval(noisy * 8)
        assert narrower.half_width < wider.half_width

    def test_bounds(self):
        s = confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert s.lower == pytest.approx(s.mean - s.half_width)
        assert s.upper == pytest.approx(s.mean + s.half_width)

    def test_95_percent_default(self):
        assert confidence_interval([1.0, 2.0]).confidence == 0.95

    def test_t_quantile_value(self):
        # n=5, 95%: t = 2.776; samples with known variance.
        s = confidence_interval([0.0, 0.0, 0.0, 0.0, 5.0])
        var = (4 * 1.0**2 + (5 - 1.0) ** 2) / 4
        expected = 2.7764 * math.sqrt(var / 5)
        assert s.half_width == pytest.approx(expected, rel=1e-3)


class TestMatchedPair:
    def test_constant_delta_is_exact(self):
        """Matched-pair cancels per-window variation entirely when the
        improvement is uniform — the methodology's whole point."""
        base = [1.0, 3.0, 2.0, 4.0]  # very noisy windows
        new = [x * 1.10 for x in base]
        pair = matched_pair(base, new)
        assert pair.relative_delta == pytest.approx(0.10)
        # CI of the deltas is far narrower than the raw variation.
        raw = confidence_interval(new)
        assert pair.delta.half_width < raw.half_width

    def test_unequal_lengths_truncate(self):
        pair = matched_pair([1.0, 1.0, 9.9], [2.0, 2.0])
        assert pair.delta.mean == pytest.approx(1.0)
        assert pair.delta.n == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            matched_pair([], [1.0])

    def test_negative_delta(self):
        pair = matched_pair([2.0, 2.0], [1.0, 1.0])
        assert pair.relative_delta == pytest.approx(-0.5)


class TestScipyFreeFallback:
    """The core package must work without scipy (inline t quantiles)."""

    # Reference two-sided-95% and 99% critical values (standard tables).
    KNOWN = [
        (0.975, 1, 12.706), (0.975, 2, 4.303), (0.975, 5, 2.571),
        (0.975, 10, 2.228), (0.975, 30, 2.042), (0.975, 120, 1.980),
        (0.995, 10, 3.169), (0.995, 30, 2.750), (0.95, 10, 1.812),
        (0.95, 5, 2.015), (0.90, 10, 1.372),
    ]

    def test_normal_ppf(self):
        assert _normal_ppf(0.5) == pytest.approx(0.0, abs=1e-9)
        assert _normal_ppf(0.975) == pytest.approx(1.959964, rel=1e-5)
        assert _normal_ppf(0.025) == pytest.approx(-1.959964, rel=1e-5)
        assert _normal_ppf(0.999) == pytest.approx(3.090232, rel=1e-5)
        with pytest.raises(ValueError):
            _normal_ppf(0.0)

    @pytest.mark.parametrize("q,df,expected", KNOWN)
    def test_fallback_matches_tables(self, q, df, expected):
        assert _t_ppf_fallback(q, df) == pytest.approx(expected, rel=5e-3)

    def test_fallback_matches_scipy_when_available(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for q in (0.9, 0.95, 0.975, 0.995):
            for df in (3, 5, 8, 15, 40, 200):
                want = float(scipy_stats.t.ppf(q, df=df))
                assert _t_ppf_fallback(q, df) == pytest.approx(want, rel=5e-3)

    def test_fallback_rejects_bad_df(self):
        with pytest.raises(ValueError):
            _t_ppf_fallback(0.975, 0)

    def test_confidence_interval_without_scipy(self, monkeypatch):
        with_scipy = confidence_interval([1.0, 2.0, 3.0, 4.0, 9.0])
        monkeypatch.setattr(sampling, "_scipy_stats", None)
        without = confidence_interval([1.0, 2.0, 3.0, 4.0, 9.0])
        assert without.mean == with_scipy.mean
        assert without.half_width == pytest.approx(
            with_scipy.half_width, rel=1e-3
        )
        # The default two-sided 95% path is table-exact at small df.
        assert t_quantile(0.975, 4) == pytest.approx(2.7764, abs=1e-4)
