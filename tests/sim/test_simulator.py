"""End-to-end behaviour of the CMP simulator on small runs."""

import pytest

from repro.sim.config import PrefetcherConfig, SystemConfig
from repro.sim.simulator import CMPSimulator
from repro.workloads.registry import get_workload

REFS = 2500
WARMUP = 1500


def run(workload="Qry1", prefetcher=None, refs=REFS, warmup=WARMUP, **kw):
    sim = CMPSimulator(
        get_workload(workload), prefetcher or PrefetcherConfig.none(), **kw
    )
    return sim.run(refs, warmup_refs=warmup)


class TestBaseline:
    def test_baseline_has_no_prefetches(self):
        r = run()
        assert r.prefetches_issued == 0
        assert r.covered == 0
        assert r.uncovered > 0

    def test_instructions_accumulate(self):
        r = run()
        assert r.instructions > 4 * REFS  # gaps make instrs >> refs

    def test_per_core_cycles_reported(self):
        r = run()
        assert len(r.per_core_cycles) == 4
        assert all(c > 0 for c in r.per_core_cycles)

    def test_deterministic(self):
        a = run()
        b = run()
        assert a.uncovered == b.uncovered
        assert a.elapsed_cycles == b.elapsed_cycles


class TestSMS:
    def test_sms_covers_misses(self):
        r = run(prefetcher=PrefetcherConfig.dedicated(1024))
        assert r.covered > 0
        assert r.prefetches_issued > 0
        assert r.patterns_stored > 0

    def test_sms_improves_ipc(self):
        # Short run: the PHT is barely trained, so expect a small but
        # strictly positive speedup (full-scale speedups live in the
        # integration shape tests).
        base = run()
        sms = run(prefetcher=PrefetcherConfig.dedicated(1024))
        assert sms.speedup_vs(base) > 0.01

    def test_infinite_at_least_as_good_as_tiny(self):
        inf = run(prefetcher=PrefetcherConfig.infinite())
        tiny = run(prefetcher=PrefetcherConfig.dedicated(8))
        assert inf.coverage >= tiny.coverage

    def test_coverage_bounded(self):
        r = run(prefetcher=PrefetcherConfig.infinite())
        assert 0.0 <= r.coverage <= 1.0


class TestVirtualized:
    def test_pv_generates_l2_pv_requests(self):
        r = run(prefetcher=PrefetcherConfig.virtualized(8))
        assert r.l2_pv_requests > 0
        assert 0.0 < r.pvcache_hit_rate < 1.0

    def test_pv_coverage_close_to_dedicated(self):
        pv = run(prefetcher=PrefetcherConfig.virtualized(8))
        ded = run(prefetcher=PrefetcherConfig.dedicated(1024))
        assert pv.coverage == pytest.approx(ded.coverage, abs=0.05)

    def test_pv_increases_l2_requests(self):
        pv = run(prefetcher=PrefetcherConfig.virtualized(8))
        ded = run(prefetcher=PrefetcherConfig.dedicated(1024))
        assert pv.l2_requests > ded.l2_requests

    def test_pv_fill_rate_reported(self):
        r = run(prefetcher=PrefetcherConfig.virtualized(8))
        assert 0.5 < r.pv_l2_fill_rate <= 1.0

    def test_pv_tables_live_in_reserved_space(self):
        sim = CMPSimulator(get_workload("Qry1"), PrefetcherConfig.virtualized(8))
        for pht in sim.phts:
            start = pht.proxy.table.pv_start
            assert sim.address_space.is_reserved(start)


class TestWarmup:
    def test_warmup_resets_counters_keeps_state(self):
        sim = CMPSimulator(get_workload("Qry1"), PrefetcherConfig.dedicated(1024))
        r = sim.run(REFS, warmup_refs=WARMUP)
        # Post-warmup coverage benefits from warmed PHT state.
        cold = CMPSimulator(
            get_workload("Qry1"), PrefetcherConfig.dedicated(1024)
        ).run(REFS, warmup_refs=0)
        assert r.coverage > cold.coverage

    def test_zero_warmup_allowed(self):
        r = run(warmup=0)
        assert r.uncovered > 0


class TestWindows:
    def test_window_samples_collected(self):
        sim = CMPSimulator(get_workload("Qry1"), PrefetcherConfig.none())
        r = sim.run(2000, warmup_refs=500, window_refs=500)
        assert len(r.window_ipcs) == 4
        assert all(w > 0 for w in r.window_ipcs)

    def test_windows_align_across_configs(self):
        a = CMPSimulator(get_workload("Qry1"), PrefetcherConfig.none()).run(
            2000, warmup_refs=500, window_refs=500
        )
        b = CMPSimulator(
            get_workload("Qry1"), PrefetcherConfig.dedicated(1024)
        ).run(2000, warmup_refs=500, window_refs=500)
        assert len(a.window_ipcs) == len(b.window_ipcs)


class TestConfigSensitivity:
    def test_smaller_l2_more_offchip(self):
        # At this trace length the touched footprint is a few hundred KB,
        # so contrast an L2 smaller than that against the 8MB default.
        big = run()
        small = run(system=SystemConfig.baseline().with_l2(size_bytes=128 * 1024))
        assert small.offchip_transfers > big.offchip_transfers

    def test_ifetch_can_be_disabled(self):
        from dataclasses import replace

        system = replace(SystemConfig.baseline(), model_ifetch=False)
        r = run(system=system)
        assert r.uncovered > 0

    def test_pv_aware_reduces_pv_writes(self):
        from dataclasses import replace

        sys_aware = SystemConfig.baseline()
        sys_aware = replace(
            sys_aware, hierarchy=replace(sys_aware.hierarchy, pv_aware_caches=True)
        )
        aware = run(
            workload="Zeus", prefetcher=PrefetcherConfig.virtualized(8),
            system=sys_aware,
        )
        assert aware.offchip_pv_writes == 0
