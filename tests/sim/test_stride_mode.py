"""The stride-prefetcher simulator mode (extra baseline)."""

from repro.cpu.trace import TraceRecord
from repro.sim.config import PrefetcherConfig
from repro.sim.simulator import CMPSimulator
from repro.workloads.registry import get_workload


class TestStrideMode:
    def test_label(self):
        assert PrefetcherConfig.stride().label == "Stride"

    def test_stride_runs_and_prefetches(self):
        sim = CMPSimulator(get_workload("Qry1"), PrefetcherConfig.stride())
        r = sim.run(2500, warmup_refs=1000)
        assert r.prefetches_issued > 0

    def test_stride_covers_some_scan_misses(self):
        """Qry1's episodes walk regions in ascending order, which a stride
        prefetcher can partially follow."""
        sim = CMPSimulator(get_workload("Qry1"), PrefetcherConfig.stride())
        r = sim.run(2500, warmup_refs=1000)
        assert r.covered > 0

    def test_sms_beats_stride_on_commercial_patterns(self):
        """The paper's premise: spatial patterns, not strides, dominate
        commercial workloads — SMS should out-cover a stride prefetcher."""
        stride = CMPSimulator(
            get_workload("Apache"), PrefetcherConfig.stride()
        ).run(4000, warmup_refs=4000)
        sms = CMPSimulator(
            get_workload("Apache"), PrefetcherConfig.dedicated(1024)
        ).run(4000, warmup_refs=4000)
        assert sms.coverage > stride.coverage

    def test_no_sms_state_in_stride_mode(self):
        sim = CMPSimulator(get_workload("Qry1"), PrefetcherConfig.stride())
        assert all(engine is None for engine in sim.sms)
        assert all(s is not None for s in sim.stride)


class TestPendingSweep:
    """The in-flight prefetch map is bounded in *every* prefetching mode
    (regression: the sweep used to run only on the SMS path, so stride-only
    configurations grew ``_pending`` without bound)."""

    def test_sweep_runs_for_stride_only_config(self):
        sim = CMPSimulator(get_workload("Qry1"), PrefetcherConfig.stride())
        sim.PENDING_SWEEP_THRESHOLD = 4
        pending = sim._pending[0]
        for block in range(1, 11):
            pending[block * 64] = -1.0  # arrivals long since landed
        rec = next(sim.generators[0].records(1))
        sim._step(0, rec, sim.hierarchy, False, 64)
        assert len(pending) <= 4

    def test_pending_stays_bounded_over_a_run(self):
        sim = CMPSimulator(get_workload("Qry1"), PrefetcherConfig.stride())
        sim.PENDING_SWEEP_THRESHOLD = 8
        sim.run(4000, warmup_refs=0)
        # Only not-yet-arrived prefetches may survive a sweep.
        assert all(len(p) <= 10 for p in sim._pending)


class TestStrideArrivalTiming:
    def test_arrivals_stamped_after_demand_access(self):
        """Stride prefetches are issued once the triggering access has
        retired (regression: they were stamped with the pre-access cycle
        count, making them appear to arrive impossibly early)."""
        sim = CMPSimulator(get_workload("Qry1"), PrefetcherConfig.stride())
        fill_latency = 7

        def fake_prefetch_fill(core, block_addr, **kwargs):
            return fill_latency, object()

        sim.hierarchy.prefetch_fill = fake_prefetch_fill
        pc, base = 0x4000, 0x2000_0000
        # Train the PC's stride entry past the confidence threshold, then
        # take one more access that actually issues prefetches.
        for k in range(5):
            before = set(sim._pending[0])
            sim._step(
                0, TraceRecord(pc, base + k * 64, False, 0),
                sim.hierarchy, False, 64,
            )
            new = set(sim._pending[0]) - before
        assert new, "stride prefetcher never fired"
        post_access = sim.cores[0].cycles
        for block in new:
            assert sim._pending[0][block] == post_access + 1 + fill_latency
