"""The stride-prefetcher simulator mode (extra baseline)."""

import pytest

from repro.sim.config import PrefetcherConfig
from repro.sim.simulator import CMPSimulator
from repro.workloads.registry import get_workload


class TestStrideMode:
    def test_label(self):
        assert PrefetcherConfig.stride().label == "Stride"

    def test_stride_runs_and_prefetches(self):
        sim = CMPSimulator(get_workload("Qry1"), PrefetcherConfig.stride())
        r = sim.run(2500, warmup_refs=1000)
        assert r.prefetches_issued > 0

    def test_stride_covers_some_scan_misses(self):
        """Qry1's episodes walk regions in ascending order, which a stride
        prefetcher can partially follow."""
        sim = CMPSimulator(get_workload("Qry1"), PrefetcherConfig.stride())
        r = sim.run(2500, warmup_refs=1000)
        assert r.covered > 0

    def test_sms_beats_stride_on_commercial_patterns(self):
        """The paper's premise: spatial patterns, not strides, dominate
        commercial workloads — SMS should out-cover a stride prefetcher."""
        stride = CMPSimulator(
            get_workload("Apache"), PrefetcherConfig.stride()
        ).run(4000, warmup_refs=4000)
        sms = CMPSimulator(
            get_workload("Apache"), PrefetcherConfig.dedicated(1024)
        ).run(4000, warmup_refs=4000)
        assert sms.coverage > stride.coverage

    def test_no_sms_state_in_stride_mode(self):
        sim = CMPSimulator(get_workload("Qry1"), PrefetcherConfig.stride())
        assert all(engine is None for engine in sim.sms)
        assert all(s is not None for s in sim.stride)
