"""TableGeometry index math and the PredictorTable contract."""

import pytest

from repro.core.interface import LookupResult, TableGeometry


class TestGeometry:
    def test_paper_pht_geometry(self):
        g = TableGeometry(n_sets=1024, assoc=11, index_bits=21)
        assert g.set_bits == 10
        assert g.tag_bits == 11
        assert g.entries == 11264

    def test_split_join_roundtrip(self):
        g = TableGeometry(n_sets=64, assoc=4, index_bits=16)
        for index in (0, 1, 63, 64, 0xFFFF, 0x1234):
            s, t = g.split(index)
            assert g.join(s, t) == index
            assert 0 <= s < 64

    def test_split_rejects_out_of_range(self):
        g = TableGeometry(n_sets=64, assoc=4, index_bits=16)
        with pytest.raises(ValueError):
            g.split(1 << 16)
        with pytest.raises(ValueError):
            g.split(-1)

    def test_labels(self):
        assert TableGeometry(1024, 16, 21).label() == "1K-16a"
        assert TableGeometry(1024, 11, 21).label() == "1K-11a"
        assert TableGeometry(16, 11, 21).label() == "16-11a"
        assert TableGeometry(8, 11, 21).label() == "8-11a"

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            TableGeometry(n_sets=100, assoc=4, index_bits=16)

    def test_rejects_more_sets_than_indices(self):
        with pytest.raises(ValueError):
            TableGeometry(n_sets=1024, assoc=4, index_bits=8)


class TestLookupResult:
    def test_defaults(self):
        r = LookupResult(value=5, hit=True, ready_at=10)
        assert r.pvcache_hit

    def test_miss_shape(self):
        r = LookupResult(value=None, hit=False, ready_at=3, pvcache_hit=False)
        assert r.value is None and not r.hit
