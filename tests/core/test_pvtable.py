"""PVTable layout, entry packing, and backing-store semantics."""

import pytest

from repro.core.interface import TableGeometry
from repro.core.pvtable import EntryCodec, PVTable, PVTableLayout
from repro.prefetch.pht import sms_pht_layout


class TestEntryCodec:
    def test_paper_entry_width(self):
        codec = EntryCodec(tag_bits=11, value_bits=32)
        assert codec.entry_bits == 43
        assert codec.entries_per_block(64) == 11

    def test_pack_unpack_entry(self):
        codec = EntryCodec(tag_bits=11, value_bits=32)
        word = codec.pack_entry(0x5A5, 0xDEADBEEF)
        assert codec.unpack_entry(word) == (0x5A5, 0xDEADBEEF)

    def test_pack_rejects_oversized_fields(self):
        codec = EntryCodec(tag_bits=11, value_bits=32)
        with pytest.raises(ValueError):
            codec.pack_entry(1 << 11, 0)
        with pytest.raises(ValueError):
            codec.pack_entry(0, 1 << 32)

    def test_pack_set_block_size(self):
        codec = EntryCodec(tag_bits=11, value_bits=32)
        block = codec.pack_set([(1, 2), (3, 4)])
        assert len(block) == 64

    def test_pack_set_roundtrip(self):
        codec = EntryCodec(tag_bits=11, value_bits=32)
        ways = [(i, i * 1000 + 7) for i in range(11)]
        assert codec.unpack_set(codec.pack_set(ways)) == ways

    def test_empty_slots_skipped(self):
        codec = EntryCodec(tag_bits=11, value_bits=32)
        ways = [(5, 99)]
        assert codec.unpack_set(codec.pack_set(ways)) == ways

    def test_overfull_set_rejected(self):
        codec = EntryCodec(tag_bits=11, value_bits=32)
        with pytest.raises(ValueError):
            codec.pack_set([(i, 0) for i in range(12)])

    def test_all_ones_entry_rejected(self):
        codec = EntryCodec(tag_bits=4, value_bits=4)
        with pytest.raises(ValueError):
            codec.pack_set([(0xF, 0xF)])


class TestLayout:
    def test_sms_layout_matches_paper(self):
        layout = sms_pht_layout()
        assert layout.table_bytes == 64 * 1024  # 64KB per core (Section 4.2)
        assert layout.unused_bits_per_block() == 64 * 8 - 11 * 43  # 39 trailing

    def test_address_calculation(self):
        layout = sms_pht_layout()
        # Figure 3b: set index padded with six zeros plus PVStart.
        assert layout.block_address(0x1000, 0) == 0x1000
        assert layout.block_address(0x1000, 5) == 0x1000 + 5 * 64
        assert layout.set_of_address(0x1000, 0x1000 + 320) == 5

    def test_rejects_set_out_of_range(self):
        layout = sms_pht_layout()
        with pytest.raises(ValueError):
            layout.block_address(0, 1024)

    def test_rejects_mismatched_codec(self):
        geometry = TableGeometry(1024, 11, 21)
        bad = EntryCodec(tag_bits=9, value_bits=32)
        with pytest.raises(ValueError):
            PVTableLayout(geometry=geometry, codec=bad)

    def test_rejects_assoc_that_cannot_pack(self):
        geometry = TableGeometry(1024, 16, 21)  # 16 x 43 bits > 512
        codec = EntryCodec(tag_bits=11, value_bits=32)
        with pytest.raises(ValueError):
            PVTableLayout(geometry=geometry, codec=codec)


class TestPVTableStore:
    def make(self):
        return PVTable(sms_pht_layout(), pv_start=0x100000)

    def test_empty_reads(self):
        table = self.make()
        assert table.read_set(0, from_memory=True) == []

    def test_write_back_then_chip_read(self):
        table = self.make()
        table.write_back(3, [(1, 42)])
        assert table.read_set(3, from_memory=False) == [(1, 42)]
        # Main memory has not seen the data yet.
        assert table.read_set(3, from_memory=True) == []

    def test_commit_on_l2_eviction(self):
        table = self.make()
        table.write_back(3, [(1, 42)])
        table.on_l2_eviction(3, dirty=True, pv_aware=False)
        assert table.read_set(3, from_memory=True) == [(1, 42)]
        assert table.commits == 1

    def test_pv_aware_drop_loses_data(self):
        """Section 2.2 design option: dropped dirty lines lose predictor state."""
        table = self.make()
        table.write_back(3, [(1, 42)])
        table.on_l2_eviction(3, dirty=True, pv_aware=True)
        assert table.read_set(3, from_memory=True) == []
        assert table.drops == 1

    def test_clean_eviction_is_noop(self):
        table = self.make()
        table.write_back(3, [(1, 42)])
        table.on_l2_eviction(3, dirty=False, pv_aware=False)
        assert table.read_set(3, from_memory=True) == []

    def test_owns_address(self):
        table = self.make()
        assert table.owns_address(0x100000)
        assert table.owns_address(0x100000 + 64 * 1024 - 1)
        assert not table.owns_address(0x100000 - 1)
        assert not table.owns_address(0x100000 + 64 * 1024)

    def test_unaligned_start_rejected(self):
        with pytest.raises(ValueError):
            PVTable(sms_pht_layout(), pv_start=100)

    def test_packed_block_matches_memory_contents(self):
        table = self.make()
        table.write_back(7, [(2, 0xABC)])
        table.on_l2_eviction(7, dirty=True, pv_aware=False)
        codec = table.layout.codec
        assert codec.unpack_set(table.packed_block(7)) == [(2, 0xABC)]
