"""Software-visible predictor updates (Section 2.3)."""

from repro.core.pvproxy import PVProxyConfig
from repro.core.pvtable import PVTable
from repro.core.virtualized import VirtualizedPredictorTable
from repro.memory.hierarchy import HierarchyConfig, MemorySystem
from repro.prefetch.pht import sms_pht_layout

PV_START = 0x40000000


def make():
    hierarchy = MemorySystem(HierarchyConfig(n_cores=1))
    table = PVTable(sms_pht_layout(), PV_START)
    pht = VirtualizedPredictorTable(
        0, table, hierarchy, PVProxyConfig(pvcache_entries=8)
    )
    return pht, table, hierarchy


class TestPVTableSoftwareUpdate:
    def test_insert_new_way(self):
        _, table, _ = make()
        table.software_update(3, tag=7, value=0xAA)
        assert table.read_set(3, from_memory=True) == [(7, 0xAA)]

    def test_update_existing_way_in_place(self):
        _, table, _ = make()
        table.software_update(3, tag=7, value=0xAA)
        table.software_update(3, tag=7, value=0xBB)
        assert table.read_set(3, from_memory=True) == [(7, 0xBB)]

    def test_overflow_displaces_oldest(self):
        _, table, _ = make()
        assoc = table.layout.geometry.assoc
        for tag in range(assoc + 1):
            table.software_update(3, tag=tag, value=tag)
        ways = table.read_set(3, from_memory=True)
        assert len(ways) == assoc
        assert (0, 0) not in ways

    def test_supersedes_chip_overlay(self):
        _, table, _ = make()
        table.write_back(3, [(1, 111)])          # dirty proxy copy on chip
        table.software_update(3, tag=1, value=222)
        assert table.read_set(3, from_memory=False) == [(1, 222)]


class TestGuaranteedDelivery:
    def test_store_visible_after_pvcache_coherence(self):
        """With software updates enabled, the engine observes the new value
        even when the old set was resident in the PVCache."""
        pht, _, _ = make()
        pht.enable_software_updates()
        pht.store(0x55, 1, now=0)
        assert pht.lookup(0x55, now=1000).value == 1
        pht.software_store(0x55, 99, now=2000)
        result = pht.lookup(0x55, now=3000)
        assert result.value == 99

    def test_without_coherence_stale_value_may_linger(self):
        """The paper's caveat: without PVCache coherence there is no
        guaranteed delivery — the resident set keeps the stale value."""
        pht, _, _ = make()
        pht.store(0x55, 1, now=0)
        pht.software_store(0x55, 99, now=2000)
        result = pht.lookup(0x55, now=3000)
        assert result.value == 1  # stale: set still in PVCache

    def test_software_invalidations_counted(self):
        pht, _, _ = make()
        pht.enable_software_updates()
        pht.store(0x55, 1, now=0)
        pht.software_store(0x55, 99, now=2000)
        assert pht.proxy.stats.software_invalidations == 1

    def test_update_to_nonresident_set_needs_no_invalidation(self):
        pht, _, _ = make()
        pht.enable_software_updates()
        pht.software_store(0x55, 99, now=0)
        assert pht.proxy.stats.software_invalidations == 0
        assert pht.lookup(0x55, now=1000).value == 99

    def test_unrelated_writes_do_not_disturb(self):
        pht, _, hierarchy = make()
        pht.enable_software_updates()
        pht.store(0x55, 1, now=0)
        hierarchy.access(0, 0x1000, write=True)  # app data, not PV range
        assert pht.proxy.stats.software_invalidations == 0
        assert pht.lookup(0x55, now=1000).value == 1
