"""The storage-cost model must reproduce Table 3 and Section 4.6 exactly."""

import pytest

from repro.core.storage import (
    TABLE3_GEOMETRIES,
    pht_storage,
    pvproxy_budget,
    reduction_factor,
    table3,
)


class TestTable3Published:
    """The rows exactly as printed in the paper."""

    def test_1k_16(self):
        row = pht_storage(1024, 16, published=True)
        assert row.tag_bytes == 22 * 1024
        assert row.pattern_bytes == 64 * 1024
        assert row.total_kb == pytest.approx(86.0)

    def test_1k_11(self):
        row = pht_storage(1024, 11, published=True)
        assert row.tag_bytes == pytest.approx(15.125 * 1024)
        assert row.pattern_bytes == 44 * 1024
        assert row.total_kb == pytest.approx(59.125)

    def test_16_11(self):
        row = pht_storage(16, 11, published=True)
        assert row.tag_bytes == 374
        assert row.pattern_bytes == 880
        assert row.total_kb == pytest.approx(1.225, abs=0.001)

    def test_8_11(self):
        row = pht_storage(8, 11, published=True)
        assert row.tag_bytes == 198
        assert row.pattern_bytes == 440
        assert row.total_bytes == pytest.approx(638)

    def test_all_rows_present(self):
        rows = table3()
        assert [(\
            r.n_sets, r.assoc) for r in rows] == TABLE3_GEOMETRIES


class TestTable3Uniform:
    """With a uniform 32-bit pattern, small tables shrink a little."""

    def test_small_tables_use_32_bit_patterns(self):
        row = pht_storage(16, 11, published=False)
        assert row.pattern_bytes == 176 * 4

    def test_large_rows_unchanged(self):
        assert pht_storage(1024, 11, published=False).total_kb == pytest.approx(
            pht_storage(1024, 11, published=True).total_kb
        )


class TestPVProxyBudget:
    def test_paper_arithmetic(self):
        budget = pvproxy_budget()
        assert budget["pvcache_data_bytes"] == 473.0
        assert budget["tag_bytes"] == 11.0
        assert budget["dirty_bytes"] == 1.0
        assert budget["mshr_bytes"] == 84.0
        assert budget["evict_buffer_bytes"] == 256.0
        assert budget["pattern_buffer_bytes"] == 64.0
        assert budget["total_bytes"] == 889.0

    def test_reduction_factor_is_68x(self):
        assert reduction_factor() == pytest.approx(68.1, abs=0.1)

    def test_sub_kilobyte_claim(self):
        """Abstract: 'less than one kilobyte' of dedicated storage."""
        assert pvproxy_budget()["total_bytes"] < 1024

    def test_budget_scales_with_pvcache(self):
        small = pvproxy_budget(pvcache_sets=8)
        large = pvproxy_budget(pvcache_sets=16)
        assert large["total_bytes"] > small["total_bytes"]


class TestLabels:
    def test_paper_labels(self):
        assert pht_storage(1024, 16).label == "1K-16"
        assert pht_storage(8, 11).label == "8-11"
