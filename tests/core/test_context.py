"""Per-process PVTables and PVStart context switching (Sections 2.1/2.3)."""

from repro.core.context import PredictorContextManager
from repro.core.pvproxy import PVProxy, PVProxyConfig
from repro.core.pvtable import PVTable
from repro.memory.addr import AddressSpace
from repro.memory.hierarchy import HierarchyConfig, MemorySystem
from repro.prefetch.pht import sms_pht_layout


def make(pvcache_entries=8, l2_size=None):
    cfg = HierarchyConfig(n_cores=1)
    if l2_size:
        cfg = HierarchyConfig(n_cores=1, l2_size=l2_size, l2_assoc=2)
    hierarchy = MemorySystem(cfg)
    space = AddressSpace()
    layout = sms_pht_layout()
    table = PVTable(layout, space.reserve(layout.table_bytes))
    proxy = PVProxy(0, table, hierarchy,
                    PVProxyConfig(pvcache_entries=pvcache_entries))
    manager = PredictorContextManager(proxy, layout, space)
    return manager, proxy, hierarchy, space


class TestTableAllocation:
    def test_each_process_gets_its_own_chunk(self):
        manager, _, _, space = make()
        a = manager.table_for("db")
        b = manager.table_for("web")
        assert a.pv_start != b.pv_start
        assert space.is_reserved(a.pv_start) and space.is_reserved(b.pv_start)
        assert manager.stats.tables_created == 2

    def test_table_for_is_stable(self):
        manager, _, _, _ = make()
        assert manager.table_for("db") is manager.table_for("db")


class TestSwitching:
    def test_switch_changes_pvstart(self):
        manager, proxy, _, _ = make()
        manager.switch("db")
        start_db = manager.pv_start
        manager.switch("web")
        assert manager.pv_start != start_db
        assert manager.stats.switches == 2

    def test_switch_to_same_pid_is_noop(self):
        manager, _, _, _ = make()
        manager.switch("db")
        manager.switch("db")
        assert manager.stats.switches == 1

    def test_no_interference_between_processes(self):
        """Per-process tables eliminate inter-process interference."""
        manager, proxy, _, _ = make()
        manager.switch("db")
        proxy.store(0x123, 0xD8, now=0)
        manager.switch("web")
        # Same index, different process: a clean miss, no db state visible.
        assert not proxy.lookup(0x123, now=1000).hit
        proxy.store(0x123, 0x3E, now=2000)
        # Switching back restores db's entry.
        manager.switch("db")
        assert proxy.lookup(0x123, now=500_000).value == 0xD8
        manager.switch("web")
        assert proxy.lookup(0x123, now=900_000).value == 0x3E

    def test_switch_flushes_dirty_state(self):
        manager, proxy, _, _ = make()
        manager.switch("db")
        proxy.store(0x123, 5, now=0)
        manager.switch("web")
        assert manager.stats.flush_writebacks >= 1
        assert len(proxy.pvcache) == 0


class TestEvictionRouting:
    def test_switched_out_tables_still_commit_dirty_lines(self):
        manager, proxy, hierarchy, _ = make(
            pvcache_entries=2, l2_size=16 * 64
        )
        manager.switch("db")
        proxy.store(0x0, 42, now=0)
        manager.switch("web")  # db's dirty set now lives only in the L2
        db_table = manager.table_for("db")
        block = db_table.block_address(0)
        n_sets = hierarchy.l2.geometry.n_sets
        for i in range(1, 4):  # force the L2 to evict db's PV line
            hierarchy.access(0, block + i * n_sets * 64)
        assert db_table.commits == 1
        assert db_table.read_set(0, from_memory=True)
