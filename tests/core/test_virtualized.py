"""VirtualizedPredictorTable: interface equivalence with a dedicated PHT.

The paper's central architectural claim (Figure 1): the optimization engine
is unchanged; only the table implementation differs.  We check functional
equivalence directly — with enough PVCache the virtualized table returns
exactly what a dedicated table of the same geometry returns for any
store/lookup sequence — and spot-check the latency difference.
"""

from hypothesis import given, settings, strategies as st

from repro.core.pvtable import PVTable
from repro.core.virtualized import VirtualizedPredictorTable
from repro.core.pvproxy import PVProxyConfig
from repro.memory.addr import AddressSpace
from repro.memory.hierarchy import HierarchyConfig, MemorySystem
from repro.prefetch.pht import DedicatedPHT, sms_pht_layout

PV_START = 0x40000000


def make_pair(n_sets=64, assoc=10, pvcache_entries=None):
    """A dedicated PHT and a virtualized PHT of identical geometry.

    Note: with 64 sets the 21-bit index leaves 15-bit tags, so only 10
    47-bit entries pack into a 64-byte block (the paper's 11-way packing
    holds for the 1K-set layout, whose tags are 11 bits).
    """
    dedicated = DedicatedPHT(n_sets=n_sets, assoc=assoc)
    hierarchy = MemorySystem(HierarchyConfig(n_cores=1))
    layout = sms_pht_layout(n_sets=n_sets, assoc=assoc)
    virtualized = VirtualizedPredictorTable(
        0,
        PVTable(layout, PV_START),
        hierarchy,
        PVProxyConfig(
            pvcache_entries=pvcache_entries or n_sets,
            mshr_entries=64,
        ),
    )
    return dedicated, virtualized


operation_lists = st.lists(
    st.tuples(
        st.sampled_from(["store", "lookup"]),
        st.integers(min_value=0, max_value=(1 << 21) - 1),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
    ),
    max_size=120,
)


@settings(max_examples=100, deadline=None)
@given(operation_lists)
def test_virtualized_equals_dedicated_with_full_pvcache(operations):
    """With a PVCache covering every set, results are bit-identical."""
    dedicated, virtualized = make_pair()
    now = 0
    for op, index, value in operations:
        now += 1
        if op == "store":
            dedicated.store(index, value, now)
            virtualized.store(index, value, now)
        else:
            a = dedicated.lookup(index, now)
            b = virtualized.lookup(index, now)
            assert a.hit == b.hit
            assert a.value == b.value


@settings(max_examples=50, deadline=None)
@given(operation_lists)
def test_virtualized_equals_dedicated_with_tiny_pvcache(operations):
    """Even with 8 PVCache entries, *values* must match: spilled sets are
    written back and re-fetched, never corrupted (only latency differs)."""
    dedicated, virtualized = make_pair(pvcache_entries=8)
    now = 0
    for op, index, value in operations:
        now += 1000  # let every fetch complete
        if op == "store":
            dedicated.store(index, value, now)
            virtualized.store(index, value, now)
        else:
            a = dedicated.lookup(index, now)
            b = virtualized.lookup(index, now)
            assert (a.hit, a.value) == (b.hit, b.value)


class TestLatencyContrast:
    def test_dedicated_is_uniform(self):
        dedicated, _ = make_pair()
        dedicated.store(5, 1)
        assert dedicated.lookup(5, now=10).ready_at == 11

    def test_virtualized_first_touch_pays_memory_latency(self):
        _, virtualized = make_pair(pvcache_entries=8)
        result = virtualized.lookup(5, now=10)
        assert result.ready_at > 10 + 100  # memory round trip

    def test_virtualized_hot_set_is_fast(self):
        _, virtualized = make_pair(pvcache_entries=8)
        virtualized.store(5, 1, now=0)
        result = virtualized.lookup(5, now=1000)
        assert result.ready_at == 1001


class TestCreateHelper:
    def test_create_reserves_address_space(self):
        hierarchy = MemorySystem(HierarchyConfig(n_cores=1))
        space = AddressSpace()
        layout = sms_pht_layout()
        table = VirtualizedPredictorTable.create(0, layout, hierarchy, space)
        assert space.is_reserved(table.proxy.table.pv_start)
        assert table.proxy.table.pv_start % 64 == 0

    def test_storage_bits_is_paper_budget(self):
        dedicated, virtualized = make_pair(n_sets=1024, assoc=11, pvcache_entries=8)
        # 889 bytes (Section 4.6) with the default proxy sizing.
        cfg = virtualized.proxy.config
        if cfg.pvcache_entries == 8:
            assert virtualized.storage_bits() == 889 * 8

    def test_reset_flushes(self):
        _, virtualized = make_pair(pvcache_entries=8)
        virtualized.store(5, 1, now=0)
        virtualized.reset()
        assert len(virtualized.proxy.pvcache) == 0


class TestSharedTable:
    def test_two_proxies_can_share_one_pvtable(self):
        """Section 2.1: multiple cores may share a virtualized table."""
        hierarchy = MemorySystem(HierarchyConfig(n_cores=2))
        layout = sms_pht_layout(n_sets=64, assoc=10)
        table = PVTable(layout, PV_START)
        a = VirtualizedPredictorTable(0, table, hierarchy,
                                      PVProxyConfig(pvcache_entries=64))
        b = VirtualizedPredictorTable(1, table, hierarchy,
                                      PVProxyConfig(pvcache_entries=2))
        a.store(9, 1234, now=0)
        a.proxy.flush()  # push through the L2 so core 1 can observe it
        result = b.lookup(9, now=10_000)
        assert result.hit and result.value == 1234
