"""Property-based tests: the bit-exact set codec round-trips (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.pvtable import EntryCodec


def codec_and_ways():
    """Strategy producing (codec, ways) with in-range fields."""
    return st.integers(min_value=2, max_value=16).flatmap(
        lambda tag_bits: st.integers(min_value=2, max_value=40).flatmap(
            lambda value_bits: st.tuples(
                st.just(EntryCodec(tag_bits=tag_bits, value_bits=value_bits)),
                st.lists(
                    st.tuples(
                        st.integers(0, (1 << tag_bits) - 1),
                        st.integers(0, (1 << value_bits) - 1),
                    ),
                    max_size=min(
                        EntryCodec(tag_bits=tag_bits, value_bits=value_bits)
                        .entries_per_block(64),
                        11,
                    ),
                ),
            )
        )
    )


def _droppable(codec, ways):
    """Remove entries that collide with the all-ones empty encoding."""
    empty = (1 << codec.entry_bits) - 1
    return [
        (t, v) for t, v in ways if codec.pack_entry(t, v) != empty
    ]


@settings(max_examples=300, deadline=None)
@given(codec_and_ways())
def test_pack_unpack_roundtrip(case):
    codec, ways = case
    ways = _droppable(codec, ways)
    assert codec.unpack_set(codec.pack_set(ways)) == ways


@settings(max_examples=100, deadline=None)
@given(codec_and_ways())
def test_packed_block_is_always_block_sized(case):
    codec, ways = case
    ways = _droppable(codec, ways)
    assert len(codec.pack_set(ways)) == 64


@settings(max_examples=100, deadline=None)
@given(codec_and_ways())
def test_unpack_preserves_order(case):
    codec, ways = case
    ways = _droppable(codec, ways)
    out = codec.unpack_set(codec.pack_set(ways))
    assert out == ways  # slot order is way order


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=0, max_value=(1 << 11) - 1),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
)
def test_sms_entry_roundtrip(tag, value):
    codec = EntryCodec(tag_bits=11, value_bits=32)
    assert codec.unpack_entry(codec.pack_entry(tag, value)) == (tag, value)
