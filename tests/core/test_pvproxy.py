"""The PVProxy: PVCache behaviour, fetch path, writebacks, drops."""

import pytest

from repro.core.pvproxy import PVCache, PVCacheEntry, PVProxy, PVProxyConfig
from repro.core.pvtable import PVTable
from repro.memory.hierarchy import HierarchyConfig, MemorySystem
from repro.prefetch.pht import sms_pht_layout

PV_START = 0x40000000


def make_proxy(pvcache_entries=8, mshr=4, hierarchy=None, **cfg):
    hierarchy = hierarchy or MemorySystem(HierarchyConfig(n_cores=1))
    table = PVTable(sms_pht_layout(), PV_START)
    proxy = PVProxy(
        0,
        table,
        hierarchy,
        PVProxyConfig(pvcache_entries=pvcache_entries, mshr_entries=mshr, **cfg),
    )
    return proxy, hierarchy


class TestPVCacheStructure:
    def test_lru_eviction(self):
        cache = PVCache(2)
        cache.install(PVCacheEntry(set_index=1))
        cache.install(PVCacheEntry(set_index=2))
        cache.get(1)  # refresh
        victim = cache.install(PVCacheEntry(set_index=3))
        assert victim.set_index == 2

    def test_reinstall_replaces_without_eviction(self):
        cache = PVCache(2)
        cache.install(PVCacheEntry(set_index=1))
        assert cache.install(PVCacheEntry(set_index=1)) is None
        assert len(cache) == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            PVCache(0)


class TestLookupPath:
    def test_cold_lookup_misses_pvcache_and_predictor(self):
        proxy, _ = make_proxy()
        result = proxy.lookup(0x1234, now=0)
        assert not result.hit
        assert not result.pvcache_hit
        assert proxy.stats.fetches == 1

    def test_fetch_installs_set_for_reuse(self):
        proxy, _ = make_proxy()
        proxy.lookup(0x1234, now=0)
        result = proxy.lookup(0x1234, now=1000)
        assert result.pvcache_hit
        assert proxy.stats.pvcache_hits == 1

    def test_store_then_lookup_same_set(self):
        proxy, _ = make_proxy()
        proxy.store(0x1234, 0xBEEF, now=0)
        result = proxy.lookup(0x1234, now=10)
        assert result.hit and result.value == 0xBEEF

    def test_lookup_latency_reflects_memory_round_trip(self):
        proxy, hierarchy = make_proxy()
        result = proxy.lookup(0x1234, now=100)
        # L2 miss -> memory: tag(6) + 400, plus 1 cycle PVCache.
        assert result.ready_at == 100 + 1 + 6 + 400

    def test_lookup_latency_on_l2_hit(self):
        proxy, hierarchy = make_proxy()
        proxy.lookup(0x1234, now=0)
        # Evict from PVCache by touching 8 other sets (advancing time so
        # each fetch's MSHR entry retires before the next request).
        for i in range(1, 9):
            proxy.lookup(0x1234 + i, now=i * 1000)
        result = proxy.lookup(0x1234, now=100_000)
        assert not result.pvcache_hit
        assert result.ready_at == 100_000 + 1 + 6 + 12  # L2 tag+data

    def test_pvcache_hit_is_one_cycle(self):
        proxy, _ = make_proxy()
        proxy.store(0x1234, 7, now=0)
        result = proxy.lookup(0x1234, now=600)
        assert result.ready_at == 601


class TestWaySemantics:
    def test_different_tags_same_set_coexist(self):
        proxy, _ = make_proxy()
        set_bits = proxy.geometry.set_bits
        a = 0x10  # set 0x10, tag 0
        b = 0x10 | (1 << set_bits)  # same set, tag 1
        proxy.store(a, 111, now=0)
        proxy.store(b, 222, now=0)
        assert proxy.lookup(a, now=1).value == 111
        assert proxy.lookup(b, now=1).value == 222

    def test_way_overflow_drops_lru_way(self):
        proxy, _ = make_proxy()
        set_bits = proxy.geometry.set_bits
        assoc = proxy.geometry.assoc
        base = 0x3
        for tag in range(assoc + 1):
            proxy.store(base | (tag << set_bits), tag, now=0)
        assert not proxy.lookup(base, now=1).hit  # tag 0 displaced
        assert proxy.lookup(base | (assoc << set_bits), now=1).hit

    def test_store_updates_existing_way(self):
        proxy, _ = make_proxy()
        proxy.store(0x55, 1, now=0)
        proxy.store(0x55, 2, now=0)
        assert proxy.lookup(0x55, now=1).value == 2


class TestEvictionWriteback:
    def test_dirty_eviction_writes_to_l2(self):
        proxy, hierarchy = make_proxy(pvcache_entries=2)
        proxy.store(0x0, 10, now=0)  # set 0, dirty
        proxy.lookup(0x1, now=0)     # set 1
        proxy.lookup(0x2, now=0)     # set 2 -> evicts set 0 (dirty)
        assert proxy.stats.writebacks == 1
        line = hierarchy.l2.lookup(proxy.table.block_address(0))
        assert line is not None and line.dirty and line.is_pv

    def test_clean_eviction_discarded(self):
        proxy, hierarchy = make_proxy(pvcache_entries=2)
        proxy.lookup(0x0, now=0)
        proxy.lookup(0x1, now=0)
        before = hierarchy.l2.stats.pv_hits + hierarchy.l2.stats.pv_misses
        proxy.lookup(0x2, now=0)  # evicts clean set 0: no write
        after = hierarchy.l2.stats.pv_hits + hierarchy.l2.stats.pv_misses
        assert proxy.stats.writebacks == 0
        assert after == before + 1  # only the fetch for set 2

    def test_written_back_set_survives_round_trip(self):
        proxy, _ = make_proxy(pvcache_entries=2)
        proxy.store(0x0, 42, now=0)
        proxy.lookup(0x1, now=0)
        proxy.lookup(0x2, now=0)  # evict set 0 to L2
        result = proxy.lookup(0x0, now=100)  # fetch back from L2
        assert result.hit and result.value == 42


class TestDropBehaviour:
    def test_mshr_full_drops_lookup(self):
        proxy, _ = make_proxy(mshr=1)
        # Keep one outstanding fetch alive far in the future.
        proxy.lookup(0x0, now=0)
        result = proxy.lookup(0x1, now=0)  # MSHR still holds set 0's fetch
        assert not result.hit
        assert proxy.stats.dropped_lookups == 1

    def test_mshr_drains_with_time(self):
        proxy, _ = make_proxy(mshr=1)
        proxy.lookup(0x0, now=0)
        result = proxy.lookup(0x1, now=10_000)  # fetch long since completed
        assert proxy.stats.dropped_lookups == 0
        assert result.pvcache_hit is False

    def test_pattern_buffer_full_drops_store(self):
        proxy, _ = make_proxy(pattern_buffer_entries=0)
        proxy.store(0x0, 1, now=0)
        assert proxy.stats.dropped_stores == 1
        assert not proxy.lookup(0x0, now=1).hit


class TestPatternBuffer:
    def test_occupancy_tracks_outstanding_fetches(self):
        proxy, _ = make_proxy()
        proxy.store(0x0, 1, now=0)  # miss: fetch issued, operand parked
        assert proxy.pattern_buffer_occupancy == 1
        proxy.store(0x1, 2, now=0)  # second set, second outstanding fetch
        assert proxy.pattern_buffer_occupancy == 2
        assert proxy.pattern_buffer_peak == 2

    def test_operands_release_when_fetch_completes(self):
        proxy, _ = make_proxy()
        proxy.store(0x0, 1, now=0)
        proxy.store(0x1, 2, now=100_000)  # first fetch long since done
        assert proxy.pattern_buffer_occupancy == 1

    def test_store_to_ready_set_bypasses_buffer(self):
        proxy, _ = make_proxy()
        proxy.store(0x0, 1, now=0)
        proxy.store(0x0, 2, now=100_000)  # resident and ready: direct write
        assert proxy.pattern_buffer_occupancy == 0
        assert proxy.lookup(0x0, now=200_000).value == 2

    def test_store_to_in_flight_set_occupies_buffer(self):
        proxy, _ = make_proxy()
        set_bits = proxy.geometry.set_bits
        proxy.store(0x0, 1, now=0)                 # set 0 being fetched
        proxy.store(1 << set_bits, 2, now=10)      # same set, not ready yet
        assert proxy.pattern_buffer_occupancy == 2
        assert proxy.stats.buffered_stores == 2

    def test_buffer_pressure_drops_stores(self):
        proxy, _ = make_proxy(mshr=8, pattern_buffer_entries=2)
        set_bits = proxy.geometry.set_bits
        proxy.store(0x0, 1, now=0)
        proxy.store(0x1, 2, now=0)
        proxy.store(0x2, 3, now=0)  # buffer full before the fetch
        assert proxy.stats.dropped_stores == 1
        proxy.store(1 << set_bits, 4, now=1)  # in-flight set, buffer full
        assert proxy.stats.dropped_stores == 2
        # The dropped operand never landed in the set.
        assert not proxy.lookup(1 << set_bits, now=100_000).hit

    def test_peak_reaches_mshr_capacity_with_default_budget(self):
        proxy, _ = make_proxy()
        for s in range(proxy.config.mshr_entries):
            proxy.store(s, s, now=0)
        assert proxy.pattern_buffer_peak == proxy.config.mshr_entries
        assert proxy.pattern_buffer_peak > 1

    def test_mshr_full_drops_store(self):
        proxy, _ = make_proxy(mshr=1)
        proxy.store(0x0, 1, now=0)
        proxy.store(0x1, 2, now=0)  # no MSHR for the second fetch
        assert proxy.stats.dropped_stores == 1
        assert proxy.pattern_buffer_occupancy == 1


class TestReportMissMode:
    def test_report_miss_on_fetch(self):
        proxy, _ = make_proxy(report_miss_on_fetch=True)
        proxy.store(0x0, 9, now=0)
        # Evict set 0 so the next lookup must fetch.
        for i in range(1, 9):
            proxy.lookup(i, now=i * 1000)
        result = proxy.lookup(0x0, now=100_000)
        assert not result.hit            # reported as a miss...
        assert proxy.stats.reported_misses >= 1
        again = proxy.lookup(0x0, now=200_000)
        assert again.hit and again.value == 9  # ...but the set was installed


class TestL2EvictionCallback:
    def test_dirty_pv_l2_eviction_commits_to_memory(self):
        hierarchy = MemorySystem(
            HierarchyConfig(n_cores=1, l2_size=16 * 64, l2_assoc=2)
        )
        table = PVTable(sms_pht_layout(), PV_START)
        proxy = PVProxy(0, table, hierarchy, PVProxyConfig(pvcache_entries=2))
        proxy.store(0x0, 77, now=0)
        proxy.lookup(0x1, now=0)
        proxy.lookup(0x2, now=0)  # set 0 written back to L2 (dirty)
        # Now force the L2 to evict that PV line.
        block = table.block_address(0)
        n_sets = hierarchy.l2.geometry.n_sets
        for i in range(1, 4):
            hierarchy.access(0, block + i * n_sets * 64)
        assert table.commits == 1
        assert table.read_set(0, from_memory=True) != []


class TestFlush:
    def test_flush_writes_dirty_entries(self):
        proxy, hierarchy = make_proxy()
        proxy.store(0x0, 5, now=0)
        proxy.store(0x1, 6, now=0)
        proxy.flush()
        assert proxy.stats.writebacks == 2
        assert len(proxy.pvcache) == 0

    def test_flush_skips_clean_entries(self):
        proxy, _ = make_proxy()
        proxy.lookup(0x0, now=0)      # clean resident set
        proxy.store(0x1, 6, now=0)    # dirty resident set
        proxy.flush()
        assert proxy.stats.writebacks == 1
        assert len(proxy.pvcache) == 0

    def test_flush_clears_pattern_buffer(self):
        proxy, _ = make_proxy()
        proxy.store(0x0, 5, now=0)
        assert proxy.pattern_buffer_occupancy == 1
        proxy.flush()
        assert proxy.pattern_buffer_occupancy == 0

    def test_flush_empty_proxy_is_noop(self):
        proxy, _ = make_proxy()
        proxy.flush()
        assert proxy.stats.writebacks == 0

    def test_flushed_state_survives_in_memory_image(self):
        proxy, _ = make_proxy()
        proxy.store(0x42, 99, now=0)
        proxy.flush()
        result = proxy.lookup(0x42, now=100_000)  # refetched from the L2
        assert result.hit and result.value == 99
