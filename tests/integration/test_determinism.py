"""Cross-process determinism.

Matched-pair measurement (Section 4.1) requires that two configurations see
*identical* reference streams, and archived EXPERIMENTS.md numbers must be
regenerable.  Python randomizes ``str.__hash__`` per process, so these tests
run the same tiny simulation under different ``PYTHONHASHSEED`` values and
demand identical results (the generators seed from ``zlib.crc32``, not
``hash``).
"""

import os
import subprocess
import sys

SCRIPT = """
from repro import CMPSimulator, PrefetcherConfig, get_workload
r = CMPSimulator(get_workload("Qry1"), PrefetcherConfig.dedicated(64)).run(
    1500, warmup_refs=500
)
print(r.covered, r.uncovered, r.l2_requests, round(r.elapsed_cycles, 3))
"""


def run_with_hashseed(seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=seed)
    out = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True, text=True, env=env, check=True,
    )
    return out.stdout.strip()


class TestCrossProcessDeterminism:
    def test_results_independent_of_hash_seed(self):
        a = run_with_hashseed("0")
        b = run_with_hashseed("12345")
        assert a == b
        assert a  # non-empty

    def test_repeated_runs_identical(self):
        assert run_with_hashseed("7") == run_with_hashseed("7")
