"""Next-line, stride, and BTB baselines."""

import pytest

from repro.core.pvproxy import PVProxyConfig
from repro.core.pvtable import PVTable
from repro.core.virtualized import VirtualizedPredictorTable
from repro.memory.hierarchy import HierarchyConfig, MemorySystem
from repro.prefetch.btb import BranchTargetBuffer, btb_index, btb_layout
from repro.prefetch.nextline import NextLinePrefetcher
from repro.prefetch.pht import DedicatedPHT
from repro.prefetch.stride import StridePrefetcher


class TestNextLine:
    def test_prefetches_next_block(self):
        nl = NextLinePrefetcher()
        assert nl.on_fetch(0x1000) == [0x1040]

    def test_same_block_filtered(self):
        nl = NextLinePrefetcher()
        nl.on_fetch(0x1000)
        assert nl.on_fetch(0x1004) == []
        assert nl.on_fetch(0x1040) == [0x1080]

    def test_degree(self):
        nl = NextLinePrefetcher(degree=2)
        assert nl.on_fetch(0) == [64, 128]

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)


class TestStride:
    def test_learns_constant_stride(self):
        sp = StridePrefetcher(degree=1, threshold=2)
        targets = []
        for i in range(6):
            targets = sp.on_access(0x400, 0x1000 + i * 256)
        assert targets  # confident by now
        assert targets[0] == 0x1000 + 5 * 256 + 256

    def test_no_prefetch_for_random_addresses(self):
        sp = StridePrefetcher()
        out = []
        for a in [0, 999, 40, 7777, 123, 90210]:
            out.extend(sp.on_access(0x400, a))
        assert out == []

    def test_zero_stride_never_prefetches(self):
        sp = StridePrefetcher()
        for _ in range(10):
            targets = sp.on_access(0x400, 0x5000)
        assert targets == []

    def test_table_is_bounded(self):
        sp = StridePrefetcher(table_entries=4)
        for pc in range(100):
            sp.on_access(pc, pc * 64)
        assert len(sp._table) <= 4

    def test_distinct_pcs_tracked_separately(self):
        sp = StridePrefetcher(degree=1, threshold=1)
        for i in range(4):
            sp.on_access(1, 0x1000 + i * 64)
            sp.on_access(2, 0x9000 + i * 128)
        a = sp.on_access(1, 0x1000 + 4 * 64)
        b = sp.on_access(2, 0x9000 + 4 * 128)
        assert a and b and a != b


class TestBTB:
    def test_predict_after_update(self):
        btb = BranchTargetBuffer(DedicatedPHT(n_sets=64, assoc=4, index_bits=16))
        btb.update(0x4000, 0x5000, predicted=None)
        assert btb.predict(0x4000) == 0x5000

    def test_accuracy_tracking(self):
        btb = BranchTargetBuffer(DedicatedPHT(n_sets=64, assoc=4, index_bits=16))
        first = btb.predict(0x4000)          # cold miss
        btb.update(0x4000, 0x5000, first)
        second = btb.predict(0x4000)         # hit
        btb.update(0x4000, 0x5000, second)
        assert btb.stats.correct == 1
        assert btb.stats.hit_rate == pytest.approx(0.5)  # 1 of 2 lookups hit

    def test_btb_layout_packs(self):
        layout = btb_layout()
        assert layout.codec.entry_bits == 39
        assert layout.geometry.assoc <= layout.codec.entries_per_block()

    def test_virtualized_btb_behaves_like_dedicated(self):
        """Section 6: branch target prediction virtualizes naturally."""
        hierarchy = MemorySystem(HierarchyConfig(n_cores=1))
        table = PVTable(btb_layout(), 0x40000000)
        virtualized = VirtualizedPredictorTable(
            0, table, hierarchy, PVProxyConfig(pvcache_entries=512, mshr_entries=64)
        )
        dedicated = BranchTargetBuffer(
            DedicatedPHT(n_sets=512, assoc=8, index_bits=16)
        )
        virtual = BranchTargetBuffer(virtualized)
        branches = [(0x4000 + i * 8, 0x9000 + i * 16) for i in range(200)]
        for step, (pc, target) in enumerate(branches * 2):
            now = step * 1000  # let every PVTable fetch complete
            dp = dedicated.predict(pc)
            vp = virtual.predict(pc, now=now)
            assert dp == vp
            dedicated.update(pc, target, dp)
            virtual.update(pc, target, vp, now=now)
        assert dedicated.stats.correct == virtual.stats.correct

    def test_index_is_word_aligned(self):
        assert btb_index(0x4000) == btb_index(0x4002)
        assert btb_index(0x4000) != btb_index(0x4004)
