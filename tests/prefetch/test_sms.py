"""The SMS optimization engine over a PredictorTable."""

from repro.prefetch.pht import DedicatedPHT, InfinitePHT, pht_index
from repro.prefetch.regions import SpatialRegionGeometry
from repro.prefetch.sms import SMSConfig, SMSPrefetcher

G = SpatialRegionGeometry()


def addr(region, offset):
    return region * G.region_bytes + offset * G.block_size


def make_sms(table=None, **cfg):
    return SMSPrefetcher(table or InfinitePHT(), SMSConfig(**cfg))


def train_pattern(sms, pc, region, offsets):
    """Run one full generation: trigger + body accesses + ending eviction."""
    sms.on_access(pc, addr(region, offsets[0]))
    for off in offsets[1:]:
        sms.on_access(pc + 4, addr(region, off))
    sms.on_block_removed(addr(region, offsets[0]))


class TestTrainThenPredict:
    def test_learned_pattern_is_prefetched_in_new_region(self):
        sms = make_sms()
        train_pattern(sms, pc=0x400, region=1, offsets=[2, 5, 9])
        prefetches = sms.on_access(0x400, addr(7, 2))
        targets = sorted(block for block, _ in prefetches)
        assert targets == [addr(7, 5), addr(7, 9)]

    def test_trigger_block_is_excluded(self):
        sms = make_sms()
        train_pattern(sms, pc=0x400, region=1, offsets=[2, 5])
        prefetches = sms.on_access(0x400, addr(7, 2))
        assert addr(7, 2) not in [b for b, _ in prefetches]

    def test_prediction_requires_matching_pc_and_offset(self):
        sms = make_sms()
        train_pattern(sms, pc=0x400, region=1, offsets=[2, 5])
        # Same PC, different trigger offset: different PHT index.
        assert sms.on_access(0x400, addr(8, 3)) == []
        # Different PC, same offset.
        assert sms.on_access(0x500, addr(9, 2)) == []

    def test_no_prediction_without_training(self):
        sms = make_sms()
        assert sms.on_access(0x400, addr(1, 0)) == []

    def test_non_trigger_accesses_do_not_predict(self):
        sms = make_sms()
        train_pattern(sms, pc=0x400, region=1, offsets=[2, 5])
        sms.on_access(0x400, addr(7, 2))
        # Region 7 is active now; further accesses are not triggers.
        assert sms.on_access(0x400, addr(7, 5)) == []

    def test_single_block_generations_never_stored(self):
        sms = make_sms()
        sms.on_access(0x400, addr(1, 2))
        sms.on_block_removed(addr(1, 2))
        assert sms.on_access(0x400, addr(7, 2)) == []
        assert sms.stats.patterns_stored == 0


class TestLatencyPropagation:
    def test_prefetches_carry_pht_ready_time(self):
        class SlowTable(InfinitePHT):
            def lookup(self, index, now=0):
                result = super().lookup(index, now)
                result.ready_at = now + 123
                return result

        sms = SMSPrefetcher(SlowTable())
        train_pattern(sms, pc=0x400, region=1, offsets=[2, 5])
        prefetches = sms.on_access(0x400, addr(7, 2), now=1000)
        assert prefetches[0][1] == 1123


class TestIssueCallback:
    def test_callback_receives_prefetches(self):
        issued = []
        sms = SMSPrefetcher(
            InfinitePHT(), issue_prefetch=lambda b, t: issued.append(b)
        )
        train_pattern(sms, pc=0x400, region=1, offsets=[2, 5, 6])
        sms.on_access(0x400, addr(7, 2))
        assert sorted(issued) == [addr(7, 5), addr(7, 6)]


class TestPrefetchCap:
    def test_max_prefetches_per_prediction(self):
        sms = make_sms(max_prefetches_per_prediction=3)
        train_pattern(sms, pc=0x400, region=1, offsets=list(range(12)))
        prefetches = sms.on_access(0x400, addr(7, 0))
        assert len(prefetches) == 3


class TestStatsAndStorage:
    def test_stats_counters(self):
        sms = make_sms()
        train_pattern(sms, pc=0x400, region=1, offsets=[2, 5])
        sms.on_access(0x400, addr(7, 2))
        assert sms.stats.patterns_stored == 1
        assert sms.stats.trigger_lookups >= 2
        assert sms.stats.predictions == 1
        assert sms.stats.prefetches_issued == 1

    def test_storage_dominated_by_pht(self):
        """Section 3.2: the PHT consumes the bulk of SMS's resources."""
        sms = SMSPrefetcher(DedicatedPHT(n_sets=1024, assoc=11))
        pht_bits = sms.table.storage_bits()
        agt_bits = sms.agt.storage_bits()
        assert pht_bits > 50 * agt_bits

    def test_stored_pattern_lands_at_trigger_index(self):
        table = InfinitePHT()
        sms = SMSPrefetcher(table)
        train_pattern(sms, pc=0x400, region=1, offsets=[2, 5])
        index = pht_index(0x400, 2)
        assert table.lookup(index).hit


class TestDedicatedIntegration:
    def test_tiny_pht_forgets_under_pressure(self):
        """The Figure 4 mechanism: small tables lose patterns to LRU."""
        table = DedicatedPHT(n_sets=8, assoc=2)  # 16 entries
        sms = SMSPrefetcher(table)
        for i in range(64):
            train_pattern(sms, pc=0x4000 + i * 4, region=i + 1, offsets=[1, 2])
        hits = 0
        for i in range(64):
            if sms.on_access(0x4000 + i * 4, addr(100 + i, 1)):
                hits += 1
        assert hits < 32  # most early patterns were displaced
