"""Spatial-region geometry and pattern helpers."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.prefetch.regions import SpatialRegionGeometry


class TestGeometry:
    def test_paper_defaults(self):
        g = SpatialRegionGeometry()
        assert g.blocks_per_region == 32
        assert g.region_bytes == 2048
        assert g.offset_bits == 5

    def test_region_of(self):
        g = SpatialRegionGeometry()
        assert g.region_of(0) == 0
        assert g.region_of(2047) == 0
        assert g.region_of(2048) == 1

    def test_offset_of(self):
        g = SpatialRegionGeometry()
        assert g.offset_of(0) == 0
        assert g.offset_of(64) == 1
        assert g.offset_of(2048 + 31 * 64 + 63) == 31

    def test_block_address(self):
        g = SpatialRegionGeometry()
        assert g.block_address(4096, 3) == 4096 + 192

    def test_block_address_rejects_bad_offset(self):
        g = SpatialRegionGeometry()
        with pytest.raises(ValueError):
            g.block_address(0, 32)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            SpatialRegionGeometry(blocks_per_region=30)


class TestPatterns:
    def test_pattern_of_offsets(self):
        g = SpatialRegionGeometry()
        assert g.pattern_of_offsets([0, 2, 31]) == (1 | 4 | (1 << 31))

    def test_offsets_of_pattern(self):
        g = SpatialRegionGeometry()
        assert g.offsets_of_pattern(0b1011) == [0, 1, 3]

    def test_pattern_density(self):
        assert SpatialRegionGeometry.pattern_density(0b1011) == 3

    def test_rejects_out_of_range_offset(self):
        g = SpatialRegionGeometry()
        with pytest.raises(ValueError):
            g.pattern_of_offsets([32])

    def test_rejects_wide_pattern(self):
        g = SpatialRegionGeometry()
        with pytest.raises(ValueError):
            g.offsets_of_pattern(1 << 32)

    @settings(max_examples=200, deadline=None)
    @given(st.sets(st.integers(0, 31)))
    def test_offsets_pattern_roundtrip(self, offsets):
        g = SpatialRegionGeometry()
        assert g.offsets_of_pattern(g.pattern_of_offsets(offsets)) == sorted(offsets)


class TestPrefetchAddresses:
    def test_excludes_trigger(self):
        g = SpatialRegionGeometry()
        pattern = g.pattern_of_offsets([0, 1, 2])
        addrs = list(g.prefetch_addresses(4096, pattern, exclude_offset=1))
        assert addrs == [4096, 4096 + 128]

    def test_full_pattern_without_exclusion(self):
        g = SpatialRegionGeometry()
        pattern = g.pattern_of_offsets([5])
        assert list(g.prefetch_addresses(0, pattern)) == [5 * 64]
