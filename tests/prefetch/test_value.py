"""Last-value predictor: encoding, confidence, and virtualization."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.core.pvproxy import PVProxyConfig
from repro.core.pvtable import PVTable
from repro.core.virtualized import VirtualizedPredictorTable
from repro.memory.hierarchy import HierarchyConfig, MemorySystem
from repro.prefetch.pht import DedicatedPHT
from repro.prefetch.value import (
    LVP_CONF_MAX,
    LVP_INDEX_BITS,
    LastValuePredictor,
    lvp_index,
    lvp_layout,
    pack_lvp_entry,
    unpack_lvp_entry,
)


def dedicated_lvp(threshold=2):
    return LastValuePredictor(
        DedicatedPHT(n_sets=256, assoc=8, index_bits=LVP_INDEX_BITS),
        threshold=threshold,
    )


class TestEncoding:
    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, (1 << 32) - 1), st.integers(0, LVP_CONF_MAX))
    def test_pack_unpack_roundtrip(self, value, confidence):
        assert unpack_lvp_entry(pack_lvp_entry(value, confidence)) == (
            value, confidence,
        )

    def test_confidence_range_checked(self):
        with pytest.raises(ValueError):
            pack_lvp_entry(0, LVP_CONF_MAX + 1)

    def test_index_word_aligned(self):
        assert lvp_index(0x4000) == lvp_index(0x4002)
        assert lvp_index(0x4000) != lvp_index(0x4004)

    def test_layout_packs(self):
        layout = lvp_layout()
        assert layout.codec.entry_bits == 40
        assert layout.geometry.assoc <= layout.codec.entries_per_block()


class TestConfidence:
    def test_no_prediction_until_confident(self):
        lvp = dedicated_lvp(threshold=2)
        lvp.update(0x400, 7, None)        # confidence 1
        assert lvp.predict(0x400) is None
        lvp.update(0x400, 7, None)        # confidence 2
        assert lvp.predict(0x400) == 7

    def test_changing_value_decays_confidence(self):
        lvp = dedicated_lvp(threshold=2)
        for _ in range(3):
            lvp.update(0x400, 7, None)
        assert lvp.predict(0x400) == 7
        lvp.update(0x400, 8, None)        # mispredicted value: decay
        lvp.update(0x400, 8, None)
        lvp.update(0x400, 8, None)        # confidence reaches 0 -> retrain
        lvp.update(0x400, 8, None)
        lvp.update(0x400, 8, None)
        assert lvp.predict(0x400) == 8

    def test_stats_accuracy(self):
        lvp = dedicated_lvp(threshold=1)
        lvp.update(0x400, 7, None)
        p = lvp.predict(0x400)
        lvp.update(0x400, 7, p)
        assert lvp.stats.correct == 1
        assert lvp.stats.accuracy == 1.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            dedicated_lvp(threshold=0)


class TestVirtualizedLVP:
    def test_virtualized_matches_dedicated(self):
        """The engine is agnostic to the table implementation."""
        hierarchy = MemorySystem(HierarchyConfig(n_cores=1))
        table = PVTable(lvp_layout(), 0x40000000)
        virtual = LastValuePredictor(
            VirtualizedPredictorTable(
                0, table, hierarchy,
                PVProxyConfig(pvcache_entries=256, mshr_entries=64),
            )
        )
        dedicated = dedicated_lvp()
        loads = [(0x4000 + (i % 40) * 8, (i % 40) * 3) for i in range(400)]
        for step, (pc, value) in enumerate(loads):
            now = step * 1000
            dp = dedicated.predict(pc)
            vp = virtual.predict(pc, now=now)
            assert dp == vp
            dedicated.update(pc, value, dp)
            virtual.update(pc, value, vp, now=now)
        assert dedicated.stats.correct == virtual.stats.correct
        assert virtual.stats.correct > 0

    def test_stable_loads_become_predictable(self):
        lvp = dedicated_lvp()
        for _ in range(4):
            for pc in (0x400, 0x500, 0x600):
                predicted = lvp.predict(pc)
                lvp.update(pc, pc * 2, predicted)
        assert lvp.stats.accuracy == 1.0  # every offered prediction correct
        assert lvp.predict(0x400) == 0x800
