"""Property-based SMS invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.prefetch.pht import InfinitePHT
from repro.prefetch.regions import SpatialRegionGeometry
from repro.prefetch.sms import SMSConfig, SMSPrefetcher

G = SpatialRegionGeometry()

# Random interleavings of accesses and evictions over a small region space.
events = st.lists(
    st.tuples(
        st.sampled_from(["access", "evict"]),
        st.integers(min_value=0, max_value=7),    # region
        st.integers(min_value=0, max_value=31),   # offset
        st.integers(min_value=0, max_value=15),   # pc selector
    ),
    max_size=300,
)


def drive(sms, operations):
    stored = []
    original = sms._store_pattern

    def spy(pc, offset, pattern):
        stored.append((pc, offset, pattern))
        original(pc, offset, pattern)

    sms._store_pattern = spy
    sms.agt.on_generation_end = spy
    for kind, region, offset, pc_sel in operations:
        addr = region * G.region_bytes + offset * G.block_size
        if kind == "access":
            sms.on_access(0x4000 + pc_sel * 4, addr)
        else:
            sms.on_block_removed(addr)
    return stored


@settings(max_examples=150, deadline=None)
@given(events)
def test_stored_patterns_always_include_trigger_bit(operations):
    """Every pattern handed to the PHT covers its own triggering block."""
    sms = SMSPrefetcher(InfinitePHT(), SMSConfig(filter_entries=4,
                                                 accumulation_entries=8))
    for pc, offset, pattern in drive(sms, operations):
        assert pattern & (1 << offset)


@settings(max_examples=150, deadline=None)
@given(events)
def test_stored_patterns_have_at_least_two_blocks(operations):
    """Single-access generations are filtered out (Section 3.1)."""
    sms = SMSPrefetcher(InfinitePHT(), SMSConfig(filter_entries=4,
                                                 accumulation_entries=8))
    for _, _, pattern in drive(sms, operations):
        assert bin(pattern).count("1") >= 2


@settings(max_examples=150, deadline=None)
@given(events)
def test_agt_capacity_invariant(operations):
    """The AGT never exceeds its configured capacities."""
    sms = SMSPrefetcher(InfinitePHT(), SMSConfig(filter_entries=4,
                                                 accumulation_entries=8))
    for kind, region, offset, pc_sel in operations:
        addr = region * G.region_bytes + offset * G.block_size
        if kind == "access":
            sms.on_access(0x4000 + pc_sel * 4, addr)
        else:
            sms.on_block_removed(addr)
        assert len(sms.agt.filter) <= 4
        assert len(sms.agt.accumulation) <= 8


@settings(max_examples=100, deadline=None)
@given(events)
def test_prefetches_never_target_the_trigger_block(operations):
    sms = SMSPrefetcher(InfinitePHT(), SMSConfig(filter_entries=4,
                                                 accumulation_entries=8))
    for kind, region, offset, pc_sel in operations:
        addr = region * G.region_bytes + offset * G.block_size
        if kind == "access":
            for block, _ in sms.on_access(0x4000 + pc_sel * 4, addr):
                assert block != addr - (addr % G.block_size)
                # Prefetches stay inside the trigger's spatial region.
                assert G.region_of(block) == G.region_of(addr)
        else:
            sms.on_block_removed(addr)
