"""PHT index function and the dedicated/infinite implementations."""

import pytest

from repro.prefetch.pht import (
    DedicatedPHT,
    InfinitePHT,
    PHT_INDEX_BITS,
    pht_index,
    sms_pht_layout,
)


class TestIndex:
    def test_concatenation(self):
        # Figure 3b: 16 PC bits ++ 5 offset bits.
        assert pht_index(0x1, 0) == 1 << 5
        assert pht_index(0x0, 31) == 31
        assert pht_index(0xFFFF, 31) == (1 << 21) - 1

    def test_pc_truncated_to_16_bits(self):
        assert pht_index(0x1_0000, 0) == pht_index(0x0, 0)
        assert pht_index(0x1_2345, 3) == pht_index(0x2345, 3)

    def test_rejects_bad_offset(self):
        with pytest.raises(ValueError):
            pht_index(0, 32)

    def test_width(self):
        assert PHT_INDEX_BITS == 21


class TestDedicated:
    def test_store_lookup(self):
        pht = DedicatedPHT(n_sets=16, assoc=2)
        pht.store(5, 0xABC)
        result = pht.lookup(5)
        assert result.hit and result.value == 0xABC

    def test_miss(self):
        pht = DedicatedPHT(n_sets=16, assoc=2)
        assert not pht.lookup(5).hit

    def test_lru_within_set(self):
        pht = DedicatedPHT(n_sets=16, assoc=2)
        a, b, c = 3, 3 + 16, 3 + 32  # same set, different tags
        pht.store(a, 1)
        pht.store(b, 2)
        pht.lookup(a)
        pht.store(c, 3)  # evicts b (LRU)
        assert pht.lookup(a).hit
        assert not pht.lookup(b).hit
        assert pht.lookup(c).hit
        assert pht.stats.replacements == 1

    def test_store_update_in_place(self):
        pht = DedicatedPHT(n_sets=16, assoc=2)
        pht.store(5, 1)
        pht.store(5, 2)
        assert pht.lookup(5).value == 2
        assert pht.occupancy() == 1

    def test_latency_is_uniform(self):
        pht = DedicatedPHT(n_sets=16, assoc=2, latency=1)
        pht.store(5, 1)
        assert pht.lookup(5, now=100).ready_at == 101

    def test_storage_bits_matches_table3(self):
        # 1K-11a: 59.125 KB = 484352 bits.
        pht = DedicatedPHT(n_sets=1024, assoc=11)
        assert pht.storage_bits() == int(59.125 * 1024 * 8)

    def test_reset(self):
        pht = DedicatedPHT(n_sets=16, assoc=2)
        pht.store(5, 1)
        pht.reset()
        assert not pht.lookup(5).hit

    def test_hit_rate(self):
        pht = DedicatedPHT(n_sets=16, assoc=2)
        pht.store(5, 1)
        pht.lookup(5)
        pht.lookup(6)
        assert pht.stats.hit_rate == pytest.approx(0.5)


class TestInfinite:
    def test_never_evicts(self):
        pht = InfinitePHT()
        for i in range(100_000):
            pht.store(i % (1 << 21), i)
        assert len(pht) == min(100_000, 1 << 21)

    def test_lookup(self):
        pht = InfinitePHT()
        pht.store(7, 9)
        assert pht.lookup(7).value == 9
        assert not pht.lookup(8).hit

    def test_reset(self):
        pht = InfinitePHT()
        pht.store(7, 9)
        pht.reset()
        assert len(pht) == 0


class TestLayoutHelper:
    def test_default_layout_is_the_paper_design(self):
        layout = sms_pht_layout()
        assert layout.geometry.n_sets == 1024
        assert layout.geometry.assoc == 11
        assert layout.codec.entry_bits == 43
        assert layout.table_bytes == 65536
