"""The Active Generation Table: filter/accumulation life-cycle."""

import pytest

from repro.prefetch.agt import (
    AccumulationEntry,
    ActiveGenerationTable,
    FilterEntry,
    FilterTable,
)
from repro.prefetch.regions import SpatialRegionGeometry

G = SpatialRegionGeometry()


def make_agt(filter_entries=32, accumulation_entries=64, **kw):
    stored = []
    agt = ActiveGenerationTable(
        geometry=G,
        filter_entries=filter_entries,
        accumulation_entries=accumulation_entries,
        on_generation_end=lambda pc, off, pat: stored.append((pc, off, pat)),
        **kw,
    )
    return agt, stored


def addr(region, offset):
    return region * G.region_bytes + offset * G.block_size


class TestTriggering:
    def test_first_access_is_trigger(self):
        agt, _ = make_agt()
        assert agt.record_access(0x400, addr(1, 5)) == (0x400, 5)

    def test_second_access_same_block_is_not_trigger(self):
        agt, _ = make_agt()
        agt.record_access(0x400, addr(1, 5))
        assert agt.record_access(0x404, addr(1, 5) + 8) is None

    def test_second_access_other_block_promotes(self):
        agt, _ = make_agt()
        agt.record_access(0x400, addr(1, 5))
        assert agt.record_access(0x404, addr(1, 7)) is None
        assert len(agt.accumulation) == 1
        assert len(agt.filter) == 0
        assert agt.stats.promotions == 1

    def test_new_region_is_new_trigger(self):
        agt, _ = make_agt()
        agt.record_access(0x400, addr(1, 5))
        assert agt.record_access(0x500, addr(2, 0)) == (0x500, 0)


class TestPatternAccumulation:
    def test_pattern_collects_bits(self):
        agt, stored = make_agt()
        agt.record_access(0x400, addr(1, 5))
        agt.record_access(0x404, addr(1, 7))
        agt.record_access(0x408, addr(1, 9))
        agt.block_removed(addr(1, 5))
        assert stored == [(0x400, 5, (1 << 5) | (1 << 7) | (1 << 9))]

    def test_pattern_keeps_trigger_pc(self):
        agt, stored = make_agt()
        agt.record_access(0xAAAA, addr(3, 0))
        agt.record_access(0xBBBB, addr(3, 1))
        agt.block_removed(addr(3, 1))
        assert stored[0][0] == 0xAAAA


class TestGenerationEnd:
    def test_eviction_of_accessed_block_ends_generation(self):
        agt, stored = make_agt()
        agt.record_access(1, addr(1, 0))
        agt.record_access(2, addr(1, 1))
        result = agt.block_removed(addr(1, 1))
        assert result is not None
        assert len(stored) == 1
        assert len(agt.accumulation) == 0

    def test_eviction_of_untouched_block_does_not_end(self):
        agt, stored = make_agt()
        agt.record_access(1, addr(1, 0))
        agt.record_access(2, addr(1, 1))
        assert agt.block_removed(addr(1, 30)) is None
        assert stored == []
        assert len(agt.accumulation) == 1

    def test_filter_only_generation_stores_nothing(self):
        """Single-access regions are filtered out (Section 3.1)."""
        agt, stored = make_agt()
        agt.record_access(1, addr(1, 4))
        assert agt.block_removed(addr(1, 4)) is None
        assert stored == []
        assert agt.stats.filter_generations_ended == 1

    def test_filter_survives_other_block_eviction(self):
        agt, _ = make_agt()
        agt.record_access(1, addr(1, 4))
        agt.block_removed(addr(1, 5))
        assert len(agt.filter) == 1

    def test_next_access_after_end_is_new_trigger(self):
        agt, _ = make_agt()
        agt.record_access(1, addr(1, 0))
        agt.record_access(2, addr(1, 1))
        agt.block_removed(addr(1, 0))
        assert agt.record_access(3, addr(1, 2)) == (3, 2)


class TestCapacity:
    def test_filter_lru_eviction(self):
        agt, _ = make_agt(filter_entries=2)
        agt.record_access(1, addr(1, 0))
        agt.record_access(2, addr(2, 0))
        agt.record_access(3, addr(3, 0))
        assert len(agt.filter) == 2
        assert agt.stats.filter_lru_evictions == 1

    def test_accumulation_lru_drop_by_default(self):
        agt, stored = make_agt(accumulation_entries=1)
        agt.record_access(1, addr(1, 0))
        agt.record_access(1, addr(1, 1))
        agt.record_access(2, addr(2, 0))
        agt.record_access(2, addr(2, 1))  # displaces region 1
        assert stored == []
        assert agt.stats.accumulation_lru_evictions == 1

    def test_accumulation_transfer_on_evict_option(self):
        agt, stored = make_agt(accumulation_entries=1, transfer_on_evict=True)
        agt.record_access(1, addr(1, 0))
        agt.record_access(1, addr(1, 1))
        agt.record_access(2, addr(2, 0))
        agt.record_access(2, addr(2, 1))
        assert len(stored) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FilterTable(0)


class TestBookkeeping:
    def test_active_regions(self):
        agt, _ = make_agt()
        agt.record_access(1, addr(1, 0))
        agt.record_access(1, addr(2, 0))
        agt.record_access(1, addr(2, 1))
        assert agt.active_regions() == 2
        assert agt.is_active(addr(1, 9))
        assert not agt.is_active(addr(9, 0))

    def test_storage_under_a_kilobyte(self):
        """Paper Section 3.2: the AGT needs less than 1KB of storage."""
        agt, _ = make_agt()
        assert agt.storage_bits() < 8 * 1024 * 8 / 8  # < 1KB in bits? see below
        assert agt.storage_bits() / 8 < 1024
