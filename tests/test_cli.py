"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import FIGURE_COMMANDS, PREFETCHERS, build_parser, main
from repro.runner import context as runner_context


@pytest.fixture(autouse=True)
def _fresh_runner_context():
    """Isolate each CLI test's runner, then restore the session runner."""
    from repro.sim.experiment import clear_cache

    previous = runner_context.active_runner()
    runner_context.reset()
    clear_cache()
    yield
    runner_context.set_runner(previous)


class TestParser:
    def test_all_table_commands(self):
        parser = build_parser()
        for cmd in ("table1", "table2", "table3", "budget"):
            assert parser.parse_args([cmd]).command == cmd

    def test_all_figure_commands_registered(self):
        parser = build_parser()
        for cmd in FIGURE_COMMANDS:
            args = parser.parse_args([cmd, "--refs", "100"])
            assert args.command == cmd
            assert args.refs == 100

    def test_run_command(self):
        args = build_parser().parse_args(["run", "Qry1", "pv8", "--refs", "50"])
        assert args.workload == "Qry1"
        assert args.prefetcher == "pv8"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_sweep_command(self):
        args = build_parser().parse_args(
            ["sweep", "--workloads", "Qry1", "--configs", "none,pv8",
             "--jobs", "2", "--store", "/tmp/s", "--refs", "100"]
        )
        assert args.command == "sweep"
        assert args.jobs == 2 and args.store == "/tmp/s"

    def test_figures_accept_runner_flags(self):
        args = build_parser().parse_args(
            ["figure9", "--jobs", "3", "--store", "/tmp/s"]
        )
        assert args.jobs == 3 and args.store == "/tmp/s"

    def test_prefetcher_choices_cover_paper_configs(self):
        assert {"none", "sms-1k", "sms-16", "sms-8", "pv8", "pv16"} <= set(
            PREFETCHERS
        )


class TestExecution:
    def test_table3_output(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "59.125KB" in out

    def test_budget_output(self, capsys):
        main(["budget"])
        out = capsys.readouterr().out
        assert "889" in out

    def test_table2_output(self, capsys):
        main(["table2"])
        out = capsys.readouterr().out
        assert "Oracle" in out and "Apache" in out

    def test_run_output(self, capsys):
        main(["run", "Qry1", "none", "--refs", "400", "--warmup", "200"])
        out = capsys.readouterr().out
        assert "coverage" in out and "Qry1" in out

    def test_figure_with_subset_and_scale(self, capsys):
        main(["figure6", "--workloads", "Qry1", "--refs", "800",
              "--warmup", "400"])
        out = capsys.readouterr().out
        assert "PV-8" in out and "Qry1" in out

    def test_figure_chart_mode(self, capsys):
        main(["figure9", "--workloads", "Qry1", "--refs", "600",
              "--warmup", "300", "--chart"])
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "|" in out  # bars

    def test_trace_stats(self, capsys):
        main(["trace-stats", "Qry1", "--refs", "500"])
        out = capsys.readouterr().out
        assert "unique_blocks" in out

    def test_sweep_cold_then_warm_store(self, capsys, tmp_path):
        from repro.sim.experiment import clear_cache

        argv = ["sweep", "--workloads", "Qry1", "--configs", "none,pv8",
                "--refs", "600", "--warmup", "300", "--jobs", "2",
                "--store", str(tmp_path / "store")]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "computed" in cold and "PV8" in cold
        clear_cache()
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "store" in warm and "computed" not in warm

    def test_sweep_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--configs", "warp-drive", "--refs", "100"])


class TestStudyCommands:
    def test_study_list(self, capsys):
        assert main(["study", "list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "bandwidth" in out

    def test_study_validate_all_shipped(self, capsys):
        assert main(["study", "validate"]) == 0
        out = capsys.readouterr().out
        assert "ok smoke" in out and "FAIL" not in out

    def test_study_validate_reports_broken_matrix(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('[study]\nname = "bad"\n[axes]\nworkload = ["Nope"]\n'
                       'config = ["none"]\n')
        with pytest.raises(SystemExit) as excinfo:
            main(["study", "validate", str(bad)])
        assert "Nope" in str(excinfo.value)

    def test_study_run_and_report(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STUDY_OUT", str(tmp_path))
        assert main(["study", "run", "smoke", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "2 runs" in out and "[PASS]" in out
        assert (tmp_path / "smoke.jsonl").exists()
        assert main(["study", "report", "smoke", "--strict"]) == 0
        report = capsys.readouterr().out
        assert "# Study:" in report
        assert "checks passed" in report

    def test_study_run_unknown_matrix_is_friendly(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["study", "run", "no-such-study"])
        assert "shipped" in str(excinfo.value)

    def test_study_report_without_records_is_friendly(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_STUDY_OUT", str(tmp_path / "empty"))
        with pytest.raises(SystemExit) as excinfo:
            main(["study", "report", "smoke"])
        assert "study run" in str(excinfo.value)

    def test_sweep_quiet_suppresses_tallies(self, capsys):
        assert main(["sweep", "--workloads", "Qry1", "--configs", "none",
                     "--refs", "400", "--warmup", "200", "--quiet"]) == 0
        captured = capsys.readouterr()
        assert "broker:" not in captured.err
        assert "trace cache:" not in captured.err
        assert captured.err == ""

    def test_sweep_verbose_prints_tallies(self, capsys):
        assert main(["sweep", "--workloads", "Qry1", "--configs", "none",
                     "--refs", "400", "--warmup", "200"]) == 0
        captured = capsys.readouterr()
        assert "trace cache:" in captured.err
