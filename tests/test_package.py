"""Public API surface of the top-level package."""

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_primary_entry_points(self):
        assert callable(repro.CMPSimulator)
        assert callable(repro.run_experiment)
        assert callable(repro.get_workload)
        assert len(repro.workload_names()) == 8

    def test_pv_framework_exports(self):
        from repro.core import (
            PVProxy,
            PVTable,
            PredictorContextManager,
            VirtualizedPredictorTable,
            pvproxy_budget,
        )

        assert PVProxy and PVTable and VirtualizedPredictorTable
        assert PredictorContextManager
        assert pvproxy_budget()["total_bytes"] == 889.0

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.cli
        import repro.cpu.tracetools
        import repro.memory
        import repro.prefetch
        import repro.sim
        import repro.workloads

    def test_interface_is_shared(self):
        """DedicatedPHT and VirtualizedPredictorTable share the interface."""
        from repro.core.interface import PredictorTable
        from repro.core.virtualized import VirtualizedPredictorTable
        from repro.prefetch.pht import DedicatedPHT, InfinitePHT

        assert issubclass(DedicatedPHT, PredictorTable)
        assert issubclass(InfinitePHT, PredictorTable)
        assert issubclass(VirtualizedPredictorTable, PredictorTable)
