"""Executor: matrix points through the SweepRunner into JSONL records."""

import json

import pytest

from repro.runner.serialize import result_to_dict
from repro.runner.spec import ExperimentSpec
from repro.study.executor import (
    default_out_path,
    records_to_runs,
    run_study,
    write_jsonl,
)
from repro.study.matrix import parse_matrix

TINY = """
[study]
name = "tiny"

[scale]
refs_per_core = 800
warmup_refs = 400
window_refs = 80

[axes]
workload = ["Qry1"]
config = ["none", "pv8"]
"""


@pytest.fixture(scope="module")
def tiny_records():
    return run_study(parse_matrix(TINY))


def test_records_carry_coords_spec_and_result(tiny_records):
    assert len(tiny_records) == 2
    for i, record in enumerate(tiny_records):
        assert record["study"] == "tiny"
        assert record["index"] == i
        assert record["coords"]["workload"] == "Qry1"
        assert record["key"] == ExperimentSpec.from_dict(record["spec"]).key
        assert "aggregate_ipc" in record["result"] or record["result"]
    assert tiny_records[0]["coords"]["config"] == "none"
    assert tiny_records[1]["coords"]["config"] == "pv8"


def test_records_resolve_through_shared_cache(tiny_records):
    """Equal specs mean equal results: re-running the study is a cache hit."""
    again = run_study(parse_matrix(TINY))
    assert [r["key"] for r in again] == [r["key"] for r in tiny_records]
    assert [r["result"] for r in again] == [r["result"] for r in tiny_records]


def test_jsonl_roundtrip(tiny_records, tmp_path):
    out = tmp_path / "tiny.jsonl"
    write_jsonl(tiny_records, out)
    lines = out.read_text().splitlines()
    assert len(lines) == 2
    parsed = [json.loads(line) for line in lines]
    assert parsed == json.loads(json.dumps(tiny_records))
    runs = records_to_runs(parsed)
    assert [result_to_dict(r.result) for r in runs] == [
        record["result"] for record in tiny_records
    ]
    assert runs[0].coords == tiny_records[0]["coords"]


def test_write_jsonl_is_atomic_and_overwrites(tiny_records, tmp_path):
    out = tmp_path / "out" / "tiny.jsonl"
    write_jsonl(tiny_records, out)
    write_jsonl(tiny_records[:1], out)
    assert len(out.read_text().splitlines()) == 1
    assert not list(out.parent.glob(".study.*"))


def test_run_study_writes_out_when_asked(tmp_path):
    out = tmp_path / "records.jsonl"
    records = run_study(parse_matrix(TINY), out=out)
    assert out.exists()
    assert len(out.read_text().splitlines()) == len(records)


def test_axis_override_narrows_the_run_set():
    records = run_study(
        parse_matrix(TINY), axis_overrides={"config": ["pv8"]}
    )
    assert [r["coords"]["config"] for r in records] == ["pv8"]


def test_default_out_path_honors_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_STUDY_OUT", str(tmp_path / "runs"))
    path = default_out_path(parse_matrix(TINY))
    assert path == tmp_path / "runs" / "tiny.jsonl"
