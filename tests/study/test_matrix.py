"""Matrix schema: deterministic expansion and friendly failure modes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.sampling import SamplingConfig
from repro.study.matrix import (
    MatrixError,
    load_matrix,
    parse_matrix,
    shipped_matrices,
)

MINIMAL = """
[study]
name = "t"

[axes]
workload = ["Qry1"]
config = ["none", "pv8"]
"""


def test_minimal_matrix_expands():
    matrix = parse_matrix(MINIMAL)
    points = matrix.expand()
    assert [p.coords for p in points] == [
        {"workload": "Qry1", "config": "none"},
        {"workload": "Qry1", "config": "pv8"},
    ]
    assert [p.index for p in points] == [0, 1]
    assert points[0].spec.key != points[1].spec.key


def test_expansion_is_hash_stable():
    matrix = parse_matrix(MINIMAL)
    first = [p.spec.key for p in matrix.expand()]
    second = [p.spec.key for p in matrix.expand()]
    assert first == second
    reparsed = parse_matrix(MINIMAL)
    assert [p.spec.key for p in reparsed.expand()] == first


def test_cross_product_nests_in_declaration_order():
    matrix = parse_matrix("""
[study]
name = "t"
[axes]
workload = ["Qry1", "Apache"]
config = ["none", "pv8"]
channels = [2, 1]
""")
    coords = [p.coords for p in matrix.expand()]
    assert len(coords) == 8
    # workload outermost, channels innermost
    assert coords[0] == {"workload": "Qry1", "config": "none", "channels": 2}
    assert coords[1] == {"workload": "Qry1", "config": "none", "channels": 1}
    assert coords[2] == {"workload": "Qry1", "config": "pv8", "channels": 2}
    assert coords[4]["workload"] == "Apache"


def test_labelled_axis_values_and_default_labels():
    matrix = parse_matrix("""
[study]
name = "t"
[axes]
workload = ["Qry1"]
config = [{ value = "sms-16", label = "SMS budget" }, "pv8"]
""")
    assert matrix.axis_labels("config") == ["SMS budget", "PV8"]
    points = matrix.expand()
    assert points[0].labels["config"] == "SMS budget"
    # the spec still resolves to the real configuration
    assert points[0].spec.prefetcher.pht_sets == 16


def test_explicit_runs_append_after_the_product():
    matrix = parse_matrix(MINIMAL + """
[[runs]]
workload = "Apache"
config = "pv8"
channels = 1
""")
    points = matrix.expand()
    assert len(points) == 3
    assert points[-1].coords == {
        "workload": "Apache", "config": "pv8", "channels": 1,
    }
    assert points[-1].spec.contention is not None
    assert points[-1].spec.contention.dram_channels == 1


def test_defaults_apply_to_every_point():
    matrix = parse_matrix("""
[study]
name = "t"
[axes]
workload = ["Qry1"]
config = ["pv8"]
[defaults]
channels = 2
seed = 7
""")
    spec = matrix.expand()[0].spec
    assert spec.contention.dram_channels == 2
    assert spec.seed == 7


def test_channels_zero_means_analytic_model():
    matrix = parse_matrix("""
[study]
name = "t"
[axes]
workload = ["Qry1"]
config = ["pv8"]
channels = [0, 1]
""")
    points = matrix.expand()
    assert points[0].spec.contention is None
    assert points[1].spec.contention is not None


def test_scale_pinned_in_file_and_caller_override():
    matrix = parse_matrix(MINIMAL + """
[scale]
refs_per_core = 1000
warmup_refs = 500
window_refs = 100
""")
    assert matrix.expand()[0].spec.scale.refs_per_core == 1000
    from repro.runner.spec import ExperimentScale

    override = ExperimentScale(refs_per_core=2000, warmup_refs=1000,
                               window_refs=200)
    assert matrix.expand(scale=override)[0].spec.scale.refs_per_core == 2000


def test_sampled_points_use_matrix_sampling_knobs():
    matrix = parse_matrix("""
[study]
name = "t"
[sampling]
period_refs = 1000
detail_refs = 250
warm_refs = 120
functional_refs = 300
[axes]
workload = ["Qry1"]
config = ["pv8"]
sampled = [false, true]
""")
    full, sampled = matrix.expand()
    assert full.spec.sampling is None
    assert sampled.spec.sampling == SamplingConfig.smarts(
        period_refs=1000, detail_refs=250, warm_refs=120, functional_refs=300,
    )


def test_axis_overrides_replace_declared_values():
    matrix = parse_matrix(MINIMAL)
    points = matrix.expand(axis_overrides={"workload": ["Apache", "Oracle"]})
    assert [p.coords["workload"] for p in points[::2]] == ["Apache", "Oracle"]


# ------------------------------------------------------- friendly failures


def _err(text: str) -> str:
    with pytest.raises(MatrixError) as excinfo:
        parse_matrix(text, source="bad.toml")
    return str(excinfo.value)


def test_unknown_axis_name_fails_with_context():
    message = _err("""
[study]
name = "t"
[axes]
workload = ["Qry1"]
config = ["none"]
flavor = ["a"]
""")
    assert "bad.toml" in message and "flavor" in message
    assert "workload" in message  # the choices are listed


def test_unknown_workload_fails_at_parse_time():
    message = _err("""
[study]
name = "t"
[axes]
workload = ["NotAWorkload"]
config = ["none"]
""")
    assert "NotAWorkload" in message and "Apache" in message


def test_unknown_config_lists_choices():
    message = _err("""
[study]
name = "t"
[axes]
workload = ["Qry1"]
config = ["warp-drive"]
""")
    assert "warp-drive" in message and "pv8" in message


def test_empty_axis_fails_as_empty_cross_product():
    message = _err("""
[study]
name = "t"
[axes]
workload = ["Qry1"]
config = []
""")
    assert "empty" in message


def test_matrix_with_no_runs_at_all_fails():
    message = _err('[study]\nname = "t"\n')
    assert "zero runs" in message


def test_duplicate_axis_value_fails():
    message = _err("""
[study]
name = "t"
[axes]
workload = ["Qry1", "Qry1"]
config = ["none"]
""")
    assert "duplicate" in message


def test_channels_and_contention_conflict():
    message = _err("""
[study]
name = "t"
[axes]
workload = ["Qry1"]
config = ["none"]
channels = [1]
[defaults]
contention = { dram_channels = 2 }
""")
    assert "channels" in message and "contention" in message


def test_unknown_check_kind_fails():
    message = _err(MINIMAL + """
[[expect]]
kind = "vibes"
""")
    assert "vibes" in message and "threshold" in message


def test_monotonic_check_requires_declared_axis():
    message = _err(MINIMAL + """
[[expect]]
kind = "monotonic"
metric = "coverage"
axis = "channels"
""")
    assert "channels" in message and "declared" in message


def test_monotonic_order_values_must_be_declared():
    message = _err(MINIMAL + """
[[expect]]
kind = "monotonic"
metric = "coverage"
axis = "config"
order = ["none", "sms-1k"]
""")
    assert "sms-1k" in message


def test_threshold_check_requires_numeric_value():
    message = _err(MINIMAL + """
[[expect]]
kind = "threshold"
metric = "coverage"
value = "high"
""")
    assert "numeric" in message


def test_unknown_top_level_table_fails():
    message = _err(MINIMAL + "\n[banana]\nripeness = 1\n")
    assert "banana" in message


def test_invalid_toml_reports_the_file():
    message = _err("not toml [ at all")
    assert "bad.toml" in message and "TOML" in message


def test_run_entry_missing_workload_fails():
    message = _err("""
[study]
name = "t"
[[runs]]
config = "pv8"
""")
    assert "workload" in message


def test_override_of_undeclared_axis_fails():
    matrix = parse_matrix(MINIMAL)
    with pytest.raises(MatrixError, match="channels"):
        matrix.expand(axis_overrides={"channels": [1]})


def test_load_matrix_missing_file_is_friendly(tmp_path):
    with pytest.raises(MatrixError, match="cannot read"):
        load_matrix(tmp_path / "nope.toml")


# --------------------------------------------------- property-based checks

_WORKLOADS = st.lists(
    st.sampled_from(["Apache", "Zeus", "DB2", "Oracle", "Qry1", "Qry17"]),
    min_size=1, max_size=3, unique=True,
)
_CONFIGS = st.lists(
    st.sampled_from(["none", "pv8", "sms-16", "dedicated:64x11", "pv:16"]),
    min_size=1, max_size=3, unique=True,
)
_CHANNELS = st.lists(
    st.sampled_from([0, 1, 2, 4]), min_size=1, max_size=3, unique=True,
)


def _toml_list(values):
    return "[" + ", ".join(
        f'"{v}"' if isinstance(v, str) else str(v) for v in values
    ) + "]"


@settings(max_examples=25, deadline=None)
@given(workloads=_WORKLOADS, configs=_CONFIGS, channels=_CHANNELS,
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_expand_roundtrip_is_deterministic(workloads, configs, channels, seed):
    """Parse -> expand -> re-parse -> re-expand: identical keys and order."""
    text = f"""
[study]
name = "prop"
[axes]
workload = {_toml_list(workloads)}
config = {_toml_list(configs)}
channels = {_toml_list(channels)}
[defaults]
seed = {seed}
"""
    matrix = parse_matrix(text)
    points = matrix.expand()
    assert len(points) == len(workloads) * len(configs) * len(channels)
    keys = [p.spec.key for p in points]
    assert len(set(keys)) == len(keys)
    again = parse_matrix(text).expand()
    assert [p.spec.key for p in again] == keys
    assert [p.coords for p in again] == [p.coords for p in points]


@settings(max_examples=10, deadline=None)
@given(workloads=_WORKLOADS, configs=_CONFIGS)
def test_specs_rebuild_identically_from_coords(workloads, configs):
    """A point's spec is a pure function of its merged coordinates."""
    text = f"""
[study]
name = "prop"
[axes]
workload = {_toml_list(workloads)}
config = {_toml_list(configs)}
"""
    matrix = parse_matrix(text)
    from repro.study.presets import resolve_config
    from repro.runner.spec import ExperimentSpec

    for point in matrix.expand():
        rebuilt = ExperimentSpec.build(
            point.coords["workload"],
            resolve_config(point.coords["config"]),
        )
        assert rebuilt.key == point.spec.key


# ------------------------------------------------------- shipped matrices


def test_every_shipped_matrix_is_valid_and_stable():
    paths = shipped_matrices()
    assert paths, "no shipped studies found"
    for path in paths:
        matrix = load_matrix(path)
        keys = [p.spec.key for p in matrix.expand()]
        assert keys == [p.spec.key for p in matrix.expand()], path
        assert len(set(keys)) == len(keys), f"{path}: duplicate specs"
