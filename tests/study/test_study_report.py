"""Checks and report rendering over recorded study runs."""

from dataclasses import replace

import pytest

from repro.study.checks import evaluate_checks
from repro.study.executor import records_to_runs, run_study
from repro.study.matrix import parse_matrix
from repro.study.report import load_records, render_report

CHECKED = """
[study]
name = "checked"
title = "Checked study"
description = "Two configurations, one tiny workload."

[scale]
refs_per_core = 800
warmup_refs = 400
window_refs = 80

[axes]
workload = ["Qry1"]
config = ["none", "pv8"]

[[expect]]
name = "pv8 issues PV traffic"
kind = "threshold"
metric = "l2_pv_requests"
op = ">"
value = 0
where = { config = "pv8" }

[[expect]]
name = "prefetching never hurts"
kind = "monotonic"
metric = "aggregate_ipc"
axis = "config"
direction = "nondecreasing"

[report]
columns = ["aggregate_ipc", "coverage", "no_such_metric"]

[[report.paper]]
label = "made-up paper value"
metric = "aggregate_ipc"
value = 2.5
where = { config = "none" }

[[report.paper]]
label = "matches nothing"
metric = "aggregate_ipc"
value = 1.0
where = { config = "sms-16" }
"""


@pytest.fixture(scope="module")
def checked():
    matrix = parse_matrix(CHECKED)
    records = run_study(matrix)
    return matrix, records


def test_threshold_and_monotonic_checks_pass(checked):
    matrix, records = checked
    outcomes = evaluate_checks(matrix, records_to_runs(records))
    assert [c.status for c in outcomes] == ["PASS", "PASS"]
    assert all(c.evidence for c in outcomes)


def test_threshold_check_fails_with_evidence(checked):
    matrix, records = checked
    impossible = dict(matrix.expectations[0], op=">=", value=10.0**9,
                      metric="aggregate_ipc")
    strict = replace(matrix, expectations=(impossible,))
    outcome = evaluate_checks(strict, records_to_runs(records))[0]
    assert not outcome.passed
    assert any("VIOLATED" in line for line in outcome.evidence)


def test_threshold_with_no_matching_runs_fails(checked):
    matrix, records = checked
    nothing = dict(matrix.expectations[0], where={"config": "sms-16"})
    strict = replace(matrix, expectations=(nothing,))
    outcome = evaluate_checks(strict, records_to_runs(records))[0]
    assert not outcome.passed
    assert "no runs matched" in outcome.evidence[0]


def test_monotonic_direction_flip_fails_when_metric_moves(checked):
    matrix, records = checked
    runs = records_to_runs(records)
    values = [r.result.l2_pv_requests for r in runs]
    assert values[0] != values[1]  # none issues no PV traffic, pv8 does
    flipped = dict(matrix.expectations[1], metric="l2_pv_requests",
                   direction="nonincreasing")
    strict = replace(matrix, expectations=(flipped,))
    outcome = evaluate_checks(strict, runs)[0]
    assert not outcome.passed
    assert any("NOT NONINCREASING" in line for line in outcome.evidence)


def test_report_renders_all_sections(checked):
    matrix, records = checked
    report = render_report(matrix, records)
    assert report.startswith("# Study: Checked study")
    assert "## Runs (2)" in report
    assert "## Paper comparison" in report
    assert "## Expectation checks (2)" in report
    assert "**2/2 checks passed.**" in report
    # unknown metric column renders empty, known ones render 4-decimal
    assert "no_such_metric" in report
    # the unmatched paper row degrades to n/a
    assert "| matches nothing | 1.0000 | n/a | n/a |" in report


def test_report_is_deterministic(checked):
    matrix, records = checked
    assert render_report(matrix, records) == render_report(matrix, records)


def test_load_records_rejects_bad_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"ok": 1}\nnot json\n')
    with pytest.raises(ValueError, match="bad.jsonl:2"):
        load_records(path)


def test_ci_inclusion_check_on_sampled_pairs():
    matrix = parse_matrix("""
[study]
name = "ci"

[scale]
refs_per_core = 4000
warmup_refs = 2000
window_refs = 1000

[sampling]
period_refs = 1000
detail_refs = 250
warm_refs = 120
functional_refs = 300

[axes]
workload = ["Qry1"]
config = ["pv8"]
sampled = [false, true]

[[expect]]
name = "sampled inside full CI"
kind = "ci_inclusion"
axis = "sampled"
confidence = 0.95
""")
    records = run_study(matrix)
    outcome = evaluate_checks(matrix, records_to_runs(records))[0]
    assert outcome.evidence
    assert outcome.passed, outcome.evidence
    assert any("CI [" in line for line in outcome.evidence)
