"""The refactored analysis drivers resolve the exact legacy lattices.

The figure/bandwidth/generality drivers now derive their run lattices
from the shipped ``studies/*.toml`` matrices.  These tests pin the
derived constants against the literal lattices the drivers used before
the refactor — spec-for-spec — so the goldens can never drift because a
matrix file was edited carelessly.
"""

from repro.analysis import bandwidth as bw
from repro.analysis import figures as fig
from repro.analysis.generality import generality_scenarios
from repro.runner.spec import ExperimentSpec
from repro.sim.config import EngineConfig, PrefetcherConfig
from repro.study.matrix import shipped_matrix


def test_fig4_configs_match_legacy_literals():
    assert fig.FIG4_CONFIGS == [
        PrefetcherConfig.infinite(),
        PrefetcherConfig.dedicated(1024, assoc=16),
        PrefetcherConfig.dedicated(1024, assoc=11),
        PrefetcherConfig.dedicated(16, assoc=11),
        PrefetcherConfig.dedicated(8, assoc=11),
    ]


def test_fig5_sweep_and_workloads_match_legacy_literals():
    assert fig.FIG5_SET_SWEEP == [1024, 512, 256, 128, 64, 32, 16, 8]
    assert fig.FIG5_WORKLOADS == ["Apache", "Oracle", "Qry17"]


def test_fig9_configs_match_legacy_literals():
    assert fig.FIG9_CONFIGS == [
        PrefetcherConfig.dedicated(1024, 11),
        PrefetcherConfig.dedicated(16, 11),
        PrefetcherConfig.dedicated(8, 11),
        PrefetcherConfig.virtualized(8),
    ]


def test_fig10_fig11_hierarchy_overrides_match_legacy_literals():
    assert fig.FIG10_L2_SIZES == [2 * 1024**2, 4 * 1024**2, 8 * 1024**2]
    assert fig.FIG11_L2_LATENCY == (8, 16)


def test_bandwidth_lattice_matches_legacy_literals():
    assert bw.BANDWIDTH_CHANNELS == [4, 2, 1]
    assert bw.BANDWIDTH_WORKLOADS == ["Apache", "Oracle", "Qry17"]
    assert bw.BANDWIDTH_CONFIGS == [
        PrefetcherConfig.none(),
        PrefetcherConfig.dedicated(1024, 11),
        PrefetcherConfig.virtualized(8),
    ]


def test_generality_scenarios_match_legacy_literals():
    none = PrefetcherConfig.none()
    assert generality_scenarios() == [
        ("SMS budget", PrefetcherConfig.dedicated(16, 11)),
        ("SMS dedicated", PrefetcherConfig.dedicated(1024, 11)),
        ("SMS virtualized", PrefetcherConfig.virtualized(8)),
        ("BTB budget", none.with_engines(EngineConfig.btb(n_sets=32, assoc=4))),
        ("BTB dedicated", none.with_engines(EngineConfig.btb())),
        ("BTB virtualized", none.with_engines(EngineConfig.btb("virtualized"))),
        ("LVP budget", none.with_engines(EngineConfig.lvp(n_sets=32, assoc=4))),
        ("LVP dedicated", none.with_engines(EngineConfig.lvp())),
        ("LVP virtualized", none.with_engines(EngineConfig.lvp("virtualized"))),
        (
            "Shared PV space",
            PrefetcherConfig.virtualized(8).with_engines(
                EngineConfig.btb("virtualized"),
                EngineConfig.lvp("virtualized"),
            ),
        ),
    ]


def test_bandwidth_matrix_expands_to_the_driver_spec_set():
    """The matrix's expanded specs == the specs the driver sweeps."""
    matrix = shipped_matrix("bandwidth")
    matrix_keys = {p.spec.key for p in matrix.expand()}
    driver_keys = {
        ExperimentSpec.build(
            name, config, contention=bw.contention_for(width)
        ).key
        for name in bw.BANDWIDTH_WORKLOADS
        for width in bw.BANDWIDTH_CHANNELS
        for config in bw.BANDWIDTH_CONFIGS
    }
    assert matrix_keys == driver_keys


def test_figure4_matrix_expands_to_the_driver_spec_set():
    from repro.workloads.registry import workload_names

    matrix = shipped_matrix("figure4")
    matrix_keys = {p.spec.key for p in matrix.expand()}
    driver_keys = {
        ExperimentSpec.build(name, config).key
        for name in workload_names()
        for config in fig.FIG4_CONFIGS
    }
    assert matrix_keys == driver_keys
