"""The synthetic workload generator: determinism, structure, and knobs."""

from dataclasses import replace

import pytest

from repro.prefetch.regions import SpatialRegionGeometry
from repro.workloads.base import WorkloadProfile
from repro.workloads.generator import WorkloadGenerator

G = SpatialRegionGeometry()


def tiny_profile(**overrides):
    base = dict(
        name="tiny",
        description="test profile",
        category="test",
        n_signatures=20,
        zipf_alpha=0.5,
        pattern_density=0.4,
        pattern_noise=0.0,
        regions_per_sig=2,
        region_reuse=0.3,
        concurrency=4,
        filler_fraction=0.2,
        filler_blocks=1000,
        write_fraction=0.2,
        mean_gap=3.0,
        rehit_fraction=0.3,
    )
    base.update(overrides)
    return WorkloadProfile(**base)


def take(profile, n, core=0, seed=1):
    return list(WorkloadGenerator(profile, core=core, seed=seed).records(n))


class TestDeterminism:
    def test_same_seed_identical_streams(self):
        assert take(tiny_profile(), 500) == take(tiny_profile(), 500)

    def test_different_seeds_differ(self):
        assert take(tiny_profile(), 500, seed=1) != take(tiny_profile(), 500, seed=2)

    def test_different_cores_differ(self):
        assert take(tiny_profile(), 500, core=0) != take(tiny_profile(), 500, core=1)

    def test_chunked_equals_single_call(self):
        gen_a = WorkloadGenerator(tiny_profile(), seed=9)
        gen_b = WorkloadGenerator(tiny_profile(), seed=9)
        chunked = list(gen_a.records(200)) + list(gen_a.records(300))
        assert chunked == list(gen_b.records(500))


class TestAddressLayout:
    def test_cores_occupy_disjoint_data_windows(self):
        a = {r.addr for r in take(tiny_profile(), 2000, core=0)}
        b = {r.addr for r in take(tiny_profile(), 2000, core=1)}
        assert not (a & b)

    def test_addresses_below_reserved_ceiling(self):
        records = take(tiny_profile(), 2000, core=3)
        assert max(r.addr for r in records) < 3 * 1024**3 - 64 * 1024 * 4

    def test_footprint_estimate_positive(self):
        assert tiny_profile().footprint_bytes() > 0


class TestStructure:
    def test_write_fraction_respected(self):
        records = take(tiny_profile(write_fraction=0.0), 2000)
        assert not any(r.write for r in records)

    def test_gap_mean_tracks_profile(self):
        records = take(tiny_profile(mean_gap=10.0), 5000)
        mean = sum(r.gap for r in records) / len(records)
        assert 7 < mean < 13

    def test_zero_gap_profile(self):
        records = take(tiny_profile(mean_gap=0.0), 100)
        assert all(r.gap == 0 for r in records)

    def test_rehit_produces_repeated_blocks(self):
        records = take(tiny_profile(rehit_fraction=0.8), 3000)
        blocks = [r.addr // 64 for r in records]
        assert len(set(blocks)) < len(blocks) * 0.5

    def test_no_rehit_mostly_unique_blocks(self):
        records = take(
            tiny_profile(rehit_fraction=0.0, filler_blocks=100_000,
                         n_signatures=500, regions_per_sig=8,
                         region_reuse=0.0),
            3000,
        )
        blocks = [r.addr // 64 for r in records]
        assert len(set(blocks)) > len(blocks) * 0.7

    def test_spatial_episodes_share_regions(self):
        """Non-filler accesses cluster into 2KB regions."""
        records = take(tiny_profile(filler_fraction=0.0, rehit_fraction=0.0), 2000)
        regions = {}
        for r in records:
            regions.setdefault(G.region_of(r.addr), set()).add(G.offset_of(r.addr))
        multi = [s for s in regions.values() if len(s) >= 2]
        assert len(multi) > len(regions) * 0.5

    def test_triggers_repeat_pc_per_signature(self):
        """The same signature reuses its trigger PC across regions (the
        property the PHT exploits)."""
        profile = tiny_profile(n_signatures=3, filler_fraction=0.0,
                               rehit_fraction=0.0, zipf_alpha=0.0)
        records = take(profile, 3000)
        trigger_pcs = {r.pc for r in records if not r.write}
        # 3 signature trigger PCs + 3 body PCs (+4 offsets) dominate.
        assert len(trigger_pcs) <= 8


class TestValidationOfProfiles:
    def test_bad_density(self):
        with pytest.raises(ValueError):
            tiny_profile(pattern_density=0.0)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            tiny_profile(filler_fraction=1.5)

    def test_bad_concurrency(self):
        with pytest.raises(ValueError):
            tiny_profile(concurrency=0)
