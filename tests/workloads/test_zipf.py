"""The Zipf popularity sampler."""

import numpy as np
import pytest

from repro.workloads.zipf import ZipfSampler


def make(n=100, alpha=1.0, seed=7):
    return ZipfSampler(n, alpha, np.random.default_rng(seed))


class TestValidation:
    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            make(n=0)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            make(alpha=-1)

    def test_rejects_zero_draws(self):
        with pytest.raises(ValueError):
            make().sample(0)


class TestDistribution:
    def test_samples_in_range(self):
        samples = make().sample(10_000)
        assert samples.min() >= 0
        assert samples.max() < 100

    def test_rank_zero_is_hottest(self):
        samples = make(alpha=1.2).sample(50_000)
        counts = np.bincount(samples, minlength=100)
        assert counts[0] == counts.max()

    def test_alpha_zero_is_uniform(self):
        samples = make(alpha=0.0).sample(100_000)
        counts = np.bincount(samples, minlength=100)
        assert counts.std() / counts.mean() < 0.1

    def test_pmf_sums_to_one(self):
        sampler = make(n=50)
        assert sum(sampler.pmf(r) for r in range(50)) == pytest.approx(1.0)

    def test_pmf_matches_zipf_ratio(self):
        sampler = make(n=10, alpha=1.0)
        assert sampler.pmf(0) / sampler.pmf(1) == pytest.approx(2.0)

    def test_pmf_range_checked(self):
        with pytest.raises(ValueError):
            make(n=10).pmf(10)


class TestExpectedUnique:
    def test_bounds(self):
        sampler = make(n=100, alpha=0.5)
        assert 0 < sampler.expected_unique(10) <= 10
        assert sampler.expected_unique(100_000) <= 100

    def test_monotone_in_draws(self):
        sampler = make(n=100, alpha=0.5)
        assert sampler.expected_unique(200) > sampler.expected_unique(50)

    def test_matches_empirical(self):
        sampler = make(n=200, alpha=0.8, seed=3)
        expected = sampler.expected_unique(500)
        empirical = np.mean(
            [len(set(make(200, 0.8, seed=s).sample(500))) for s in range(20)]
        )
        assert expected == pytest.approx(empirical, rel=0.1)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        assert (make(seed=5).sample(100) == make(seed=5).sample(100)).all()

    def test_different_seed_differs(self):
        assert (make(seed=5).sample(100) != make(seed=6).sample(100)).any()
