"""Engine-event annotations on generated records (branch/load-value)."""

from repro.workloads.generator import WorkloadGenerator, memory_value
from repro.workloads.registry import get_workload


def records(n=800, core=0, seed=1, workload="Qry1"):
    gen = WorkloadGenerator(get_workload(workload), core=core, seed=seed)
    return list(gen.records(n))


class TestMemoryValue:
    def test_deterministic(self):
        assert memory_value(0x2000_0040) == memory_value(0x2000_0040)

    def test_word_granular(self):
        assert memory_value(0x1000) == memory_value(0x1002)
        assert memory_value(0x1000) != memory_value(0x1004)

    def test_32_bit(self):
        for addr in (0, 0x1234, 1 << 40):
            assert 0 <= memory_value(addr) < (1 << 32)


class TestBranchAnnotations:
    def test_first_record_has_no_branch(self):
        assert records(1)[0].branch_pc is None

    def test_branch_site_is_instruction_after_previous_reference(self):
        recs = records()
        for prev, cur in zip(recs, recs[1:]):
            if cur.branch_pc is not None:
                assert cur.branch_pc == prev.pc + 4
                assert cur.branch_target == cur.pc

    def test_sequential_pcs_fall_through(self):
        recs = records()
        for prev, cur in zip(recs, recs[1:]):
            if cur.pc == prev.pc + 4:
                assert cur.branch_pc is None

    def test_branches_are_common(self):
        recs = records()
        branches = sum(1 for r in recs if r.branch_pc is not None)
        assert branches > len(recs) // 2


class TestLoadValueAnnotations:
    def test_loads_carry_content_hash(self):
        for rec in records():
            if rec.write:
                assert rec.load_value is None
            else:
                assert rec.load_value == memory_value(rec.addr)

    def test_repeat_loads_repeat_values(self):
        by_addr = {}
        for rec in records(2000):
            if rec.write:
                continue
            if rec.addr in by_addr:
                assert rec.load_value == by_addr[rec.addr]
            by_addr[rec.addr] = rec.load_value


class TestStreamStability:
    def test_annotations_consume_no_rng(self):
        """The memory-reference stream is identical to what an unannotated
        generator produced (the annotations are pure functions of it)."""
        a = [r[:4] for r in records(seed=7)]
        b = [r[:4] for r in records(seed=7)]
        assert a == b

    def test_annotations_deterministic(self):
        assert records(seed=3) == records(seed=3)
