"""The Table 2 workload registry and the eight calibrated profiles."""

import pytest

from repro.workloads.base import WorkloadProfile
from repro.workloads.profiles import ALL_PROFILES
from repro.workloads.registry import (
    WORKLOADS,
    get_workload,
    table2_rows,
    workload_names,
)


class TestRegistry:
    def test_all_eight_paper_workloads(self):
        assert workload_names() == [
            "Apache", "Zeus", "DB2", "Oracle", "Qry1", "Qry2", "Qry16", "Qry17",
        ]

    def test_lookup_case_insensitive(self):
        assert get_workload("oracle") is WORKLOADS["Oracle"]

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_workload("SPECjbb")

    def test_table2_rows(self):
        rows = table2_rows()
        assert len(rows) == 8
        assert {"workload", "category", "description"} <= set(rows[0])


class TestProfileSanity:
    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
    def test_categories(self, profile):
        assert profile.category in ("Web", "OLTP", "DSS")

    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
    def test_footprint_pressures_the_l2(self, profile):
        """Per-core footprint must exceed the per-core L2 share (2MB) so
        PV and application data genuinely compete (Figures 7/8/10)."""
        assert profile.footprint_bytes() > 2 * 1024**2

    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
    def test_footprint_fits_the_core_window(self, profile):
        from repro.workloads.base import FILLER_OFFSET

        assert profile.n_regions * 2048 < FILLER_OFFSET

    def test_oracle_has_largest_signature_population(self):
        """Oracle is the paper's most size-sensitive workload."""
        oracle = get_workload("Oracle")
        assert oracle.n_signatures == max(p.n_signatures for p in ALL_PROFILES)

    def test_qry1_is_smallest_and_densest(self):
        qry1 = get_workload("Qry1")
        assert qry1.n_signatures == min(p.n_signatures for p in ALL_PROFILES)
        assert qry1.pattern_density == max(p.pattern_density for p in ALL_PROFILES)

    def test_zeus_writes_most(self):
        """Zeus is the paper's writeback worst case."""
        zeus = get_workload("Zeus")
        assert zeus.write_fraction == max(p.write_fraction for p in ALL_PROFILES)
