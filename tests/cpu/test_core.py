"""The analytic core timing model and the paper's aggregate-IPC metric."""

import pytest

from repro.cpu.core import CoreTimingModel, aggregate_ipc, speedup


class TestAdvance:
    def test_base_ipc(self):
        core = CoreTimingModel(base_ipc=2.0)
        core.advance(100)
        assert core.cycles == pytest.approx(50.0)
        assert core.instructions == 100

    def test_negative_rejected(self):
        core = CoreTimingModel()
        with pytest.raises(ValueError):
            core.advance(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreTimingModel(base_ipc=0)
        with pytest.raises(ValueError):
            CoreTimingModel(mlp=0.5)


class TestMemoryAccess:
    def test_l1_hit_is_free(self):
        core = CoreTimingModel(hidden_latency=2)
        core.memory_access(2)
        assert core.stall_cycles == 0

    def test_exposed_latency_divided_by_mlp(self):
        core = CoreTimingModel(mlp=2.0, hidden_latency=2)
        core.memory_access(402)
        assert core.stall_cycles == pytest.approx(200.0)

    def test_extra_stall(self):
        core = CoreTimingModel(mlp=2.0)
        core.extra_stall(100)
        assert core.cycles == pytest.approx(50.0)
        with pytest.raises(ValueError):
            core.extra_stall(-1)

    def test_ipc_property(self):
        core = CoreTimingModel(base_ipc=2.0, mlp=1.0, hidden_latency=0)
        core.advance(100)   # 50 cycles
        core.memory_access(50)  # +50 cycles
        assert core.ipc == pytest.approx(1.0)


class TestAggregateIPC:
    def test_paper_definition(self):
        """Sum of committed instructions over the slowest core's cycles."""
        a = CoreTimingModel()
        b = CoreTimingModel()
        a.advance(100)  # 50 cycles
        b.advance(200)  # 100 cycles
        assert aggregate_ipc([a, b]) == pytest.approx(300 / 100.0)

    def test_empty(self):
        assert aggregate_ipc([]) == 0.0

    def test_speedup(self):
        base = [CoreTimingModel()]
        base[0].advance(100)
        base[0].extra_stall(100)  # 50+62.5 = ...
        fast = [CoreTimingModel()]
        fast[0].advance(100)
        assert speedup(base, fast) > 0

    def test_speedup_requires_progress(self):
        with pytest.raises(ValueError):
            speedup([CoreTimingModel()], [CoreTimingModel()])
