"""Trace records and binary round-tripping."""

import io

import pytest

from hypothesis import given, settings, strategies as st

from repro.cpu.trace import TraceReader, TraceRecord, TraceWriter, roundtrip


records_strategy = st.lists(
    st.builds(
        TraceRecord,
        pc=st.integers(0, (1 << 48) - 1),
        addr=st.integers(0, (1 << 48) - 1),
        write=st.booleans(),
        gap=st.integers(0, 0xFFFF),
        branch_pc=st.none() | st.integers(0, (1 << 48) - 1),
        branch_target=st.none() | st.integers(0, (1 << 48) - 1),
        load_value=st.none() | st.integers(0, (1 << 32) - 1),
    ),
    max_size=50,
)


def strip_events(record: TraceRecord) -> TraceRecord:
    """The memory-reference part: what the v1 binary format carries."""
    return TraceRecord(record.pc, record.addr, record.write, record.gap)


class TestRecord:
    def test_instructions_includes_self(self):
        assert TraceRecord(0, 0, False, gap=3).instructions == 4
        assert TraceRecord(0, 0, False, gap=0).instructions == 1


class TestBinaryIO:
    def test_roundtrip_simple(self):
        recs = [
            TraceRecord(0x400, 0x1000, False, 3),
            TraceRecord(0x404, 0x2040, True, 0),
        ]
        assert list(roundtrip(recs)) == recs

    @settings(max_examples=100, deadline=None)
    @given(records_strategy)
    def test_roundtrip_property(self, recs):
        # Engine-event annotations are recomputed, not serialized: the
        # round trip preserves exactly the memory-reference fields.
        assert list(roundtrip(recs)) == [strip_events(r) for r in recs]

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            TraceReader(io.BytesIO(b"XXXX\x01" + b"\x00" * 32))

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            TraceReader(io.BytesIO(b"PVTR\x09"))

    def test_truncated_tail_ignored(self):
        buffer = io.BytesIO()
        TraceWriter(buffer).write(TraceRecord(1, 2, False, 0))
        data = buffer.getvalue()[:-3]  # chop the last record short
        assert list(TraceReader(io.BytesIO(data))) == []

    def test_writer_counts(self):
        buffer = io.BytesIO()
        writer = TraceWriter(buffer)
        n = writer.write_all(TraceRecord(i, i, False, 0) for i in range(7))
        assert n == 7

    def test_gap_saturates_at_16_bits(self):
        buffer = io.BytesIO()
        TraceWriter(buffer).write(TraceRecord(0, 0, False, gap=1 << 20))
        buffer.seek(0)
        rec = next(iter(TraceReader(buffer)))
        assert rec.gap == 0xFFFF
