"""Trace capture/replay and stream summarization."""

import pytest

from repro.cpu.trace import TraceRecord
from repro.cpu.tracetools import capture, replay, trace_stats
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.registry import get_workload


class TestCaptureReplay:
    def test_roundtrip_matches_generator(self, tmp_path):
        profile = get_workload("Qry1")
        path = tmp_path / "qry1.trace"
        n = capture(profile, path, refs=500, core=0, seed=3)
        assert n == 500
        replayed = list(replay(path))
        direct = list(WorkloadGenerator(profile, core=0, seed=3).records(500))
        # Binary traces carry the memory references; the engine-event
        # annotations are generator-side only.
        assert [r[:4] for r in replayed] == [r[:4] for r in direct]

    def test_capture_different_cores_differ(self, tmp_path):
        profile = get_workload("Qry1")
        a = tmp_path / "a.trace"
        b = tmp_path / "b.trace"
        capture(profile, a, refs=300, core=0)
        capture(profile, b, refs=300, core=1)
        assert list(replay(a)) != list(replay(b))


class TestTraceStats:
    def test_counts(self):
        records = [
            TraceRecord(0x400, 0, False, 3),
            TraceRecord(0x404, 64, True, 1),
            TraceRecord(0x404, 64, False, 0),
            TraceRecord(0x408, 4096, False, 2),
        ]
        stats = trace_stats(records)
        assert stats.refs == 4
        assert stats.writes == 1
        assert stats.instructions == 4 + 2 + 1 + 3
        assert stats.unique_blocks == 3
        assert stats.unique_regions == 2  # region 0 and region 2
        assert stats.footprint_bytes == 3 * 64

    def test_ratios(self):
        records = [TraceRecord(0, i * 64, i % 2 == 0, 9) for i in range(10)]
        stats = trace_stats(records)
        assert stats.write_fraction == pytest.approx(0.5)
        assert stats.refs_per_kilo_instruction == pytest.approx(100.0)

    def test_empty_stream(self):
        stats = trace_stats([])
        assert stats.refs == 0
        assert stats.write_fraction == 0.0
        assert stats.blocks_per_region == 0.0

    def test_as_dict_keys(self):
        stats = trace_stats([TraceRecord(0, 0, False, 0)])
        d = stats.as_dict()
        assert {"refs", "unique_blocks", "footprint_kb", "refs_per_ki"} <= set(d)

    def test_real_workload_summary(self):
        profile = get_workload("Oracle")
        gen = WorkloadGenerator(profile, core=0)
        stats = trace_stats(gen.records(3000))
        assert stats.refs == 3000
        assert 0 < stats.write_fraction < 0.5
        assert stats.unique_regions > 50
