"""Round-robin interleaving of per-core trace streams."""

from repro.cpu.cmp import round_robin


class TestRoundRobin:
    def test_equal_streams(self):
        out = list(round_robin([[1, 2], [10, 20]]))
        assert out == [(0, 1), (1, 10), (0, 2), (1, 20)]

    def test_uneven_streams(self):
        out = list(round_robin([[1], [10, 20, 30]]))
        assert out == [(0, 1), (1, 10), (1, 20), (1, 30)]

    def test_empty_streams(self):
        assert list(round_robin([[], []])) == []

    def test_single_stream(self):
        assert list(round_robin([[5, 6]])) == [(0, 5), (0, 6)]

    def test_generators_supported(self):
        def gen(n):
            yield from range(n)

        out = list(round_robin([gen(2), gen(2)]))
        assert out == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_order_is_stable_per_round(self):
        out = list(round_robin([[1, 2, 3], [4, 5, 6], [7, 8, 9]]))
        rounds = [out[i : i + 3] for i in range(0, 9, 3)]
        for r in rounds:
            assert [c for c, _ in r] == [0, 1, 2]
