"""MSHR file: allocation, coalescing, capacity, retirement."""

import pytest

from repro.memory.mshr import MSHRFile


class TestAllocation:
    def test_allocate_and_find(self):
        m = MSHRFile(4)
        entry = m.allocate(0x100, issued_at=5, ready_at=50)
        assert entry is not None
        assert m.find(0x100) is entry
        assert len(m) == 1

    def test_capacity_rejection(self):
        m = MSHRFile(2)
        assert m.allocate(0, 0, 10) is not None
        assert m.allocate(64, 0, 10) is not None
        assert m.allocate(128, 0, 10) is None
        assert m.rejected == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    def test_peak_occupancy(self):
        m = MSHRFile(4)
        m.allocate(0, 0, 10)
        m.allocate(64, 0, 10)
        m.complete(0)
        m.allocate(128, 0, 10)
        assert m.peak_occupancy == 2


class TestCoalescing:
    def test_same_block_coalesces(self):
        m = MSHRFile(2)
        first = m.allocate(0x40, 0, 100)
        second = m.allocate(0x40, 5, 100)
        assert second is first
        assert m.coalesced == 1
        assert len(m) == 1

    def test_coalescing_works_even_when_full(self):
        m = MSHRFile(1)
        m.allocate(0, 0, 10)
        assert m.allocate(0, 1, 10) is not None  # coalesce, not reject
        assert m.rejected == 0

    def test_waiters_attach(self):
        m = MSHRFile(2)
        entry = m.allocate(0, 0, 10)
        entry.attach("waiter-a")
        entry.attach("waiter-b")
        assert m.complete(0).waiters == ["waiter-a", "waiter-b"]


class TestRetirement:
    def test_complete_removes(self):
        m = MSHRFile(2)
        m.allocate(0, 0, 10)
        assert m.complete(0) is not None
        assert m.find(0) is None

    def test_complete_missing_returns_none(self):
        m = MSHRFile(2)
        assert m.complete(0xDEAD) is None

    def test_retire_ready_by_time(self):
        m = MSHRFile(4)
        m.allocate(0, 0, 10)
        m.allocate(64, 0, 20)
        m.allocate(128, 0, 30)
        ready = m.retire_ready(now=20)
        assert sorted(e.block_addr for e in ready) == [0, 64]
        assert len(m) == 1

    def test_retire_ready_empty(self):
        m = MSHRFile(4)
        m.allocate(0, 0, 100)
        assert m.retire_ready(now=5) == []

    def test_outstanding_listing(self):
        m = MSHRFile(4)
        m.allocate(0, 0, 10)
        m.allocate(64, 0, 10)
        assert len(m.outstanding()) == 2
