"""The set-associative LRU cache model."""

import pytest

from repro.memory.cache import AccessKind, Cache, CacheGeometry


def make_cache(size=1024, assoc=2, block=64, name="c"):
    return Cache(name, CacheGeometry(size, assoc, block))


class TestGeometry:
    def test_derived_sets(self):
        g = CacheGeometry(64 * 1024, 4, 64)
        assert g.n_sets == 256
        assert g.n_blocks == 1024

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheGeometry(3 * 64 * 2, 2, 64)

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(1024, 2, 48)

    def test_rejects_unaligned_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(1000, 2, 64)

    def test_set_index_and_tag_roundtrip(self):
        g = CacheGeometry(8 * 1024, 4, 64)
        addr = 0x12345 * 64
        set_idx = g.set_index(addr)
        tag = g.tag(addr)
        assert tag * g.n_sets + set_idx == addr // 64


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        assert c.access(0, AccessKind.DEMAND_READ) is None
        c.fill(0)
        assert c.access(0, AccessKind.DEMAND_READ) is not None

    def test_same_block_different_bytes_hit(self):
        c = make_cache()
        c.fill(128)
        assert c.access(191, AccessKind.DEMAND_READ) is not None

    def test_stats_split_by_kind(self):
        c = make_cache()
        c.access(0, AccessKind.DEMAND_READ)
        c.access(0, AccessKind.DEMAND_WRITE)
        c.access(0, AccessKind.IFETCH)
        c.access(0, AccessKind.PV_READ)
        assert c.stats.demand_read_misses == 1
        assert c.stats.demand_write_misses == 1
        assert c.stats.ifetch_misses == 1
        assert c.stats.pv_misses == 1
        assert c.stats.misses == 4

    def test_miss_rate(self):
        c = make_cache()
        c.access(0, AccessKind.DEMAND_READ)
        c.fill(0)
        c.access(0, AccessKind.DEMAND_READ)
        assert c.stats.miss_rate() == pytest.approx(0.5)


class TestLRU:
    def test_lru_eviction_order(self):
        # Direct-mapped-per-set behaviour: 2 ways, fill 3 conflicting blocks.
        c = make_cache(size=128 * 2, assoc=2, block=64)  # 2 sets
        a, b, d = 0, 128, 256  # all map to set 0
        c.fill(a)
        c.fill(b)
        victim = c.fill(d)
        assert victim is not None and victim.block_addr == a

    def test_access_refreshes_lru(self):
        c = make_cache(size=128 * 2, assoc=2, block=64)
        a, b, d = 0, 128, 256
        c.fill(a)
        c.fill(b)
        c.access(a, AccessKind.DEMAND_READ)  # a becomes MRU
        victim = c.fill(d)
        assert victim.block_addr == b

    def test_fill_existing_refreshes_lru(self):
        c = make_cache(size=128 * 2, assoc=2, block=64)
        a, b, d = 0, 128, 256
        c.fill(a)
        c.fill(b)
        c.fill(a)  # refresh
        victim = c.fill(d)
        assert victim.block_addr == b


class TestDirty:
    def test_write_sets_dirty(self):
        c = make_cache()
        c.fill(0)
        line = c.access(0, AccessKind.DEMAND_WRITE, write=True)
        assert line.dirty

    def test_dirty_eviction_counted(self):
        c = make_cache(size=64, assoc=1, block=64)  # 1 block total
        c.fill(0, dirty=True)
        victim = c.fill(64)
        assert victim.dirty
        assert c.stats.dirty_evictions == 1

    def test_fill_does_not_clear_dirty(self):
        c = make_cache()
        c.fill(0, dirty=True)
        c.fill(0, dirty=False)
        assert c.lookup(0).dirty


class TestPrefetchedFlags:
    def test_read_of_prefetched_line_is_covered(self):
        c = make_cache()
        c.fill(0, prefetched=True)
        c.access(0, AccessKind.DEMAND_READ)
        assert c.stats.covered_misses == 1
        assert not c.lookup(0).prefetched

    def test_covered_counted_once(self):
        c = make_cache()
        c.fill(0, prefetched=True)
        c.access(0, AccessKind.DEMAND_READ)
        c.access(0, AccessKind.DEMAND_READ)
        assert c.stats.covered_misses == 1

    def test_write_consumes_but_does_not_cover(self):
        c = make_cache()
        c.fill(0, prefetched=True)
        c.access(0, AccessKind.DEMAND_WRITE, write=True)
        assert c.stats.covered_misses == 0
        assert not c.lookup(0).prefetched

    def test_unused_prefetch_evicted_is_overprediction(self):
        c = make_cache(size=64, assoc=1, block=64)
        c.fill(0, prefetched=True)
        c.fill(64)
        assert c.stats.overpredictions == 1

    def test_used_prefetch_evicted_is_not_overprediction(self):
        c = make_cache(size=64, assoc=1, block=64)
        c.fill(0, prefetched=True)
        c.access(0, AccessKind.DEMAND_READ)
        c.fill(64)
        assert c.stats.overpredictions == 0

    def test_invalidation_of_unused_prefetch_is_overprediction(self):
        c = make_cache()
        c.fill(0, prefetched=True)
        c.invalidate(0)
        assert c.stats.overpredictions == 1

    def test_prefetch_access_kind_does_not_consume(self):
        c = make_cache()
        c.fill(0, prefetched=True)
        c.access(0, AccessKind.PREFETCH)
        assert c.lookup(0).prefetched


class TestInvalidate:
    def test_invalidate_removes(self):
        c = make_cache()
        c.fill(0)
        assert c.invalidate(0) is not None
        assert not c.contains(0)

    def test_invalidate_missing_returns_none(self):
        c = make_cache()
        assert c.invalidate(0) is None

    def test_invalidate_reports_dirty_state(self):
        c = make_cache()
        c.fill(0, dirty=True)
        evicted = c.invalidate(0)
        assert evicted.dirty

    def test_invalidation_not_counted_as_eviction(self):
        c = make_cache()
        c.fill(0)
        c.invalidate(0)
        assert c.stats.evictions == 0
        assert c.stats.invalidations == 1


class TestListeners:
    def test_listener_fires_on_eviction(self):
        c = make_cache(size=64, assoc=1, block=64)
        seen = []
        c.eviction_listeners.append(lambda e: seen.append(e.block_addr))
        c.fill(0)
        c.fill(64)
        assert seen == [0]

    def test_listener_fires_on_invalidation(self):
        c = make_cache()
        seen = []
        c.eviction_listeners.append(lambda e: seen.append(e.block_addr))
        c.fill(0)
        c.invalidate(0)
        assert seen == [0]


class TestPVFlags:
    def test_pv_eviction_counters(self):
        c = make_cache(size=64, assoc=1, block=64)
        c.fill(0, is_pv=True, dirty=True)
        c.fill(64)
        assert c.stats.pv_evictions == 1
        assert c.stats.pv_dirty_evictions == 1

    def test_pv_occupancy(self):
        c = make_cache()
        c.fill(0, is_pv=True)
        c.fill(64)
        assert c.pv_occupancy() == 1
        assert c.occupancy() == 2


class TestFlush:
    def test_flush_empties_and_reports(self):
        c = make_cache()
        c.fill(0)
        c.fill(64)
        evicted = c.flush()
        assert len(evicted) == 2
        assert c.occupancy() == 0

    def test_resident_blocks(self):
        c = make_cache()
        c.fill(0)
        c.fill(4096)
        assert sorted(c.resident_blocks()) == [0, 4096]
