"""Main-memory latency and traffic accounting."""

from repro.memory.main_memory import MainMemory


class TestLatency:
    def test_read_returns_latency(self):
        mem = MainMemory(latency=400)
        assert mem.read(0) == 400

    def test_custom_latency(self):
        assert MainMemory(latency=250).read(0) == 250


class TestTrafficSplit:
    def test_reads_and_writes_counted(self):
        mem = MainMemory()
        mem.read(0)
        mem.read(64)
        mem.write(128)
        assert mem.reads == 2
        assert mem.writes == 1
        assert mem.total_transfers == 3

    def test_pv_split(self):
        mem = MainMemory()
        mem.read(0, is_pv=True)
        mem.read(64)
        mem.write(128, is_pv=True)
        mem.write(192)
        assert mem.pv_reads == 1
        assert mem.app_reads == 1
        assert mem.pv_writes == 1
        assert mem.app_writes == 1

    def test_bytes_transferred(self):
        mem = MainMemory(block_size=64)
        mem.read(0)
        mem.write(64)
        assert mem.bytes_transferred() == 128

    def test_snapshot_keys(self):
        snap = MainMemory().snapshot()
        assert set(snap) == {
            "reads", "writes", "pv_reads", "pv_writes", "app_reads", "app_writes",
        }
