"""Inter-L1 coherence: invalidation on write, downgrade on read."""

from repro.memory.hierarchy import HierarchyConfig, MemorySystem


def system(**overrides):
    defaults = dict(n_cores=4)
    defaults.update(overrides)
    return MemorySystem(HierarchyConfig(**defaults))


class TestWriteInvalidation:
    def test_write_invalidates_remote_readers(self):
        sys = system()
        sys.access(0, 0x1000)
        sys.access(1, 0x1000)
        assert sys.l1d[0].contains(0x1000)
        sys.access(2, 0x1000, write=True)
        assert not sys.l1d[0].contains(0x1000)
        assert not sys.l1d[1].contains(0x1000)
        assert sys.l1d[2].contains(0x1000)
        assert sys.stats.coherence_invalidations == 2

    def test_write_hit_upgrade_invalidates_sharers(self):
        sys = system()
        sys.access(0, 0x1000)
        sys.access(1, 0x1000)
        # Core 0 hits its own copy but must still kill core 1's.
        sys.access(0, 0x1000, write=True)
        assert not sys.l1d[1].contains(0x1000)
        assert sys.stats.write_upgrades == 1

    def test_remote_dirty_copy_merges_before_write(self):
        sys = system()
        sys.access(0, 0x1000, write=True)  # core 0 holds it dirty
        sys.access(1, 0x1000, write=True)  # core 1 takes ownership
        # Core 0's dirty data reached the L2, so the block is dirty there.
        assert sys.l2.lookup(0x1000).dirty

    def test_private_writes_have_no_coherence_cost(self):
        sys = system()
        sys.access(0, 0x1000, write=True)
        sys.access(0, 0x1000, write=True)
        assert sys.stats.coherence_invalidations == 0
        assert sys.stats.write_upgrades == 0


class TestReadDowngrade:
    def test_reader_downgrades_remote_dirty_copy(self):
        sys = system()
        sys.access(0, 0x1000, write=True)
        sys.access(1, 0x1000)  # read by another core
        assert sys.stats.coherence_downgrades == 1
        # Both keep a (now clean) copy; the L2 holds the dirty data.
        assert sys.l1d[0].contains(0x1000)
        assert not sys.l1d[0].lookup(0x1000).dirty
        assert sys.l2.lookup(0x1000).dirty

    def test_downgraded_copy_not_written_back_twice(self):
        sys = system()
        sys.access(0, 0x1000, write=True)
        sys.access(1, 0x1000)
        before = sys.stats.l1_writebacks
        # Evict core 0's now-clean copy: no L1 writeback should occur.
        for i in range(1, 6):
            sys.access(0, 0x1000 + i * 64 * sys.l1d[0].geometry.n_sets)
        assert sys.stats.l1_writebacks == before

    def test_clean_sharing_is_free(self):
        sys = system()
        sys.access(0, 0x1000)
        sys.access(1, 0x1000)
        sys.access(2, 0x1000)
        assert sys.stats.coherence_downgrades == 0
        assert sys.stats.coherence_invalidations == 0


class TestSMSGenerationInteraction:
    def test_coherence_invalidation_ends_generations(self):
        """Paper Section 3.1: a generation ends when any accessed block is
        removed by replacement *or invalidation*."""
        sys = system()
        removed = []
        sys.l1d[0].eviction_listeners.append(
            lambda e: removed.append(e.block_addr)
        )
        sys.access(0, 0x1000)
        sys.access(1, 0x1000, write=True)  # invalidates core 0's copy
        assert 0x1000 in removed
