"""Address arithmetic and physical address-space carving."""

import pytest

from repro.memory.addr import (
    AddressSpace,
    block_address,
    block_index,
    block_offset_in_region,
    region_base,
    region_index,
)


class TestBlockMath:
    def test_block_index_of_zero(self):
        assert block_index(0) == 0

    def test_block_index_within_block(self):
        assert block_index(63) == 0
        assert block_index(64) == 1

    def test_block_address_rounds_down(self):
        assert block_address(130) == 128

    def test_block_address_is_idempotent(self):
        assert block_address(block_address(12345)) == block_address(12345)

    def test_custom_block_size(self):
        assert block_index(256, block_size=128) == 2
        assert block_address(257, block_size=128) == 256


class TestRegionMath:
    def test_region_index(self):
        # 32 blocks x 64B = 2KB regions.
        assert region_index(0) == 0
        assert region_index(2047) == 0
        assert region_index(2048) == 1

    def test_region_base(self):
        assert region_base(5000) == 4096

    def test_block_offset_in_region(self):
        assert block_offset_in_region(0) == 0
        assert block_offset_in_region(64) == 1
        assert block_offset_in_region(2048 + 31 * 64) == 31

    def test_offset_is_region_relative(self):
        addr = 7 * 2048 + 5 * 64 + 13
        assert block_offset_in_region(addr) == 5


class TestAddressSpace:
    def test_reservations_come_from_the_top(self):
        space = AddressSpace(total_bytes=1 << 20)
        start = space.reserve(64 * 1024)
        assert start == (1 << 20) - 64 * 1024

    def test_reservations_do_not_overlap(self):
        space = AddressSpace(total_bytes=1 << 20)
        first = space.reserve(1024)
        second = space.reserve(1024)
        assert second + 1024 <= first

    def test_reserve_rounds_to_blocks(self):
        space = AddressSpace(total_bytes=1 << 20)
        start = space.reserve(100)  # rounded to 128? no: to one 64B block => 128
        assert start % 64 == 0
        assert space.reservations[0][1] == 128

    def test_is_reserved(self):
        space = AddressSpace(total_bytes=1 << 20)
        start = space.reserve(4096)
        assert space.is_reserved(start)
        assert space.is_reserved(start + 4095)
        assert not space.is_reserved(start - 1)

    def test_app_region_shrinks(self):
        space = AddressSpace(total_bytes=1 << 20)
        space.reserve(4096)
        start, size = space.app_region()
        assert start == 0
        assert size == (1 << 20) - 4096

    def test_exhaustion_raises(self):
        space = AddressSpace(total_bytes=4096)
        with pytest.raises(MemoryError):
            space.reserve(8192)

    def test_bad_sizes_raise(self):
        space = AddressSpace(total_bytes=4096)
        with pytest.raises(ValueError):
            space.reserve(0)
        with pytest.raises(ValueError):
            space.reserve(-64)

    def test_default_is_three_gb(self):
        assert AddressSpace().total_bytes == 3 * 1024**3
