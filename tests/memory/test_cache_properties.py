"""Property-based tests of the cache model's invariants (hypothesis)."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.memory.cache import AccessKind, Cache, CacheGeometry

BLOCK = 64
N_SETS = 4
ASSOC = 2
SIZE = N_SETS * ASSOC * BLOCK

ops = st.lists(
    st.tuples(
        st.sampled_from(["access", "fill", "invalidate"]),
        st.integers(min_value=0, max_value=31),  # block numbers
    ),
    max_size=200,
)


class ReferenceLRU:
    """An obviously-correct model: one OrderedDict per set."""

    def __init__(self):
        self.sets = [OrderedDict() for _ in range(N_SETS)]

    def _where(self, block):
        return self.sets[block % N_SETS], block // N_SETS

    def access(self, block):
        ways, tag = self._where(block)
        if tag in ways:
            ways.move_to_end(tag)
            return True
        return False

    def fill(self, block):
        ways, tag = self._where(block)
        if tag in ways:
            ways.move_to_end(tag)
            return
        if len(ways) >= ASSOC:
            ways.popitem(last=False)
        ways[tag] = True

    def invalidate(self, block):
        ways, tag = self._where(block)
        ways.pop(tag, None)

    def resident(self):
        out = set()
        for idx, ways in enumerate(self.sets):
            for tag in ways:
                out.add((tag * N_SETS + idx) * BLOCK)
        return out


@settings(max_examples=200, deadline=None)
@given(ops)
def test_cache_matches_reference_model(operations):
    """Residency after any op sequence equals the reference LRU model."""
    cache = Cache("t", CacheGeometry(SIZE, ASSOC, BLOCK))
    model = ReferenceLRU()
    for op, block in operations:
        addr = block * BLOCK
        if op == "access":
            hit_model = model.access(block)
            hit_cache = cache.access(addr, AccessKind.DEMAND_READ) is not None
            assert hit_cache == hit_model
        elif op == "fill":
            model.fill(block)
            cache.fill(addr)
        else:
            model.invalidate(block)
            cache.invalidate(addr)
        assert set(cache.resident_blocks()) == model.resident()


@settings(max_examples=100, deadline=None)
@given(ops)
def test_occupancy_never_exceeds_capacity(operations):
    cache = Cache("t", CacheGeometry(SIZE, ASSOC, BLOCK))
    for op, block in operations:
        addr = block * BLOCK
        if op == "fill":
            cache.fill(addr)
        elif op == "invalidate":
            cache.invalidate(addr)
        else:
            cache.access(addr, AccessKind.DEMAND_READ)
        assert cache.occupancy() <= N_SETS * ASSOC


@settings(max_examples=100, deadline=None)
@given(ops)
def test_hits_plus_misses_equals_accesses(operations):
    cache = Cache("t", CacheGeometry(SIZE, ASSOC, BLOCK))
    accesses = 0
    for op, block in operations:
        if op == "access":
            cache.access(block * BLOCK, AccessKind.DEMAND_READ)
            accesses += 1
        elif op == "fill":
            cache.fill(block * BLOCK)
    assert cache.stats.accesses == accesses
    assert cache.stats.hits + cache.stats.misses == accesses


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=63), max_size=150))
def test_fills_minus_evictions_equals_occupancy(blocks):
    """Conservation: every filled line is either resident or was retired."""
    cache = Cache("t", CacheGeometry(SIZE, ASSOC, BLOCK))
    for block in blocks:
        cache.fill(block * BLOCK)
    retired = cache.stats.evictions + cache.stats.invalidations
    distinct_fills = cache.stats.fills
    assert distinct_fills - retired == cache.occupancy()
