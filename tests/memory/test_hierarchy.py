"""The CMP memory hierarchy: demand path, prefetch path, PV port, inclusivity."""

import pytest

from repro.memory.hierarchy import HierarchyConfig, MemorySystem, ServedBy


def small_system(**overrides):
    """A tiny hierarchy so evictions are easy to provoke."""
    defaults = dict(
        n_cores=2,
        l1d_size=4 * 64,   # 4 blocks, 1-way... keep assoc 2 -> 2 sets
        l1d_assoc=2,
        l1i_size=4 * 64,
        l1i_assoc=2,
        l2_size=16 * 64,
        l2_assoc=2,
        memory_latency=400,
    )
    defaults.update(overrides)
    return MemorySystem(HierarchyConfig(**defaults))


class TestDemandPath:
    def test_cold_miss_goes_to_memory(self):
        sys = small_system()
        latency, served = sys.access(0, 0x1000)
        assert served is ServedBy.MEM
        assert latency == 2 + 6 + 400

    def test_second_access_hits_l1(self):
        sys = small_system()
        sys.access(0, 0x1000)
        latency, served = sys.access(0, 0x1000)
        assert served is ServedBy.L1
        assert latency == 2

    def test_l2_hit_after_l1_eviction(self):
        sys = small_system()
        sys.access(0, 0x1000)
        # Evict 0x1000 from L1 (same set), but it stays in the bigger L2.
        sys.access(0, 0x1000 + 4 * 64)
        sys.access(0, 0x1000 + 8 * 64)
        latency, served = sys.access(0, 0x1000)
        assert served is ServedBy.L2
        assert latency == 2 + 6 + 12

    def test_other_core_miss_hits_shared_l2(self):
        sys = small_system()
        sys.access(0, 0x1000)
        _, served = sys.access(1, 0x1000)
        assert served is ServedBy.L2

    def test_ifetch_goes_to_l1i(self):
        sys = small_system()
        sys.access(0, 0x2000, ifetch=True)
        assert sys.l1i[0].contains(0x2000)
        assert not sys.l1d[0].contains(0x2000)

    def test_write_marks_l1_dirty(self):
        sys = small_system()
        sys.access(0, 0x1000, write=True)
        assert sys.l1d[0].lookup(0x1000).dirty


class TestWritebackPath:
    def test_dirty_l1_victim_writes_into_l2(self):
        sys = small_system()
        sys.access(0, 0x1000, write=True)
        sys.access(0, 0x1000 + 4 * 64)
        sys.access(0, 0x1000 + 8 * 64)  # evicts dirty 0x1000
        assert sys.stats.l1_writebacks == 1
        assert sys.l2.lookup(0x1000).dirty

    def test_dirty_l2_victim_writes_to_memory(self):
        sys = small_system()
        sys.access(0, 0x1000, write=True)
        # Overflow the whole L2 set containing 0x1000 with dirty data.
        for i in range(1, 24):
            sys.access(0, 0x1000 + i * 8 * 64 * 64, write=True)
        assert sys.memory.writes >= 1
        assert sys.stats.l2_writebacks >= 1


class TestInclusivity:
    def test_l2_eviction_back_invalidates_l1(self):
        sys = small_system()
        sys.access(0, 0x1000)
        assert sys.l1d[0].contains(0x1000)
        # Blow the L2 set that 0x1000 lives in.
        n_sets = sys.l2.geometry.n_sets
        stride = n_sets * 64
        for i in range(1, 4):
            sys.access(1, 0x1000 + i * stride)
        assert not sys.l1d[0].contains(0x1000)
        assert sys.stats.back_invalidations >= 1

    def test_l1_dirty_copy_merges_on_back_invalidation(self):
        sys = small_system()
        sys.access(0, 0x1000, write=True)
        n_sets = sys.l2.geometry.n_sets
        stride = n_sets * 64
        for i in range(1, 4):
            sys.access(1, 0x1000 + i * stride)
        # The dirty L1 copy must have reached memory despite the L2 copy
        # being clean.
        assert sys.memory.writes >= 1


class TestPrefetchPath:
    def test_prefetch_installs_flagged_line(self):
        sys = small_system()
        latency, served = sys.prefetch_fill(0, 0x3000)
        assert served is ServedBy.MEM
        assert sys.l1d[0].lookup(0x3000).prefetched

    def test_prefetch_of_resident_block_is_free(self):
        sys = small_system()
        sys.access(0, 0x3000)
        latency, served = sys.prefetch_fill(0, 0x3000)
        assert served is None
        assert latency == 0

    def test_prefetch_populates_l2_too(self):
        sys = small_system()
        sys.prefetch_fill(0, 0x3000)
        assert sys.l2.contains(0x3000)

    def test_ifetch_prefetch_targets_l1i(self):
        sys = small_system()
        sys.prefetch_fill_ifetch(0, 0x4000)
        assert sys.l1i[0].lookup(0x4000).prefetched
        assert not sys.l1d[0].contains(0x4000)


class TestPVPort:
    def test_pv_read_misses_to_memory_marked_pv(self):
        sys = small_system()
        latency, served = sys.pv_access(0, 0x8000)
        assert served is ServedBy.MEM
        assert latency == 6 + 400
        assert sys.memory.pv_reads == 1
        assert sys.l2.lookup(0x8000).is_pv

    def test_pv_read_hit_in_l2(self):
        sys = small_system()
        sys.pv_access(0, 0x8000)
        latency, served = sys.pv_access(0, 0x8000)
        assert served is ServedBy.L2
        assert latency == 6 + 12

    def test_pv_never_touches_l1(self):
        sys = small_system()
        sys.pv_access(0, 0x8000)
        assert not sys.l1d[0].contains(0x8000)
        assert not sys.l1i[0].contains(0x8000)

    def test_pv_write_deposits_dirty_line(self):
        sys = small_system()
        sys.pv_access(0, 0x8000, write=True)
        line = sys.l2.lookup(0x8000)
        assert line.dirty and line.is_pv

    def test_dirty_pv_victim_written_back_by_default(self):
        sys = small_system()
        sys.pv_access(0, 0x8000, write=True)
        n_sets = sys.l2.geometry.n_sets
        stride = n_sets * 64
        for i in range(1, 4):
            sys.access(0, 0x8000 + i * stride)
        assert sys.memory.pv_writes == 1
        assert sys.stats.l2_pv_writebacks == 1

    def test_pv_aware_drops_dirty_pv_victims(self):
        sys = small_system(pv_aware_caches=True)
        sys.pv_access(0, 0x8000, write=True)
        n_sets = sys.l2.geometry.n_sets
        stride = n_sets * 64
        for i in range(1, 4):
            sys.access(0, 0x8000 + i * stride)
        assert sys.memory.pv_writes == 0
        assert sys.stats.pv_dirty_dropped == 1

    def test_pv_eviction_listener_fires(self):
        sys = small_system()
        seen = []
        sys.pv_eviction_listeners.append(lambda e: seen.append(e.block_addr))
        sys.pv_access(0, 0x8000)
        n_sets = sys.l2.geometry.n_sets
        stride = n_sets * 64
        for i in range(1, 4):
            sys.access(0, 0x8000 + i * stride)
        assert seen == [0x8000]

    def test_pv_eviction_does_not_back_invalidate(self):
        """PV lines have no L1 copies; eviction must not probe L1s."""
        sys = small_system()
        sys.pv_access(0, 0x8000)
        before = sys.stats.back_invalidations
        n_sets = sys.l2.geometry.n_sets
        stride = n_sets * 64
        for i in range(1, 4):
            sys.pv_access(0, 0x8000 + i * stride)
        assert sys.stats.back_invalidations == before


class TestMetrics:
    def test_l2_requests_counts_all_kinds(self):
        sys = small_system()
        sys.access(0, 0x1000)          # demand fill
        sys.prefetch_fill(0, 0x2000)   # prefetch
        sys.pv_access(0, 0x8000)       # pv
        assert sys.l2_requests() == 3
        assert sys.l2_pv_requests() == 1

    def test_l2_requests_excludes_writebacks(self):
        sys = small_system()
        sys.access(0, 0x1000, write=True)
        sys.access(0, 0x1000 + 4 * 64)
        sys.access(0, 0x1000 + 8 * 64)  # dirty writeback into L2
        assert sys.l2_requests() == 3  # three demand fills only

    def test_pv_l2_fill_rate(self):
        sys = small_system()
        sys.pv_access(0, 0x8000)   # miss
        sys.pv_access(0, 0x8000)   # hit
        sys.pv_access(0, 0x8000)   # hit
        assert sys.pv_l2_fill_rate() == pytest.approx(2 / 3)

    def test_offchip_transfers_split(self):
        sys = small_system()
        sys.access(0, 0x1000)
        sys.pv_access(0, 0x8000)
        t = sys.offchip_transfers()
        assert t["reads"] == 2
        assert t["pv_reads"] == 1
        assert t["app_reads"] == 1
