"""MemorySystem.drain_l2: the pre-migration cache flush."""

from repro.memory.hierarchy import HierarchyConfig, MemorySystem


def system():
    return MemorySystem(HierarchyConfig(n_cores=2))


class TestDrain:
    def test_drain_empties_the_l2(self):
        sys = system()
        for i in range(16):
            sys.access(0, i * 64)
        drained = sys.drain_l2()
        assert drained == sys.l2.stats.fills
        assert sys.l2.occupancy() == 0

    def test_drain_back_invalidates_l1s(self):
        sys = system()
        sys.access(0, 0x1000)
        sys.access(1, 0x1000)
        sys.drain_l2()
        assert not sys.l1d[0].contains(0x1000)
        assert not sys.l1d[1].contains(0x1000)

    def test_drain_writes_dirty_data_to_memory(self):
        sys = system()
        sys.access(0, 0x1000, write=True)
        before = sys.memory.writes
        sys.drain_l2()
        assert sys.memory.writes > before

    def test_drain_commits_dirty_pv_lines(self):
        sys = system()
        sys.pv_access(0, 0x8000, write=True)
        sys.drain_l2()
        assert sys.memory.pv_writes == 1

    def test_drain_fires_pv_listeners(self):
        sys = system()
        seen = []
        sys.pv_eviction_listeners.append(lambda e: seen.append(e.block_addr))
        sys.pv_access(0, 0x8000)
        sys.drain_l2()
        assert seen == [0x8000]

    def test_drain_empty_l2_is_noop(self):
        assert system().drain_l2() == 0
