"""FigureData containers and text rendering."""

import pytest

from repro.analysis.report import FigureData, render_figure, render_table


def sample_figure():
    return FigureData(
        name="Figure X",
        title="demo",
        columns=["workload", "value"],
        rows=[
            {"workload": "Apache", "value": 0.25},
            {"workload": "Oracle", "value": 0.05},
        ],
        notes=["paper: something"],
    )


class TestFigureData:
    def test_column(self):
        assert sample_figure().column("workload") == ["Apache", "Oracle"]

    def test_filter(self):
        rows = sample_figure().filter(workload="Apache")
        assert len(rows) == 1 and rows[0]["value"] == 0.25

    def test_value(self):
        assert sample_figure().value("value", workload="Oracle") == 0.05

    def test_value_requires_unique_match(self):
        fig = sample_figure()
        fig.rows.append({"workload": "Apache", "value": 0.5})
        with pytest.raises(KeyError):
            fig.value("value", workload="Apache")

    def test_missing_match(self):
        with pytest.raises(KeyError):
            sample_figure().value("value", workload="Zeus")


class TestRendering:
    def test_fractions_rendered_as_percent(self):
        text = render_figure(sample_figure())
        assert "25.0%" in text
        assert "5.0%" in text

    def test_title_and_notes_present(self):
        text = render_figure(sample_figure())
        assert "Figure X" in text
        assert "note: paper: something" in text

    def test_header_alignment(self):
        text = render_table(["a", "b"], [{"a": 1, "b": 2}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) == {"-"}

    def test_large_floats_not_percent(self):
        text = render_table(["x"], [{"x": 68.1}])
        assert "68.1" in text and "%" not in text

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text
