"""Tables 1-3 and the Section 4.6 budget rendering."""

from repro.analysis.report import render_table
from repro.analysis.tables import pvproxy_budget_table, table1, table2, table3_rows


class TestTable1:
    def test_keys(self):
        t = table1()
        assert {"ISA & Pipeline", "L1D/L1I", "UL2", "Main Memory"} <= set(t)


class TestTable2:
    def test_eight_workloads(self):
        assert len(table2()) == 8

    def test_descriptions_mention_paper_setups(self):
        text = " ".join(r["description"] for r in table2())
        assert "TPC-C" in text and "TPC-H" in text and "SPECweb99" in text
        assert "Oracle 10g" in text and "Zeus" in text


class TestTable3:
    def test_published_rows(self):
        rows = table3_rows(published=True)
        totals = {r["configuration"]: r["total"] for r in rows}
        assert totals["1K-16"] == "86KB"
        assert totals["1K-11"] == "59.125KB"
        assert totals["16-11"] == "1.225KB"

    def test_renders(self):
        text = render_table(
            ["configuration", "tags", "patterns", "total"], table3_rows()
        )
        assert "1K-11" in text


class TestBudget:
    def test_total_row(self):
        rows = pvproxy_budget_table()
        total = [r for r in rows if r["component"] == "Total per core"]
        assert total[0]["bytes"] == 889.0

    def test_reduction_row(self):
        rows = pvproxy_budget_table()
        reduction = [r for r in rows if "Reduction" in r["component"]]
        assert abs(reduction[0]["bytes"] - 68.1) < 0.2
