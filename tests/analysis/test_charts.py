"""ASCII bar-chart rendering."""

import pytest

from repro.analysis.charts import (
    DEFAULT_CHART_COLUMNS,
    bar,
    render_bar_chart,
    render_default_chart,
    stacked_bar,
)
from repro.analysis.report import FigureData


def fig(rows, name="Figure 9", title="demo"):
    return FigureData(
        name=name, title=title,
        columns=list(rows[0]) if rows else [],
        rows=rows,
    )


class TestBarPrimitives:
    def test_full_scale_bar(self):
        assert bar(1.0, 1.0, 10) == "#" * 10

    def test_half_bar(self):
        assert bar(0.5, 1.0, 10) == "#" * 5

    def test_zero_scale_empty(self):
        assert bar(0.5, 0.0, 10) == ""

    def test_negative_clamped(self):
        assert bar(-0.5, 1.0, 10) == ""

    def test_stacked_segments_use_distinct_chars(self):
        out = stacked_bar([0.3, 0.3], 1.0, 10)
        assert out == "#" * 3 + "=" * 3


class TestRenderBarChart:
    def test_rows_rendered_with_labels(self):
        figure = fig([
            {"workload": "Qry1", "config": "1K-11a", "speedup": 0.6},
            {"workload": "Qry1", "config": "8-11a", "speedup": 0.3},
        ])
        text = render_bar_chart(figure, ["speedup"])
        assert "Qry1 1K-11a" in text
        assert "60.0%" in text and "30.0%" in text

    def test_widest_bar_fills_width(self):
        figure = fig([{"workload": "a", "config": "x", "speedup": 0.5}])
        text = render_bar_chart(figure, ["speedup"], width=20)
        assert "#" * 20 in text

    def test_stacked_totals(self):
        figure = fig(
            [{"workload": "a", "config": "x", "covered": 0.5,
              "overpredictions": 0.25}],
            name="Figure 4",
        )
        text = render_bar_chart(figure, ["covered", "overpredictions"], width=12)
        assert "#" * 8 + "=" * 4 in text
        assert "75.0%" in text

    def test_none_values_treated_as_zero(self):
        figure = fig([{"workload": "a", "config": "x", "speedup": None},
                      {"workload": "b", "config": "y", "speedup": 0.2}])
        text = render_bar_chart(figure, ["speedup"])
        assert "0.0%" in text


class TestDefaultLayouts:
    def test_all_figures_have_layouts(self):
        for name in ("Figure 4", "Figure 6", "Figure 7", "Figure 8",
                     "Figure 9", "Figure 10", "Figure 11"):
            assert name in DEFAULT_CHART_COLUMNS

    def test_default_chart_renders(self):
        figure = fig([{"workload": "a", "config": "x", "speedup": 0.2}])
        assert "Figure 9" in render_default_chart(figure)

    def test_unknown_figure_rejected(self):
        figure = fig([{"workload": "a", "speedup": 0.2}], name="Figure 99")
        with pytest.raises(KeyError):
            render_default_chart(figure)
