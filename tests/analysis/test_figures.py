"""Figure drivers produce the right rows (tiny scale; shapes are checked
in the integration tests, magnitudes in the benchmarks)."""

import pytest

from repro.analysis.figures import (
    FIG4_CONFIGS,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    pv_l2_fill_rates,
)
from repro.analysis.generality import generality, generality_scenarios
from repro.sim.experiment import ExperimentScale, clear_cache

TINY = ExperimentScale(refs_per_core=1000, warmup_refs=500, window_refs=250)
ONE = ["Qry1"]


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestFigure4:
    def test_rows_per_workload(self):
        fig = figure4(workloads=ONE, scale=TINY)
        assert len(fig.rows) == len(FIG4_CONFIGS)
        assert {r["config"] for r in fig.rows} == {
            "Infinite", "1K-16a", "1K-11a", "16-11a", "8-11a",
        }

    def test_fractions_bounded(self):
        fig = figure4(workloads=ONE, scale=TINY)
        for row in fig.rows:
            assert 0 <= row["covered"] <= 1
            assert row["covered"] + row["uncovered"] == pytest.approx(1.0)


class TestFigure5:
    def test_sweep_sizes(self):
        fig = figure5(workloads=ONE, scale=TINY)
        labels = [r["config"] for r in fig.rows]
        assert "512-11a" in labels and "32-11a" in labels
        assert len(labels) == 10  # Infinite + 1K-16a + 8 sweep points


class TestFigure6:
    def test_pv8_and_pv16_rows(self):
        fig = figure6(workloads=ONE, scale=TINY)
        assert [r["config"] for r in fig.rows] == ["PV-8", "PV-16"]
        for row in fig.rows:
            assert row["l2_request_increase"] > 0

    def test_fill_rate_report(self):
        fig = pv_l2_fill_rates(workloads=ONE, scale=TINY)
        assert 0 <= fig.rows[0]["pv_l2_fill_rate"] <= 1


class TestFigure7And8:
    def test_figure7_components(self):
        fig = figure7(workloads=ONE, scale=TINY)
        for row in fig.rows:
            assert row["total"] == pytest.approx(
                row["l2_misses"] + row["l2_writebacks"]
            )

    def test_figure8_split(self):
        fig = figure8(workloads=ONE, scale=TINY)
        row = fig.rows[0]
        assert {"miss_app", "miss_pv", "wb_app", "wb_pv"} <= set(row)


class TestFigure9:
    def test_configs_and_ci(self):
        fig = figure9(workloads=ONE, scale=TINY)
        assert [r["config"] for r in fig.rows] == [
            "1K-11a", "16-11a", "8-11a", "PV8",
        ]
        assert all("ci95" in r for r in fig.rows)


class TestFigure10:
    def test_l2_sweep(self):
        fig = figure10(workloads=ONE, scale=TINY)
        assert [r["l2"] for r in fig.rows] == ["2MB", "4MB", "8MB"]


class TestFigure11:
    def test_two_configs(self):
        fig = figure11(workloads=ONE, scale=TINY)
        assert [r["config"] for r in fig.rows] == ["1K-11a", "PV8"]
        assert "8/16" in fig.title


class TestGenerality:
    def test_one_row_per_scenario(self):
        fig = generality(workloads=ONE, scale=TINY)
        scenarios = [name for name, _ in generality_scenarios()]
        assert [r["scenario"] for r in fig.rows] == scenarios
        assert len({cfg.label for _, cfg in generality_scenarios()}) == len(
            scenarios
        )

    def test_engine_columns_filled_where_applicable(self):
        fig = generality(workloads=ONE, scale=TINY)
        btb = fig.value("btb_hit_rate", scenario="BTB virtualized")
        assert 0.0 < btb <= 1.0
        assert fig.value("btb_hit_rate", scenario="SMS dedicated") == ""
        shared = fig.filter(scenario="Shared PV space")[0]
        assert shared["sms_coverage"] != ""
        assert shared["btb_hit_rate"] != ""
        assert shared["lvp_coverage"] != ""
        assert shared["pv_requests"] > 0

    def test_dedicated_rows_have_no_pv_traffic(self):
        fig = generality(workloads=ONE, scale=TINY)
        for scenario in ("SMS budget", "BTB dedicated", "LVP dedicated"):
            assert fig.value("pv_requests", scenario=scenario) == 0
