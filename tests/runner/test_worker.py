"""Backend substrate hygiene: teardown errors and heartbeat-thread leaks.

The failure-semantics proof lives in test_faults.py; this module pins the
*plumbing* contracts of :mod:`repro.runner.worker`:

* driving a backend whose queues are gone raises a clear
  :class:`BackendTeardownError` (with the lease returned first) instead
  of hanging or dying with a bare ``OSError``;
* a heartbeat thread that outlives its join timeout is tracked and
  surfaced through :func:`leaked_heartbeat_threads`, never silently
  abandoned;
* the process backend keeps per-slot tallies in the same shape the
  remote backend reports per host.
"""

import threading
from types import SimpleNamespace

import pytest

from repro.runner.broker import LEASED, PENDING, JobBroker
from repro.runner.spec import ExperimentScale, ExperimentSpec
from repro.runner.sweep import SweepRunner
from repro.runner.worker import (
    BackendTeardownError,
    ProcessBackend,
    _reap_heartbeat,
    fork_available,
    leaked_heartbeat_threads,
)
from repro.sim.config import PrefetcherConfig
from repro.sim.experiment import clear_cache

TINY = ExperimentScale(refs_per_core=400, warmup_refs=200, window_refs=200)

SPECS = [
    ExperimentSpec.build(workload, config, scale=TINY)
    for workload in ["Qry1", "Apache"]
    for config in [PrefetcherConfig.none()]
]


@pytest.fixture(autouse=True)
def _clean_slate():
    clear_cache()
    yield
    clear_cache()


class _ClosedQueue:
    def put(self, item):
        raise OSError("queue is closed")


class TestTeardownErrors:
    def test_dispatch_into_dead_queue_fails_lease_then_raises(self):
        """The lease goes back to the broker *before* the error surfaces:
        no spec is stranded in ``leased`` by a torn-down worker."""
        broker = JobBroker()
        broker.submit(SPECS[:1])
        job = broker.lease("w0")
        backend = ProcessBackend(workers=1)
        entry = SimpleNamespace(task_q=_ClosedQueue(), busy=None)
        with pytest.raises(BackendTeardownError, match="task queue"):
            backend._dispatch("w0", entry, job, broker)
        counts = broker.counts()
        assert counts[LEASED] == 0
        assert counts[PENDING] == 1
        assert entry.busy is None

    def test_result_queue_gone_raises_instead_of_hanging(self):
        """A drain whose result queue dies reports the torn substrate."""

        class _BrokenResultQueue:
            def get(self, *args, **kwargs):
                raise OSError("handle is closed")

            def close(self):
                pass

            def cancel_join_thread(self):
                pass

        class _FakeProc:
            def start(self):
                pass

            def is_alive(self):
                return True

            def join(self, timeout=None):
                pass

            def terminate(self):
                pass

        backend = ProcessBackend(workers=1)
        backend._ctx = SimpleNamespace(
            Queue=lambda: _BrokenResultQueue(),
            SimpleQueue=lambda: SimpleNamespace(put=lambda item: None),
            Process=lambda **kwargs: _FakeProc(),
            get_start_method=lambda: "fork",
        )
        broker = JobBroker()
        handle = broker.submit(SPECS[:1])
        with pytest.raises(BackendTeardownError, match="result queue"):
            list(backend.drain(broker, handle))


class TestHeartbeatLeaks:
    def test_wedged_heartbeat_thread_is_tracked(self):
        release = threading.Event()
        thread = threading.Thread(target=release.wait, daemon=True)
        thread.start()
        try:
            assert not _reap_heartbeat(thread, timeout=0.05)
            assert thread in leaked_heartbeat_threads()
        finally:
            release.set()
            thread.join(timeout=1.0)
        # Pruned once the thread finally dies: the registry reports only
        # threads that are still leaked.
        assert thread not in leaked_heartbeat_threads()

    def test_joined_thread_is_not_a_leak(self):
        thread = threading.Thread(target=lambda: None)
        thread.start()
        thread.join()
        assert _reap_heartbeat(thread, timeout=0.05)
        assert thread not in leaked_heartbeat_threads()

    def test_no_thread_is_not_a_leak(self):
        assert _reap_heartbeat(None)


@pytest.mark.skipif(not fork_available(), reason="needs fork workers")
class TestProcessTallies:
    def test_per_slot_tallies_same_shape_as_remote(self, tmp_path):
        runner = SweepRunner(jobs=2, lease_timeout=5.0, use_cache=False)
        runner.run(SPECS)
        tallies = runner.last_host_tallies
        assert tallies, "process backend should report per-slot tallies"
        for slot, tally in tallies.items():
            assert slot.startswith("w")
            assert {"done", "retried", "requeued", "reconnects"} <= set(tally)
        assert sum(t["done"] for t in tallies.values()) == len(SPECS)
