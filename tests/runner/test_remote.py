"""The remote-host backend and its hardened transport.

Pinned guarantees:

* the frame protocol never serves a torn message: a body whose digest
  mismatches is rejected as :class:`FrameGarbled` with the stream still
  in sync, while a damaged header desyncs and tears the connection down;
* a sweep over two host agents under a crash + partition + garble + drop
  schedule converges **byte-identical** to a serial fault-free run, with
  no spec lost, nothing published twice, and the result-store files
  identical down to the bytes;
* when every host is gone — unreachable from the start, or dead
  mid-sweep — the backend degrades to the local backend and the sweep
  still completes (degraded, never wedged);
* the artifact tier rides the same transport: agents fetch by content
  hash, re-verify on receipt, quarantine damaged blobs exactly like a
  local store, and upload what they compute back to the coordinator.
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.prefetch.regions import SpatialRegionGeometry
from repro.runner import artifacts as artifacts_mod
from repro.runner import faults
from repro.runner.artifacts import WARM, ArtifactStore, warm_key_id
from repro.runner.remote import (
    ArtifactGateway,
    ConnectionClosed,
    FrameError,
    FrameGarbled,
    HostAgent,
    RemoteArtifactStore,
    RemoteBackend,
    _FrameReader,
    parse_hosts,
    recv_frame,
    send_frame,
)
from repro.runner.serialize import canonical_result_json
from repro.runner.spec import ExperimentScale, ExperimentSpec
from repro.runner.store import ResultStore
from repro.runner.sweep import SweepRunner
from repro.runner.worker import make_backend
from repro.sim.config import PrefetcherConfig
from repro.sim.experiment import clear_cache
from repro.workloads.registry import get_workload

TINY = ExperimentScale(refs_per_core=400, warmup_refs=200, window_refs=200)

SPECS = [
    ExperimentSpec.build(workload, config, scale=TINY)
    for workload in ["Qry1", "Apache"]
    for config in [PrefetcherConfig.none(), PrefetcherConfig.virtualized(8)]
]


@pytest.fixture(autouse=True)
def _clean_slate():
    clear_cache()
    faults.install(None)
    yield
    faults.install(None)
    clear_cache()


@pytest.fixture()
def agents():
    """Two in-process host agents (soft crash faults: no os._exit)."""
    started = [HostAgent(hard_faults=False).start() for _ in range(2)]
    yield started
    for agent in started:
        agent.stop()


@pytest.fixture()
def golden(tmp_path):
    """Serial fault-free reference: canonical payloads + a result store."""
    store = ResultStore(tmp_path / "golden-store")
    results = SweepRunner(jobs=1, store=store).run(SPECS)
    clear_cache()
    return [canonical_result_json(r) for r in results], store


def _store_files(store: ResultStore):
    root = store.roots[0] if hasattr(store, "roots") else store.root
    import pathlib

    root = pathlib.Path(root)
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def _pair():
    a, b = socket.socketpair()
    a.settimeout(0.5)
    b.settimeout(0.5)
    return a, b


# ---------------------------------------------------------------- frames


class TestFrameProtocol:
    def test_roundtrip(self):
        a, b = _pair()
        send_frame(a, {"op": "x", "n": 3, "s": "héllo"})
        assert recv_frame(b, 1.0) == {"op": "x", "n": 3, "s": "héllo"}
        a.close(), b.close()

    def test_garbled_body_detected_stream_stays_in_sync(self):
        """A damaged body is a failed frame, not a desynced stream: the
        very next frame decodes normally."""
        a, b = _pair()
        reader = _FrameReader(b)
        send_frame(a, {"op": "damaged"}, garble=True)
        send_frame(a, {"op": "good"})
        with pytest.raises(FrameGarbled):
            while True:
                if reader.poll() is not None:
                    break
        frame = None
        while frame is None:
            frame = reader.poll()
        assert frame == {"op": "good"}
        a.close(), b.close()

    def test_bad_header_desyncs(self):
        a, b = _pair()
        a.sendall(b"not a frame header\n")
        with pytest.raises(FrameError):
            _FrameReader(b).poll()
        a.close(), b.close()

    def test_oversized_announced_body_rejected(self):
        a, b = _pair()
        a.sendall(b"repro1 99999999999999 " + b"0" * 64 + b"\n")
        with pytest.raises(FrameError):
            _FrameReader(b).poll()
        a.close(), b.close()

    def test_eof_raises_connection_closed(self):
        a, b = _pair()
        a.close()
        with pytest.raises(ConnectionClosed):
            _FrameReader(b).poll()
        b.close()

    def test_partial_frame_resumes_across_polls(self):
        a, b = _pair()
        reader = _FrameReader(b)
        import hashlib
        import json

        body = json.dumps({"op": "split"}).encode()
        digest = hashlib.sha256(body).hexdigest().encode()
        frame = b"repro1 %d %s\n%s" % (len(body), digest, body)
        a.sendall(frame[:10])
        assert reader.poll() is None  # timeout, partial frame buffered
        a.sendall(frame[10:])
        got = None
        while got is None:
            got = reader.poll()
        assert got == {"op": "split"}
        a.close(), b.close()


class TestParseHosts:
    def test_parses_comma_list(self):
        assert parse_hosts("a:1, b:2 ,c:3,") == [("a", 1), ("b", 2), ("c", 3)]

    def test_rejects_missing_port(self):
        with pytest.raises(ValueError, match="host:port"):
            parse_hosts("justahost")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="REPRO_HOSTS"):
            parse_hosts("")

    def test_registry_resolves_remote_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOSTS", "127.0.0.1:7311,127.0.0.1:7312")
        backend = make_backend("remote", workers=2)
        assert isinstance(backend, RemoteBackend)
        assert backend.hosts == [("127.0.0.1", 7311), ("127.0.0.1", 7312)]

    def test_registry_without_hosts_is_an_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOSTS", raising=False)
        with pytest.raises(ValueError, match="REPRO_HOSTS"):
            make_backend("remote")


# ----------------------------------------------------------- happy path


class TestRemoteSweep:
    def test_clean_sweep_matches_serial(self, tmp_path, agents, golden):
        goldens, golden_store = golden
        backend = RemoteBackend(
            hosts=[a.address for a in agents], workers=2
        )
        store = ResultStore(tmp_path / "store")
        runner = SweepRunner(
            jobs=2, store=store, use_cache=False,
            backend=backend, lease_timeout=2.0,
        )
        results = runner.run(SPECS)
        assert [canonical_result_json(r) for r in results] == goldens
        assert not backend.degraded
        assert _store_files(store) == _store_files(golden_store)

    def test_per_host_tallies(self, tmp_path, agents, golden):
        backend = RemoteBackend(hosts=[a.address for a in agents], workers=2)
        runner = SweepRunner(
            jobs=2, store=ResultStore(tmp_path / "store"), use_cache=False,
            backend=backend, lease_timeout=2.0,
        )
        runner.run(SPECS)
        tallies = runner.last_host_tallies
        assert set(tallies) == {f"{h}:{p}" for h, p in backend.hosts}
        for tally in tallies.values():
            assert set(tally) == {"done", "retried", "requeued", "reconnects"}
        assert sum(t["done"] for t in tallies.values()) == len(SPECS)

    def test_heartbeats_relayed_over_the_wire(self, tmp_path, agents):
        """With a lease shorter than the compute, only relayed heartbeats
        keep the lease alive — no expirations means they arrived."""
        slow = ExperimentScale(
            refs_per_core=6000, warmup_refs=3000, window_refs=600
        )
        specs = [ExperimentSpec.build(
            "Qry1", PrefetcherConfig.virtualized(8), scale=slow
        )]
        golden = canonical_result_json(specs[0].execute())
        backend = RemoteBackend(hosts=[agents[0].address], workers=1)
        runner = SweepRunner(
            jobs=1, store=ResultStore(tmp_path / "store"), use_cache=False,
            backend=backend, lease_timeout=0.3,
        )
        results = runner.run(specs)
        assert [canonical_result_json(r) for r in results] == [golden]
        stats = runner.last_stats
        assert stats["heartbeats"] >= 1
        assert stats["expirations"] == 0
        assert stats["published"] == 1


# --------------------------------------------------------------- chaos


class TestRemoteChaos:
    def test_crash_partition_garble_converges_byte_identical(
        self, tmp_path, agents, golden
    ):
        """The headline invariant: a crash + disconnect + garble + drop
        schedule across two hosts still converges to the exact bytes of
        the serial run — no lost spec, no double publish."""
        goldens, golden_store = golden
        faults.install(faults.FaultPlan(
            crash=(SPECS[0].key,),
            garble=(SPECS[1].key,),
            disconnect=("Apache/PV8",),
            drop=("Apache/NoPF",),
            tally_dir=str(tmp_path / "tally"),
        ))
        backend = RemoteBackend(hosts=[a.address for a in agents], workers=2)
        store = ResultStore(tmp_path / "store")
        runner = SweepRunner(
            jobs=2, store=store, use_cache=False,
            backend=backend, lease_timeout=1.0,
        )
        results = runner.run(SPECS)
        assert [canonical_result_json(r) for r in results] == goldens
        stats = runner.last_stats
        assert stats["published"] == len(SPECS)      # exactly once each
        assert stats["retries"] >= 2                 # crash + garble went again
        assert stats["expirations"] >= 1             # drop/disconnect re-pended
        assert not backend.degraded                  # hosts recovered
        assert len(store) == len(SPECS)              # no spec lost
        assert _store_files(store) == _store_files(golden_store)
        tallies = backend.tallies()
        assert sum(t["done"] for t in tallies.values()) == len(SPECS)
        assert sum(t["reconnects"] for t in tallies.values()) >= 1

    def test_garbled_done_frame_is_failed_attempt(
        self, tmp_path, agents, golden
    ):
        """A garbled result frame is never decoded: the lease fails, the
        spec recomputes, and the published payload is pristine."""
        goldens, _ = golden
        faults.install(faults.FaultPlan(
            garble=(SPECS[2].key,), tally_dir=str(tmp_path / "tally"),
        ))
        backend = RemoteBackend(hosts=[agents[0].address], workers=1)
        runner = SweepRunner(
            jobs=1, store=ResultStore(tmp_path / "store"), use_cache=False,
            backend=backend, lease_timeout=2.0,
        )
        results = runner.run(SPECS)
        assert [canonical_result_json(r) for r in results] == goldens
        assert runner.last_stats["retries"] >= 1
        assert backend.tallies()[
            "%s:%d" % agents[0].address]["retried"] >= 1


# ---------------------------------------------------------- degradation


class TestDegradation:
    def test_unreachable_hosts_degrade_to_local(self, tmp_path, golden):
        goldens, _ = golden
        # A port that was bound then released: connection refused.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        backend = RemoteBackend(
            hosts=[("127.0.0.1", port)], workers=1,
            reconnect_backoff=0.02, max_connect_failures=3,
        )
        runner = SweepRunner(
            jobs=1, store=ResultStore(tmp_path / "store"), use_cache=False,
            backend=backend, lease_timeout=1.0,
        )
        results = runner.run(SPECS)
        assert backend.degraded
        assert [canonical_result_json(r) for r in results] == goldens
        assert runner.last_stats["published"] == len(SPECS)

    def test_host_dying_mid_sweep_degrades_and_completes(
        self, tmp_path, golden
    ):
        """An agent that stops after one job leaves the sweep unfinished;
        the backend notices the dead host and the local fallback finishes
        every remaining spec."""
        goldens, _ = golden
        agent = HostAgent(hard_faults=False, serve_limit=1).start()
        try:
            backend = RemoteBackend(
                hosts=[agent.address], workers=1,
                reconnect_backoff=0.02, max_connect_failures=3,
            )
            runner = SweepRunner(
                jobs=1, store=ResultStore(tmp_path / "store"),
                use_cache=False, backend=backend, lease_timeout=1.0,
            )
            results = runner.run(SPECS)
            assert backend.degraded
            assert [canonical_result_json(r) for r in results] == goldens
            assert runner.last_stats["published"] == len(SPECS)
            assert agent.jobs_done == 1
        finally:
            agent.stop()


# ------------------------------------------------------- artifact tier


PROFILE = get_workload("Qry1")
REGION = SpatialRegionGeometry()


def _warm_key(warmup=600):
    return (
        PROFILE, 3, REGION, warmup,
        4, 64, 32768, 2, 32768, 2, 1 << 20, 16, True, 1,
    )


def _warm_payload():
    snaps = [(17, {0: ([1, 2], [5, 6], [0, 0])}), (2, {})]
    return (snaps, {4096: 3}, [64, 128], [0, 1])


@pytest.fixture()
def gateway(tmp_path):
    coordinator = ArtifactStore(tmp_path / "coordinator")
    gw = ArtifactGateway(coordinator).start()
    yield coordinator, gw
    gw.stop()


class TestArtifactTier:
    def test_fetch_by_hash_then_local_cache(self, tmp_path, gateway):
        coordinator, gw = gateway
        coordinator.put_warm_state(_warm_key(), _warm_payload())
        remote = RemoteArtifactStore(tmp_path / "agent-cache", gw.address)
        assert remote.get_warm_state(_warm_key()) == _warm_payload()
        assert remote.remote_hits == 1
        # Second read is served from the local cache, no second fetch.
        assert remote.get_warm_state(_warm_key()) == _warm_payload()
        assert remote.remote_fetches == 1

    def test_upload_behind(self, tmp_path, gateway):
        coordinator, gw = gateway
        remote = RemoteArtifactStore(tmp_path / "agent-cache", gw.address)
        remote.put_warm_state(_warm_key(), _warm_payload())
        assert remote.remote_uploads == 1
        assert coordinator.get_warm_state(_warm_key()) == _warm_payload()

    def test_damaged_blob_quarantined_on_receipt(
        self, tmp_path, gateway, monkeypatch
    ):
        """A blob damaged in flight fails the agent-side digest check: it
        is quarantined (``*.corrupt``), counted, and read as a miss —
        never trusted."""
        coordinator, gw = gateway
        coordinator.put_warm_state(_warm_key(), _warm_payload())
        real_get_raw = coordinator.get_raw

        def flipped(kind, key):
            blob = real_get_raw(kind, key)
            if blob is None:
                return None
            damaged = bytearray(blob)
            damaged[-1] ^= 0x01  # body damage; header digest now wrong
            return bytes(damaged)

        monkeypatch.setattr(coordinator, "get_raw", flipped)
        cache_root = tmp_path / "agent-cache"
        remote = RemoteArtifactStore(cache_root, gw.address)
        assert remote.get_warm_state(_warm_key()) is None
        assert remote.quarantined >= 1
        assert remote.quarantined_by_kind[WARM] >= 1
        assert list(cache_root.rglob("*.corrupt"))

    def test_gateway_rejects_damaged_upload(self, tmp_path, gateway):
        coordinator, gw = gateway
        remote = RemoteArtifactStore(tmp_path / "agent-cache", gw.address)
        remote.put_warm_state(_warm_key(), _warm_payload())
        key_id = warm_key_id(_warm_key())
        blob = bytearray(remote.get_raw(WARM, key_id))
        blob[-1] ^= 0x01

        import base64

        with socket.create_connection(gw.address, timeout=2.0) as sock:
            send_frame(sock, {
                "op": "art_put", "kind": WARM, "key": key_id,
                "data": base64.b64encode(bytes(blob)).decode("ascii"),
            })
            reply = recv_frame(sock, 2.0)
        assert reply == {"op": "art_ack", "ok": False}

    def test_agents_share_warm_state_through_the_sweep(
        self, tmp_path, agents, golden
    ):
        """End to end: with an artifact store active on the coordinator,
        the sweep wires a gateway in and the agents populate it."""
        from repro.sim.simulator import WARM_STATE_CACHE
        from repro.workloads.generator import TRACE_CACHE

        goldens, _ = golden
        # The golden run warmed the in-process caches; clear them so the
        # agents actually recompile (and publish) artifacts.
        WARM_STATE_CACHE.clear()
        TRACE_CACHE.clear()
        coordinator = ArtifactStore(tmp_path / "artifacts")
        previous = artifacts_mod.active_store()
        artifacts_mod.set_active(coordinator)
        try:
            backend = RemoteBackend(
                hosts=[a.address for a in agents], workers=2
            )
            runner = SweepRunner(
                jobs=2, store=ResultStore(tmp_path / "store"),
                use_cache=False, backend=backend, lease_timeout=2.0,
            )
            results = runner.run(SPECS)
            assert [canonical_result_json(r) for r in results] == goldens
            on_disk = coordinator.stats()["on_disk"]
            assert sum(occ["entries"] for occ in on_disk.values()) >= 1
        finally:
            artifacts_mod.set_active(previous)
